"""Per-device block schedulers (the Plan's "Execute" stage).

A scheduler owns how a launch's blocks reach the hardware:

* :class:`SequentialScheduler` — blocks run in the caller's thread, in
  C order.  The strategy of the serial, thread-parallel and fiber
  back-ends (their parallelism, if any, lives *inside* the block), and
  the one that keeps the fiber back-end's deterministic interleaving.
* :class:`PooledScheduler` — blocks are distributed over a persistent
  per-device worker pool in **chunks** of ``ceil(blocks / workers)``,
  so a grid of 10⁴ blocks costs ``workers`` executor submissions, not
  10⁴ — the OpenMP ``schedule(static)`` strategy, replacing the old
  one-future-per-block dispatch through a module-global pool.

Pools are per *device* (keyed on ``Device.uid``), mirroring how an
OpenMP runtime pins one thread team per target: two devices launching
concurrently no longer contend for one pool's queue.  The worker cap is
``REPRO_MAX_BLOCK_WORKERS`` (default :data:`MAX_BLOCK_WORKERS`),
resolved once per pool and exposed through the back-end's device
properties (``AccDevProps.max_block_workers``).
"""

from __future__ import annotations

import atexit
import logging
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.errors import KernelError
from ..core.vec import Vec
from .instrument import (
    notify_block,
    notify_block_end,
    notify_worker_span,
    observers,
)

__all__ = [
    "MAX_BLOCK_WORKERS",
    "MAX_BLOCK_WORKERS_ENV",
    "SCHEDULER_ENV",
    "PROCESS_WORKERS_ENV",
    "resolve_max_block_workers",
    "resolve_process_workers",
    "resolve_scheduler_override",
    "current_worker_label",
    "Scheduler",
    "SequentialScheduler",
    "PooledScheduler",
    "ProcessPoolScheduler",
    "CompiledScheduler",
    "scheduler_for",
    "shutdown_schedulers",
    "chunk_indices",
]

_log = logging.getLogger("repro.runtime.scheduler")

#: Default upper bound on concurrently scheduled block workers; beyond
#: this the host's thread-switch overhead dominates any concurrency
#: benefit.  Override per process with ``REPRO_MAX_BLOCK_WORKERS``.
MAX_BLOCK_WORKERS = 16

#: Environment variable overriding :data:`MAX_BLOCK_WORKERS`.
MAX_BLOCK_WORKERS_ENV = "REPRO_MAX_BLOCK_WORKERS"

#: Environment variable forcing a block-scheduling strategy onto every
#: *pool-capable* back-end: ``sequential``, ``threads`` (alias
#: ``pooled``), ``processes`` or ``compiled`` (trace-vectorized whole-
#: grid replay, falling back to the thread pool for kernels the
#: vectorizer cannot represent).  Back-ends that declare
#: ``block_schedule="sequential"`` (serial, fibers, the thread-level
#: CPU back-ends) are never remapped — their block order is part of
#: their semantics.
SCHEDULER_ENV = "REPRO_SCHEDULER"

#: Environment variable sizing the process pool (default: core count
#: capped at :data:`MAX_BLOCK_WORKERS`).
PROCESS_WORKERS_ENV = "REPRO_PROCESS_WORKERS"

#: Accepted ``REPRO_SCHEDULER`` values -> canonical schedule keys.
_SCHEDULE_ALIASES = {
    "sequential": "sequential",
    "threads": "pooled",
    "pooled": "pooled",
    "processes": "processes",
    "process": "processes",
    "compiled": "compiled",
    "compile": "compiled",
}


def resolve_scheduler_override() -> Optional[str]:
    """The canonical schedule forced by ``REPRO_SCHEDULER``, or None."""
    raw = os.environ.get(SCHEDULER_ENV)
    if raw is None or raw == "":
        return None
    try:
        return _SCHEDULE_ALIASES[raw.strip().lower()]
    except KeyError:
        raise ValueError(
            f"{SCHEDULER_ENV}={raw!r} unknown; "
            f"accepted: {sorted(_SCHEDULE_ALIASES)}"
        ) from None


def resolve_process_workers() -> int:
    """Worker count for a new process pool (``REPRO_PROCESS_WORKERS``;
    default: host core count capped at :data:`MAX_BLOCK_WORKERS`)."""
    raw = os.environ.get(PROCESS_WORKERS_ENV)
    if raw is not None:
        try:
            return max(1, int(raw))
        except ValueError:
            raise ValueError(
                f"{PROCESS_WORKERS_ENV}={raw!r} is not an integer"
            ) from None
    return min(MAX_BLOCK_WORKERS, max(1, os.cpu_count() or 1))


_worker_label = threading.local()


def current_worker_label() -> Optional[str]:
    """Label of the block worker whose completion is being observed
    right now (``p0``, ``p1``, … while the process scheduler replays
    per-block timings; None on the in-process paths, where the
    telemetry collector falls back to the OS thread name)."""
    return getattr(_worker_label, "value", None)


def resolve_max_block_workers() -> int:
    """The worker cap a new pool will use.

    ``REPRO_MAX_BLOCK_WORKERS`` is authoritative when set (clamped to
    >= 1; deliberate oversubscription is a valid experiment).  The
    default is :data:`MAX_BLOCK_WORKERS` bounded by the host's core
    count.
    """
    raw = os.environ.get(MAX_BLOCK_WORKERS_ENV)
    if raw is not None:
        try:
            return max(1, int(raw))
        except ValueError:
            raise ValueError(
                f"{MAX_BLOCK_WORKERS_ENV}={raw!r} is not an integer"
            ) from None
    return min(MAX_BLOCK_WORKERS, max(2, os.cpu_count() or 1))


def chunk_indices(indices: Sequence[Vec], workers: int) -> List[Sequence[Vec]]:
    """Partition block indices into at most ``workers`` contiguous
    chunks of ``ceil(len / workers)`` blocks (OpenMP static schedule)."""
    n = len(indices)
    if n == 0:
        return []
    size = -(-n // max(1, workers))
    return [indices[i : i + size] for i in range(0, n, size)]


def _run_block(plan, grid, bidx: Vec, task, observed: bool) -> None:
    if observed:
        notify_block(plan, bidx)
        t0 = time.perf_counter()
    try:
        plan.block_runner(grid, bidx, task.kernel, grid.args)
    except KernelError:
        raise
    except BaseException as exc:  # noqa: BLE001 - wrapped for the launcher
        kname = getattr(task.kernel, "__name__", type(task.kernel).__name__)
        raise KernelError(
            f"kernel {kname!r} failed in block {bidx!r}"
        ) from exc
    if observed:
        # Block latency for the telemetry histograms; timed only while
        # observed so the bare dispatch path never reads the clock.
        notify_block_end(plan, bidx, time.perf_counter() - t0)


class Scheduler:
    """Base block scheduler bound to one device."""

    #: Declarative key back-ends use to select this scheduler.
    schedule = "abstract"

    def __init__(self, device):
        self.device = device

    @property
    def worker_count(self) -> int:
        """Concurrent block workers this scheduler drives (1 = caller)."""
        return 1

    def dispatch(self, plan, grid, block_indices: Sequence[Vec], task) -> None:
        """Run every block of the launch; returns when all completed."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} on {self.device.name}>"


class SequentialScheduler(Scheduler):
    """Blocks execute in the caller's thread, in C index order."""

    schedule = "sequential"

    def dispatch(self, plan, grid, block_indices, task) -> None:
        observed = bool(observers())
        for bidx in block_indices:
            _run_block(plan, grid, bidx, task, observed)


class PooledScheduler(Scheduler):
    """Blocks execute on a persistent per-device pool, chunked.

    The pool outlives launches (OpenMP keeps its team alive between
    parallel regions; charging thread start-up to every launch would
    show up as false abstraction overhead in the Fig. 5 measurement)
    and is torn down with the process or via
    :func:`shutdown_schedulers`.
    """

    schedule = "pooled"

    def __init__(self, device):
        super().__init__(device)
        self._workers = resolve_max_block_workers()
        self._pool = ThreadPoolExecutor(
            max_workers=self._workers,
            thread_name_prefix=f"alpaka-blk-{device.uid}",
        )

    @property
    def worker_count(self) -> int:
        return self._workers

    def dispatch(self, plan, grid, block_indices, task) -> None:
        observed = bool(observers())
        if block_indices is plan.block_indices:
            # The common path: chunking is pure geometry, memoised on
            # the cached plan instead of rebuilt every warm launch.
            chunks = plan.chunks_for(self._workers)
        else:
            chunks = chunk_indices(block_indices, self._workers)
        if len(chunks) <= 1:
            for bidx in block_indices:
                _run_block(plan, grid, bidx, task, observed)
            return

        def run_chunk(chunk: Sequence[Vec]) -> None:
            for bidx in chunk:
                _run_block(plan, grid, bidx, task, observed)

        futures = [self._pool.submit(run_chunk, c) for c in chunks]
        error = None
        for fut in futures:
            try:
                fut.result()
            except BaseException as exc:  # noqa: BLE001 - first one wins
                if error is None:
                    error = exc
        if error is not None:
            raise error

    def shutdown(self) -> None:
        # Idempotent: the atexit sweep and explicit teardown may both
        # run; ThreadPoolExecutor.shutdown tolerates repeats.
        self._pool.shutdown(wait=True)


class ProcessPoolScheduler(Scheduler):
    """Blocks execute in a persistent pool of spawned worker *processes*.

    The only strategy with real CPU parallelism for CPU-bound Python
    kernels: thread-pool dispatch serialises on the GIL, so the
    OMP2-blocks back-end was parallel in name only.  Workers map
    shm-backed buffers zero-copy (:mod:`repro.mem.shm`) and run chunks
    of ``ceil(blocks / workers)`` single-thread blocks via
    :func:`repro.runtime.procpool.run_chunk`.

    Not every launch is process-safe.  Dispatch classifies each one
    (:func:`repro.runtime.procpool.process_launch_state`, memoised on
    the plan): launches with multi-thread blocks, private-memory
    buffers or unpicklable kernels fall back to the thread-pool
    scheduler with the reason logged once — never a silent wrong
    answer.  Global-memory atomics stay correct through a
    process-shared striped lock table handed to every worker at spawn.

    The pool is created lazily on the first eligible dispatch (spawn
    start-up is ~100 ms/worker; launches that always fall back never
    pay it) and torn down by :func:`shutdown_schedulers`, which is
    atexit-registered so interpreter exit cannot leave workers wedged
    or spray ``BrokenProcessPool`` tracebacks.
    """

    schedule = "processes"

    def __init__(self, device):
        super().__init__(device)
        self._workers = resolve_process_workers()
        self._pool = None
        self._pool_lock = threading.Lock()
        self._logged_reasons = set()

    @property
    def worker_count(self) -> int:
        return self._workers

    def _ensure_pool(self):
        pool = self._pool
        if pool is not None:
            return pool
        with self._pool_lock:
            if self._pool is None:
                import multiprocessing as mp
                from concurrent.futures import ProcessPoolExecutor

                from .procpool import ATOMIC_STRIPES, worker_init

                ctx = mp.get_context("spawn")
                locks = [ctx.Lock() for _ in range(ATOMIC_STRIPES)]
                env = {
                    k: v
                    for k, v in os.environ.items()
                    if k.startswith("REPRO_")
                }
                self._pool = ProcessPoolExecutor(
                    max_workers=self._workers,
                    mp_context=ctx,
                    initializer=worker_init,
                    initargs=(locks, env),
                )
            return self._pool

    def _fallback(self, plan, grid, block_indices, task, reason: str) -> None:
        if reason not in self._logged_reasons:
            self._logged_reasons.add(reason)
            kname = getattr(
                task.kernel, "__name__", type(task.kernel).__name__
            )
            _log.info(
                "process dispatch of %s falls back to the thread pool: %s",
                kname,
                reason,
            )
        scheduler_for(self.device, "pooled").dispatch(
            plan, grid, block_indices, task
        )

    def dispatch(self, plan, grid, block_indices, task) -> None:
        import multiprocessing as mp

        from .procpool import process_launch_state, run_chunk

        in_child = mp.parent_process() is not None or getattr(
            mp.current_process(), "_inheriting", False
        )
        if in_child:
            # Inside a child process (a spawned worker re-importing an
            # unguarded ``__main__`` script — the `_inheriting` flag is
            # set during that bootstrap, before `parent_process()` is —
            # or a kernel launched from a worker): spawning
            # grandchildren here would abort the child's bootstrap and
            # break the parent's pool.
            self._fallback(
                plan, grid, block_indices, task,
                "launch happens inside a child process — guard the "
                "script's entry point with `if __name__ == \"__main__\":` "
                "so spawned workers do not re-execute it",
            )
            return
        if block_indices is not plan.block_indices:
            # Workers address blocks by linear index into the plan's
            # full C-order list; a caller-selected subset has no such
            # addressing and runs on the thread pool instead.
            self._fallback(
                plan, grid, block_indices, task,
                "launch uses a custom block-index subset",
            )
            return
        state = process_launch_state(plan, task)
        if not state.eligible:
            self._fallback(plan, grid, block_indices, task, state.reason)
            return

        observed = bool(observers())
        bounds = plan.chunk_bounds_for(self._workers)
        if len(bounds) <= 1:
            for bidx in block_indices:
                _run_block(plan, grid, bidx, task, observed)
            return

        # Distributed tracing: when observed *and* the launching thread
        # carries an ambient context, ship its traceparent so workers
        # time their chunk as a child span (replayed via
        # ``on_worker_span``).  Unobserved launches send nothing — the
        # payload stays byte-identical to the untraced case.
        trace = None
        if observed:
            from ..telemetry import tracing

            ctx = tracing.current()
            if ctx is not None:
                trace = {"traceparent": ctx.to_traceparent()}

        pool = self._ensure_pool()
        futures = [
            pool.submit(
                run_chunk,
                state.digest,
                state.blob,
                start,
                stop,
                observed,
                self.device.name,
                self.device.uid,
                trace,
            )
            for start, stop in bounds
        ]
        error = None
        results = []
        for i, fut in enumerate(futures):
            try:
                results.append((i, fut.result()))
            except BaseException as exc:  # noqa: BLE001 - first one wins
                if error is None:
                    error = exc
        if error is not None:
            from concurrent.futures.process import BrokenProcessPool

            if isinstance(error, BrokenProcessPool):
                self.shutdown()  # the broken pool is unusable; drop it
                if not results:
                    # No chunk completed, so no worker touched the
                    # buffers: the launch can be rerun safely on the
                    # thread pool.  (A worker dying at startup usually
                    # means an unguarded `__main__` or an OOM kill.)
                    _log.warning(
                        "process pool broke before any block ran "
                        "(unguarded `if __name__ == \"__main__\":`? "
                        "worker killed?); rerunning on the thread pool"
                    )
                    scheduler_for(self.device, "pooled").dispatch(
                        plan, grid, block_indices, task
                    )
                    return
                raise KernelError(
                    "a process-pool worker died mid-launch after some "
                    "blocks already ran; buffer state is partial, so "
                    "the launch was not retried"
                ) from error
            raise error
        if observed:
            self._replay(plan, results)

    def _replay(self, plan, results) -> None:
        """Re-announce per-block begin/end to the parent's observers.

        Observers live in the parent process; workers only time.  The
        replay happens after the launch (observer wall-clock ordering
        inside a launch is already unspecified under pool dispatch) and
        tags each block with its chunk's worker label ``p<i>`` through
        :func:`current_worker_label`.
        """
        try:
            for i, result in results:
                _pid, timings = result[0], result[1]
                _worker_label.value = f"p{i}"
                for k, seconds in timings or ():
                    bidx = plan.block_indices[k]
                    notify_block(plan, bidx)
                    notify_block_end(plan, bidx, seconds)
                # 3-tuple results carry worker-side chunk spans (traced
                # launches only); hand them to observers with the
                # worker's real pid attached.
                for span in (result[2] if len(result) > 2 else None) or ():
                    notify_worker_span(dict(span, worker=f"p{i}"))
        finally:
            _worker_label.value = None

    def shutdown(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


class CompiledScheduler(Scheduler):
    """The whole grid executes as one trace-vectorized numpy replay.

    Instead of dispatching blocks at all, the first launch of a
    (kernel, work-division, argument-shape) configuration is traced
    with batched symbolic thread coordinates (:mod:`repro.compile`) and
    warm launches replay the recorded dataflow as fused array
    operations — the closure is cached on the plan, so the steady state
    is a dict lookup plus a handful of vectorized ufunc calls.

    Launches the vectorizer cannot represent — divergent control flow,
    barriers, atomics, shared memory, per-thread RNG, sanitizer-
    instrumented grids, custom block subsets — fall back to the thread
    pool with the reason classified, logged once per (kernel, reason),
    counted in ``repro_compile_fallbacks_total`` and flight-recorded
    (mirroring the process scheduler's classifier).  Fallbacks happen
    strictly before any argument byte changes, so they are always
    correct, never a partial launch.

    ``REPRO_COMPILE_CROSSCHECK=1`` additionally runs every compiled
    launch through the interpreter and asserts the two agree
    bit-for-bit on all store targets.
    """

    schedule = "compiled"

    def __init__(self, device):
        super().__init__(device)
        self._logged_reasons = set()

    def _fallback(self, plan, grid, block_indices, task, reason: str,
                  detail: str) -> None:
        from ..compile.metrics import note_fallback
        from ..compile.replay import kernel_name
        from ..telemetry import flight

        kname = kernel_name(task.kernel)
        note_fallback(kname, reason)
        key = (kname, reason)
        if key not in self._logged_reasons:
            self._logged_reasons.add(key)
            _log.info(
                "compiled dispatch of %s falls back to interpretation "
                "[%s]: %s",
                kname,
                reason,
                detail,
            )
        flight.maybe_record(
            "compile_fallback", kernel=kname, reason=reason
        )
        scheduler_for(self.device, "pooled").dispatch(
            plan, grid, block_indices, task
        )

    def dispatch(self, plan, grid, block_indices, task) -> None:
        from ..compile.replay import crosscheck_active, execute_compiled
        from ..compile.tracer import CompileFallback

        if block_indices is not plan.block_indices:
            # The replay covers the whole grid; a caller-selected block
            # subset has no compiled equivalent.
            self._fallback(
                plan, grid, block_indices, task,
                "custom-block-subset",
                "launch uses a custom block-index subset",
            )
            return
        if getattr(grid, "monitor", None) is not None:
            # Sanitizer-instrumented launches must interpret: the
            # monitor observes per-thread accesses, which a fused
            # replay by design does not perform.
            self._fallback(
                plan, grid, block_indices, task,
                "sanitizer",
                "sanitizer-instrumented launch needs per-thread "
                "interpretation",
            )
            return
        interpret = None
        if crosscheck_active():
            pooled = scheduler_for(self.device, "pooled")

            def interpret():
                pooled.dispatch(plan, grid, block_indices, task)

        try:
            execute_compiled(plan, grid, task, interpret=interpret)
        except CompileFallback as cf:
            self._fallback(
                plan, grid, block_indices, task, cf.reason, cf.detail
            )


_schedulers: Dict[Tuple[int, str], Scheduler] = {}
_schedulers_lock = threading.Lock()

_SCHEDULER_TYPES: Dict[str, type] = {
    SequentialScheduler.schedule: SequentialScheduler,
    PooledScheduler.schedule: PooledScheduler,
    ProcessPoolScheduler.schedule: ProcessPoolScheduler,
    CompiledScheduler.schedule: CompiledScheduler,
}


def scheduler_for(device, schedule: str) -> Scheduler:
    """The cached scheduler of kind ``schedule`` for ``device``.

    One scheduler (and hence one pool) exists per (device, kind) for
    the life of the process.
    """
    try:
        cls = _SCHEDULER_TYPES[schedule]
    except KeyError:
        raise ValueError(
            f"unknown block schedule {schedule!r}; "
            f"known: {sorted(_SCHEDULER_TYPES)}"
        ) from None
    key = (device.uid, schedule)
    sched = _schedulers.get(key)
    if sched is None:
        with _schedulers_lock:
            sched = _schedulers.get(key)
            if sched is None:
                sched = cls(device)
                _schedulers[key] = sched
    return sched


def shutdown_schedulers() -> None:
    """Tear down all cached schedulers (idempotent).

    Also registered with ``atexit``: Python's own executor teardown runs
    *after* atexit callbacks (during threading shutdown), so draining
    the pools here first means interpreter exit can never deadlock on a
    wedged worker or print ``BrokenProcessPool`` noise from workers
    reaped mid-chunk.  Tests call it directly between env permutations.
    """
    with _schedulers_lock:
        scheds = list(_schedulers.values())
        _schedulers.clear()
    for s in scheds:
        shutdown = getattr(s, "shutdown", None)
        if shutdown is not None:
            shutdown()


atexit.register(shutdown_schedulers)
