"""Per-device block schedulers (the Plan's "Execute" stage).

A scheduler owns how a launch's blocks reach the hardware:

* :class:`SequentialScheduler` — blocks run in the caller's thread, in
  C order.  The strategy of the serial, thread-parallel and fiber
  back-ends (their parallelism, if any, lives *inside* the block), and
  the one that keeps the fiber back-end's deterministic interleaving.
* :class:`PooledScheduler` — blocks are distributed over a persistent
  per-device worker pool in **chunks** of ``ceil(blocks / workers)``,
  so a grid of 10⁴ blocks costs ``workers`` executor submissions, not
  10⁴ — the OpenMP ``schedule(static)`` strategy, replacing the old
  one-future-per-block dispatch through a module-global pool.

Pools are per *device* (keyed on ``Device.uid``), mirroring how an
OpenMP runtime pins one thread team per target: two devices launching
concurrently no longer contend for one pool's queue.  The worker cap is
``REPRO_MAX_BLOCK_WORKERS`` (default :data:`MAX_BLOCK_WORKERS`),
resolved once per pool and exposed through the back-end's device
properties (``AccDevProps.max_block_workers``).
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Sequence, Tuple

from ..core.errors import KernelError
from ..core.vec import Vec
from .instrument import notify_block, notify_block_end, observers

__all__ = [
    "MAX_BLOCK_WORKERS",
    "MAX_BLOCK_WORKERS_ENV",
    "resolve_max_block_workers",
    "Scheduler",
    "SequentialScheduler",
    "PooledScheduler",
    "scheduler_for",
    "shutdown_schedulers",
    "chunk_indices",
]

#: Default upper bound on concurrently scheduled block workers; beyond
#: this the host's thread-switch overhead dominates any concurrency
#: benefit.  Override per process with ``REPRO_MAX_BLOCK_WORKERS``.
MAX_BLOCK_WORKERS = 16

#: Environment variable overriding :data:`MAX_BLOCK_WORKERS`.
MAX_BLOCK_WORKERS_ENV = "REPRO_MAX_BLOCK_WORKERS"


def resolve_max_block_workers() -> int:
    """The worker cap a new pool will use.

    ``REPRO_MAX_BLOCK_WORKERS`` is authoritative when set (clamped to
    >= 1; deliberate oversubscription is a valid experiment).  The
    default is :data:`MAX_BLOCK_WORKERS` bounded by the host's core
    count.
    """
    raw = os.environ.get(MAX_BLOCK_WORKERS_ENV)
    if raw is not None:
        try:
            return max(1, int(raw))
        except ValueError:
            raise ValueError(
                f"{MAX_BLOCK_WORKERS_ENV}={raw!r} is not an integer"
            ) from None
    return min(MAX_BLOCK_WORKERS, max(2, os.cpu_count() or 1))


def chunk_indices(indices: Sequence[Vec], workers: int) -> List[Sequence[Vec]]:
    """Partition block indices into at most ``workers`` contiguous
    chunks of ``ceil(len / workers)`` blocks (OpenMP static schedule)."""
    n = len(indices)
    if n == 0:
        return []
    size = -(-n // max(1, workers))
    return [indices[i : i + size] for i in range(0, n, size)]


def _run_block(plan, grid, bidx: Vec, task, observed: bool) -> None:
    if observed:
        notify_block(plan, bidx)
        t0 = time.perf_counter()
    try:
        plan.block_runner(grid, bidx, task.kernel, grid.args)
    except KernelError:
        raise
    except BaseException as exc:  # noqa: BLE001 - wrapped for the launcher
        kname = getattr(task.kernel, "__name__", type(task.kernel).__name__)
        raise KernelError(
            f"kernel {kname!r} failed in block {bidx!r}"
        ) from exc
    if observed:
        # Block latency for the telemetry histograms; timed only while
        # observed so the bare dispatch path never reads the clock.
        notify_block_end(plan, bidx, time.perf_counter() - t0)


class Scheduler:
    """Base block scheduler bound to one device."""

    #: Declarative key back-ends use to select this scheduler.
    schedule = "abstract"

    def __init__(self, device):
        self.device = device

    @property
    def worker_count(self) -> int:
        """Concurrent block workers this scheduler drives (1 = caller)."""
        return 1

    def dispatch(self, plan, grid, block_indices: Sequence[Vec], task) -> None:
        """Run every block of the launch; returns when all completed."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} on {self.device.name}>"


class SequentialScheduler(Scheduler):
    """Blocks execute in the caller's thread, in C index order."""

    schedule = "sequential"

    def dispatch(self, plan, grid, block_indices, task) -> None:
        observed = bool(observers())
        for bidx in block_indices:
            _run_block(plan, grid, bidx, task, observed)


class PooledScheduler(Scheduler):
    """Blocks execute on a persistent per-device pool, chunked.

    The pool outlives launches (OpenMP keeps its team alive between
    parallel regions; charging thread start-up to every launch would
    show up as false abstraction overhead in the Fig. 5 measurement)
    and is torn down with the process or via
    :func:`shutdown_schedulers`.
    """

    schedule = "pooled"

    def __init__(self, device):
        super().__init__(device)
        self._workers = resolve_max_block_workers()
        self._pool = ThreadPoolExecutor(
            max_workers=self._workers,
            thread_name_prefix=f"alpaka-blk-{device.uid}",
        )

    @property
    def worker_count(self) -> int:
        return self._workers

    def dispatch(self, plan, grid, block_indices, task) -> None:
        observed = bool(observers())
        chunks = chunk_indices(block_indices, self._workers)
        if len(chunks) <= 1:
            for bidx in block_indices:
                _run_block(plan, grid, bidx, task, observed)
            return

        def run_chunk(chunk: Sequence[Vec]) -> None:
            for bidx in chunk:
                _run_block(plan, grid, bidx, task, observed)

        futures = [self._pool.submit(run_chunk, c) for c in chunks]
        error = None
        for fut in futures:
            try:
                fut.result()
            except BaseException as exc:  # noqa: BLE001 - first one wins
                if error is None:
                    error = exc
        if error is not None:
            raise error

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


_schedulers: Dict[Tuple[int, str], Scheduler] = {}
_schedulers_lock = threading.Lock()

_SCHEDULER_TYPES: Dict[str, type] = {
    SequentialScheduler.schedule: SequentialScheduler,
    PooledScheduler.schedule: PooledScheduler,
}


def scheduler_for(device, schedule: str) -> Scheduler:
    """The cached scheduler of kind ``schedule`` for ``device``.

    One scheduler (and hence one pool) exists per (device, kind) for
    the life of the process.
    """
    try:
        cls = _SCHEDULER_TYPES[schedule]
    except KeyError:
        raise ValueError(
            f"unknown block schedule {schedule!r}; "
            f"known: {sorted(_SCHEDULER_TYPES)}"
        ) from None
    key = (device.uid, schedule)
    sched = _schedulers.get(key)
    if sched is None:
        with _schedulers_lock:
            sched = _schedulers.get(key)
            if sched is None:
                sched = cls(device)
                _schedulers[key] = sched
    return sched


def shutdown_schedulers() -> None:
    """Tear down all cached schedulers (tests; process exit does this
    implicitly through daemon pool threads)."""
    with _schedulers_lock:
        scheds = list(_schedulers.values())
        _schedulers.clear()
    for s in scheds:
        shutdown = getattr(s, "shutdown", None)
        if shutdown is not None:
            shutdown()
