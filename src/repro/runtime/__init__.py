"""The unified launch runtime: Task → Plan → Execute.

Every back-end routes kernel launches through :func:`launch`:

1. **Task** — the inert :class:`~repro.core.kernel.KernelTask` built by
   ``create_task_kernel`` (unchanged public API);
2. **Plan** — :mod:`repro.runtime.plan` resolves (or rebuilds) a
   :class:`LaunchPlan` carrying the validated work division, projected
   device properties, chosen thread-level runner and block-level
   schedule, with an LRU cache so repeated launches skip validation;
3. **Execute** — :mod:`repro.runtime.scheduler` dispatches the blocks,
   sequentially or chunked over a persistent per-device worker pool.

Instrumentation (:mod:`repro.runtime.instrument`) observes every stage;
back-ends declare their strategy pair declaratively::

    class AccCpuOmp2Blocks(AccCpu):
        block_schedule = "pooled"      # blocks over the device pool
        thread_execute = "single"      # one thread per block

and never touch pool or validation logic themselves.
"""

from __future__ import annotations

from .instrument import (
    CountingObserver,
    ExecutionObserver,
    notify_block,
    notify_copy,
    notify_graph_end,
    notify_launch_begin,
    notify_launch_end,
    notify_plan_cache,
    notify_queue_drain,
    notify_sanitizer_report,
    observe,
    observers,
    register_observer,
    unregister_observer,
)
from .plan import (
    GRAPH_PLAN_CACHE_MAXSIZE,
    PLAN_CACHE_MAXSIZE,
    GraphPlan,
    LaunchPlan,
    build_plan,
    clear_graph_plan_cache,
    clear_plan_cache,
    get_graph_plan,
    get_plan,
    graph_plan_cache_info,
    plan_cache_info,
)
from .scheduler import (
    MAX_BLOCK_WORKERS,
    MAX_BLOCK_WORKERS_ENV,
    PROCESS_WORKERS_ENV,
    SCHEDULER_ENV,
    CompiledScheduler,
    PooledScheduler,
    ProcessPoolScheduler,
    Scheduler,
    SequentialScheduler,
    chunk_indices,
    current_worker_label,
    resolve_max_block_workers,
    resolve_process_workers,
    resolve_scheduler_override,
    scheduler_for,
    shutdown_schedulers,
)

__all__ = [
    "launch",
    "execute_plan",
    # plan
    "LaunchPlan",
    "build_plan",
    "get_plan",
    "clear_plan_cache",
    "plan_cache_info",
    "PLAN_CACHE_MAXSIZE",
    # graph plan
    "GraphPlan",
    "get_graph_plan",
    "clear_graph_plan_cache",
    "graph_plan_cache_info",
    "GRAPH_PLAN_CACHE_MAXSIZE",
    # scheduler
    "Scheduler",
    "SequentialScheduler",
    "PooledScheduler",
    "ProcessPoolScheduler",
    "CompiledScheduler",
    "scheduler_for",
    "shutdown_schedulers",
    "chunk_indices",
    "current_worker_label",
    "resolve_max_block_workers",
    "resolve_process_workers",
    "resolve_scheduler_override",
    "MAX_BLOCK_WORKERS",
    "MAX_BLOCK_WORKERS_ENV",
    "SCHEDULER_ENV",
    "PROCESS_WORKERS_ENV",
    # instrumentation
    "ExecutionObserver",
    "CountingObserver",
    "register_observer",
    "unregister_observer",
    "observers",
    "observe",
    "notify_launch_begin",
    "notify_launch_end",
    "notify_block",
    "notify_copy",
    "notify_queue_drain",
    "notify_plan_cache",
    "notify_sanitizer_report",
    "notify_graph_end",
]


def launch(task, device) -> "LaunchPlan":
    """Run ``task``'s grid on ``device`` through the runtime pipeline.

    Returns the (possibly cached) :class:`LaunchPlan` that executed, so
    callers can inspect scheduling decisions.  This is the single entry
    point behind every back-end's ``execute``; the legacy
    ``repro.acc.engine.run_grid`` delegates here.

    When the sanitizer is active (``REPRO_SANITIZE=1`` or
    :func:`repro.sanitize.enabled`), the launch detours through the
    instrumented path — same plan, same observers, shadowed arguments —
    and findings land in the session report.
    """
    from ..sanitize import _state as _sanitize_state

    if _sanitize_state.active():
        from ..sanitize.runner import sanitized_launch

        return sanitized_launch(task, device)

    return execute_plan(get_plan(task, device), task, device)


def execute_plan(plan, task, device, grid=None, scheduler=None) -> "LaunchPlan":
    """The Execute stage alone: dispatch an already-resolved ``plan``.

    :func:`launch` calls this after plan resolution; the dataflow-graph
    executor (:mod:`repro.graph`) calls it directly during warm graph
    replay with the node's cached ``grid`` context and ``scheduler``, so
    a replayed pipeline pays neither plan-cache lookup nor grid-context
    construction per node.  Observer notifications, device launch
    accounting and modeled-time advance are identical on both paths.
    """
    from ..acc.timing import advance_modeled_time

    if grid is None:
        from ..acc.base import GridContext

        grid = GridContext(
            device,
            plan.work_div,
            plan.props,
            plan.unwrap_args(task.args),
            shared_mem_bytes=plan.shared_mem_bytes,
        )
    device.note_kernel_launch()
    plan.launches += 1
    notify_launch_begin(plan, task, device)
    try:
        sched = scheduler or scheduler_for(device, plan.schedule)
        sched.dispatch(plan, grid, plan.block_indices, task)
        advance_modeled_time(task, device, plan.acc_type.kind, plan.work_div)
    except BaseException as exc:
        # The kernel failure is the error the caller must see: observers
        # are still told the launch ended, but an observer raising from
        # on_launch_end here must not mask the original exception.
        try:
            notify_launch_end(plan, task, device)
        except Exception:
            pass
        # Flight recorder (REPRO_FLIGHT_RECORDER_DIR): dump the recent
        # event ring alongside the crash.  One boolean read when off;
        # never raises into the failing path.
        from ..telemetry import flight

        if flight.active():
            flight.on_kernel_crash(plan, exc)
        raise
    # On a clean launch an observer exception propagates to the caller
    # (observers only raise when they mean to fail the run); the
    # dispatch already completed, so the scheduler pool stays usable.
    notify_launch_end(plan, task, device)
    return plan
