"""Launch plans: the "Plan" stage of the Task→Plan→Execute pipeline.

Binding a kernel task to a device used to re-derive everything on every
launch — work-division validation, device-property projection, shared
memory checks, block-runner selection.  A :class:`LaunchPlan` captures
all of that once; an LRU cache keyed on
``(back-end, kernel, work-div, device, shared-mem)`` lets repeated
launches of the same configuration skip straight to block dispatch —
the retuning loop of Matthes et al. (arXiv:1706.10086) relaunches one
kernel across work divisions thousands of times, and the plan cache is
what makes each relaunch O(dispatch) instead of O(validation).

Cache observability: every resolution announces itself through
:func:`repro.runtime.instrument.notify_plan_cache`, and the module
keeps global hit/miss counters (:func:`plan_cache_info`).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from ..core.errors import SharedMemError
from ..core.properties import AccDevProps
from ..core.vec import Vec
from ..core.workdiv import AutoWorkDiv, WorkDivMembers, validate_work_div
from .instrument import notify_plan_cache
from .scheduler import chunk_indices, resolve_scheduler_override

__all__ = [
    "LaunchPlan",
    "get_plan",
    "build_plan",
    "clear_plan_cache",
    "plan_cache_info",
    "PLAN_CACHE_MAXSIZE",
    "GraphPlan",
    "get_graph_plan",
    "clear_graph_plan_cache",
    "graph_plan_cache_info",
    "GRAPH_PLAN_CACHE_MAXSIZE",
]

#: Upper bound on cached plans; least-recently-used entries evict first.
PLAN_CACHE_MAXSIZE = 512

#: Upper bound on cached whole-graph plans (each holds its nodes'
#: :class:`LaunchPlan` and grid contexts).
GRAPH_PLAN_CACHE_MAXSIZE = 64


def _thread_runners() -> Dict[str, Callable]:
    # Imported lazily: engine imports nothing from runtime, but keeping
    # the import out of module scope lets `repro.acc` load first.
    from ..acc.engine import (
        run_block_cooperative,
        run_block_preemptive,
        run_block_single_thread,
    )

    return {
        "single": run_block_single_thread,
        "preemptive": run_block_preemptive,
        "cooperative": run_block_cooperative,
    }


@dataclass
class LaunchPlan:
    """Everything about a launch that does not change between launches.

    Built once per ``(back-end, kernel, work-div, device, shared-mem)``
    configuration and reused; holds no per-launch state except counters.
    """

    acc_type: type
    kernel: Callable
    work_div: WorkDivMembers
    device: object
    #: Device properties already projected onto the work-div's dim.
    props: AccDevProps
    #: Thread-level executor (single / preemptive / cooperative).
    block_runner: Callable
    #: Block-level strategy key ("sequential" / "pooled").
    schedule: str
    shared_mem_bytes: int
    #: Materialised block index list (C order), shared by all launches.
    block_indices: Tuple[Vec, ...] = ()
    #: How many launches have executed through this plan.
    launches: int = 0
    #: Whether this plan instance was served from the cache at least once.
    served_from_cache: bool = False
    _args_src: Optional[tuple] = field(default=None, repr=False)
    _args_unwrapped: Optional[tuple] = field(default=None, repr=False)
    #: worker count -> chunked block_indices; see :meth:`chunks_for`.
    _chunks: Dict[int, list] = field(default_factory=dict, repr=False)
    #: worker count -> linear (start, stop) bounds per chunk.
    _chunk_bounds: Dict[int, Tuple[Tuple[int, int], ...]] = field(
        default_factory=dict, repr=False
    )
    #: argument signature -> compiled replay closure (or a cached
    #: fallback verdict); owned by :mod:`repro.compile.replay`.  Lives
    #: on the plan so the cache shares the plan's LRU lifetime and the
    #: trace happens once per (kernel, work-div, arg-shape), not per
    #: launch.
    _compiled: Dict = field(default_factory=dict, repr=False)

    def chunks_for(self, workers: int) -> list:
        """``chunk_indices(block_indices, workers)``, memoised.

        Chunking is pure geometry — same plan, same worker count, same
        chunks — so the pooled schedulers read it here instead of
        re-partitioning every warm launch.  (Benign race: two threads
        may compute the same value once each.)
        """
        chunks = self._chunks.get(workers)
        if chunks is None:
            chunks = chunk_indices(self.block_indices, workers)
            self._chunks[workers] = chunks
        return chunks

    def chunk_bounds_for(self, workers: int) -> Tuple[Tuple[int, int], ...]:
        """Linear ``(start, stop)`` index bounds of each chunk — what
        the process scheduler ships to workers instead of index lists
        (workers rebuild the C-order list themselves)."""
        bounds = self._chunk_bounds.get(workers)
        if bounds is None:
            pos = 0
            out = []
            for chunk in self.chunks_for(workers):
                out.append((pos, pos + len(chunk)))
                pos += len(chunk)
            bounds = tuple(out)
            self._chunk_bounds[workers] = bounds
        return bounds

    def unwrap_args(self, args: tuple) -> tuple:
        """Device-side argument tuple for ``args``.

        Memoised on the identity of the host-side tuple: re-enqueueing
        the same (frozen) :class:`~repro.core.kernel.KernelTask` reuses
        the unwrapped arguments and their residency checks.
        """
        if args is self._args_src:
            return self._args_unwrapped  # type: ignore[return-value]
        from ..acc.engine import unwrap_args

        unwrapped = unwrap_args(args, self.device)
        self._args_src = args
        self._args_unwrapped = unwrapped
        return unwrapped

    def describe(self) -> str:
        kname = getattr(self.kernel, "__name__", type(self.kernel).__name__)
        return (
            f"LaunchPlan({self.acc_type.__name__}, kernel={kname}, "
            f"{self.work_div}, dev={self.device!r}, "
            f"schedule={self.schedule}, launches={self.launches})"
        )


def build_plan(task, device) -> LaunchPlan:
    """Validate and assemble a fresh plan for ``task`` on ``device``.

    A task carrying an :class:`~repro.core.workdiv.AutoWorkDiv` is
    resolved here against the autotuning cache (tuned division when one
    is known for this kernel/device/extent, the back-end's heuristic
    otherwise) — plan-time resolution never measures.  The deferred
    division is hashable, so the plan cache distinguishes AUTO launches
    of different extents and each resolves exactly once.
    """
    from ..telemetry.spans import span

    with span("plan.build", cat="runtime"):
        return _build_plan(task, device)


def _build_plan(task, device) -> LaunchPlan:
    acc_type = task.acc_type
    wd = task.work_div
    tuned_sched = None
    if isinstance(wd, AutoWorkDiv):
        from ..tuning import resolve_work_div, tuned_schedule

        auto_extent = wd.extent
        wd = resolve_work_div(task, device)
        # A tuning run may have stored a winning block schedule next to
        # the winning division; AUTO launches pick it up here.
        tuned_sched = tuned_schedule(
            task.kernel, acc_type, device, auto_extent
        )
    props = acc_type.get_acc_dev_props(device)
    validate_work_div(wd, props)
    shared_dyn = getattr(task, "shared_mem_bytes", 0)
    if shared_dyn > props.shared_mem_size_bytes:
        raise SharedMemError(
            f"dynamic shared memory request of {shared_dyn} B exceeds the "
            f"device limit of {props.shared_mem_size_bytes} B"
        )
    runners = _thread_runners()
    thread_execute = getattr(acc_type, "thread_execute", "single")
    try:
        block_runner = runners[thread_execute]
    except KeyError:
        raise ValueError(
            f"{acc_type.__name__}.thread_execute={thread_execute!r} "
            f"unknown; known: {sorted(runners)}"
        ) from None
    schedule = getattr(acc_type, "block_schedule", "sequential")
    if schedule == "pooled":
        # Only pool-capable back-ends accept a different strategy:
        # sequential back-ends' block order is semantic (fibers'
        # determinism) and must survive any override.  Precedence:
        # REPRO_SCHEDULER > tuned schedule > back-end default.
        override = resolve_scheduler_override()
        if override is not None:
            schedule = override
        elif tuned_sched is not None:
            schedule = tuned_sched
    if schedule == "processes" and not getattr(
        acc_type, "supports_process_blocks", False
    ):
        # Multi-thread blocks (e.g. the simulated OMP4 target) cannot
        # barrier across processes; the thread pool is the closest
        # legal strategy.
        schedule = "pooled"
    # A one-block grid gains nothing from pool dispatch; plan it out.
    # (The compiled strategy replays the whole grid regardless of block
    # count, so it is exempt from the demotion.)
    if wd.block_count == 1 and schedule != "compiled":
        schedule = "sequential"
    from ..acc.engine import iter_indices

    return LaunchPlan(
        acc_type=acc_type,
        kernel=task.kernel,
        work_div=wd,
        device=device,
        props=props.for_dim(wd.dim),
        block_runner=block_runner,
        schedule=schedule,
        shared_mem_bytes=shared_dyn,
        block_indices=tuple(iter_indices(wd.grid_block_extent)),
    )


# ---------------------------------------------------------------------------
# Whole-graph plans
# ---------------------------------------------------------------------------


@dataclass
class GraphPlan:
    """Everything about one dataflow graph that survives re-submission.

    Built once per graph *structure* — the node identity tuple the graph
    layer derives from kernels, work divisions, buffer ids and edges —
    and cached LRU under that key, a :class:`GraphPlan` snapshots every
    node's resolved :class:`LaunchPlan`, its grid context (validated,
    unwrapped arguments included), its scheduler, the resolved
    dependency edges and the topological order.  A warm pipeline
    therefore re-dispatches with **one** cache hit instead of one plan
    resolution per node (ROADMAP item 3: a graph warm-launches as
    cheaply as one kernel).
    """

    key: tuple
    #: Node indices in one valid topological execution order.
    order: Tuple[int, ...]
    #: Per-node resolved dependency indices (explicit + inferred).
    deps: Tuple[Tuple[int, ...], ...]
    #: node index -> resolved LaunchPlan (kernel nodes only).
    node_plans: Dict[int, LaunchPlan] = field(default_factory=dict)
    #: node index -> cached (GridContext, scheduler) (kernel nodes only).
    node_grids: Dict[int, object] = field(default_factory=dict)
    #: node index -> zero-argument replay closure (the inline fast
    #: path: dispatch + accounting with plan, grid and scheduler bound).
    node_ops: Dict[int, object] = field(default_factory=dict)
    #: node index -> device uid the node executes on.
    device_uids: Tuple[int, ...] = ()
    #: How many times this plan has been re-dispatched warm.
    replays: int = 0
    #: Whether this graph plan instance was served from the cache.
    served_from_cache: bool = False

    @property
    def node_count(self) -> int:
        return len(self.order)

    def describe(self) -> str:
        return (
            f"GraphPlan({self.node_count} nodes, "
            f"{sum(len(d) for d in self.deps)} edges, "
            f"replays={self.replays})"
        )


_graph_cache: "OrderedDict[tuple, GraphPlan]" = OrderedDict()
_graph_lock = threading.Lock()
_graph_hits = 0
_graph_misses = 0


def get_graph_plan(key: tuple, build: Callable[[], GraphPlan]) -> GraphPlan:
    """The cached-or-built :class:`GraphPlan` for ``key``.

    ``build`` runs outside the cache lock on a miss (it resolves one
    :class:`LaunchPlan` per kernel node, which may itself take the plan
    cache lock).  Announced through ``on_plan_cache`` observers like
    per-launch plans, so the telemetry hit-rate counters cover graphs.
    """
    global _graph_hits, _graph_misses
    with _graph_lock:
        plan = _graph_cache.get(key)
        if plan is not None:
            _graph_cache.move_to_end(key)
            _graph_hits += 1
            plan.served_from_cache = True
    if plan is not None:
        notify_plan_cache(plan, True)
        return plan
    plan = build()
    plan.key = key
    with _graph_lock:
        _graph_misses += 1
        _graph_cache[key] = plan
        _graph_cache.move_to_end(key)
        while len(_graph_cache) > GRAPH_PLAN_CACHE_MAXSIZE:
            _graph_cache.popitem(last=False)
    notify_plan_cache(plan, False)
    return plan


def clear_graph_plan_cache() -> None:
    """Drop every cached graph plan and zero its hit/miss counters."""
    global _graph_hits, _graph_misses
    with _graph_lock:
        _graph_cache.clear()
        _graph_hits = 0
        _graph_misses = 0


def graph_plan_cache_info() -> Dict[str, int]:
    """``{"hits": ..., "misses": ..., "size": ..., "maxsize": ...}``."""
    with _graph_lock:
        return {
            "hits": _graph_hits,
            "misses": _graph_misses,
            "size": len(_graph_cache),
            "maxsize": GRAPH_PLAN_CACHE_MAXSIZE,
        }


# ---------------------------------------------------------------------------
# LRU plan cache
# ---------------------------------------------------------------------------

_cache: "OrderedDict[tuple, LaunchPlan]" = OrderedDict()
_cache_lock = threading.Lock()
_hits = 0
_misses = 0


def _key(task, device) -> tuple:
    # Kernel identity, not equality: the plan holds a strong reference
    # to the kernel, so the id stays valid while the entry lives.
    wd = task.work_div
    if isinstance(wd, AutoWorkDiv):
        # An AutoWorkDiv hashes by extent only, but what it resolves to
        # depends on the tuning cache's contents; folding the cache
        # generation into the key invalidates plans resolved before a
        # tuning run stored (or dropped) a result.
        from ..tuning.cache import tuning_generation

        wd = (wd, tuning_generation())
    return (
        task.acc_type,
        id(task.kernel),
        wd,
        device.uid,
        getattr(task, "shared_mem_bytes", 0),
        # The env override changes what _build_plan resolves, so it is
        # part of plan identity — flipping REPRO_SCHEDULER mid-process
        # (the tuner's schedule sweep does) must miss, not poison.
        resolve_scheduler_override(),
    )


def get_plan(task, device) -> LaunchPlan:
    """The cached-or-built plan for ``task`` on ``device``.

    Announces the resolution to observers (``on_plan_cache``) and keeps
    the global hit/miss counters current.  Validation errors raise here
    — a plan that would fail at dispatch is never cached.
    """
    global _hits, _misses
    key = _key(task, device)
    with _cache_lock:
        plan = _cache.get(key)
        if plan is not None:
            _cache.move_to_end(key)
            _hits += 1
            plan.served_from_cache = True
    if plan is not None:
        notify_plan_cache(plan, True)
        return plan

    plan = build_plan(task, device)
    with _cache_lock:
        _misses += 1
        _cache[key] = plan
        _cache.move_to_end(key)
        while len(_cache) > PLAN_CACHE_MAXSIZE:
            _cache.popitem(last=False)
    notify_plan_cache(plan, False)
    return plan


def clear_plan_cache() -> None:
    """Drop every cached plan and zero the hit/miss counters.

    Graph plans embed per-node launch plans, so they are dropped too —
    a stale graph must never outlive the plans it snapshot."""
    global _hits, _misses
    with _cache_lock:
        _cache.clear()
        _hits = 0
        _misses = 0
    clear_graph_plan_cache()


def plan_cache_info() -> Dict[str, int]:
    """``{"hits": ..., "misses": ..., "size": ..., "maxsize": ...}``."""
    with _cache_lock:
        return {
            "hits": _hits,
            "misses": _misses,
            "size": len(_cache),
            "maxsize": PLAN_CACHE_MAXSIZE,
        }
