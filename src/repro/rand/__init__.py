"""Counter-based parallel random number generation."""

from .philox import PhiloxRng, philox4x32

__all__ = ["PhiloxRng", "philox4x32"]
