"""Counter-based parallel random numbers (Philox-4x32-10).

HASEonGPU — the paper's real-world application — is a massively
parallel Monte-Carlo integrator; every GPU thread needs its own
statistically independent random stream, reproducible regardless of the
back-end the kernel is mapped to.  Counter-based generators (Salmon et
al., SC'11) are the standard answer and what alpaka ecosystems use;
this module implements Philox-4x32 with 10 rounds in pure numpy.

Independence across threads comes from putting the thread id into the
key; reproducibility across back-ends comes from the generator being a
pure function of (seed, thread id, counter) — no shared state, no
ordering sensitivity.
"""

from __future__ import annotations

import numpy as np

__all__ = ["philox4x32", "PhiloxRng"]

_PHILOX_M0 = np.uint32(0xD2511F53)
_PHILOX_M1 = np.uint32(0xCD9E8D57)
_WEYL_0 = np.uint32(0x9E3779B9)  # golden ratio
_WEYL_1 = np.uint32(0xBB67AE85)  # sqrt(3) - 1

_U32 = np.uint32
_U64 = np.uint64
_MASK32 = np.uint64(0xFFFFFFFF)


def _mulhilo(a: np.ndarray, b: np.uint32):
    """(high, low) 32-bit halves of the 64-bit product a*b."""
    prod = a.astype(_U64) * _U64(b)
    return (prod >> np.uint64(32)).astype(_U32), (prod & _MASK32).astype(_U32)


def philox4x32(counter: np.ndarray, key: np.ndarray, rounds: int = 10) -> np.ndarray:
    """The Philox-4x32 bijection.

    Parameters
    ----------
    counter:
        uint32 array of shape (n, 4) — the block counters.
    key:
        uint32 array of shape (n, 2) or (2,) — per-stream keys.
    rounds:
        Number of S-P rounds; 10 is the crush-resistant standard.

    Returns
    -------
    uint32 array of shape (n, 4): the random blocks.
    """
    ctr = np.array(counter, dtype=_U32, copy=True)
    if ctr.ndim == 1:
        ctr = ctr[None, :]
    if ctr.shape[-1] != 4:
        raise ValueError(f"counter must have 4 lanes, got shape {ctr.shape}")
    k = np.array(key, dtype=_U32, copy=True)
    if k.ndim == 1:
        k = np.broadcast_to(k, (ctr.shape[0], 2)).copy()
    if k.shape[-1] != 2:
        raise ValueError(f"key must have 2 lanes, got shape {k.shape}")

    x0, x1, x2, x3 = ctr[:, 0], ctr[:, 1], ctr[:, 2], ctr[:, 3]
    k0, k1 = k[:, 0].copy(), k[:, 1].copy()
    with np.errstate(over="ignore"):
        for _ in range(rounds):
            hi0, lo0 = _mulhilo(x0, _PHILOX_M0)
            hi1, lo1 = _mulhilo(x2, _PHILOX_M1)
            x0, x1, x2, x3 = (
                hi1 ^ x1 ^ k0,
                lo1,
                hi0 ^ x3 ^ k1,
                lo0,
            )
            k0 = k0 + _WEYL_0
            k1 = k1 + _WEYL_1
    return np.stack([x0, x1, x2, x3], axis=-1)


class PhiloxRng:
    """A per-thread random stream.

    Parameters
    ----------
    seed:
        Application-level seed (goes into key lane 0).
    subsequence:
        Stream id — typically the global thread index (key lane 1).

    The generator is stateless modulo a monotone counter; two instances
    with equal (seed, subsequence) produce identical sequences on every
    back-end.
    """

    def __init__(self, seed: int, subsequence: int = 0):
        self._key = np.array(
            [seed & 0xFFFFFFFF, subsequence & 0xFFFFFFFF], dtype=_U32
        )
        # 128-bit counter split into four lanes; lane 3 carries the
        # high bits of the subsequence so >2^32 streams stay disjoint.
        self._hi = _U32((subsequence >> 32) & 0xFFFFFFFF)
        self._ctr = 0

    def _blocks(self, nblocks: int) -> np.ndarray:
        idx = np.arange(self._ctr, self._ctr + nblocks, dtype=np.uint64)
        self._ctr += nblocks
        counters = np.empty((nblocks, 4), dtype=_U32)
        counters[:, 0] = (idx & _MASK32).astype(_U32)
        counters[:, 1] = (idx >> np.uint64(32)).astype(_U32)
        counters[:, 2] = 0
        counters[:, 3] = self._hi
        return philox4x32(counters, self._key)

    def uniform(self, n: int = 1) -> np.ndarray:
        """``n`` doubles uniform on [0, 1) with 53-bit mantissas."""
        if n < 0:
            raise ValueError("n must be non-negative")
        nblocks = -(-n // 2) if n else 0
        if nblocks == 0:
            return np.empty(0, dtype=np.float64)
        blk = self._blocks(nblocks)
        hi = blk[:, [0, 2]].astype(np.uint64)
        lo = blk[:, [1, 3]].astype(np.uint64)
        mant = ((hi << np.uint64(32)) | lo) >> np.uint64(11)  # 53 bits
        vals = mant.astype(np.float64) * (1.0 / (1 << 53))
        return vals.reshape(-1)[:n]

    def uniform_scalar(self) -> float:
        return float(self.uniform(1)[0])

    def normal(self, n: int = 1) -> np.ndarray:
        """``n`` standard normals via Box-Muller."""
        m = -(-n // 2) * 2
        u = self.uniform(m).reshape(-1, 2)
        # Guard the log against an exact zero.
        u1 = np.maximum(u[:, 0], 1e-300)
        r = np.sqrt(-2.0 * np.log(u1))
        theta = 2.0 * np.pi * u[:, 1]
        out = np.empty(m, dtype=np.float64)
        out[0::2] = r * np.cos(theta)
        out[1::2] = r * np.sin(theta)
        return out[:n]

    def integers(self, low: int, high: int, n: int = 1) -> np.ndarray:
        """``n`` ints uniform on [low, high) (modulo method; bias is
        negligible for the span sizes the apps use)."""
        if high <= low:
            raise ValueError("need high > low")
        span = high - low
        nblocks = -(-n // 4)
        blk = self._blocks(max(nblocks, 1))
        flat = blk.reshape(-1)[:n].astype(np.uint64)
        return (low + (flat % np.uint64(span))).astype(np.int64)
