"""Regeneration of every evaluation table and figure of the paper.

Each ``figN_*``/``tableN_*`` function computes the data behind one
figure or table of the paper's Sec. 4 and returns it as plain
dictionaries/lists; the scripts in ``benchmarks/`` render and persist
them, and ``tests/bench`` asserts the *shapes* the paper reports
(acceptance criteria in DESIGN.md).

Modeled quantities use the Table 3 machine models through
:mod:`repro.perfmodel`; measured quantities run real code on the host.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from ..acc import all_accelerators
from ..comparison.frameworks import table1_rows  # re-export convenience
from ..core.workdiv import MappingStrategy, WorkDivMembers
from ..hardware import TABLE3_KEYS, machine, table3_rows
from ..kernels.axpy import AxpyKernel, axpy_cuda_native
from ..kernels.gemm import (
    GemmCudaStyleKernel,
    GemmOmpStyleKernel,
    GemmTilingKernel,
    gemm_workdiv_cuda,
    gemm_workdiv_omp,
    gemm_workdiv_tiling,
)
from ..perfmodel import predict_time
from ..trace import compare_streams, trace_alpaka_kernel, trace_cuda_kernel

__all__ = [
    "DEFAULT_SIZES",
    "table1_rows",
    "table2_rows",
    "table3_rows",
    "fig4_ptx_comparison",
    "fig5_zero_overhead",
    "fig5_measured_overhead_host",
    "fig6_swapped_backends",
    "fig8_single_source_tiling",
    "fig9_performance_portability",
    "fig10_hase",
]

#: Matrix extents swept by the DGEMM figures (the paper sweeps up to
#: 7168; the model is analytic so the full range costs nothing).
DEFAULT_SIZES: Tuple[int, ...] = (256, 512, 1024, 2048, 4096, 5120, 7168)

#: The GPU and CPU machines the paper's Figs. 5/6/8 measure on.
GPU_MACHINE = "nvidia-k80"
CPU_MACHINE = "intel-xeon-e5-2630v3"


# ---------------------------------------------------------------------------
# Table 2 — predefined accelerator mappings
# ---------------------------------------------------------------------------


def table2_rows(n: int = 4096, b: int = 16, v: int = 4) -> List[dict]:
    """The predefined work-division mappings, symbolically and for a
    concrete (N, B, V) example computed through :func:`divide_work`."""
    from ..core.workdiv import divide_work

    rows = []
    arch = {
        "AccGpuCudaSim": "GPU",
        "AccCpuOmp2Blocks": "CPU",
        "AccCpuOmp2Threads": "CPU",
        "AccCpuThreads": "CPU",
        "AccCpuSerial": "CPU",
        "AccCpuFibers": "CPU",
    }
    for acc in all_accelerators():
        props = acc.get_acc_dev_props(acc.platform().get_dev_by_idx(0))
        if acc.mapping_strategy is MappingStrategy.BLOCK_LEVEL:
            grid, block, thread, elem = "1", "N/V", "1", "V"
            wd = divide_work(n, props, acc.mapping_strategy, thread_elems=v)
        else:
            grid, block, thread, elem = "1", "N/(B*V)", "B", "V"
            wd = divide_work(
                n, props, acc.mapping_strategy,
                block_threads=min(b, props.block_thread_count_max),
                thread_elems=v,
            )
        rows.append(
            {
                "Arch": arch.get(acc.name, "CPU"),
                "Acc": acc.name,
                "Grid": grid,
                "Block": block,
                "Thread": thread,
                "Element": elem,
                f"example N={n}": (
                    f"{wd.grid_block_extent[0]} blocks x "
                    f"{wd.block_thread_extent[0]} threads x "
                    f"{wd.thread_elem_extent[0]} elems"
                ),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Fig. 4 — PTX comparison
# ---------------------------------------------------------------------------


def fig4_ptx_comparison() -> dict:
    """Trace the alpaka and native CUDA DAXPY kernels and compare.

    Returns the two instruction streams and the normalised comparison;
    the paper's finding is ``identical_up_to_cache_modifiers`` with
    exactly one non-coherent-load note.
    """
    specs = [("int", "n"), ("float", "alpha"), ("array", "x"), ("array", "y")]
    native_specs = [
        ("int", "n"),
        ("float", "alpha"),
        ("const_array", "x"),
        ("array", "y"),
    ]
    alpaka_ir = trace_alpaka_kernel(AxpyKernel(), specs, name="alpaka_daxpy")
    native_ir = trace_cuda_kernel(
        axpy_cuda_native, native_specs, name="cuda_daxpy"
    )
    result = compare_streams(alpaka_ir, native_ir)
    return {
        "alpaka_ptx": alpaka_ir.to_text(),
        "native_ptx": native_ir.to_text(),
        "comparison": result,
        "alpaka_instructions": len(alpaka_ir),
        "native_instructions": len(native_ir),
    }


# ---------------------------------------------------------------------------
# Fig. 5 — zero-overhead abstraction
# ---------------------------------------------------------------------------


def fig5_zero_overhead(
    sizes: Sequence[int] = DEFAULT_SIZES,
) -> Dict[str, Dict[int, float]]:
    """Speedup of alpaka kernels relative to native, same back-end.

    Two curves as in the paper: the CUDA-style kernel on the (modeled)
    K80, and the OpenMP-style kernel on the (modeled) E5-2630v3.
    Values near 1.0 (>= 0.94 for CUDA, ~1.0 for OpenMP) reproduce the
    zero-overhead claim.
    """
    gpu = machine(GPU_MACHINE)
    cpu = machine(CPU_MACHINE)
    curves: Dict[str, Dict[int, float]] = {
        "Alpaka(CUDA) native-style kernel on K80": {},
        "Alpaka(OMP2) native-style kernel on E5-2630v3": {},
    }
    for n in sizes:
        wd = gemm_workdiv_cuda(n, 16)
        t_native = predict_time(
            gpu, "gpu", wd,
            GemmCudaStyleKernel(native=True).characteristics(wd, n), "both",
        ).seconds
        t_alpaka = predict_time(
            gpu, "gpu", wd,
            GemmCudaStyleKernel().characteristics(wd, n), "both",
        ).seconds
        curves["Alpaka(CUDA) native-style kernel on K80"][n] = t_native / t_alpaka

        wo = gemm_workdiv_omp(n, 64)
        t_native = predict_time(
            cpu, "cpu", wo,
            GemmOmpStyleKernel(native=True).characteristics(wo, n), "blocks",
        ).seconds
        t_alpaka = predict_time(
            cpu, "cpu", wo,
            GemmOmpStyleKernel().characteristics(wo, n), "blocks",
        ).seconds
        curves["Alpaka(OMP2) native-style kernel on E5-2630v3"][n] = (
            t_native / t_alpaka
        )
    return curves


def fig5_measured_overhead_host(n: int = 512, rows_per_chunk: int = 64) -> float:
    """*Measured* abstraction overhead on the real host.

    Runs the same row-chunked DGEMM once as a direct function and once
    through the full library stack (buffers, queue, work division,
    OpenMP-block back-end) and returns the wall-clock speedup of native
    over alpaka.  This is the genuinely measured half of Fig. 5 — the
    abstraction machinery of *this* library, measured like the paper
    measured alpaka's.
    """
    from .. import AccCpuOmp2Blocks, QueueBlocking, get_dev_by_idx, mem
    from ..core.kernel import create_task_kernel
    from ..kernels.gemm import dgemm_rows_host
    from .harness import measure_wall

    rng = np.random.default_rng(7)
    A = rng.random((n, n))
    B = rng.random((n, n))
    C = rng.random((n, n))

    def native():
        dgemm_rows_host(1.0, A, B, 0.0, C, rows_per_chunk)

    dev = get_dev_by_idx(AccCpuOmp2Blocks, 0)
    q = QueueBlocking(dev)
    Ab = mem.alloc(dev, (n, n))
    Bb = mem.alloc(dev, (n, n))
    Cb = mem.alloc(dev, (n, n))
    mem.copy(q, Ab, A)
    mem.copy(q, Bb, B)
    mem.copy(q, Cb, C)
    wd = gemm_workdiv_omp(n, rows_per_chunk)
    kernel = GemmOmpStyleKernel()

    def alpaka():
        q.enqueue(create_task_kernel(AccCpuOmp2Blocks, wd, kernel, n, 1.0, Ab, Bb, 0.0, Cb))

    t_native = measure_wall(native)
    t_alpaka = measure_wall(alpaka)
    return t_native / t_alpaka


# ---------------------------------------------------------------------------
# Fig. 6 — swapped back-ends
# ---------------------------------------------------------------------------


def fig6_swapped_backends(
    sizes: Sequence[int] = DEFAULT_SIZES,
) -> Dict[str, Dict[int, float]]:
    """Speedup of naively ported kernels relative to the native kernel
    of the target architecture.  The paper's point: both curves sit far
    below 1 (its Fig. 6 y-axis tops out at 0.2)."""
    gpu = machine(GPU_MACHINE)
    cpu = machine(CPU_MACHINE)
    curves: Dict[str, Dict[int, float]] = {
        "Alpaka(OMP2) CUDA-style kernel on E5-2630v3": {},
        "Alpaka(CUDA) OMP-style kernel on K80": {},
    }
    for n in sizes:
        # CUDA-style kernel forced onto the CPU thread back-end.
        wd_c = gemm_workdiv_cuda(n, 8)
        t_swapped = predict_time(
            cpu, "cpu", wd_c,
            GemmCudaStyleKernel().characteristics(wd_c, n), "threads",
        ).seconds
        wo = gemm_workdiv_omp(n, 64)
        t_native_cpu = predict_time(
            cpu, "cpu", wo,
            GemmOmpStyleKernel(native=True).characteristics(wo, n), "blocks",
        ).seconds
        curves["Alpaka(OMP2) CUDA-style kernel on E5-2630v3"][n] = (
            t_native_cpu / t_swapped
        )

        # OMP-style kernel forced onto the CUDA back-end.
        wo_g = gemm_workdiv_omp(n, 16)
        t_swapped = predict_time(
            gpu, "gpu", wo_g,
            GemmOmpStyleKernel().characteristics(wo_g, n), "both",
        ).seconds
        wd_g = gemm_workdiv_cuda(n, 16)
        t_native_gpu = predict_time(
            gpu, "gpu", wd_g,
            GemmCudaStyleKernel(native=True).characteristics(wd_g, n), "both",
        ).seconds
        curves["Alpaka(CUDA) OMP-style kernel on K80"][n] = (
            t_native_gpu / t_swapped
        )
    return curves


# ---------------------------------------------------------------------------
# Fig. 8 — single-source tiling kernel
# ---------------------------------------------------------------------------


def fig8_single_source_tiling(
    sizes: Sequence[int] = DEFAULT_SIZES,
) -> Dict[str, Dict[int, float]]:
    """Speedup of the single-source tiling kernel relative to the native
    implementation on each architecture, for the element counts the
    paper sweeps (1 and 4 elements on the GPU; 256 and 16k on the CPU).
    """
    gpu = machine(GPU_MACHINE)
    cpu = machine(CPU_MACHINE)
    configs = [
        ("Alpaka(CUDA) tiling 1 element on K80", gpu, "gpu", 16, 1, "both"),
        ("Alpaka(CUDA) tiling 4 elements on K80", gpu, "gpu", 16, 2, "both"),
        ("Alpaka(OMP2) tiling 256 elements on E5-2630v3", cpu, "cpu", 1, 16, "blocks"),
        ("Alpaka(OMP2) tiling 16k elements on E5-2630v3", cpu, "cpu", 1, 128, "blocks"),
    ]
    curves: Dict[str, Dict[int, float]] = {name: {} for name, *_ in configs}
    for n in sizes:
        wd_g = gemm_workdiv_cuda(n, 16)
        t_native_gpu = predict_time(
            gpu, "gpu", wd_g,
            GemmCudaStyleKernel(native=True).characteristics(wd_g, n), "both",
        ).seconds
        wo = gemm_workdiv_omp(n, 64)
        t_native_cpu = predict_time(
            cpu, "cpu", wo,
            GemmOmpStyleKernel(native=True).characteristics(wo, n), "blocks",
        ).seconds
        for name, spec, kind, bt, v, scope in configs:
            wd = gemm_workdiv_tiling(n, bt, v)
            t = predict_time(
                spec, kind, wd,
                GemmTilingKernel().characteristics(wd, n), scope,
            ).seconds
            baseline = t_native_gpu if kind == "gpu" else t_native_cpu
            curves[name][n] = baseline / t
    return curves


# ---------------------------------------------------------------------------
# Fig. 9 — performance portability
# ---------------------------------------------------------------------------

#: Tuned tiling configuration per machine (paper: element count chosen
#: per architecture; GPUs small, CPUs large).
FIG9_CONFIG = {
    "nvidia-k80": ("gpu", 16, 2, "both"),
    "nvidia-k20": ("gpu", 16, 2, "both"),
    "intel-xeon-e5-2609": ("cpu", 1, 128, "blocks"),
    "intel-xeon-e5-2630v3": ("cpu", 1, 128, "blocks"),
    "amd-opteron-6276": ("cpu", 1, 128, "blocks"),
}


def fig9_performance_portability(
    sizes: Sequence[int] = DEFAULT_SIZES,
) -> Dict[str, Dict[int, float]]:
    """Fraction of theoretical peak reached by the single tiling kernel
    on each Table 3 machine (paper: all curves around 20 %)."""
    curves: Dict[str, Dict[int, float]] = {}
    for key in TABLE3_KEYS:
        kind, bt, v, scope = FIG9_CONFIG[key]
        spec = machine(key)
        label = f"tiling kernel on {spec.architecture}"
        curves[label] = {}
        for n in sizes:
            wd = gemm_workdiv_tiling(n, bt, v)
            p = predict_time(
                spec, kind, wd, GemmTilingKernel().characteristics(wd, n), scope
            )
            curves[label][n] = p.fraction_of_peak
    return curves


# ---------------------------------------------------------------------------
# Fig. 10 — HASEonGPU
# ---------------------------------------------------------------------------


def fig10_hase(
    n_points: int = 256,
    samples_per_point: int = 100_000,
    steps: int = 32,
) -> List[dict]:
    """The HASE port's performance on each platform.

    Rows mirror the paper's bars: hardware peak, modeled application
    GFLOPS, and speedup relative to the native CUDA version on the K20
    cluster (the paper's baseline = 1.0).  The paper's findings encoded
    here: Alpaka(CUDA) on K20 shows *no overhead* (identical time), and
    the CPU platforms land at speedups matching their peak ratios.
    """
    from ..apps.hase import (
        AseFluxKernel,
        GainMedium,
        PrismMesh,
        gaussian_pump_profile,
    )

    mesh = PrismMesh(nx=16, ny=16, nz=4)
    medium = GainMedium(mesh, gaussian_pump_profile(mesh, 4.0e20))
    kernel = AseFluxKernel(medium, steps=steps)

    platforms = [
        ("CUDA native on K20", "nvidia-k20", "gpu", 64, "both", True),
        ("Alpaka(CUDA) on K20", "nvidia-k20", "gpu", 64, "both", False),
        ("Alpaka(OMP2) on Opteron 6276", "amd-opteron-6276", "cpu", 1, "blocks", False),
        ("Alpaka(OMP2) on E5-2630v3", "intel-xeon-e5-2630v3", "cpu", 1, "blocks", False),
    ]
    rows = []
    t_baseline = None
    for label, key, kind, tpb, scope, native in platforms:
        spec = machine(key)
        elems = -(-samples_per_point // tpb)
        wd = WorkDivMembers.make((n_points,), (tpb,), (elems,))
        chars = kernel.characteristics(wd, 0, samples_per_point, None, None, None, None)
        # The paper measured zero overhead for HASE's CUDA port; its
        # kernels are dominated by inner math, not index calculation.
        p = predict_time(spec, kind, wd, chars, scope)
        if t_baseline is None:
            t_baseline = p.seconds
        rows.append(
            {
                "Configuration": label,
                "Hardware peak [GFLOPS]": round(
                    spec.device_peak_gflops_dp if kind == "gpu" else spec.peak_gflops_dp
                ),
                "Application [GFLOPS]": round(p.gflops, 1),
                "Speedup vs native K20": round(t_baseline / p.seconds, 3),
            }
        )
    return rows
