"""Benchmark harness utilities.

Shared plumbing for the ``benchmarks/`` suite: wall-clock measurement
for the host-measured comparisons, simulated-clock capture for the
modeled comparisons, runtime instrumentation capture (via the real
:mod:`repro.runtime.instrument` hooks, not callable wrapping), and
output capture so each bench writes the table it regenerates next to
printing it.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List

from ..acc.timing import measure
from ..telemetry.spans import sim_interval, span

__all__ = [
    "measure_wall",
    "sim_time_of",
    "launch_stats",
    "write_report",
    "write_bench_json",
    "host_fingerprint",
    "REPORT_DIR_ENV",
]

#: Environment variable overriding where bench reports are written.
REPORT_DIR_ENV = "REPRO_BENCH_REPORT_DIR"


def measure_wall(fn: Callable[[], None], repeat: int = 3, warmup: int = 1) -> float:
    """Best-of-``repeat`` wall time of ``fn`` after ``warmup`` calls.

    Thin alias of the library's shared timing loop
    (:func:`repro.acc.timing.measure`) kept under the bench-facing name;
    the autotuner uses the same loop, so benchmarks and tuning measure
    identically.  The whole warmup+repeat run is one ``bench.measure``
    telemetry span.
    """
    with span("bench.measure", cat="bench"):
        return measure(fn, warmup=warmup, repeat=repeat)


@contextmanager
def sim_time_of(device) -> Iterator[List[float]]:
    """Capture the simulated seconds a block of launches accrues::

        with sim_time_of(dev) as t:
            enqueue(...)
        elapsed = t[0]

    Delegates to :func:`repro.telemetry.spans.sim_interval` — the one
    simulated-clock snapshot shared with the autotuner's measurement
    loop (exact femtosecond interval, immune to clock magnitude).
    """
    with sim_interval(device) as out:
        yield out


@contextmanager
def launch_stats() -> Iterator["CountingObserver"]:
    """Count runtime events (launches, blocks, copies, plan-cache hits)
    over a ``with`` block through the execution-observer hooks::

        with launch_stats() as stats:
            enqueue(queue, task)
        print(stats.plan_cache_hit_rate)
    """
    from ..runtime import CountingObserver, observe

    with observe(CountingObserver()) as obs:
        yield obs


def _report_dir() -> str:
    base = os.environ.get(REPORT_DIR_ENV)
    if base is None:
        base = os.path.join(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))))),
            "benchmarks", "out")
    os.makedirs(base, exist_ok=True)
    return base


def write_report(name: str, text: str) -> str:
    """Write a bench's regenerated table under ``benchmarks/out/`` (or
    ``$REPRO_BENCH_REPORT_DIR``) and return the path."""
    path = os.path.join(_report_dir(), name)
    with open(path, "w") as fh:
        fh.write(text if text.endswith("\n") else text + "\n")
    return path


def host_fingerprint() -> Dict[str, object]:
    """Where a bench number came from: enough machine identity to
    refuse apples-to-oranges comparisons between runs."""
    import platform
    import socket

    return {
        "hostname": socket.gethostname(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
    }


def write_bench_json(name: str, metrics: Dict[str, object]) -> str:
    """Write a bench's headline numbers as ``BENCH_<name>.json`` next
    to its text report, and return the path.

    ``metrics`` maps metric name to either a bare value or a
    ``(value, unit)`` pair::

        write_bench_json("launch_overhead", {
            "serial_warm_launch": (4.2e-6, "s"),
            "cache_hit_rate": 0.99,
        })

    The payload is machine-readable history: one record per metric with
    name/value/unit, stamped with the UTC timestamp and a host
    fingerprint so trend tooling can group comparable runs.  CI uploads
    these files as artifacts.
    """
    import datetime

    entries = []
    for metric in sorted(metrics):
        value = metrics[metric]
        unit = ""
        if isinstance(value, tuple):
            value, unit = value
        entries.append({"name": metric, "value": value, "unit": unit})
    payload = {
        "bench": name,
        "timestamp": datetime.datetime.now(
            datetime.timezone.utc
        ).isoformat(),
        "host": host_fingerprint(),
        "metrics": entries,
    }
    path = os.path.join(_report_dir(), f"BENCH_{name}.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return path
