"""Benchmark harness utilities.

Shared plumbing for the ``benchmarks/`` suite: wall-clock measurement
for the host-measured comparisons, simulated-clock capture for the
modeled comparisons, runtime instrumentation capture (via the real
:mod:`repro.runtime.instrument` hooks, not callable wrapping), and
output capture so each bench writes the table it regenerates next to
printing it.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable, Iterator, List

from ..acc.timing import measure
from ..telemetry.spans import sim_interval, span

__all__ = [
    "measure_wall",
    "sim_time_of",
    "launch_stats",
    "write_report",
    "REPORT_DIR_ENV",
]

#: Environment variable overriding where bench reports are written.
REPORT_DIR_ENV = "REPRO_BENCH_REPORT_DIR"


def measure_wall(fn: Callable[[], None], repeat: int = 3, warmup: int = 1) -> float:
    """Best-of-``repeat`` wall time of ``fn`` after ``warmup`` calls.

    Thin alias of the library's shared timing loop
    (:func:`repro.acc.timing.measure`) kept under the bench-facing name;
    the autotuner uses the same loop, so benchmarks and tuning measure
    identically.  The whole warmup+repeat run is one ``bench.measure``
    telemetry span.
    """
    with span("bench.measure", cat="bench"):
        return measure(fn, warmup=warmup, repeat=repeat)


@contextmanager
def sim_time_of(device) -> Iterator[List[float]]:
    """Capture the simulated seconds a block of launches accrues::

        with sim_time_of(dev) as t:
            enqueue(...)
        elapsed = t[0]

    Delegates to :func:`repro.telemetry.spans.sim_interval` — the one
    simulated-clock snapshot shared with the autotuner's measurement
    loop (exact femtosecond interval, immune to clock magnitude).
    """
    with sim_interval(device) as out:
        yield out


@contextmanager
def launch_stats() -> Iterator["CountingObserver"]:
    """Count runtime events (launches, blocks, copies, plan-cache hits)
    over a ``with`` block through the execution-observer hooks::

        with launch_stats() as stats:
            enqueue(queue, task)
        print(stats.plan_cache_hit_rate)
    """
    from ..runtime import CountingObserver, observe

    with observe(CountingObserver()) as obs:
        yield obs


def write_report(name: str, text: str) -> str:
    """Write a bench's regenerated table under ``benchmarks/out/`` (or
    ``$REPRO_BENCH_REPORT_DIR``) and return the path."""
    base = os.environ.get(REPORT_DIR_ENV)
    if base is None:
        base = os.path.join(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))))),
            "benchmarks", "out")
    os.makedirs(base, exist_ok=True)
    path = os.path.join(base, name)
    with open(path, "w") as fh:
        fh.write(text if text.endswith("\n") else text + "\n")
    return path
