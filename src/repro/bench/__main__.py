"""Regenerate every paper table and figure from the command line::

    python -m repro.bench            # all reports to benchmarks/out/
    python -m repro.bench fig9 table1  # a selection

This is the pytest-free path for users who want the artefacts without
the benchmark harness; the assertions live in ``benchmarks/``.
"""

from __future__ import annotations

import sys

from ..comparison import render_series, render_table
from . import (
    DEFAULT_SIZES,
    fig4_ptx_comparison,
    fig5_measured_overhead_host,
    fig5_zero_overhead,
    fig6_swapped_backends,
    fig8_single_source_tiling,
    fig9_performance_portability,
    fig10_hase,
    table1_rows,
    table2_rows,
    table3_rows,
    write_report,
)


def _table1() -> str:
    return render_table(table1_rows(), "Table 1: framework properties")


def _table2() -> str:
    return render_table(table2_rows(), "Table 2: predefined accelerators")


def _table3() -> str:
    return render_table(table3_rows(), "Table 3: evaluation hardware")


def _fig4() -> str:
    d = fig4_ptx_comparison()
    return (
        f"Fig. 4 — {d['comparison'].summary()}\n\n=== Alpaka PTX ===\n"
        + d["alpaka_ptx"]
        + "\n\n=== Native CUDA PTX ===\n"
        + d["native_ptx"]
    )


def _fig5() -> str:
    modeled = render_series(
        fig5_zero_overhead(DEFAULT_SIZES), "n", title="Fig. 5 (modeled)"
    )
    measured = fig5_measured_overhead_host()
    return modeled + f"\n\nmeasured host native/alpaka speedup: {measured:.3f}"


def _fig6() -> str:
    return render_series(
        fig6_swapped_backends(DEFAULT_SIZES), "n", title="Fig. 6"
    )


def _fig8() -> str:
    return render_series(
        fig8_single_source_tiling(DEFAULT_SIZES), "n", title="Fig. 8"
    )


def _fig9() -> str:
    return render_series(
        fig9_performance_portability(DEFAULT_SIZES), "n", title="Fig. 9"
    )


def _fig10() -> str:
    return render_table(fig10_hase(), "Fig. 10: HASE port")


GENERATORS = {
    "table1": _table1,
    "table2": _table2,
    "table3": _table3,
    "fig4": _fig4,
    "fig5": _fig5,
    "fig6": _fig6,
    "fig8": _fig8,
    "fig9": _fig9,
    "fig10": _fig10,
}


def main(argv=None) -> int:
    names = (argv if argv is not None else sys.argv[1:]) or list(GENERATORS)
    unknown = [n for n in names if n not in GENERATORS]
    if unknown:
        print(f"unknown targets: {unknown}; known: {sorted(GENERATORS)}")
        return 2
    for name in names:
        text = GENERATORS[name]()
        path = write_report(f"{name}.txt", text)
        print(f"\n{text}\n-> {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
