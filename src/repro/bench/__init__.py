"""Benchmark harness: regeneration of every paper table and figure."""

from .figures import (
    DEFAULT_SIZES,
    fig4_ptx_comparison,
    fig5_measured_overhead_host,
    fig5_zero_overhead,
    fig6_swapped_backends,
    fig8_single_source_tiling,
    fig9_performance_portability,
    fig10_hase,
    table1_rows,
    table2_rows,
    table3_rows,
)
from .harness import (
    host_fingerprint,
    launch_stats,
    measure_wall,
    sim_time_of,
    write_bench_json,
    write_report,
)

__all__ = [
    "DEFAULT_SIZES",
    "fig4_ptx_comparison",
    "fig5_zero_overhead",
    "fig5_measured_overhead_host",
    "fig6_swapped_backends",
    "fig8_single_source_tiling",
    "fig9_performance_portability",
    "fig10_hase",
    "table1_rows",
    "table2_rows",
    "table3_rows",
    "measure_wall",
    "sim_time_of",
    "launch_stats",
    "write_report",
    "write_bench_json",
    "host_fingerprint",
]
