"""Shim for environments whose setuptools predates PEP 660 editable
installs (offline CI containers).  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
