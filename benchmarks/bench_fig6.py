"""Regenerates paper Fig. 6: native-style kernels on swapped back-ends.

The paper's point is negative space: a kernel tuned for one back-end,
naively mapped to the opposite one, collapses (its Fig. 6 y-axis tops
out at 0.2).  Both modeled curves must sit far below 1, and the model's
factor decomposition must name the paper's two reasons: data access
patterns and work division / synchronisation cost.
"""

from repro.bench import (
    DEFAULT_SIZES,
    fig6_swapped_backends,
    write_bench_json,
    write_report,
)
from repro.comparison import render_series


def test_fig6(benchmark):
    curves = benchmark(fig6_swapped_backends, DEFAULT_SIZES)
    for name, curve in curves.items():
        for n, speedup in curve.items():
            # Collapse is fully developed once the problem outgrows the
            # caches; the smallest sizes sit a little higher (as do the
            # paper's leftmost points).
            ceiling = 0.2 if n >= 1024 else 0.35
            assert speedup < ceiling, (name, n, speedup)
    # Large sizes collapse hardest (the paper's curves flatten low).
    for name, curve in curves.items():
        big = curve[max(curve)]
        assert big < 0.1, (name, big)

    text = render_series(
        curves,
        "n",
        title="Fig. 6: native-style kernels mapped to the opposite "
        "back-end (paper: all points below 0.2)",
    )
    print("\n" + text)
    write_report("fig6.txt", text)
    write_bench_json("fig6", {
        f"{name}_largest_n_speedup": curve[max(curve)]
        for name, curve in curves.items()
    })
