"""Extension: multi-GPU behaviour of the HASE integrator.

HASEonGPU is a *multi-GPU* code; the paper runs it on GPU clusters.
Two regimes, both asserted:

* **saturated** (modeled): a workload large enough to occupy a GK210
  splits across the K80's two dies at ~2x — the scaling the paper's
  clusters rely on;
* **under-occupied** (functional, toy size): sharding a 16-point
  problem cannot beat one die, because each die's occupancy halves —
  the model reproduces the GPU reality that small problems do not
  scale, and the physics stays identical either way.
"""

import numpy as np

from repro import AccGpuCudaSim
from repro.apps.hase import (
    AseFluxKernel,
    GainMedium,
    PrismMesh,
    compute_ase_flux,
    default_sample_points,
    gaussian_pump_profile,
)
from repro.bench import write_bench_json, write_report
from repro.comparison import render_table
from repro.core.workdiv import WorkDivMembers
from repro.hardware import machine
from repro.perfmodel import predict_time


def _medium():
    mesh = PrismMesh(nx=6, ny=6, nz=3)
    return GainMedium(mesh, gaussian_pump_profile(mesh, 4.0e20))


def test_multi_gpu_scaling_saturated_modeled(benchmark):
    """2048 sample points, 64 threads each: both dies fully occupied."""

    def run():
        medium = _medium()
        kernel = AseFluxKernel(medium)
        k80 = machine("nvidia-k80")
        samples = 100_000
        full = WorkDivMembers.make(2048, 64, -(-samples // 64))
        half = WorkDivMembers.make(1024, 64, -(-samples // 64))
        chars_full = kernel.characteristics(full, 0, samples, None, None, None, None)
        chars_half = kernel.characteristics(half, 0, samples, None, None, None, None)
        t_one_die = predict_time(k80, "gpu", full, chars_full, "both").seconds
        t_per_die = predict_time(k80, "gpu", half, chars_half, "both").seconds
        return t_one_die, t_per_die

    t_one, t_half = benchmark(run)
    speedup = t_one / t_half  # makespan of the 2-die run = max = t_half
    assert 1.85 <= speedup <= 2.1, speedup

    text = render_table(
        [
            {"Configuration": "1 die, 2048 points", "modeled s": f"{t_one:.4f}"},
            {"Configuration": "2 dies, 1024 points each", "modeled s": f"{t_half:.4f}"},
            {"Configuration": "scaling", "modeled s": f"{speedup:.2f}x"},
        ],
        "Extension: HASE multi-GPU scaling, saturated workload (modeled)",
    )
    print("\n" + text)
    write_report("multi_gpu_scaling.txt", text)
    write_bench_json("multi_gpu_scaling", {
        "one_die_modeled_seconds": (t_one, "s"),
        "two_die_modeled_seconds": (t_half, "s"),
        "scaling": speedup,
    })


def test_multi_gpu_underoccupied_functional(benchmark):
    """Equal fixed work on 1 vs 2 dies at toy size: no win (occupancy
    halves), identical physics within MC error."""

    def run_both():
        medium = _medium()
        pts = default_sample_points(medium, per_edge=4)
        kw = dict(
            target_rel_error=1e-9,  # force the full sample budget
            initial_samples=128,
            max_samples_per_point=512,
            seed=7,
        )
        single = compute_ase_flux(
            AccGpuCudaSim, medium, pts, use_all_devices=False, **kw
        )
        dual = compute_ase_flux(
            AccGpuCudaSim, medium, pts, use_all_devices=True, **kw
        )
        return single, dual

    single, dual = benchmark.pedantic(run_both, rounds=1, iterations=1)
    # Same spent work on both configurations.
    np.testing.assert_array_equal(single.samples, dual.samples)
    # Under-occupied: the 2-die makespan is NOT meaningfully better
    # (each die runs at half occupancy), and never worse than ~20%.
    ratio = single.wall_sim_time_s / dual.wall_sim_time_s
    assert 0.8 <= ratio <= 1.5, ratio
    # Physics identical within error bars.
    rel = np.abs(single.flux - dual.flux) / single.flux
    assert np.all(rel < 5 * (single.rel_error + dual.rel_error) + 1e-12)
