"""Paper Sec. 5 (future work): additional architectures.

The paper's conclusion names Intel Xeon Phi as the next target, and its
Fig. 3 already sketches two MIC mappings (one block per core, and one
block spanning cores for more shared memory).  This bench extends the
Fig. 9 portability experiment to a modeled Xeon Phi 5110P using exactly
those mappings — no kernel change, only the work division and the
machine model.
"""

from repro.acc import AccCpuOmp2Blocks, AccCpuOmp2Threads
from repro.bench import write_bench_json, write_report
from repro.comparison import render_table
from repro.hardware import machine
from repro.kernels import GemmTilingKernel, gemm_workdiv_tiling
from repro.perfmodel import predict_time


def _mic_rows(n=4096):
    phi = machine("intel-xeon-phi-5110p")
    rows = []
    # Fig. 3 mapping 1: one block per core, element level feeds the
    # 8-wide vector units (Table 2 "MIC OpenMP block" row).
    wd = gemm_workdiv_tiling(n, 1, 128)
    p = predict_time(
        phi, "cpu", wd, GemmTilingKernel().characteristics(wd, n), "blocks"
    )
    rows.append(
        {
            "Mapping": "block per core (OpenMP block)",
            "Work division": f"{wd.block_count} blocks x 1 thread x 16k elems",
            "GFLOPS": round(p.gflops, 1),
            "Fraction of peak": round(p.fraction_of_peak, 3),
        }
    )
    # Fig. 3 mapping 2: a block spans a core's 4 hardware threads
    # (Table 2 "MIC OpenMP thread" row).
    wd2 = gemm_workdiv_tiling(n, 2, 32)
    p2 = predict_time(
        phi, "cpu", wd2, GemmTilingKernel().characteristics(wd2, n), "threads"
    )
    rows.append(
        {
            "Mapping": "block spans hardware threads (OpenMP thread)",
            "Work division": f"{wd2.block_count} blocks x 4 threads x 1k elems",
            "GFLOPS": round(p2.gflops, 1),
            "Fraction of peak": round(p2.fraction_of_peak, 3),
        }
    )
    return rows


def test_future_work_xeon_phi_modeled(benchmark):
    rows = benchmark(_mic_rows)
    block_frac = rows[0]["Fraction of peak"]
    # The portability claim extends: the MIC lands in the same
    # ~20%-of-peak band as the five Table 3 machines.
    assert 0.1 <= block_frac <= 0.45, rows

    text = render_table(
        rows,
        "Future work (paper Sec. 5): single-source tiling DGEMM on a "
        "modeled Xeon Phi 5110P (1011 GFLOPS peak)",
    )
    print("\n" + text)
    write_report("future_work_mic.txt", text)
    write_bench_json("future_work_mic", {
        "block_mapping_gflops": (rows[0]["GFLOPS"], "GFLOPS"),
        "block_mapping_peak_fraction": rows[0]["Fraction of peak"],
        "thread_mapping_gflops": (rows[1]["GFLOPS"], "GFLOPS"),
        "thread_mapping_peak_fraction": rows[1]["Fraction of peak"],
    })


def test_future_work_xeon_phi_functional(benchmark):
    """The same kernel actually runs under both MIC mappings, and
    through the simulated OpenMP-4 target-offload back-end (both pieces
    of the paper's future-work sentence in one test)."""
    import numpy as np

    from repro import (
        AccOmp4TargetSim,
        QueueBlocking,
        create_task_kernel,
        get_dev_by_idx,
        mem,
    )
    from repro.kernels import dgemm_reference

    def run():
        n = 16
        rng = np.random.default_rng(0)
        A, B, C = rng.random((3, n, n))
        expected = dgemm_reference(1.0, A, B, 0.0, C)
        for acc, bt, v in (
            # Fig. 3 mapping 1/2 through the host back-ends...
            (AccCpuOmp2Blocks.for_machine("intel-xeon-phi-5110p"), 1, 8),
            (AccCpuOmp2Threads.for_machine("intel-xeon-phi-5110p"), 2, 4),
            # ...and through the offloading back-end proper (isolated
            # device data environment, teams x threads execution).
            (AccOmp4TargetSim, 2, 4),
        ):
            dev = get_dev_by_idx(acc, 0)
            q = QueueBlocking(dev)
            bufs = []
            for h in (A, B, C):
                b = mem.alloc(dev, (n, n))
                mem.copy(q, b, h)
                bufs.append(b)
            q.enqueue(
                create_task_kernel(
                    acc, gemm_workdiv_tiling(n, bt, v), GemmTilingKernel(),
                    n, 1.0, bufs[0], bufs[1], 0.0, bufs[2],
                )
            )
            out = np.empty((n, n))
            mem.copy(q, out, bufs[2])
            assert np.allclose(out, expected), acc.name
        return True

    assert benchmark.pedantic(run, rounds=1, iterations=1)
