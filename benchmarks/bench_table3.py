"""Regenerates paper Table 3: the evaluation hardware.

The registry's machine models carry the paper's published counts,
clocks and peaks; the bench prints the table transposed like the paper
and cross-checks each peak against a first-principles recomputation.
"""

from repro.bench import table3_rows, write_bench_json, write_report
from repro.comparison import render_table
from repro.hardware import TABLE3_KEYS, machine


def test_table3(benchmark):
    rows = benchmark(table3_rows)
    assert len(rows) == 5

    # Paper values, verbatim.
    peaks = {r["Architecture"]: r["Th. double peak performance"] for r in rows}
    assert peaks["Opteron 6276"] == "480 GFLOPS"
    assert peaks["Xeon E5-2609"] == "150 GFLOPS"
    assert peaks["Xeon E5-2630v3"] == "540 GFLOPS"
    assert peaks["K20 GK110"] == "1170 GFLOPS"
    assert peaks["K80 GK210"] == "2x1450 GFLOPS"

    # Cross-check: peak is within 2x of cores*clock*SIMD-style product
    # (the implied flops/cycle/core stays physically plausible).
    for key in TABLE3_KEYS:
        spec = machine(key)
        fpc = spec.flops_per_cycle_per_core
        if spec.kind == "cpu":
            assert 1.0 <= fpc <= 32.0, (key, fpc)
        else:
            assert 0.25 <= fpc <= 4.0, (key, fpc)  # per CUDA core

    text = render_table(rows, "Table 3: evaluation hardware (one row per machine)")
    print("\n" + text)
    write_report("table3.txt", text)
    metrics = {"machines": len(rows)}
    stats = getattr(benchmark, "stats", None)
    if stats is not None:
        metrics["table3_rows_mean"] = (stats.stats.mean, "s")
    write_bench_json("table3", metrics)
