"""Regenerates paper Table 1: the framework property matrix.

The matrix is data plus an executable re-derivation of the Alpaka row;
the benchmark times the re-derivation (it runs a kernel on every
registered back-end, so it doubles as a cross-back-end latency probe).
"""

from repro.comparison import (
    Property,
    Rating,
    TABLE1,
    evaluate_alpaka,
    render_table,
    table1_rows,
)
from repro.bench import write_bench_json, write_report


def test_table1(benchmark):
    results = benchmark(evaluate_alpaka)
    # The executable checks must agree with the published row.
    alpaka_row = next(fw for fw in TABLE1 if fw.name == "Alpaka")
    for prop, (rating, evidence) in results.items():
        assert rating == alpaka_row.rating(prop), (prop, evidence)

    text = render_table(
        table1_rows(),
        "Table 1: framework properties (+: yes, ~: partial, -: no)",
    )
    evidence_rows = [
        {"Property": p.value, "Rating": r.symbol, "Evidence": e}
        for p, (r, e) in results.items()
    ]
    text += "\n\n" + render_table(
        evidence_rows, "Alpaka row re-derived from executable checks"
    )
    print("\n" + text)
    write_report("table1.txt", text)
    metrics = {"properties_checked": len(results)}
    stats = getattr(benchmark, "stats", None)
    if stats is not None:
        metrics["evaluate_alpaka_mean"] = (stats.stats.mean, "s")
    write_bench_json("table1", metrics)
