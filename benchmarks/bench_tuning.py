"""Extension: work-division autotuning, tuned vs. default heuristic.

Matthes, Widera, Zenker et al. (arXiv:1706.10086) tune alpaka work
divisions per kernel and architecture and show the heuristic default is
rarely optimal.  This bench reproduces the workflow with
``repro.tuning``: for the hierarchically tiled DGEMM and the 2-d Jacobi
stencil, on *every* registered back-end, it measures

* the back-end's default Table 2 division (``divide_work`` with the
  back-end's preferred mapping), and
* the division :func:`repro.tuning.autotune` finds,

and reports both throughputs.  Because the candidate space always seeds
the default division, tuned can only tie or beat default — the bench
asserts exactly that, plus the persistence contract: a second
``autotune`` against the warm cache answers from disk with **zero**
kernel launches, observed through the runtime's ``CountingObserver``
(the same instrumentation the launch-overhead bench uses).

Sizes are deliberately tiny: the GPU back-end executes blocks with one
host thread per modeled thread, so the bench caps generated candidates
at ``MAX_BLOCK_THREADS`` modeled threads per block (the seeds stay
exempt) and tunes with a small random budget — the configuration the CI
smoke job mirrors.
"""

import numpy as np

from repro import (
    QueueBlocking,
    accelerator,
    accelerator_names,
    autotune,
    create_task_kernel,
    divide_work,
    get_dev_by_idx,
    mem,
)
from repro.bench import launch_stats, write_bench_json, write_report
from repro.comparison import render_table
from repro.kernels.gemm import GemmTilingKernel, dgemm_reference
from repro.kernels.stencil import Jacobi2DKernel, jacobi_reference_step
from repro.tuning import TuningCache, measure_division

GEMM_N = 16
STENCIL_H = 48
STENCIL_W = 32
#: Cap on generated candidates' modeled threads per block (simulated-GPU
#: blocks run one host thread per modeled thread).
MAX_BLOCK_THREADS = 64
BUDGET = 8


def _gemm_setup(acc, dev):
    rng = np.random.default_rng(7)
    n = GEMM_N
    queue = QueueBlocking(dev)
    hosts = (rng.random((n, n)), rng.random((n, n)), rng.random((n, n)))
    bufs = []
    for h in hosts:
        b = mem.alloc(dev, (n, n))
        mem.copy(queue, b, h)
        bufs.append(b)
    # beta=0 keeps the launch idempotent: tuning re-runs the kernel
    # many times against the same output buffer.
    args = (n, 1.0, bufs[0], bufs[1], 0.0, bufs[2])
    expected = dgemm_reference(1.0, hosts[0], hosts[1], 0.0, hosts[2])

    def check():
        out = np.empty((n, n))
        mem.copy(queue, out, bufs[2])
        np.testing.assert_allclose(out, expected, rtol=1e-10)

    return (n, n), args, 2.0 * n**3, check


def _stencil_setup(acc, dev):
    rng = np.random.default_rng(11)
    h, w = STENCIL_H, STENCIL_W
    queue = QueueBlocking(dev)
    host = rng.random((h, w))
    src = mem.alloc(dev, (h, w))
    dst = mem.alloc(dev, (h, w))
    mem.copy(queue, src, host)
    args = (h, w, 0.1, src, dst)
    expected = jacobi_reference_step(host, 0.1)

    def check():
        out = np.empty((h, w))
        mem.copy(queue, out, dst)
        np.testing.assert_allclose(out, expected, rtol=1e-12)

    return (h, w), args, float(h * w), check


WORKLOADS = [
    ("DGEMM tiled", GemmTilingKernel, _gemm_setup, "GFLOPS"),
    ("Jacobi 2-d", Jacobi2DKernel, _stencil_setup, "Mcell/s"),
]

UNIT_SCALE = {"GFLOPS": 1e9, "Mcell/s": 1e6}


def _tune_one(kernel, acc, dev, extent, args, cache):
    """(default seconds, tuned TuningResult) for one workload/back-end."""
    props = acc.get_acc_dev_props(dev).for_dim(len(extent))
    default_wd = divide_work(extent, props, acc.mapping_strategy)
    default_s = measure_division(kernel, acc, dev, default_wd, args).seconds
    tuned = autotune(
        kernel,
        acc,
        extent,
        args,
        device=dev,
        strategy="random",
        budget=BUDGET,
        max_block_threads=MAX_BLOCK_THREADS,
        cache=cache,
        save=False,
    )
    return default_wd, default_s, tuned


def test_tuned_vs_default(benchmark, tmp_path):
    cache = TuningCache(str(tmp_path / "tuning-cache.json"))
    rows = []
    failures = []

    def run():
        for wl_name, kernel_cls, setup, unit in WORKLOADS:
            for acc_name in accelerator_names():
                acc = accelerator(acc_name)
                dev = get_dev_by_idx(acc, 0)
                kernel = kernel_cls()
                extent, args, work, check = setup(acc, dev)
                default_wd, default_s, tuned = _tune_one(
                    kernel, acc, dev, extent, args, cache
                )

                # Correctness: the tuned division computes the same
                # answer (the last measurement launch left its result
                # in the output buffer).
                q = QueueBlocking(dev)
                q.enqueue(
                    create_task_kernel(acc, tuned.work_div, kernel, *args)
                )
                check()

                scale = UNIT_SCALE[unit]
                rows.append(
                    {
                        "Workload": wl_name,
                        "Back-end": acc_name,
                        "default": f"{work / default_s / scale:9.3f}",
                        "tuned": f"{work / tuned.seconds / scale:9.3f}",
                        "unit": unit,
                        "speed-up": f"{default_s / tuned.seconds:6.2f}x",
                        "tuned division": str(tuned.work_div),
                        "meas": tuned.measurements,
                    }
                )
                if tuned.seconds > default_s:
                    failures.append((wl_name, acc_name, default_s, tuned.seconds))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)

    text = render_table(
        rows,
        "Extension: autotuned vs. default work division "
        f"(DGEMM n={GEMM_N}, Jacobi {STENCIL_H}x{STENCIL_W}; "
        f"random search, budget {BUDGET})",
    )
    print("\n" + text)
    write_report("tuning_tuned_vs_default.txt", text)
    write_bench_json("tuning_tuned_vs_default", {
        f"{r['Workload']}_{r['Back-end']}_speedup": float(
            r["speed-up"].rstrip("x")
        )
        for r in rows
    })

    # The default heuristic is seeded into every candidate space, so
    # the tuned division can only tie or beat it — on every back-end,
    # for both workloads.
    assert not failures, failures

    # Persistence: the cache file round-trips, and a warm second tune
    # answers from it without a single kernel launch (observed through
    # the real runtime instrumentation, not inferred).
    cache.save()
    reloaded = TuningCache(cache.path)
    for wl_name, kernel_cls, setup, unit in WORKLOADS:
        for acc_name in accelerator_names():
            acc = accelerator(acc_name)
            dev = get_dev_by_idx(acc, 0)
            kernel = kernel_cls()
            extent, args, work, check = setup(acc, dev)
            with launch_stats() as stats:
                warm = autotune(
                    kernel, acc, extent, args, device=dev, cache=reloaded
                )
            assert warm.from_cache, (wl_name, acc_name)
            assert warm.launches == 0, (wl_name, acc_name)
            assert stats.launches == 0, (wl_name, acc_name, stats.launches)
