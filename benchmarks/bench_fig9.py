"""Regenerates paper Fig. 9: performance portability.

The same single-source tiling kernel, tuned only through its work
division, on all five Table 3 machines, normalised to each machine's
theoretical peak.  Paper finding: every curve sits around 20 % of peak
— no machine an order of magnitude off.
"""

import math

from repro.bench import (
    DEFAULT_SIZES,
    fig9_performance_portability,
    write_bench_json,
    write_report,
)
from repro.comparison import render_series


def test_fig9(benchmark):
    curves = benchmark(fig9_performance_portability, DEFAULT_SIZES)
    assert len(curves) == 5

    large_n = max(DEFAULT_SIZES)
    fractions = {name: curve[large_n] for name, curve in curves.items()}
    for name, frac in fractions.items():
        # "around 20%": each machine lands in a band around the paper's
        # level, nobody collapses and nobody hits peak.
        assert 0.10 <= frac <= 0.45, (name, frac)
    # Spread stays within ~3x across all machines (the portability
    # claim: same kernel, same order of efficiency everywhere).
    lo, hi = min(fractions.values()), max(fractions.values())
    assert hi / lo <= 3.0, fractions
    # Geometric mean lands near the paper's 20 %.
    gmean = math.exp(sum(math.log(f) for f in fractions.values()) / 5)
    assert 0.15 <= gmean <= 0.30, gmean

    text = render_series(
        curves,
        "n",
        title="Fig. 9: single-source tiling kernel, fraction of each "
        "machine's theoretical peak (paper: all around 0.20)",
    )
    print("\n" + text)
    write_report("fig9.txt", text)
    metrics = {
        f"{name}_peak_fraction": frac for name, frac in fractions.items()
    }
    metrics["geometric_mean_peak_fraction"] = gmean
    write_bench_json("fig9", metrics)
