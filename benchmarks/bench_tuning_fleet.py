"""Extension: fleet tuning — shared measurements and evolutionary search.

Two gates for the ``repro.tuning.fleet`` subsystem:

* **Fleet of 4 vs. solo** — four worker processes autotuning the same
  (kernel, back-end, device, extent) under file-lock coordination must
  finish in under 1.5x the wall time of a single uncoordinated worker,
  with exactly ONE fleet-wide measurement run (the other three adopt the
  winner's published division).  Without the fleet every worker would
  redundantly pay the full search.
* **Evolve vs. exhaustive** — the evolutionary search with a fixed
  measurement budget must land within 5% of the exhaustive optimum on
  the hierarchically tiled DGEMM candidate space while spending strictly
  fewer measurements (population zero is seeded from Table 2 plus the
  performance model's ranking, so the budget is spent refining, not
  rediscovering).
"""

import json
import os
import subprocess
import sys
import time

import numpy as np

from repro import QueueBlocking, autotune, get_dev_by_idx, mem
from repro.acc import AccCpuSerial
from repro.bench import write_bench_json, write_report
from repro.comparison import render_table
from repro.kernels.gemm import GemmTilingKernel
from repro.tuning import TuningCache

N_WORKERS = 4
FLEET_WALL_FACTOR = 1.5
EVOLVE_TOLERANCE = 1.05
GEMM_N = 16
MAX_BLOCK_THREADS = 64
EVOLVE_BUDGET = 12

# Heavy enough that the measurement work, not process start-up,
# dominates the wall time the fleet gate compares.
WORKER = """\
import json

from repro import AccCpuSerial, QueueBlocking, autotune, fn_acc, get_dev_by_idx, mem
from repro.mem import memset


class FleetBenchKernel:
    @fn_acc
    def __call__(self, acc, n, out):
        from repro.core.element import independent_elements

        for i in independent_elements(acc, n):
            out[i[0]] = i[0] * 2.0


def main():
    acc = AccCpuSerial
    dev = get_dev_by_idx(acc)
    n = 32768
    out = mem.alloc(dev, n)
    memset(QueueBlocking(dev), out, 0)
    res = autotune(
        FleetBenchKernel(), acc, n, (n, out), device=dev,
        strategy="random", budget=6, repeat=4, max_block_threads=8,
    )
    print(json.dumps({
        "strategy": res.strategy,
        "measurements": res.measurements,
        "block": list(res.work_div.block_thread_extent),
        "elems": list(res.work_div.thread_elem_extent),
    }))


main()
"""


def _run_workers(workdir, count, extra_env):
    script = workdir / "worker.py"
    script.write_text(WORKER)
    env = dict(os.environ)
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(repo, "src"), env.get("PYTHONPATH")) if p
    )
    env["REPRO_TUNING_CACHE"] = str(workdir / "cache.json")
    env["REPRO_TUNING_HOF"] = str(workdir / "hof.json")
    env.pop("REPRO_TUNING_FLEET", None)
    env.update(extra_env)
    started = time.monotonic()
    procs = [
        subprocess.Popen(
            [sys.executable, str(script)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            cwd=str(workdir),
            text=True,
        )
        for _ in range(count)
    ]
    results = []
    for p in procs:
        out, err = p.communicate(timeout=300)
        assert p.returncode == 0, f"worker failed:\n{err}"
        results.append(json.loads(out.strip().splitlines()[-1]))
    return time.monotonic() - started, results


def test_fleet_of_four_vs_solo(benchmark, tmp_path):
    solo_dir = tmp_path / "solo"
    fleet_dir = tmp_path / "fleet"
    solo_dir.mkdir()
    fleet_dir.mkdir()

    timings = {}

    def run():
        timings["solo"], solo_results = _run_workers(solo_dir, 1, {})
        timings["fleet"], fleet_results = _run_workers(
            fleet_dir, N_WORKERS, {"REPRO_TUNING_FLEET": "lock"}
        )
        timings["solo_results"] = solo_results
        timings["fleet_results"] = fleet_results

    benchmark.pedantic(run, rounds=1, iterations=1)

    solo_wall = timings["solo"]
    fleet_wall = timings["fleet"]
    fleet_results = timings["fleet_results"]
    measured = [r for r in fleet_results if r["measurements"] > 0]

    rows = [
        {
            "configuration": "solo (no fleet)",
            "workers": 1,
            "wall [s]": f"{solo_wall:6.2f}",
            "measurement runs": 1,
        },
        {
            "configuration": "fleet of 4 (lock)",
            "workers": N_WORKERS,
            "wall [s]": f"{fleet_wall:6.2f}",
            "measurement runs": len(measured),
        },
    ]
    text = render_table(
        rows,
        "Extension: fleet tuning — 4 coordinated workers vs. 1 solo "
        f"(gate: fleet wall < {FLEET_WALL_FACTOR}x solo)",
    )
    print("\n" + text)
    write_report("tuning_fleet_vs_solo.txt", text)
    write_bench_json("tuning_fleet_vs_solo", {
        "solo_wall": (solo_wall, "s"),
        "fleet_wall": (fleet_wall, "s"),
        "fleet_workers": N_WORKERS,
        "fleet_measurement_runs": len(measured),
    })

    # Exactly one fleet-wide measurement run; everyone else adopted.
    assert len(measured) == 1, fleet_results
    winner = measured[0]
    for r in fleet_results:
        assert r["block"] == winner["block"], fleet_results
        assert r["elems"] == winner["elems"], fleet_results
    # The whole fleet finishes in bounded time: coordination overhead
    # (leases, waits, adoption) must not eat the sharing win.
    assert fleet_wall < FLEET_WALL_FACTOR * solo_wall, (fleet_wall, solo_wall)


def test_evolve_within_5pct_of_exhaustive(benchmark, tmp_path):
    acc = AccCpuSerial
    dev = get_dev_by_idx(acc, 0)
    rng = np.random.default_rng(7)
    n = GEMM_N
    queue = QueueBlocking(dev)
    hosts = (rng.random((n, n)), rng.random((n, n)), rng.random((n, n)))
    bufs = []
    for h in hosts:
        b = mem.alloc(dev, (n, n))
        mem.copy(queue, b, h)
        bufs.append(b)
    args = (n, 1.0, bufs[0], bufs[1], 0.0, bufs[2])

    os.environ.setdefault("REPRO_TUNING_HOF", str(tmp_path / "hof.json"))
    outcome = {}

    def run():
        outcome["exhaustive"] = autotune(
            GemmTilingKernel(), acc, (n, n), args, device=dev,
            strategy="exhaustive", max_block_threads=MAX_BLOCK_THREADS,
            cache=TuningCache(str(tmp_path / "ex.json")), save=False,
        )
        outcome["evolve"] = autotune(
            GemmTilingKernel(), acc, (n, n), args, device=dev,
            strategy="evolve", budget=EVOLVE_BUDGET,
            max_block_threads=MAX_BLOCK_THREADS,
            cache=TuningCache(str(tmp_path / "ev.json")), save=False,
        )

    benchmark.pedantic(run, rounds=1, iterations=1)

    ex, ev = outcome["exhaustive"], outcome["evolve"]
    rows = [
        {
            "strategy": name,
            "best [us]": f"{res.seconds * 1e6:8.3f}",
            "measurements": res.measurements,
            "pruned": res.pruned,
            "division": str(res.work_div),
        }
        for name, res in (("exhaustive", ex), ("evolve", ev))
    ]
    text = render_table(
        rows,
        f"Extension: evolutionary search vs. exhaustive on tiled DGEMM "
        f"n={GEMM_N} (gate: within {(EVOLVE_TOLERANCE - 1) * 100:.0f}% "
        f"with budget {EVOLVE_BUDGET})",
    )
    print("\n" + text)
    write_report("tuning_fleet_evolve_vs_exhaustive.txt", text)
    write_bench_json("tuning_fleet_evolve_vs_exhaustive", {
        "exhaustive_best": (ex.seconds, "s"),
        "evolve_best": (ev.seconds, "s"),
        "exhaustive_measurements": ex.measurements,
        "evolve_measurements": ev.measurements,
    })

    assert ev.seconds <= EVOLVE_TOLERANCE * ex.seconds, (ev.seconds, ex.seconds)
    assert ev.measurements < ex.measurements, (ev.measurements, ex.measurements)
