"""Regenerates paper Fig. 5: zero-overhead abstraction.

Two parts, as documented in DESIGN.md:

* modeled — the one-to-one translated kernels on the modeled K80 and
  E5-2630v3 stay within the paper's <6 % overhead band across the size
  sweep;
* measured — the same algorithm as a direct host function vs through
  the full library stack, wall clock, on this machine.
"""

import pytest

from repro.bench import (
    DEFAULT_SIZES,
    fig5_measured_overhead_host,
    fig5_zero_overhead,
    write_bench_json,
    write_report,
)
from repro.comparison import render_series


def test_fig5_modeled(benchmark):
    curves = benchmark(fig5_zero_overhead, DEFAULT_SIZES)
    for name, curve in curves.items():
        for n, speedup in curve.items():
            # The paper's own curve dips below the 6%-band for the
            # smallest matrices (fixed API-call cost vs tiny kernels).
            floor = 0.94 if n >= 512 else 0.85
            assert speedup >= floor, (name, n, speedup)
            assert speedup <= 1.02, (name, n, speedup)

    text = render_series(
        curves,
        "n",
        title="Fig. 5: speedup of alpaka kernels relative to native "
        "(paper: less than 6% overhead)",
    )
    print("\n" + text)
    write_report("fig5_modeled.txt", text)
    write_bench_json("fig5_modeled", {
        f"{name}_min_speedup": min(curve.values())
        for name, curve in curves.items()
    })


def test_fig5_measured_host(benchmark):
    speedup = benchmark.pedantic(
        fig5_measured_overhead_host, rounds=3, iterations=1
    )
    # Generous band: a 1-core CI container jitters far more than the
    # paper's dedicated nodes; the claim defended is "the library
    # machinery is a small constant, not a multiple".
    assert speedup >= 0.70, speedup
    text = (
        "Fig. 5 (measured half): wall-clock native/alpaka speedup on "
        f"this host = {speedup:.3f}\n"
        "(paper band: >= 0.94 on dedicated hardware)"
    )
    print("\n" + text)
    write_report("fig5_measured.txt", text)
    write_bench_json("fig5_measured", {"host_speedup": speedup})
