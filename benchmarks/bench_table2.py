"""Regenerates paper Table 2: predefined accelerator work divisions.

Checks the symbolic mappings (thread-level vs block-level strategies)
and benchmarks the automatic work divider over a sweep of problem sizes.
"""

from repro.bench import table2_rows, write_bench_json, write_report
from repro.comparison import render_table
from repro.core import MappingStrategy, divide_work
from repro.acc import all_accelerators


def _sweep_divide_work():
    rows = []
    for acc in all_accelerators():
        dev = acc.platform().get_dev_by_idx(0)
        props = acc.get_acc_dev_props(dev)
        for n in (1000, 4096, 65536, 1 << 20):
            wd = divide_work(n, props, acc.mapping_strategy, thread_elems=4)
            rows.append((acc.name, n, wd))
    return rows


def test_table2(benchmark):
    sweep = benchmark(_sweep_divide_work)
    # Every produced division covers its problem extent.
    for name, n, wd in sweep:
        assert wd.grid_elem_extent[0] >= n, (name, n, wd)

    rows = table2_rows()
    # Paper Table 2 structure: block-level rows pin one thread/block.
    by_name = {r["Acc"]: r for r in rows}
    assert by_name["AccGpuCudaSim"]["Block"] == "N/(B*V)"
    assert by_name["AccCpuOmp2Blocks"]["Thread"] == "1"
    assert by_name["AccCpuSerial"]["Thread"] == "1"
    assert by_name["AccCpuOmp2Threads"]["Thread"] == "B"

    text = render_table(
        rows, "Table 2: predefined accelerators (N=problem, B=threads, V=elements)"
    )
    print("\n" + text)
    write_report("table2.txt", text)
    metrics = {"divisions_swept": len(sweep)}
    stats = getattr(benchmark, "stats", None)
    if stats is not None:
        metrics["divide_work_sweep_mean"] = (stats.stats.mean, "s")
    write_bench_json("table2", metrics)
