"""Regenerates paper Fig. 10: the HASEonGPU port.

Two parts:

* modeled — the Fig. 10 bars: application GFLOPS and speedup relative
  to native CUDA on the K20 for each platform.  Paper findings
  asserted: the alpaka CUDA version shows *no* overhead (speedup 1.0),
  and the CPU platforms land at speedups matching their halved peak
  (Opteron 480/1170 = 0.41, Haswell 540/1170 = 0.46).
* functional — the adaptive multi-device mini-HASE actually runs on a
  CPU back-end and on the two-die simulated K80 and produces consistent
  physics (this is the timed part).
"""

import numpy as np

from repro import AccCpuOmp2Blocks, AccGpuCudaSim
from repro.apps.hase import (
    GainMedium,
    PrismMesh,
    compute_ase_flux,
    default_sample_points,
    gaussian_pump_profile,
)
from repro.bench import fig10_hase, write_bench_json, write_report
from repro.comparison import render_table


def test_fig10_modeled(benchmark):
    rows = benchmark(fig10_hase)
    by = {r["Configuration"]: r for r in rows}

    # No overhead on the same hardware: identical execution time.
    assert by["Alpaka(CUDA) on K20"]["Speedup vs native K20"] == 1.0
    # CPU speedups on par with the peak-performance ratios (paper:
    # "nearly doubled time to solution ... on par with the halved
    # double precision peak performance").
    opteron = by["Alpaka(OMP2) on Opteron 6276"]["Speedup vs native K20"]
    haswell = by["Alpaka(OMP2) on E5-2630v3"]["Speedup vs native K20"]
    assert abs(opteron - 480.0 / 1170.0) < 0.08, opteron
    assert abs(haswell - 540.0 / 1170.0) < 0.08, haswell

    text = render_table(
        rows,
        "Fig. 10: HASE port (speedup relative to native CUDA on K20; "
        "paper: 1.0 on K20, ~peak-ratio on CPUs)",
    )
    print("\n" + text)
    write_report("fig10_modeled.txt", text)
    write_bench_json("fig10_modeled", {
        "k20_speedup_vs_native": by["Alpaka(CUDA) on K20"][
            "Speedup vs native K20"
        ],
        "opteron_speedup_vs_native": opteron,
        "haswell_speedup_vs_native": haswell,
    })


def _run_hase_small():
    mesh = PrismMesh(nx=6, ny=6, nz=3)
    medium = GainMedium(mesh, gaussian_pump_profile(mesh, 4.0e20))
    pts = default_sample_points(medium, per_edge=2)
    cpu = compute_ase_flux(
        AccCpuOmp2Blocks, medium, pts,
        target_rel_error=0.15, initial_samples=128, max_samples_per_point=1024,
    )
    gpu = compute_ase_flux(
        AccGpuCudaSim, medium, pts,
        target_rel_error=0.15, initial_samples=128, max_samples_per_point=1024,
    )
    return cpu, gpu


def test_fig10_functional(benchmark):
    cpu, gpu = benchmark.pedantic(_run_hase_small, rounds=1, iterations=1)
    assert np.all(cpu.flux > 0) and np.all(gpu.flux > 0)
    # Same physics on both back-ends, within combined MC error bars.
    rel = np.abs(cpu.flux - gpu.flux) / cpu.flux
    bound = 4.0 * (cpu.rel_error + gpu.rel_error)
    assert np.all(rel <= np.maximum(bound, 0.25)), (rel, bound)
    # The simulated K80 platform exposes and used both of its dies.
    assert len(gpu.device_names) == 2, gpu.device_names
