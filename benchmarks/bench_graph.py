"""Extension: whole-graph warm replay vs. per-launch dispatch.

ROADMAP item 3's acceptance bench.  A dataflow graph snapshots every
node's resolved ``LaunchPlan``, grid context and scheduler in one
:class:`repro.runtime.plan.GraphPlan`, so a warm resubmission pays a
single graph-cache hit for the whole pipeline instead of a plan lookup,
grid construction and queue round-trip per node.  The bound asserted
here: a warm replay of a PIPELINE_NODES-deep kernel chain costs **less
than 3x one warm single launch** — i.e. per-node replay overhead is a
small fraction of even the cached launch path.

The identity half (also runnable standalone for CI:
``python benchmarks/bench_graph.py identity``) checks the inferred-
dependency halo pipeline against a sequential per-step reference on
every registered back-end, bitwise, and runs it sanitize-clean.
"""

import sys

import numpy as np
import pytest

from repro import (
    Graph,
    QueueBlocking,
    Vec,
    WorkDivMembers,
    accelerator,
    accelerator_names,
    clear_plan_cache,
    create_task_kernel,
    fn_acc,
    get_dev_by_idx,
    mem,
)
from repro.bench import measure_wall, write_bench_json, write_report
from repro.comparison import render_table
from repro.kernels import Jacobi2DKernel, jacobi_reference_step
from repro.runtime import graph_plan_cache_info

#: Depth of the replayed kernel chain (acceptance floor: >= 6 nodes).
PIPELINE_NODES = 6
SUBMITS = 100
LAUNCHES = 100


@fn_acc
def _bump(acc, b):
    b[0] += 1.0


def _single_warm_cost(acc_name: str) -> float:
    """Per-launch cost of the ordinary warm path (plan-cache hit)."""
    acc = accelerator(acc_name)
    dev = get_dev_by_idx(acc, 0)
    queue = QueueBlocking(dev)
    buf = mem.alloc(dev, 4)
    task = create_task_kernel(acc, WorkDivMembers.make(1, 1, 1), _bump, buf)
    queue.enqueue(task)  # warm the plan cache

    def launch():
        for _ in range(LAUNCHES):
            queue.enqueue(task)

    return measure_wall(launch, repeat=3) / LAUNCHES


def _graph_warm_cost(acc_name: str, nodes: int) -> float:
    """Per-submit cost of replaying a ``nodes``-deep chained graph."""
    acc = accelerator(acc_name)
    dev = get_dev_by_idx(acc, 0)
    buf = mem.alloc(dev, 4)
    wd = WorkDivMembers.make(1, 1, 1)
    g = Graph()
    for i in range(nodes):
        # Same buffer in every node: read-write classification chains
        # them into one linear pipeline.
        g.launch(acc, wd, _bump, buf, label=f"n{i}")
    g.submit()  # cold: resolves and snapshots every node's plan
    assert g.last_stats is not None and not g.last_stats.replayed

    def submit():
        for _ in range(SUBMITS):
            g.submit()

    cost = measure_wall(submit, repeat=3) / SUBMITS
    assert g.last_stats.replayed and g.last_stats.mode == "inline"
    return cost


def test_graph_warm_replay_bound(benchmark):
    """Warm whole-graph replay of a >=6-node pipeline beats 3x a single
    warm launch, and is served by the graph plan cache."""
    clear_plan_cache()
    before = graph_plan_cache_info()

    def run():
        return {
            "single": _single_warm_cost("AccCpuSerial"),
            "graph": _graph_warm_cost("AccCpuSerial", PIPELINE_NODES),
        }

    costs = benchmark.pedantic(run, rounds=1, iterations=1)
    after = graph_plan_cache_info()

    per_node = costs["graph"] / PIPELINE_NODES
    rows = [
        {
            "path": "single warm launch",
            "cost [us]": f"{costs['single'] * 1e6:8.1f}",
            "per node [us]": f"{costs['single'] * 1e6:8.1f}",
        },
        {
            "path": f"graph replay ({PIPELINE_NODES} nodes)",
            "cost [us]": f"{costs['graph'] * 1e6:8.1f}",
            "per node [us]": f"{per_node * 1e6:8.1f}",
        },
    ]
    text = render_table(
        rows,
        "Extension: whole-graph warm replay vs. per-launch dispatch "
        f"(bound: {PIPELINE_NODES} nodes < 3x one launch)",
    )
    print("\n" + text)
    write_report("graph_replay.txt", text)
    write_bench_json("graph_replay", {
        "single_warm_launch": (costs["single"], "s"),
        "graph_replay_total": (costs["graph"], "s"),
        "graph_replay_per_node": (per_node, "s"),
        "pipeline_nodes": PIPELINE_NODES,
    })

    # The acceptance bound: the whole warm pipeline for the price of
    # (less than) three warm launches.
    assert costs["graph"] < 3 * costs["single"], costs
    # And it really was the graph cache serving it: one miss (the cold
    # submit), then hits.
    assert after["misses"] >= before["misses"] + 1
    assert after["hits"] > before["hits"]


def _halo_pipeline(acc_name: str, h=16, w=32, steps=4, c=0.2):
    """The inferred-dependency halo pipeline on one back-end: domain
    split into two halves with a one-column halo, sweeps + sub-view
    halo copies recorded into a graph, result gathered to host."""
    acc = accelerator(acc_name)
    dev = get_dev_by_idx(acc, 0)
    half = w // 2
    local_w = half + 1
    kernel = Jacobi2DKernel()
    elems = Vec(8, 8)
    wd = WorkDivMembers.make(
        Vec(h, local_w).ceil_div(elems), Vec(1, 1), elems
    )

    plate = np.zeros((h, w))
    plate[h // 4 : 3 * h // 4, w // 4 : 3 * w // 4] = 100.0

    bufs = []
    stage = [plate[:, 0:local_w].copy(), plate[:, half - 1 : w].copy()]
    g = Graph()
    for i in range(2):
        src = mem.alloc(dev, (h, local_w))
        dst = mem.alloc(dev, (h, local_w))
        bufs.append([src, dst])
        g.copy(src, stage[i], label=f"stage{i}")
    for step in range(steps):
        for i, (src, dst) in enumerate(bufs):
            g.launch(
                acc, wd, kernel, h, local_w, c, src, dst,
                reads=[src], writes=[dst], label=f"sweep{step}.{i}",
            )
        left_dst, right_dst = bufs[0][1], bufs[1][1]
        g.copy(
            mem.sub_view(right_dst, (0, 0), (h, 1)),
            mem.sub_view(left_dst, (0, half - 1), (h, 1)),
        )
        g.copy(
            mem.sub_view(left_dst, (0, local_w - 1), (h, 1)),
            mem.sub_view(right_dst, (0, 1), (h, 1)),
        )
        for pair in bufs:
            pair[0], pair[1] = pair[1], pair[0]
    left = np.empty((h, local_w))
    right = np.empty((h, local_w))
    g.copy(left, bufs[0][0], label="gather0")
    g.copy(right, bufs[1][0], label="gather1")
    yield g

    result = np.empty((h, w))
    result[:, :half] = left[:, :half]
    result[:, half:] = right[:, 1:]
    for pair in bufs:
        for b in pair:
            b.free()

    reference = plate
    for _ in range(steps):
        reference = jacobi_reference_step(reference, c)
    np.testing.assert_array_equal(result, reference, err_msg=acc_name)


@pytest.mark.parametrize("acc_name", accelerator_names())
def test_graph_halo_identity(acc_name):
    """The halo pipeline with inferred dependencies is bit-identical to
    the sequential reference on every back-end."""
    pipeline = _halo_pipeline(acc_name)
    g = next(pipeline)
    g.submit()
    for _ in pipeline:  # runs the verification tail
        pass


def test_graph_halo_sanitize_clean():
    """The same pipeline under the dynamic sanitizer (which forces the
    queued execution path): no races, no bounds findings."""
    from repro.sanitize import enabled

    pipeline = _halo_pipeline("AccCpuSerial", h=8, w=16, steps=2)
    g = next(pipeline)
    with enabled(label="graph-halo") as report:
        g.submit()
    for _ in pipeline:
        pass
    report.raise_if_findings()


def _identity_main() -> int:
    """CI entry point: ``python benchmarks/bench_graph.py identity``."""
    failures = 0
    for name in accelerator_names():
        try:
            test_graph_halo_identity(name)
            print(f"identity ok: {name}")
        except Exception as exc:  # noqa: BLE001 - CI summary
            failures += 1
            print(f"identity FAILED: {name}: {exc}")
    test_graph_halo_sanitize_clean()
    print("sanitize ok: AccCpuSerial")
    return failures


if __name__ == "__main__":
    if len(sys.argv) > 1 and sys.argv[1] == "identity":
        raise SystemExit(_identity_main())
    raise SystemExit(pytest.main([__file__, "-v"]))
