"""Regenerates paper Fig. 8: the single-source tiling kernel.

One kernel source, four configurations (element count per thread swept
per architecture), each compared against the native implementation of
its architecture.  Paper findings asserted: the tiling kernel competes
with or beats native everywhere, and more elements per thread help on
both architectures.
"""

from repro.bench import (
    DEFAULT_SIZES,
    fig8_single_source_tiling,
    write_bench_json,
    write_report,
)
from repro.comparison import render_series


def test_fig8(benchmark):
    curves = benchmark(fig8_single_source_tiling, DEFAULT_SIZES)

    gpu1 = curves["Alpaka(CUDA) tiling 1 element on K80"]
    gpu4 = curves["Alpaka(CUDA) tiling 4 elements on K80"]
    cpu256 = curves["Alpaka(OMP2) tiling 256 elements on E5-2630v3"]
    cpu16k = curves["Alpaka(OMP2) tiling 16k elements on E5-2630v3"]

    for n in DEFAULT_SIZES:
        # Competes with native (>= ~0.9) in every configuration...
        for curve in (gpu1, gpu4, cpu256, cpu16k):
            assert curve[n] >= 0.85, (n, curve[n])
        # ...and the element level pays once both configurations
        # saturate the device (a 128-wide tile cannot fill 16 cores at
        # n=256 — the same reason the paper's 16k curve is erratic at
        # small n).
        assert gpu4[n] >= gpu1[n], n
        if n >= 2048:
            assert cpu16k[n] >= cpu256[n], n
    # The best configurations actually beat native (paper: "can compete
    # with and even outperform").
    assert max(gpu4.values()) > 1.0
    assert max(cpu16k.values()) > 1.0

    text = render_series(
        curves,
        "n",
        title="Fig. 8: single-source tiling DGEMM vs native "
        "implementations (speedup; paper: >= 1 on both back-ends)",
    )
    print("\n" + text)
    write_report("fig8.txt", text)
    write_bench_json("fig8", {
        "gpu_4elem_best_speedup": max(gpu4.values()),
        "gpu_1elem_best_speedup": max(gpu1.values()),
        "cpu_16k_best_speedup": max(cpu16k.values()),
        "cpu_256_best_speedup": max(cpu256.values()),
    })
