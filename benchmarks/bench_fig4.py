"""Regenerates paper Fig. 4: Alpaka vs native CUDA DAXPY generated code,
plus the section's CPU assembler discussion.

GPU half: both kernels are symbolically compiled to the PTX-like
mini-IR and compared after register normalisation.  The paper's finding
— identical up to internal names and one non-coherent texture load —
must hold exactly.

CPU half: the paper observes that the native C++ DAXPY vectorises to
packed SSE2 (movupd/mulpd/addpd) while a naive one-element-per-thread
kernel stays scalar (movsd/mulsd/addsd), and that looping over the
element level recovers the packed forms.  The CPU tracer reproduces the
packed/scalar split from the same kernel objects.
"""

from repro.bench import fig4_ptx_comparison, write_bench_json, write_report
from repro.kernels import AxpyElementsKernel, AxpyKernel
from repro.trace import (
    classify_fp_instructions,
    trace_cpu_kernel_scalar,
    trace_cpu_kernel_spans,
)


def test_fig4(benchmark):
    data = benchmark(fig4_ptx_comparison)
    cmp = data["comparison"]

    assert cmp.identical_up_to_cache_modifiers, cmp.summary()
    assert len(cmp.notes) == 1 and "nc" in cmp.notes[0], cmp.notes
    assert data["alpaka_instructions"] == data["native_instructions"]

    text = (
        "Fig. 4: DAXPY generated code comparison\n"
        f"verdict: {cmp.summary()}\n\n"
        "=== Alpaka PTX ===\n" + data["alpaka_ptx"] + "\n\n"
        "=== Native CUDA PTX ===\n" + data["native_ptx"]
    )
    print("\n" + text)
    write_report("fig4.txt", text)
    write_bench_json("fig4", {
        "identical_up_to_cache_modifiers": int(
            cmp.identical_up_to_cache_modifiers
        ),
        "alpaka_instructions": data["alpaka_instructions"],
        "native_instructions": data["native_instructions"],
    })


def test_fig4_cpu_assembler(benchmark):
    def run():
        scalar_ctx = trace_cpu_kernel_scalar(
            AxpyKernel(), ["x", "y"], "n", 2.0
        )
        span_ctx = trace_cpu_kernel_spans(
            AxpyElementsKernel(), ["x", "y"], 4, 2.0, span=4
        )
        return scalar_ctx, span_ctx

    scalar_ctx, span_ctx = benchmark(run)
    scalar = classify_fp_instructions(scalar_ctx)
    packed = classify_fp_instructions(span_ctx)

    # Paper Sec. 4.1: scalar kernel -> movsd/mulsd/addsd; element-level
    # kernel -> movupd/mulpd/addpd.
    assert scalar["packed"] == 0 and scalar["scalar"] > 0
    assert packed["packed"] > 0 and packed["scalar"] <= 1

    text = (
        "Fig. 4 (CPU half): SSE2 vectorisation via the element level\n"
        f"scalar kernel:      {scalar}\n"
        f"element-span kernel: {packed}\n\n"
        "=== scalar (one element per thread) ===\n"
        + scalar_ctx.to_text()
        + "\n\n=== packed (element-span, the paper's 'primitive inner "
        "loop') ===\n"
        + span_ctx.to_text()
    )
    print("\n" + text)
    write_report("fig4_cpu.txt", text)
    write_bench_json("fig4_cpu", {
        "scalar_kernel_scalar_ops": scalar["scalar"],
        "scalar_kernel_packed_ops": scalar["packed"],
        "span_kernel_scalar_ops": packed["scalar"],
        "span_kernel_packed_ops": packed["packed"],
    })
