"""Ablations of the design choices DESIGN.md calls out.

1. **Element level on/off** (measured): the same DAXPY once as a scalar
   one-element-per-thread kernel and once as a vector element-span
   kernel, wall clock on the host — the Python rendition of the paper's
   Sec. 4.1 SSE2-vs-scalar observation, and the mechanism behind
   Figs. 8/9.
2. **Shared-memory tiling on/off** (modeled): the tiled DGEMM vs a
   no-reuse variant on the K80 — why Fig. 5's kernel uses tiles at all.
3. **Atomic lock striping** (measured): contended counter updates with
   1 vs 64 stripes under real threads.
"""

import numpy as np

from repro import (
    AccCpuSerial,
    QueueBlocking,
    WorkDivMembers,
    create_task_kernel,
    get_dev_by_idx,
    mem,
)
from repro.atomic import AtomicDomain
from repro.bench import measure_wall, write_bench_json, write_report
from repro.comparison import render_table
from repro.hardware import AccessPattern, machine
from repro.kernels import AxpyElementsKernel, AxpyKernel, GemmTilingKernel
from repro.kernels.gemm import gemm_workdiv_tiling
from repro.perfmodel import KernelCharacteristics, predict_time


def _element_level_ablation(n=20_000):
    dev = get_dev_by_idx(AccCpuSerial, 0)
    q = QueueBlocking(dev)
    x = mem.alloc(dev, n)
    y = mem.alloc(dev, n)
    mem.copy(q, x, np.arange(n, dtype=np.float64))

    scalar_wd = WorkDivMembers.make(n, 1, 1)
    scalar_task = create_task_kernel(
        AccCpuSerial, scalar_wd, AxpyKernel(), n, 2.0, x, y
    )
    vector_wd = WorkDivMembers.make(-(-n // 256), 1, 256)
    vector_task = create_task_kernel(
        AccCpuSerial, vector_wd, AxpyElementsKernel(), n, 2.0, x, y
    )
    t_scalar = measure_wall(lambda: q.enqueue(scalar_task), repeat=3)
    t_vector = measure_wall(lambda: q.enqueue(vector_task), repeat=3)
    return t_scalar, t_vector


def test_ablation_element_level(benchmark):
    t_scalar, t_vector = benchmark.pedantic(
        _element_level_ablation, rounds=1, iterations=1
    )
    speedup = t_scalar / t_vector
    # The vector path must win decisively — this is the cliff the
    # element level exists for.
    assert speedup > 3.0, (t_scalar, t_vector)
    text = render_table(
        [
            {"variant": "scalar (1 element/thread)", "seconds": f"{t_scalar:.5f}"},
            {"variant": "vector (256-element span)", "seconds": f"{t_vector:.5f}"},
            {"variant": "speedup", "seconds": f"{speedup:.1f}x"},
        ],
        "Ablation: element level off vs on (measured DAXPY, host)",
    )
    print("\n" + text)
    write_report("ablation_element_level.txt", text)
    write_bench_json("ablation_element_level", {
        "scalar_seconds": (t_scalar, "s"),
        "vector_seconds": (t_vector, "s"),
        "speedup": speedup,
    })


def test_ablation_shared_tiling(benchmark):
    """Tiling vs no reuse, modeled on the K80."""

    def run():
        k80 = machine("nvidia-k80")
        n = 4096
        wd = gemm_workdiv_tiling(n, 16, 1)
        tiled = GemmTilingKernel(native=True).characteristics(wd, n)
        untiled = KernelCharacteristics(
            flops=tiled.flops,
            global_read_bytes=2.0 * 8.0 * n**3,  # every operand from DRAM
            global_write_bytes=8.0 * n**2,
            working_set_bytes=1 << 34,  # nothing cacheable
            thread_access_pattern=AccessPattern.STRIDED,
            vector_friendly=False,
        )
        t_tiled = predict_time(k80, "gpu", wd, tiled, "both").seconds
        t_untiled = predict_time(k80, "gpu", wd, untiled, "both").seconds
        return t_tiled, t_untiled

    t_tiled, t_untiled = benchmark(run)
    # ~3.7x: the tiled kernel is itself shared-bandwidth bound (the
    # Fig. 9 ceiling), so the advantage is bounded by DRAM/shared BW
    # ratios rather than the raw reuse factor.
    assert t_untiled > 3 * t_tiled
    text = render_table(
        [
            {"variant": "shared-memory tiling", "modeled s": f"{t_tiled:.3f}"},
            {"variant": "no reuse (DRAM streaming)", "modeled s": f"{t_untiled:.3f}"},
            {"variant": "tiling advantage", "modeled s": f"{t_untiled / t_tiled:.1f}x"},
        ],
        "Ablation: shared-memory tiling on/off (modeled DGEMM n=4096, K80)",
    )
    print("\n" + text)
    write_report("ablation_tiling.txt", text)
    write_bench_json("ablation_tiling", {
        "tiled_modeled_seconds": (t_tiled, "s"),
        "untiled_modeled_seconds": (t_untiled, "s"),
        "tiling_advantage": t_untiled / t_tiled,
    })


def _striping_ablation(updates=4000, threads=4):
    import threading

    results = {}
    for stripes in (1, 64):
        dom = AtomicDomain(stripes=stripes)
        arr = np.zeros(64)

        def worker(base):
            for i in range(updates):
                dom.atomic_add(arr, (base * 16 + i) % 64, 1.0)

        def run():
            ts = [
                threading.Thread(target=worker, args=(k,))
                for k in range(threads)
            ]
            for t in ts:
                t.start()
            for t in ts:
                t.join()

        results[stripes] = measure_wall(run, repeat=3)
        assert arr.sum() in (threads * updates, 2 * threads * updates,
                             3 * threads * updates, 4 * threads * updates)
    return results


def test_ablation_atomic_striping(benchmark):
    results = benchmark.pedantic(_striping_ablation, rounds=1, iterations=1)
    # Correctness holds for any stripe count; striping must not *hurt*
    # beyond noise (on multi-core hosts it helps; a 1-core CI container
    # mostly shows parity).
    ratio = results[1] / results[64]
    assert ratio > 0.4, results
    text = render_table(
        [
            {"stripes": s, "seconds": f"{t:.5f}"}
            for s, t in sorted(results.items())
        ]
        + [{"stripes": "1-vs-64 ratio", "seconds": f"{ratio:.2f}"}],
        "Ablation: atomic lock striping (measured, disjoint-index updates)",
    )
    print("\n" + text)
    write_report("ablation_striping.txt", text)
    write_bench_json("ablation_striping", {
        "stripes_1_seconds": (results[1], "s"),
        "stripes_64_seconds": (results[64], "s"),
        "ratio_1_vs_64": ratio,
    })
