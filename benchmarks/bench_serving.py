"""Serving gateway acceptance bench: batching, fairness, identity, drain.

ROADMAP serving extension's acceptance gates, all against the
in-process :class:`repro.serve.Gateway` (the TCP layer adds only
framing, so the gateway is what the bounds are about):

* **batching throughput** — 1000 concurrent small axpy launches through
  a batching gateway finish at **>= 2x** the throughput of the same
  traffic with batching disabled (same lanes, same admission limits);
* **fair-share under abuse** — with one greedy tenant flooding the
  gateway, a well-behaved tenant's p99 latency stays **within 3x of its
  solo p99** (weighted deficit round-robin + per-tenant in-flight caps
  doing their job);
* **bit-identity** — results coming back from coalesced batches are
  bitwise equal to direct solo ``Workload.execute`` runs of the same
  payloads (a client cannot tell its launch was merged);
* **graceful shutdown** — after ``shutdown()`` no shared-memory segment
  and no block-worker pool survives, and every handle is resolved.

The standalone smoke mode drives the full TCP path for CI::

    python benchmarks/bench_serving.py smoke

200 concurrent socket clients (plus one greedy flooder in phase two)
send mixed traffic; the run asserts the same fairness bound end-to-end
and writes the latency table to ``reports/serving_smoke.txt``.
"""

from __future__ import annotations

import asyncio
import sys
import threading
import time

import numpy as np
import pytest

from repro import accelerator, get_dev_by_idx
from repro.bench import write_bench_json, write_report
from repro.comparison import render_table
from repro.dev.manager import device_workers
from repro.mem.shm import active_segment_names
from repro.serve import (
    Gateway,
    LaunchRequest,
    RetryAfter,
    ServeConfig,
    get_workload,
)

#: Small-launch fleet the throughput gate coalesces.
TOTAL_LAUNCHES = 1000
SMALL_N = 256

#: Well-behaved tenant's probe traffic for the fairness gate.
PROBE_REQUESTS = 60
PROBE_GAP = 0.002

#: Scheduler-noise floor for the p99 ratio: sub-2ms solo percentiles on
#: a shared CI runner are dominated by tick jitter, not by the gateway.
P99_FLOOR = 0.002


def _bench_config(**overrides) -> ServeConfig:
    """Wide-open admission so the gates isolate what they claim to
    measure (batching, fairness) instead of queue-bound artifacts."""
    base = dict(
        batch_window=0.004,
        batch_max=64,
        queue_bound=4096,
        tenant_inflight=4096,
        drain_timeout=120.0,
    )
    base.update(overrides)
    return ServeConfig(**base)


def _submit_with_retry(gateway: Gateway, request) -> "object":
    """Offer honouring backpressure — what any sane client does."""
    while True:
        try:
            return gateway.submit(request)
        except RetryAfter as exc:
            time.sleep(min(exc.delay, 0.01))


# ---------------------------------------------------------------------------
# Gate 1: batching >= 2x unbatched throughput at 1000 small launches
# ---------------------------------------------------------------------------


def _run_fleet(batching: bool) -> dict:
    """Push TOTAL_LAUNCHES small axpy requests through one gateway from
    eight submitter threads; returns wall time and batch stats."""
    rng = np.random.default_rng(11)
    x = rng.standard_normal(SMALL_N)
    y = rng.standard_normal(SMALL_N)
    gateway = Gateway(_bench_config(enable_batching=batching))
    handles = []
    handles_lock = threading.Lock()
    threads = 8
    per_thread = TOTAL_LAUNCHES // threads
    barrier = threading.Barrier(threads + 1)

    def submitter():
        barrier.wait(timeout=60)
        local = []
        for _ in range(per_thread):
            local.append(
                _submit_with_retry(
                    gateway,
                    LaunchRequest(
                        workload="axpy",
                        params={"alpha": 2.0},
                        arrays={"x": x, "y": y},
                    ),
                )
            )
        with handles_lock:
            handles.extend(local)

    workers = [threading.Thread(target=submitter) for _ in range(threads)]
    for t in workers:
        t.start()
    barrier.wait(timeout=60)
    start = time.perf_counter()
    for t in workers:
        t.join(timeout=300)
    results = [h.result(timeout=300) for h in handles]
    wall = time.perf_counter() - start
    gateway.shutdown(release_pools=False)

    expected = 2.0 * x + y
    for res in results:
        np.testing.assert_array_equal(res.arrays["y"], expected)
    sizes = [res.batch_size for res in results]
    return {
        "wall": wall,
        "throughput": len(results) / wall,
        "max_batch": max(sizes),
        "mean_batch": float(np.mean(sizes)),
    }


def test_serving_batching_throughput(benchmark):
    """The coalescer pays for itself: >= 2x throughput over the
    unbatched gateway at 1000 concurrent small launches."""

    def run():
        return {
            "unbatched": _run_fleet(batching=False),
            "batched": _run_fleet(batching=True),
        }

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "mode": mode,
            "wall [s]": f"{s['wall']:7.3f}",
            "req/s": f"{s['throughput']:9.1f}",
            "max batch": s["max_batch"],
            "mean batch": f"{s['mean_batch']:6.2f}",
        }
        for mode, s in stats.items()
    ]
    speedup = (
        stats["batched"]["throughput"] / stats["unbatched"]["throughput"]
    )
    text = render_table(
        rows,
        f"Serving: {TOTAL_LAUNCHES} small launches, batched vs unbatched "
        f"(speedup {speedup:.2f}x, bound >= 2x)",
    )
    print("\n" + text)
    write_report("serving_throughput.txt", text)
    write_bench_json("serving_throughput", {
        "batched_throughput": (stats["batched"]["throughput"], "req/s"),
        "unbatched_throughput": (
            stats["unbatched"]["throughput"], "req/s"
        ),
        "batching_speedup": speedup,
        "batched_max_batch": stats["batched"]["max_batch"],
        "batched_mean_batch": stats["batched"]["mean_batch"],
    })

    # The batcher really ran (not 1000 singleton "batches")...
    assert stats["batched"]["max_batch"] > 1, stats
    assert stats["unbatched"]["max_batch"] == 1, stats
    # ...and the acceptance bound holds.
    assert speedup >= 2.0, stats


# ---------------------------------------------------------------------------
# Gate 2: greedy tenant cannot blow up a well-behaved tenant's p99
# ---------------------------------------------------------------------------


def _probe_latencies(gateway: Gateway) -> np.ndarray:
    """The well-behaved tenant: paced small requests, solo or not."""
    rng = np.random.default_rng(23)
    x = rng.standard_normal(SMALL_N)
    y = rng.standard_normal(SMALL_N)
    handles = []
    for _ in range(PROBE_REQUESTS):
        handles.append(
            _submit_with_retry(
                gateway,
                LaunchRequest(
                    workload="axpy",
                    tenant="steady",
                    params={"alpha": 3.0},
                    arrays={"x": x, "y": y},
                ),
            )
        )
        time.sleep(PROBE_GAP)
    return np.array([h.result(timeout=300).latency for h in handles])


def _fairness_config() -> ServeConfig:
    """Realistic limits: bounded queues and in-flight caps are exactly
    the mechanism that contains the greedy tenant.  The tight in-flight
    cap matters — it bounds how much greedy work can sit ahead of a
    steady request on the lane (head-of-line blocking), which no amount
    of admission-order fairness can undo after the fact."""
    return ServeConfig(
        batch_window=0.002,
        batch_max=32,
        queue_bound=64,
        tenant_inflight=2,
        tenant_weights={"steady": 4.0},
        drain_timeout=120.0,
    )


def test_serving_fairness_greedy_tenant(benchmark):
    """One tenant flooding as fast as backpressure lets it; the steady
    tenant's p99 stays within 3x its solo p99."""
    rng = np.random.default_rng(31)
    flood_x = rng.standard_normal(4096)
    flood_y = rng.standard_normal(4096)

    def run():
        with Gateway(_fairness_config()) as solo_gw:
            solo = _probe_latencies(solo_gw)
            solo_gw.shutdown(release_pools=False)

        gateway = Gateway(_fairness_config())
        stop = threading.Event()

        def greedy():
            # Distinct alpha: the flood must not merge into (and thereby
            # subsidize) the steady tenant's batches.
            handles = []
            while not stop.is_set():
                try:
                    handles.append(
                        gateway.submit(
                            LaunchRequest(
                                workload="axpy",
                                tenant="greedy",
                                params={"alpha": 9.0},
                                arrays={"x": flood_x, "y": flood_y},
                            )
                        )
                    )
                except RetryAfter as exc:
                    stop.wait(min(exc.delay, 0.005))
            for h in handles:
                try:
                    h.result(timeout=300)
                except Exception:
                    pass

        flooder = threading.Thread(target=greedy)
        flooder.start()
        time.sleep(0.05)  # let the flood build a backlog first
        try:
            contended = _probe_latencies(gateway)
        finally:
            stop.set()
            flooder.join(timeout=300)
            gateway.shutdown(release_pools=False)
        return solo, contended

    solo, contended = benchmark.pedantic(run, rounds=1, iterations=1)
    solo_p99 = float(np.percentile(solo, 99))
    contended_p99 = float(np.percentile(contended, 99))
    bound = 3 * max(solo_p99, P99_FLOOR)
    rows = [
        {
            "scenario": name,
            "p50 [ms]": f"{np.percentile(lat, 50) * 1e3:8.2f}",
            "p95 [ms]": f"{np.percentile(lat, 95) * 1e3:8.2f}",
            "p99 [ms]": f"{np.percentile(lat, 99) * 1e3:8.2f}",
        }
        for name, lat in (("solo", solo), ("vs greedy tenant", contended))
    ]
    text = render_table(
        rows,
        "Serving: steady tenant latency, solo vs under a greedy flood "
        f"(bound: p99 <= 3x solo p99 = {bound * 1e3:.2f} ms)",
    )
    print("\n" + text)
    write_report("serving_fairness.txt", text)
    write_bench_json("serving_fairness", {
        "solo_p99": (solo_p99, "s"),
        "contended_p99": (contended_p99, "s"),
        "p99_bound": (bound, "s"),
    })
    assert contended_p99 <= bound, (solo_p99, contended_p99)


# ---------------------------------------------------------------------------
# Gate 3: batched results are bit-identical to the direct solo path
# ---------------------------------------------------------------------------


def test_serving_batched_bit_identity():
    """A burst of mixed axpy/gemm requests coalesced by the gateway
    returns exactly the bytes the direct solo ``execute`` path yields."""
    rng = np.random.default_rng(5)
    acc = accelerator("AccCpuSerial")
    device = get_dev_by_idx(acc, 0)

    requests = []
    for _ in range(24):
        x = rng.standard_normal(257)
        y = rng.standard_normal(257)
        requests.append(
            LaunchRequest(
                workload="axpy",
                params={"alpha": 1.5},
                arrays={"x": x, "y": y},
            )
        )
    for _ in range(12):
        A = rng.standard_normal((96, 96))
        B = rng.standard_normal((96, 96))
        C = rng.standard_normal((96, 96))
        requests.append(
            LaunchRequest(
                workload="gemm",
                params={"alpha": 2.0, "beta": -1.0},
                arrays={"A": A, "B": B, "C": C},
            )
        )

    # Direct path first: one solo execute per request, untouched by the
    # gateway.  Payload copies keep the reference honest.
    reference = []
    for req in requests:
        solo = LaunchRequest(
            workload=req.workload,
            params=dict(req.params),
            arrays={k: v.copy() for k, v in req.arrays.items()},
        )
        reference.append(
            get_workload(req.workload).execute([solo], acc, device)[0]
        )

    gateway = Gateway(_bench_config(batch_window=0.01))
    try:
        handles = [gateway.submit(req) for req in requests]
        results = [h.result(timeout=300) for h in handles]
    finally:
        gateway.shutdown(release_pools=False)

    assert max(r.batch_size for r in results) > 1, "burst never batched"
    for res, ref in zip(results, reference):
        for name, ref_arr in ref.items():
            np.testing.assert_array_equal(
                res.arrays[name],
                ref_arr,
                err_msg=f"request #{res.request_id} array {name!r}",
            )


# ---------------------------------------------------------------------------
# Gate 4: graceful shutdown leaks nothing
# ---------------------------------------------------------------------------


def test_serving_shutdown_releases_everything():
    """After a drained shutdown: zero live shm segments, zero worker
    pools, every handle resolved, pump and lane threads gone."""
    rng = np.random.default_rng(17)
    gateway = Gateway(
        _bench_config(
            # A multi-core lane too, so process/thread pools actually
            # spin up and must be torn down again.
            lanes=(("AccCpuSerial", 0), ("AccCpuOmp2Blocks", 0)),
        )
    )
    handles = []
    for i in range(64):
        x = rng.standard_normal(SMALL_N)
        y = rng.standard_normal(SMALL_N)
        handles.append(
            _submit_with_retry(
                gateway,
                LaunchRequest(
                    workload="axpy",
                    backend=("AccCpuOmp2Blocks" if i % 2 else ""),
                    params={"alpha": 2.0},
                    arrays={"x": x, "y": y},
                ),
            )
        )
    drained = gateway.shutdown(drain=True, release_pools=True)
    assert drained, "graceful shutdown timed out"
    for h in handles:
        assert h.done()
        h.result(timeout=1)  # raises if anything was failed instead

    assert active_segment_names() == [], "leaked shm segments"
    assert device_workers() == {}, "leaked block-worker pools"
    assert not gateway._pump.is_alive()
    for lane in gateway.router.lanes:
        assert lane.inflight == 0


# ---------------------------------------------------------------------------
# Standalone smoke mode: the full TCP path under 200 clients (for CI)
# ---------------------------------------------------------------------------

SMOKE_CLIENTS = 200
SMOKE_PER_CLIENT = 4


async def _smoke_phase(port: int, greedy: bool) -> dict:
    """SMOKE_CLIENTS sockets, each sending SMOKE_PER_CLIENT small
    launches; when ``greedy`` a flooding client runs alongside."""
    from repro.serve.client import ServeClient

    rng = np.random.default_rng(41)
    x = rng.standard_normal(SMALL_N)
    y = rng.standard_normal(SMALL_N)
    expected = 2.0 * x + y
    latencies: list = []
    stop = asyncio.Event()

    async def fleet_client(idx: int) -> None:
        async with ServeClient(port=port) as client:
            for _ in range(SMOKE_PER_CLIENT):
                t0 = time.perf_counter()
                res = await client.launch(
                    "axpy",
                    tenant="fleet",
                    params={"alpha": 2.0},
                    arrays={"x": x, "y": y},
                )
                latencies.append(time.perf_counter() - t0)
                np.testing.assert_array_equal(res.arrays["y"], expected)

    async def greedy_client() -> None:
        big_x = rng.standard_normal(4096)
        big_y = rng.standard_normal(4096)
        async with ServeClient(port=port) as client:
            while not stop.is_set():
                await asyncio.gather(
                    *(
                        client.launch(
                            "axpy",
                            tenant="greedy",
                            params={"alpha": 9.0},
                            arrays={"x": big_x, "y": big_y},
                        )
                        for _ in range(8)
                    )
                )

    flood = asyncio.ensure_future(greedy_client()) if greedy else None
    if greedy:
        await asyncio.sleep(0.05)
    try:
        await asyncio.gather(
            *(fleet_client(i) for i in range(SMOKE_CLIENTS))
        )
    finally:
        stop.set()
        if flood is not None:
            await flood
    lat = np.array(latencies)
    return {
        "requests": len(lat),
        "p50": float(np.percentile(lat, 50)),
        "p95": float(np.percentile(lat, 95)),
        "p99": float(np.percentile(lat, 99)),
    }


async def _smoke_main() -> int:
    from repro.serve.server import ServeServer

    config = ServeConfig(
        port=0,
        batch_window=0.002,
        batch_max=64,
        queue_bound=64,
        tenant_inflight=8,
        tenant_weights={"fleet": 4.0},
        drain_timeout=120.0,
    )
    server = ServeServer(config=config)
    await server.start()
    try:
        solo = await _smoke_phase(server.port, greedy=False)
        contended = await _smoke_phase(server.port, greedy=True)
    finally:
        await server.stop()

    bound = 3 * max(solo["p99"], P99_FLOOR)
    rows = [
        {
            "phase": name,
            "requests": s["requests"],
            "p50 [ms]": f"{s['p50'] * 1e3:8.2f}",
            "p95 [ms]": f"{s['p95'] * 1e3:8.2f}",
            "p99 [ms]": f"{s['p99'] * 1e3:8.2f}",
        }
        for name, s in (
            ("200 clients solo", solo),
            ("200 clients + greedy flood", contended),
        )
    ]
    text = render_table(
        rows,
        f"Serving smoke: {SMOKE_CLIENTS} TCP clients, fleet-tenant p99 "
        f"bound {bound * 1e3:.2f} ms",
    )
    print("\n" + text)
    write_report("serving_smoke.txt", text)
    write_bench_json("serving_smoke", {
        "solo_p99": (solo["p99"], "s"),
        "contended_p99": (contended["p99"], "s"),
        "solo_requests": solo["requests"],
        "contended_requests": contended["requests"],
    })

    ok = True
    if solo["requests"] != SMOKE_CLIENTS * SMOKE_PER_CLIENT:
        print(f"smoke FAILED: lost requests in solo phase: {solo}")
        ok = False
    if contended["p99"] > bound:
        print(
            "smoke FAILED: fleet p99 "
            f"{contended['p99'] * 1e3:.2f} ms exceeds {bound * 1e3:.2f} ms"
        )
        ok = False
    if active_segment_names():
        print(f"smoke FAILED: leaked shm segments {active_segment_names()}")
        ok = False
    if ok:
        print("smoke ok: fairness bound held, no leaks")
    return 0 if ok else 1


if __name__ == "__main__":
    if len(sys.argv) > 1 and sys.argv[1] == "smoke":
        raise SystemExit(asyncio.run(_smoke_main()))
    raise SystemExit(pytest.main([__file__, "-v"]))
