"""Extension: real multi-core scaling of block dispatch.

The paper's central claim is that one kernel source maps onto genuinely
parallel back-ends with zero abstraction overhead (Sec. 3.3, Figs. 8-9).
Until the process-pool scheduler, this reproduction could not honour the
"genuinely parallel" half on CPUs: thread-pool block dispatch serialises
on the GIL, so the OMP2-blocks back-end was parallel in name only.

This bench runs element-level AXPY and GEMM — the two kernels the
paper's CPU evaluation leans on — under all three block-scheduling
strategies and reports wall-clock speedups over sequential dispatch.
Two properties are asserted:

* **identity** — results are bit-identical across all three schedulers,
  always (a scheduler that changes answers is wrong, not fast);
* **scaling** — process-pool AXPY beats sequential by a core-dependent
  factor (>= 1.6x on 2 cores, >= 2.5x on 4+; skipped on single-core
  hosts where no wall-clock win is possible).  ``REPRO_REQUIRE_SCALING``
  overrides the required factor explicitly — CI's 2-core smoke job sets
  it so the assertion can never silently self-disable.
"""

import os

import numpy as np
import pytest

from repro import (
    QueueBlocking,
    WorkDivMembers,
    clear_plan_cache,
    create_task_kernel,
    get_dev_by_idx,
    mem,
)
from repro.acc.cpu import AccCpuOmp2Blocks
from repro.bench import measure_wall, write_bench_json, write_report
from repro.comparison import render_table
from repro.kernels.axpy import AxpyElementsKernel, axpy_reference
from repro.kernels.gemm import GemmOmpStyleKernel, dgemm_reference
from repro.mem.shm import SHM_NAME_PREFIX, active_segment_names
from repro.runtime import get_plan, shutdown_schedulers
from repro.runtime.scheduler import SCHEDULER_ENV

#: REPRO_SCHEDULER value -> the plan schedule it must resolve to.
SCHEDULES = {
    "sequential": "sequential",
    "threads": "pooled",
    "processes": "processes",
    "compiled": "compiled",
}

AXPY_N = 1 << 22
AXPY_BLOCKS = 16
AXPY_LAUNCHES = 4

#: Work division for the trace-vectorization gate: GPU-style block-heavy
#: decomposition where per-block interpretation overhead dominates —
#: the regime the compiled replay exists to eliminate.
COMPILED_BLOCKS = 16384
COMPILED_SPEEDUP_ENV = "REPRO_REQUIRE_COMPILED_SPEEDUP"

GEMM_N = 384
GEMM_ROWS_PER_BLOCK = 24
GEMM_LAUNCHES = 2


def _required_speedup():
    """The process-vs-sequential factor this host must reach, or None
    when the host cannot parallelise at all (single core)."""
    env = os.environ.get("REPRO_REQUIRE_SCALING")
    if env:
        return float(env)
    cores = os.cpu_count() or 1
    if cores >= 4:
        return 2.5
    if cores >= 2:
        return 1.6
    return None


class _ForcedSchedule:
    def __init__(self, value):
        self.value = value

    def __enter__(self):
        self.prev = os.environ.get(SCHEDULER_ENV)
        os.environ[SCHEDULER_ENV] = self.value
        return self

    def __exit__(self, *exc):
        if self.prev is None:
            os.environ.pop(SCHEDULER_ENV, None)
        else:
            os.environ[SCHEDULER_ENV] = self.prev


def _run_axpy(schedule_env):
    """(wall seconds per launch, final y array) under one strategy."""
    dev = get_dev_by_idx(AccCpuOmp2Blocks, 0)
    queue = QueueBlocking(dev)
    n = AXPY_N
    x = mem.alloc(dev, n, shm=True)
    y = mem.alloc(dev, n, shm=True)
    rng = np.random.default_rng(7)
    x0 = rng.random(n)
    y0 = rng.random(n)
    x.as_numpy()[:] = x0
    wd = WorkDivMembers.make(
        (AXPY_BLOCKS,), (1,), (-(-n // AXPY_BLOCKS),)
    )
    task = create_task_kernel(
        AccCpuOmp2Blocks, wd, AxpyElementsKernel(), n, 1.5, x, y
    )
    with _ForcedSchedule(schedule_env):
        plan = get_plan(task, dev)
        assert plan.schedule == SCHEDULES[schedule_env], (
            schedule_env,
            plan.schedule,
        )
        y.as_numpy()[:] = y0
        queue.enqueue(task)  # warm: plan cached, pool spawned, shm mapped
        result = y.as_numpy().copy()
        assert np.array_equal(result, axpy_reference(1.5, x0, y0))

        def launches():
            for _ in range(AXPY_LAUNCHES):
                queue.enqueue(task)

        seconds = measure_wall(launches, repeat=3) / AXPY_LAUNCHES
    x.free()
    y.free()
    return seconds, result


def _run_gemm(schedule_env):
    """(wall seconds per launch, final C array) under one strategy."""
    dev = get_dev_by_idx(AccCpuOmp2Blocks, 0)
    queue = QueueBlocking(dev)
    n = GEMM_N
    rng = np.random.default_rng(11)
    a0 = rng.random((n, n))
    b0 = rng.random((n, n))
    c0 = rng.random((n, n))
    A = mem.alloc(dev, (n, n), shm=True)
    B = mem.alloc(dev, (n, n), shm=True)
    C = mem.alloc(dev, (n, n), shm=True)
    A.as_numpy()[:] = a0
    B.as_numpy()[:] = b0
    blocks = -(-n // GEMM_ROWS_PER_BLOCK)
    wd = WorkDivMembers.make((blocks,), (1,), (GEMM_ROWS_PER_BLOCK,))
    task = create_task_kernel(
        AccCpuOmp2Blocks, wd, GemmOmpStyleKernel(), n, 1.0, A, B, 1.0, C
    )
    with _ForcedSchedule(schedule_env):
        plan = get_plan(task, dev)
        assert plan.schedule == SCHEDULES[schedule_env]
        C.as_numpy()[:] = c0
        queue.enqueue(task)
        result = C.as_numpy().copy()
        assert np.allclose(result, dgemm_reference(1.0, a0, b0, 1.0, c0))

        def launches():
            for _ in range(GEMM_LAUNCHES):
                queue.enqueue(task)

        seconds = measure_wall(launches, repeat=3) / GEMM_LAUNCHES
    A.free()
    B.free()
    C.free()
    return seconds, result


def test_scaling():
    clear_plan_cache()
    axpy = {}
    gemm = {}
    axpy_results = {}
    gemm_results = {}
    try:
        for env_value in SCHEDULES:
            axpy[env_value], axpy_results[env_value] = _run_axpy(env_value)
            gemm[env_value], gemm_results[env_value] = _run_gemm(env_value)
    finally:
        shutdown_schedulers()

    # Identity first: a fast wrong answer is a wrong answer.  The
    # kernels are pure numpy expressions over disjoint spans, so every
    # strategy must be *bit*-identical, not merely close.
    for env_value in SCHEDULES:
        assert np.array_equal(
            axpy_results[env_value], axpy_results["sequential"]
        ), f"AXPY result differs under {env_value}"
        assert np.array_equal(
            gemm_results[env_value], gemm_results["sequential"]
        ), f"GEMM result differs under {env_value}"

    rows = [
        {
            "Strategy": env_value,
            "AXPY [ms]": f"{axpy[env_value] * 1e3:8.2f}",
            "AXPY speedup": f"{axpy['sequential'] / axpy[env_value]:5.2f}x",
            "GEMM [ms]": f"{gemm[env_value] * 1e3:8.2f}",
            "GEMM speedup": f"{gemm['sequential'] / gemm[env_value]:5.2f}x",
        }
        for env_value in SCHEDULES
    ]
    text = render_table(
        rows,
        "Extension: block-dispatch scaling, element-level AXPY "
        f"(n=2^22, {AXPY_BLOCKS} blocks) and GEMM (n={GEMM_N}) on "
        f"{os.cpu_count()} cores",
    )
    print("\n" + text)
    write_report("scaling.txt", text)
    metrics = {}
    for env_value in SCHEDULES:
        metrics[f"axpy_{env_value}"] = (axpy[env_value], "s")
        metrics[f"gemm_{env_value}"] = (gemm[env_value], "s")
    write_bench_json("scaling", metrics)

    required = _required_speedup()
    if required is not None:
        speedup = axpy["sequential"] / axpy["processes"]
        assert speedup >= required, (
            f"process-pool AXPY speedup {speedup:.2f}x below the "
            f"required {required:.1f}x on {os.cpu_count()} cores"
        )


def test_compiled_vectorization_gate():
    """The trace-vectorizer's acceptance gate: element AXPY at n=2^22
    under a block-heavy work division runs >= 5x faster compiled than
    interpreted sequential, bit-identically, and warm replays never
    re-trace.  ``REPRO_REQUIRE_COMPILED_SPEEDUP`` overrides the factor
    (CI sets it explicitly so the gate cannot silently relax)."""
    from repro.compile import compile_stats, reset_compile_stats

    n = AXPY_N
    blocks = COMPILED_BLOCKS
    rng = np.random.default_rng(7)
    x0 = rng.random(n)
    y0 = rng.random(n)
    expected = axpy_reference(1.5, x0, y0)

    def run(schedule_env):
        clear_plan_cache()
        dev = get_dev_by_idx(AccCpuOmp2Blocks, 0)
        queue = QueueBlocking(dev)
        x = mem.alloc(dev, n)
        y = mem.alloc(dev, n)
        x.as_numpy()[:] = x0
        y.as_numpy()[:] = y0
        wd = WorkDivMembers.make((blocks,), (1,), (-(-n // blocks),))
        task = create_task_kernel(
            AccCpuOmp2Blocks, wd, AxpyElementsKernel(), n, 1.5, x, y
        )
        with _ForcedSchedule(schedule_env):
            plan = get_plan(task, dev)
            assert plan.schedule == SCHEDULES[schedule_env]
            queue.enqueue(task)  # warm: trace once, cache the replay
            result = y.as_numpy().copy()
            y.as_numpy()[:] = y0

            def launches():
                for _ in range(AXPY_LAUNCHES):
                    queue.enqueue(task)

            seconds = measure_wall(launches, repeat=3) / AXPY_LAUNCHES
        x.free()
        y.free()
        return seconds, result

    seq_s, seq_result = run("sequential")
    reset_compile_stats()
    comp_s, comp_result = run("compiled")
    stats = compile_stats()

    # Identity: the vectorised replay is the same numpy ops in the same
    # order, so bytes must match — not merely be close.
    assert np.array_equal(comp_result, expected)
    assert np.array_equal(comp_result, seq_result)

    # Warm replay: one trace on the cold launch, zero re-traces over
    # every warm launch (1 explicit + (warmup+repeat) timing rounds of
    # AXPY_LAUNCHES each), no fallbacks.
    assert stats["traces"] == 1, stats
    assert stats["retraces"] == 0, stats
    assert stats["fallbacks"] == {}, stats
    assert stats["compiled_launches"] == 1 + 4 * AXPY_LAUNCHES, stats

    speedup = seq_s / comp_s
    required = float(os.environ.get(COMPILED_SPEEDUP_ENV, "5.0"))
    text = render_table(
        [
            {
                "Strategy": name,
                "AXPY [ms]": f"{sec * 1e3:8.2f}",
                "speedup": f"{seq_s / sec:5.2f}x",
            }
            for name, sec in (
                ("sequential", seq_s),
                ("compiled", comp_s),
            )
        ],
        "Extension: trace-vectorized replay, element-level AXPY "
        f"(n=2^22, {blocks} blocks) on {os.cpu_count()} cores",
    )
    print("\n" + text)
    write_report("compiled.txt", text)
    write_bench_json(
        "compiled",
        {
            "axpy_sequential": (seq_s, "s"),
            "axpy_compiled": (comp_s, "s"),
            "speedup": speedup,
            "traces": stats["traces"],
            "retraces": stats["retraces"],
        },
    )
    assert speedup >= required, (
        f"compiled AXPY speedup {speedup:.2f}x below the required "
        f"{required:.1f}x ({blocks} blocks, {os.cpu_count()} cores)"
    )


def test_no_shm_leaks_after_scaling():
    """Every segment the bench allocated was freed, and nothing of ours
    lingers in /dev/shm (orphaned segments would accumulate across CI
    runs on persistent runners)."""
    assert active_segment_names() == []
    if os.path.isdir("/dev/shm"):
        mine = f"{SHM_NAME_PREFIX}_{os.getpid()}_"
        leftover = [f for f in os.listdir("/dev/shm") if f.startswith(mine)]
        assert leftover == [], leftover


def test_process_dispatch_identity_even_on_one_core(monkeypatch):
    """The identity half of the scaling claim must hold everywhere,
    including single-core hosts where the speedup half is skipped.
    Two workers are forced so blocks genuinely cross the process
    boundary even where one worker would run the chunk inline."""
    from repro.runtime.scheduler import PROCESS_WORKERS_ENV

    monkeypatch.setenv(PROCESS_WORKERS_ENV, "2")
    clear_plan_cache()
    shutdown_schedulers()  # drop any pool sized before the env change
    try:
        _, seq = _run_axpy("sequential")
        _, proc = _run_axpy("processes")
    finally:
        shutdown_schedulers()
    assert np.array_equal(seq, proc)


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-v", "-s"]))
