"""Wall-clock micro-benchmarks of the kernel library on the host.

Not a paper figure — the working set a performance-curious user runs
first.  Each benchmark executes the full library path (buffers, queue,
work division, OpenMP-block back-end) and verifies its result, so these
double as timed integration tests.
"""

import numpy as np
import pytest

from repro import (
    AccCpuOmp2Blocks,
    QueueBlocking,
    WorkDivMembers,
    create_task_kernel,
    get_dev_by_idx,
    mem,
)
from repro.kernels import (
    AxpyElementsKernel,
    DotKernel,
    GemmTilingKernel,
    HistogramKernel,
    Jacobi2DKernel,
    dgemm_reference,
    gemm_workdiv_tiling,
    histogram_reference,
    jacobi_reference_step,
    scan_exclusive,
    scan_reference,
)

ACC = AccCpuOmp2Blocks

#: Mean wall seconds per kernel, dumped as BENCH_kernels.json once the
#: module finishes (machine-readable history for trend tooling).
_JSON_METRICS = {}


def _note(name, benchmark):
    stats = getattr(benchmark, "stats", None)
    if stats is not None:
        _JSON_METRICS[f"{name}_mean"] = (stats.stats.mean, "s")


@pytest.fixture(scope="module", autouse=True)
def _bench_json():
    yield
    if _JSON_METRICS:
        from repro.bench import write_bench_json

        write_bench_json("kernels", _JSON_METRICS)


@pytest.fixture(scope="module")
def dev():
    return get_dev_by_idx(ACC, 0)


@pytest.fixture(scope="module")
def queue(dev):
    return QueueBlocking(dev)


def test_axpy_1m(benchmark, dev, queue, rng):
    n = 1 << 20
    x = mem.alloc(dev, n)
    y = mem.alloc(dev, n)
    x_h = rng.random(n)
    mem.copy(queue, x, x_h)
    mem.memset(queue, y, 1.0)
    wd = WorkDivMembers.make(n // 8192, 1, 8192)
    task = create_task_kernel(ACC, wd, AxpyElementsKernel(), n, 2.0, x, y)
    benchmark(lambda: queue.enqueue(task))
    _note("axpy_1m", benchmark)
    assert np.isfinite(y.as_numpy()).all()


def test_dot_1m(benchmark, dev, queue, rng):
    n = 1 << 20
    x = mem.alloc(dev, n)
    out = mem.alloc(dev, 1)
    x_h = rng.random(n)
    mem.copy(queue, x, x_h)
    wd = WorkDivMembers.make(n // 16384, 1, 16384)

    def run():
        mem.memset(queue, out, 0.0)
        queue.enqueue(create_task_kernel(ACC, wd, DotKernel(), n, x, x, out))

    benchmark(run)
    _note("dot_1m", benchmark)
    assert out.as_numpy()[0] == pytest.approx(float(x_h @ x_h), rel=1e-9)


def test_gemm_tiling_128(benchmark, dev, queue, rng):
    n = 128
    A, B, C = (rng.random((n, n)) for _ in range(3))
    bufs = []
    for h in (A, B, C):
        b = mem.alloc(dev, (n, n))
        mem.copy(queue, b, h)
        bufs.append(b)
    wd = gemm_workdiv_tiling(n, 1, 32)
    task = create_task_kernel(
        ACC, wd, GemmTilingKernel(), n, 1.0, bufs[0], bufs[1], 0.0, bufs[2]
    )
    benchmark(lambda: queue.enqueue(task))
    _note("gemm_tiling_128", benchmark)
    np.testing.assert_allclose(
        bufs[2].as_numpy(), dgemm_reference(1.0, A, B, 0.0, C), rtol=1e-10
    )


def test_jacobi_256(benchmark, dev, queue, rng):
    h = w = 256
    g = rng.random((h, w))
    src = mem.alloc(dev, (h, w))
    dst = mem.alloc(dev, (h, w))
    mem.copy(queue, src, g)
    from repro import Vec

    elems = Vec(16, 32)
    wd = WorkDivMembers.make(Vec(h, w).ceil_div(elems), Vec(1, 1), elems)
    task = create_task_kernel(ACC, wd, Jacobi2DKernel(), h, w, 0.2, src, dst)
    benchmark(lambda: queue.enqueue(task))
    _note("jacobi_256", benchmark)
    np.testing.assert_allclose(dst.as_numpy(), jacobi_reference_step(g, 0.2))


def test_scan_64k(benchmark, dev, queue, rng):
    n = 1 << 16
    x_h = rng.random(n)
    x = mem.alloc(dev, n)
    out = mem.alloc(dev, n)
    mem.copy(queue, x, x_h)
    benchmark(lambda: scan_exclusive(ACC, queue, x, out, n, chunk=1024))
    _note("scan_64k", benchmark)
    np.testing.assert_allclose(out.as_numpy(), scan_reference(x_h), rtol=1e-10)


def test_histogram_256k(benchmark, dev, queue, rng):
    n = 1 << 18
    x_h = rng.random(n) * 0.999
    x = mem.alloc(dev, n)
    hist = mem.alloc(dev, 64)
    mem.copy(queue, x, x_h)
    wd = WorkDivMembers.make(16, 1, n // 16)

    def run():
        mem.memset(queue, hist, 0.0)
        queue.enqueue(
            create_task_kernel(ACC, wd, HistogramKernel(), n, 0.0, 1.0, 64, x, hist)
        )

    benchmark(run)
    _note("histogram_256k", benchmark)
    np.testing.assert_array_equal(
        hist.as_numpy(), histogram_reference(x_h, 64, 0.0, 1.0)
    )
