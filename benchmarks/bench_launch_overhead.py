"""Extension: per-launch library overhead, measured per back-end.

The paper attributes part of its <6 % overhead to "a small number of
additional CUDA runtime calls" per launch.  This bench measures *this*
library's per-launch cost (empty kernel, one-thread grid) on every
back-end — the quantity an adopter budgeting many small launches needs.

Since the Task→Plan→Execute refactor the cost splits in two: a **cold**
launch builds a `LaunchPlan` (work-div validation, device properties,
runner selection) while a **warm** launch serves it from the LRU plan
cache.  Both are reported, together with the cache hit rate the
`CountingObserver` instrumentation sees — the acceptance check that
repeated launches really do bypass planning.
"""

import pytest

from repro import (
    QueueBlocking,
    WorkDivMembers,
    accelerator,
    accelerator_names,
    clear_plan_cache,
    create_task_kernel,
    fn_acc,
    get_dev_by_idx,
)
from repro.bench import (
    launch_stats,
    measure_wall,
    write_bench_json,
    write_report,
)
from repro.comparison import render_table

LAUNCHES = 100


@fn_acc
def _empty(acc):
    pass


def _setup(acc_name):
    acc = accelerator(acc_name)
    dev = get_dev_by_idx(acc, 0)
    queue = QueueBlocking(dev)
    task = create_task_kernel(acc, WorkDivMembers.make(1, 1, 1), _empty)
    return queue, task


def _warm_cost(acc_name):
    """Per-launch cost with the plan served from the cache."""
    queue, task = _setup(acc_name)

    def launch():
        for _ in range(LAUNCHES):
            queue.enqueue(task)

    return measure_wall(launch, repeat=3) / LAUNCHES


def _cold_cost(acc_name):
    """Per-launch cost when every launch must rebuild its plan."""
    queue, task = _setup(acc_name)

    def launch():
        for _ in range(LAUNCHES):
            clear_plan_cache()
            queue.enqueue(task)

    return measure_wall(launch, repeat=3) / LAUNCHES


def _hit_rate(acc_name):
    """Observed plan-cache hit rate over a fresh repeated-launch run."""
    queue, task = _setup(acc_name)
    clear_plan_cache()
    with launch_stats() as stats:
        for _ in range(LAUNCHES):
            queue.enqueue(task)
    return stats.plan_cache_hit_rate


def test_launch_overhead(benchmark):
    names = accelerator_names()

    def run():
        return {
            name: {
                "cold": _cold_cost(name),
                "warm": _warm_cost(name),
                "hit_rate": _hit_rate(name),
            }
            for name in names
        }

    costs = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        {
            "Back-end": name,
            "cold [us]": f"{c['cold'] * 1e6:8.1f}",
            "warm [us]": f"{c['warm'] * 1e6:8.1f}",
            "saved": f"{(1 - c['warm'] / c['cold']) * 100:5.1f} %",
            "cache hits": f"{c['hit_rate'] * 100:5.1f} %",
        }
        for name, c in sorted(costs.items(), key=lambda kv: kv[1]["warm"])
    ]
    text = render_table(
        rows,
        "Extension: per-launch overhead (empty kernel), "
        "cold plan build vs. warm plan-cache hit",
    )
    print("\n" + text)
    write_report("launch_overhead.txt", text)
    metrics = {}
    for name, c in costs.items():
        metrics[f"{name}_cold_launch"] = (c["cold"], "s")
        metrics[f"{name}_warm_launch"] = (c["warm"], "s")
        metrics[f"{name}_cache_hit_rate"] = c["hit_rate"]
    write_bench_json("launch_overhead", metrics)

    # Repeated launches of an identical task must be served by the plan
    # cache: 1 miss, LAUNCHES-1 hits.
    for name, c in costs.items():
        assert c["hit_rate"] == pytest.approx((LAUNCHES - 1) / LAUNCHES), name

    # The cache must pay for itself where it matters most: the
    # OpenMP-block back-end (pooled scheduler, paper Fig. 5's CPU case)
    # launches no slower warm than cold.
    assert costs["AccCpuOmp2Blocks"]["warm"] <= costs["AccCpuOmp2Blocks"]["cold"]

    # Sanity bands (generous: 1-core CI container): the single-threaded
    # back-ends launch in tens of microseconds; thread-spawning
    # back-ends stay under ~10 ms per launch.
    assert costs["AccCpuSerial"]["warm"] < 2e-3, costs
    for name, c in costs.items():
        assert c["warm"] < 2e-2, (name, c)
    # Serial launches are not slower than thread-spawning ones.
    assert (
        costs["AccCpuSerial"]["warm"] <= costs["AccCpuThreads"]["warm"] * 3
    )


def test_compiled_replay_launch_overhead():
    """The `compiled` strategy's warm-launch cost: after the cold trace,
    every launch is one cached-replay dispatch — no re-trace, and a
    per-launch cost in the same band as the other single-dispatch
    back-ends (a replay that secretly re-traced would sit orders of
    magnitude above it)."""
    import os

    from repro.compile import compile_stats, reset_compile_stats
    from repro.runtime.scheduler import SCHEDULER_ENV

    prev = os.environ.get(SCHEDULER_ENV)
    os.environ[SCHEDULER_ENV] = "compiled"
    clear_plan_cache()
    reset_compile_stats()
    try:
        import numpy as np

        from repro import mem
        from repro.kernels import AxpyKernel

        acc = accelerator("AccCpuOmp2Blocks")
        dev = get_dev_by_idx(acc, 0)
        queue = QueueBlocking(dev)
        n = 64
        x = mem.alloc(dev, n)
        y = mem.alloc(dev, n)
        x.as_numpy()[:] = np.arange(float(n))
        task = create_task_kernel(
            acc, WorkDivMembers.make(n, 1, 1), AxpyKernel(), n, 1.5, x, y
        )
        queue.enqueue(task)  # cold: trace + compile

        def launch():
            for _ in range(LAUNCHES):
                queue.enqueue(task)

        warm = measure_wall(launch, repeat=3) / LAUNCHES
        stats = compile_stats()
        x.free()
        y.free()
    finally:
        if prev is None:
            os.environ.pop(SCHEDULER_ENV, None)
        else:
            os.environ[SCHEDULER_ENV] = prev
        clear_plan_cache()

    text = render_table(
        [{
            "Strategy": "compiled (warm replay)",
            "warm [us]": f"{warm * 1e6:8.1f}",
            "traces": str(stats["traces"]),
            "retraces": str(stats["retraces"]),
        }],
        "Extension: compiled-replay launch overhead (64-thread AXPY)",
    )
    print("\n" + text)
    write_report("launch_overhead_compiled.txt", text)
    write_bench_json(
        "launch_overhead_compiled",
        {
            "compiled_warm_launch": (warm, "s"),
            "compiled_traces": stats["traces"],
            "compiled_retraces": stats["retraces"],
        },
    )

    # Warm compiled replay must never re-trace.
    assert stats["traces"] == 1, stats
    assert stats["retraces"] == 0, stats
    assert stats["fallbacks"] == {}, stats
    # Same order-of-magnitude band as the other warm launches.
    assert warm < 2e-2, warm


def test_chunking_precomputed_in_plan():
    """Warm launches must not re-partition block indices: the chunked
    dispatch geometry is memoised on the cached ``LaunchPlan``
    (``chunks_for``), and the pooled scheduler consults it rather than
    re-running ``chunk_indices`` per dispatch."""
    from repro.runtime import get_plan, resolve_max_block_workers

    acc = accelerator("AccCpuOmp2Blocks")
    dev = get_dev_by_idx(acc, 0)
    queue = QueueBlocking(dev)
    task = create_task_kernel(acc, WorkDivMembers.make(32, 1, 1), _empty)
    queue.enqueue(task)
    plan = get_plan(task, dev)
    assert plan.schedule == "pooled"

    workers = resolve_max_block_workers()
    chunks = plan.chunks_for(workers)
    bounds = plan.chunk_bounds_for(workers)
    # Memoised: same objects on every consultation.
    assert plan.chunks_for(workers) is chunks
    assert plan.chunk_bounds_for(workers) is bounds
    assert sum(len(c) for c in chunks) == 32
    assert bounds[0][0] == 0 and bounds[-1][1] == 32

    # And dispatch actually reads the memoised geometry: intercept the
    # plan's accessor and relaunch.
    consulted = []
    orig = plan.chunks_for
    plan.chunks_for = lambda w: (consulted.append(w), orig(w))[1]
    try:
        queue.enqueue(task)
    finally:
        plan.chunks_for = orig
    assert consulted == [workers]


def test_telemetry_fast_path_when_unobserved():
    """The telemetry guard, structural half: with no observer registered
    the span helper must return the shared no-op singleton — one falsy
    check, no allocation, no clock read — so an unobserved launch pays
    nothing for the telemetry layer's existence."""
    from repro.runtime.instrument import observers
    from repro.telemetry.spans import NULL_SPAN, span

    assert observers() == ()
    assert span("launch") is NULL_SPAN
    assert span("mem.copy", cat="mem") is NULL_SPAN
    assert span("plan.build", cat="runtime", extra="attr") is NULL_SPAN


def test_telemetry_overhead_bounded():
    """The telemetry guard, measured half: warm launches with a
    collector registered must stay within an order of magnitude of the
    bare path (block timing + histogram updates cost something, but a
    collector must never turn microsecond launches into millisecond
    ones).  The unobserved band itself is asserted by
    ``test_launch_overhead``."""
    from repro import telemetry

    bare = _warm_cost("AccCpuSerial")
    with telemetry.collect():
        observed = _warm_cost("AccCpuSerial")
    assert observed < max(bare * 10, 2e-3), (bare, observed)
