"""Extension: per-launch library overhead, measured per back-end.

The paper attributes part of its <6 % overhead to "a small number of
additional CUDA runtime calls" per launch.  This bench measures *this*
library's per-launch cost (empty kernel, one-thread grid) on every
back-end — the quantity an adopter budgeting many small launches needs.
"""

import pytest

from repro import (
    QueueBlocking,
    WorkDivMembers,
    accelerator,
    accelerator_names,
    create_task_kernel,
    fn_acc,
    get_dev_by_idx,
)
from repro.bench import measure_wall, write_report
from repro.comparison import render_table


@fn_acc
def _empty(acc):
    pass


def _launch_cost(acc_name):
    acc = accelerator(acc_name)
    dev = get_dev_by_idx(acc, 0)
    queue = QueueBlocking(dev)
    task = create_task_kernel(acc, WorkDivMembers.make(1, 1, 1), _empty)

    def launch():
        for _ in range(100):
            queue.enqueue(task)

    return measure_wall(launch, repeat=3) / 100


def test_launch_overhead(benchmark):
    def run():
        return {name: _launch_cost(name) for name in accelerator_names()}

    costs = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        {"Back-end": name, "per-launch [us]": f"{t * 1e6:8.1f}"}
        for name, t in sorted(costs.items(), key=lambda kv: kv[1])
    ]
    text = render_table(
        rows, "Extension: measured per-launch overhead (empty kernel)"
    )
    print("\n" + text)
    write_report("launch_overhead.txt", text)

    # Sanity bands (generous: 1-core CI container): the single-threaded
    # back-ends launch in tens of microseconds; thread-spawning
    # back-ends stay under ~10 ms per launch.
    assert costs["AccCpuSerial"] < 2e-3, costs
    for name, t in costs.items():
        assert t < 2e-2, (name, t)
    # Serial launches are not slower than thread-spawning ones.
    assert costs["AccCpuSerial"] <= costs["AccCpuThreads"] * 3
