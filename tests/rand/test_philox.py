"""Philox counter-based RNG: determinism, independence, statistics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.rand import PhiloxRng, philox4x32


class TestBijection:
    def test_shape_handling(self):
        out = philox4x32(np.zeros((5, 4), dtype=np.uint32), np.zeros(2, dtype=np.uint32))
        assert out.shape == (5, 4)
        out1 = philox4x32(np.zeros(4, dtype=np.uint32), np.zeros(2, dtype=np.uint32))
        assert out1.shape == (1, 4)

    def test_bad_lanes(self):
        with pytest.raises(ValueError):
            philox4x32(np.zeros((1, 3), dtype=np.uint32), np.zeros(2, dtype=np.uint32))
        with pytest.raises(ValueError):
            philox4x32(np.zeros((1, 4), dtype=np.uint32), np.zeros(3, dtype=np.uint32))

    def test_deterministic(self):
        c = np.arange(8, dtype=np.uint32).reshape(2, 4)
        k = np.array([1, 2], dtype=np.uint32)
        np.testing.assert_array_equal(philox4x32(c, k), philox4x32(c, k))

    def test_counter_sensitivity(self):
        """Adjacent counters produce unrelated blocks (avalanche)."""
        k = np.array([0, 0], dtype=np.uint32)
        a = philox4x32(np.array([[0, 0, 0, 0]], dtype=np.uint32), k)
        b = philox4x32(np.array([[1, 0, 0, 0]], dtype=np.uint32), k)
        # Hamming distance of the 128-bit outputs near 64.
        bits = np.unpackbits(
            (a ^ b).view(np.uint8)
        )
        assert 30 <= bits.sum() <= 98

    def test_key_sensitivity(self):
        c = np.array([[5, 6, 7, 8]], dtype=np.uint32)
        a = philox4x32(c, np.array([0, 0], dtype=np.uint32))
        b = philox4x32(c, np.array([1, 0], dtype=np.uint32))
        assert not np.array_equal(a, b)

    def test_rounds_parameter(self):
        c = np.array([[1, 2, 3, 4]], dtype=np.uint32)
        k = np.array([9, 9], dtype=np.uint32)
        assert not np.array_equal(
            philox4x32(c, k, rounds=7), philox4x32(c, k, rounds=10)
        )


class TestPhiloxRng:
    def test_reproducible_streams(self):
        a = PhiloxRng(seed=1, subsequence=5).uniform(100)
        b = PhiloxRng(seed=1, subsequence=5).uniform(100)
        np.testing.assert_array_equal(a, b)

    def test_streams_independent(self):
        a = PhiloxRng(seed=1, subsequence=0).uniform(1000)
        b = PhiloxRng(seed=1, subsequence=1).uniform(1000)
        assert not np.array_equal(a, b)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.1

    def test_seed_changes_stream(self):
        a = PhiloxRng(seed=1).uniform(100)
        b = PhiloxRng(seed=2).uniform(100)
        assert not np.array_equal(a, b)

    def test_sequential_draws_continue(self):
        r1 = PhiloxRng(seed=3)
        first = r1.uniform(10)
        second = r1.uniform(10)
        both = PhiloxRng(seed=3).uniform(20)
        np.testing.assert_array_equal(np.concatenate([first, second]), both)

    def test_range_and_moments(self):
        u = PhiloxRng(seed=7).uniform(200_000)
        assert np.all((u >= 0.0) & (u < 1.0))
        assert abs(u.mean() - 0.5) < 0.005
        assert abs(u.var() - 1.0 / 12.0) < 0.002

    def test_uniformity_chi2(self):
        from scipy import stats

        u = PhiloxRng(seed=11).uniform(100_000)
        counts, _ = np.histogram(u, bins=50, range=(0, 1))
        chi2 = ((counts - 2000.0) ** 2 / 2000.0).sum()
        # 49 dof: p=0.001 critical value ~ 85.4
        assert chi2 < stats.chi2.ppf(0.999, 49)

    def test_normal_moments(self):
        z = PhiloxRng(seed=13).normal(200_000)
        assert abs(z.mean()) < 0.01
        assert abs(z.std() - 1.0) < 0.01
        assert abs(((z - z.mean()) ** 3).mean()) < 0.05  # skew ~ 0

    def test_integers(self):
        ints = PhiloxRng(seed=17).integers(3, 9, 10_000)
        assert ints.min() >= 3 and ints.max() < 9
        counts = np.bincount(ints - 3, minlength=6)
        assert counts.min() > 1300  # roughly uniform over 6 values

    def test_integers_validation(self):
        with pytest.raises(ValueError):
            PhiloxRng(0).integers(5, 5, 10)

    def test_zero_and_negative_draws(self):
        assert PhiloxRng(0).uniform(0).size == 0
        with pytest.raises(ValueError):
            PhiloxRng(0).uniform(-1)

    def test_large_subsequence(self):
        """Subsequences above 2^32 still give distinct streams."""
        a = PhiloxRng(seed=1, subsequence=(1 << 40) + 3).uniform(50)
        b = PhiloxRng(seed=1, subsequence=3).uniform(50)
        assert not np.array_equal(a, b)

    @given(
        seed=st.integers(0, 2**32 - 1),
        sub=st.integers(0, 2**32 - 1),
        n=st.integers(1, 64),
    )
    @settings(max_examples=25)
    def test_draws_always_in_range(self, seed, sub, n):
        u = PhiloxRng(seed, sub).uniform(n)
        assert u.shape == (n,)
        assert np.all((u >= 0.0) & (u < 1.0))
