"""AccDevProps: validation and dimensional projection."""

import pytest

from repro.core.properties import AccDevProps
from repro.core.vec import Vec


def make(**kw):
    defaults = dict(
        multi_processor_count=4,
        grid_block_extent_max=Vec(65535, 65535, 1 << 30),
        block_thread_extent_max=Vec(64, 1024, 1024),
        thread_elem_extent_max=Vec.all(3, 1 << 20),
        block_thread_count_max=1024,
        shared_mem_size_bytes=48 * 1024,
        warp_size=32,
    )
    defaults.update(kw)
    return AccDevProps(**defaults)


class TestValidation:
    def test_valid(self):
        p = make()
        assert p.dim == 3
        assert p.warp_size == 32

    def test_bad_mp_count(self):
        with pytest.raises(ValueError):
            make(multi_processor_count=0)

    def test_bad_block_max(self):
        with pytest.raises(ValueError):
            make(block_thread_count_max=0)

    def test_bad_warp(self):
        with pytest.raises(ValueError):
            make(warp_size=0)


class TestProjection:
    def test_same_dim_is_identity(self):
        p = make()
        assert p.for_dim(3) is p

    def test_lower_dim_keeps_fastest_axes(self):
        p = make()
        p1 = p.for_dim(1)
        # component 0 of the 1-d view is the *innermost* (x) limit.
        assert p1.block_thread_extent_max == Vec(1024)
        p2 = p.for_dim(2)
        assert p2.block_thread_extent_max == Vec(1024, 1024)
        assert p2.grid_block_extent_max == Vec(65535, 1 << 30)

    def test_scalar_limits_preserved(self):
        p = make().for_dim(1)
        assert p.block_thread_count_max == 1024
        assert p.shared_mem_size_bytes == 48 * 1024
        assert p.warp_size == 32
