"""Kernel protocol: markers, task binding, contracts."""

import pytest

from repro.core.errors import KernelError
from repro.core.kernel import (
    KernelTask,
    create_task_kernel,
    fn_acc,
    fn_host,
    fn_host_acc,
    is_acc_callable,
)
from repro.core.workdiv import WorkDivMembers
from repro import AccCpuSerial

WD = WorkDivMembers.make(1, 1, 1)


class TestMarkers:
    def test_fn_acc_marks(self):
        @fn_acc
        def k(acc):
            pass

        assert is_acc_callable(k)

    def test_fn_host_excludes(self):
        @fn_host
        def k(acc):
            pass

        assert not is_acc_callable(k)

    def test_fn_host_acc_includes(self):
        @fn_host_acc
        def k(acc):
            pass

        assert is_acc_callable(k)

    def test_unmarked_allowed(self):
        assert is_acc_callable(lambda acc: None)

    def test_class_call_marker(self):
        class K:
            @fn_acc
            def __call__(self, acc):
                pass

        assert is_acc_callable(K())

        class H:
            @fn_host
            def __call__(self, acc):
                pass

        assert not is_acc_callable(H())


class TestKernelTask:
    def test_create(self):
        task = create_task_kernel(AccCpuSerial, WD, lambda acc, x: None, 42)
        assert task.acc_type is AccCpuSerial
        assert task.args == (42,)
        assert "AccCpuSerial" in repr(task)

    def test_non_callable_rejected(self):
        with pytest.raises(KernelError):
            create_task_kernel(AccCpuSerial, WD, 42)

    def test_host_only_kernel_rejected(self):
        @fn_host
        def host_fn(acc):
            pass

        with pytest.raises(KernelError):
            create_task_kernel(AccCpuSerial, WD, host_fn)

    def test_task_is_reusable(self):
        """Tasks hold no execution state: re-enqueuing re-runs."""
        from repro import QueueBlocking, get_dev_by_idx

        calls = []

        @fn_acc
        def k(acc):
            calls.append(1)

        dev = get_dev_by_idx(AccCpuSerial, 0)
        q = QueueBlocking(dev)
        task = create_task_kernel(AccCpuSerial, WD, k)
        q.enqueue(task)
        q.enqueue(task)
        assert len(calls) == 2

    def test_kernel_exception_wrapped(self):
        from repro import QueueBlocking, get_dev_by_idx

        @fn_acc
        def bad(acc):
            raise ValueError("inner boom")

        dev = get_dev_by_idx(AccCpuSerial, 0)
        q = QueueBlocking(dev)
        with pytest.raises(KernelError) as exc:
            q.enqueue(create_task_kernel(AccCpuSerial, WD, bad))
        assert isinstance(exc.value.__cause__, ValueError)
