"""Vec: construction, arithmetic, reductions, and algebraic laws."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import DimensionError
from repro.core.vec import MAX_DIM, Vec, as_vec, vec1, vec2, vec3

dims = st.integers(min_value=1, max_value=4)
components = st.integers(min_value=-(10**6), max_value=10**6)


def vecs(dim=None):
    d = st.just(dim) if dim else dims
    return d.flatmap(
        lambda n: st.lists(components, min_size=n, max_size=n).map(
            lambda c: Vec(*c)
        )
    )


class TestConstruction:
    def test_from_components(self):
        assert Vec(1, 2, 3).as_tuple() == (1, 2, 3)

    def test_from_sequence(self):
        assert Vec((4, 5)) == Vec(4, 5)
        assert Vec.from_iterable(range(3)) == Vec(0, 1, 2)

    def test_all_zeros_ones(self):
        assert Vec.all(3, 7) == Vec(7, 7, 7)
        assert Vec.zeros(2) == Vec(0, 0)
        assert Vec.ones(2) == Vec(1, 1)

    def test_empty_rejected(self):
        with pytest.raises(DimensionError):
            Vec()

    def test_too_many_dims_rejected(self):
        with pytest.raises(DimensionError):
            Vec(*range(MAX_DIM + 1))
        with pytest.raises(DimensionError):
            Vec.all(MAX_DIM + 1, 0)

    def test_non_integer_rejected(self):
        with pytest.raises(DimensionError):
            Vec(1.5, 2)
        with pytest.raises(DimensionError):
            Vec("a")

    def test_numpy_ints_accepted(self):
        import numpy as np

        v = Vec(np.int64(3), np.int32(4))
        assert v == Vec(3, 4)
        assert all(isinstance(c, int) for c in v)

    def test_fixed_arity_constructors(self):
        assert vec1(5).dim == 1
        assert vec2(1, 2).dim == 2
        assert vec3(1, 2, 3).dim == 3
        with pytest.raises(DimensionError):
            vec2(1, 2, 3)

    def test_as_vec(self):
        assert as_vec(5) == Vec(5)
        assert as_vec(5, dim=3) == Vec(5, 5, 5)
        assert as_vec([1, 2]) == Vec(1, 2)
        assert as_vec(Vec(1, 2)) == Vec(1, 2)
        with pytest.raises(DimensionError):
            as_vec([1, 2], dim=3)


class TestArithmetic:
    def test_elementwise_ops(self):
        a, b = Vec(6, 8), Vec(2, 3)
        assert a + b == Vec(8, 11)
        assert a - b == Vec(4, 5)
        assert a * b == Vec(12, 24)
        assert a // b == Vec(3, 2)
        assert a % b == Vec(0, 2)

    def test_int_broadcast(self):
        assert Vec(1, 2) + 1 == Vec(2, 3)
        assert 2 * Vec(1, 2) == Vec(2, 4)
        assert 10 - Vec(1, 2) == Vec(9, 8)

    def test_dim_mismatch(self):
        with pytest.raises(DimensionError):
            Vec(1, 2) + Vec(1, 2, 3)

    def test_ceil_div(self):
        assert Vec(10, 16).ceil_div(Vec(3, 4)) == Vec(4, 4)
        assert Vec(12).ceil_div(4) == Vec(3)
        assert Vec(1).ceil_div(100) == Vec(1)

    def test_min_max(self):
        assert Vec(1, 5).min(Vec(3, 2)) == Vec(1, 2)
        assert Vec(1, 5).max(3) == Vec(3, 5)

    @given(vecs(2), vecs(2))
    def test_addition_commutes(self, a, b):
        assert a + b == b + a

    @given(vecs(3))
    def test_additive_identity(self, a):
        assert a + Vec.zeros(3) == a
        assert a * Vec.ones(3) == a

    @given(vecs(2), vecs(2), vecs(2))
    def test_addition_associates(self, a, b, c):
        assert (a + b) + c == a + (b + c)

    @given(vecs())
    def test_ceil_div_covers(self, a):
        """ceil_div(b) * b >= a componentwise, for positive a, b."""
        a = Vec(*(abs(c) + 1 for c in a))
        b = Vec.all(a.dim, 3)
        q = a.ceil_div(b)
        assert all(qq * 3 >= aa for qq, aa in zip(q, a))
        assert all((qq - 1) * 3 < aa for qq, aa in zip(q, a))


class TestReductionsPredicates:
    def test_prod_sum(self):
        assert Vec(2, 3, 4).prod() == 24
        assert Vec(2, 3, 4).sum() == 9

    def test_elementwise_lt_le(self):
        assert Vec(1, 2).elementwise_lt(Vec(2, 3))
        assert not Vec(1, 3).elementwise_lt(Vec(2, 3))
        assert Vec(2, 3).elementwise_le(Vec(2, 3))

    def test_assertions(self):
        Vec(0, 1).assert_non_negative()
        with pytest.raises(DimensionError):
            Vec(-1, 1).assert_non_negative()
        Vec(1, 1).assert_positive()
        with pytest.raises(DimensionError):
            Vec(0, 1).assert_positive()


class TestShapeManipulation:
    def test_with_component(self):
        assert Vec(1, 2, 3).with_component(1, 9) == Vec(1, 9, 3)

    def test_prepend_drop(self):
        assert Vec(2, 3).prepend(1) == Vec(1, 2, 3)
        assert Vec(1, 2, 3).drop_first() == Vec(2, 3)
        with pytest.raises(DimensionError):
            Vec(1).drop_first()

    def test_reversed(self):
        assert Vec(1, 2, 3).reversed() == Vec(3, 2, 1)


class TestProtocol:
    def test_iteration_indexing(self):
        v = Vec(4, 5, 6)
        assert list(v) == [4, 5, 6]
        assert v[0] == 4 and v[-1] == 6
        assert len(v) == 3

    def test_hash_eq(self):
        assert hash(Vec(1, 2)) == hash(Vec(1, 2))
        assert Vec(1, 2) == (1, 2)
        assert Vec(1, 2) != Vec(2, 1)
        assert {Vec(1, 2): "a"}[Vec(1, 2)] == "a"

    def test_repr(self):
        assert repr(Vec(1, 2)) == "Vec(1, 2)"
