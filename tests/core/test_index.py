"""Index queries, linearisation and map_idx."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import DimensionError
from repro.core.index import (
    Block,
    Blocks,
    Elems,
    Grid,
    Thread,
    Threads,
    delinearize,
    get_idx,
    get_work_div,
    linearize,
    map_idx,
)
from repro.core.vec import Vec
from repro.core.workdiv import WorkDivMembers


class FakeAcc:
    """Minimal accelerator stand-in for pure index math."""

    def __init__(self, wd, block_idx, thread_idx):
        self.work_div = wd
        self.grid_block_idx = block_idx
        self.block_thread_idx = thread_idx


WD = WorkDivMembers.make((3, 4), (2, 8), (2, 2))


class TestGetIdx:
    def setup_method(self):
        self.acc = FakeAcc(WD, Vec(1, 2), Vec(1, 5))

    def test_grid_blocks(self):
        assert get_idx(self.acc, Grid, Blocks) == Vec(1, 2)

    def test_block_threads(self):
        assert get_idx(self.acc, Block, Threads) == Vec(1, 5)

    def test_grid_threads(self):
        # block(1,2) * block_extent(2,8) + thread(1,5) = (3, 21)
        assert get_idx(self.acc, Grid, Threads) == Vec(3, 21)

    def test_grid_elems(self):
        assert get_idx(self.acc, Grid, Elems) == Vec(6, 42)

    def test_block_elems(self):
        assert get_idx(self.acc, Block, Elems) == Vec(2, 10)

    def test_unsupported(self):
        with pytest.raises(DimensionError):
            get_idx(self.acc, Thread, Blocks)


class TestGetWorkDiv:
    def test_all_supported_combinations(self):
        assert get_work_div(WD, Grid, Blocks) == Vec(3, 4)
        assert get_work_div(WD, Grid, Threads) == Vec(6, 32)
        assert get_work_div(WD, Grid, Elems) == Vec(12, 64)
        assert get_work_div(WD, Block, Threads) == Vec(2, 8)
        assert get_work_div(WD, Block, Elems) == Vec(4, 16)
        assert get_work_div(WD, Thread, Elems) == Vec(2, 2)

    def test_accepts_acc_or_workdiv(self):
        acc = FakeAcc(WD, Vec(0, 0), Vec(0, 0))
        assert get_work_div(acc, Grid, Threads) == get_work_div(WD, Grid, Threads)

    def test_unsupported(self):
        with pytest.raises(DimensionError):
            get_work_div(WD, Thread, Blocks)


class TestLinearize:
    def test_c_order(self):
        assert linearize(Vec(0, 0), Vec(4, 8)) == 0
        assert linearize(Vec(1, 2), Vec(4, 8)) == 10
        assert linearize(Vec(3, 7), Vec(4, 8)) == 31

    def test_out_of_extent(self):
        with pytest.raises(DimensionError):
            linearize(Vec(4, 0), Vec(4, 8))
        with pytest.raises(DimensionError):
            linearize(Vec(-1,), Vec(4,))

    def test_dim_mismatch(self):
        with pytest.raises(DimensionError):
            linearize(Vec(1), Vec(4, 8))

    def test_delinearize(self):
        assert delinearize(10, Vec(4, 8)) == Vec(1, 2)
        with pytest.raises(DimensionError):
            delinearize(32, Vec(4, 8))

    @given(st.integers(0, 3), st.integers(0, 7), st.integers(0, 4))
    def test_roundtrip_3d(self, i, j, k):
        ext = Vec(4, 8, 5)
        idx = Vec(i, j, k)
        assert delinearize(linearize(idx, ext), ext) == idx

    @given(st.integers(0, 159))
    def test_roundtrip_linear(self, lin):
        ext = Vec(4, 8, 5)
        assert linearize(delinearize(lin, ext), ext) == lin

    @given(st.integers(0, 3), st.integers(0, 7))
    def test_linearize_matches_numpy(self, i, j):
        import numpy as np

        ext = Vec(4, 8)
        assert linearize(Vec(i, j), ext) == int(
            np.ravel_multi_index((i, j), (4, 8))
        )


class TestMapIdx:
    def test_identity(self):
        assert map_idx(2, Vec(1, 2), Vec(4, 8)) == Vec(1, 2)

    def test_to_linear(self):
        assert map_idx(1, Vec(1, 2), Vec(4, 8)) == Vec(10)

    def test_from_linear(self):
        assert map_idx(2, Vec(10), Vec(4, 8)) == Vec(1, 2)

    def test_bad_target(self):
        with pytest.raises(DimensionError):
            map_idx(3, Vec(1, 2), Vec(4, 8))

    def test_paper_listing3_idiom(self):
        """Paper Listing 3: linearise the global thread index."""
        acc = FakeAcc(WD, Vec(2, 3), Vec(1, 7))
        g_idx = get_idx(acc, Grid, Threads)
        g_ext = get_work_div(acc, Grid, Threads)
        lin = map_idx(1, g_idx, g_ext)
        assert lin == Vec(g_idx[0] * g_ext[1] + g_idx[1])
