"""The exception contract: one catchable family, correct subtyping."""

import pytest

from repro.core.errors import (
    AlpakaError,
    DeviceError,
    DimensionError,
    ExtentError,
    InvalidWorkDiv,
    KernelError,
    MemorySpaceError,
    ModelError,
    QueueError,
    SharedMemError,
    TraceError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            DimensionError, InvalidWorkDiv, MemorySpaceError, ExtentError,
            DeviceError, QueueError, KernelError, SharedMemError,
            TraceError, ModelError,
        ],
    )
    def test_all_derive_from_alpaka_error(self, exc):
        assert issubclass(exc, AlpakaError)

    def test_value_errors_are_value_errors(self):
        """Callers using stdlib idioms still catch the right things."""
        for exc in (DimensionError, InvalidWorkDiv, ExtentError, ModelError):
            assert issubclass(exc, ValueError)

    def test_runtime_errors_are_runtime_errors(self):
        for exc in (
            MemorySpaceError, DeviceError, QueueError, KernelError,
            SharedMemError, TraceError,
        ):
            assert issubclass(exc, RuntimeError)


class TestOneHandlerCatchesEverything:
    def test_public_apis_raise_within_family(self):
        """A sweep of representative failure modes, all caught by the
        single AlpakaError handler an application would install."""
        import numpy as np

        from repro import (
            AccCpuSerial,
            AccGpuCudaSim,
            QueueBlocking,
            Vec,
            WorkDivMembers,
            create_task_kernel,
            fn_acc,
            get_dev_by_idx,
            mem,
        )

        cpu = get_dev_by_idx(AccCpuSerial, 0)
        gpu = get_dev_by_idx(AccGpuCudaSim, 0)
        q = QueueBlocking(cpu)
        failures = [
            lambda: Vec(),  # no components
            lambda: WorkDivMembers.make(0, 1, 1),  # empty grid
            lambda: mem.alloc(gpu, 8).as_numpy(),  # cross-space access
            lambda: mem.copy(q, np.zeros(3), np.zeros(4)),  # no buffer
            lambda: mem.sub_view(mem.alloc(cpu, 4), 2, 4),  # view overflow
            lambda: create_task_kernel(
                AccCpuSerial, WorkDivMembers.make(1, 1, 1), 42
            ),  # non-callable kernel
        ]
        for fail in failures:
            with pytest.raises(AlpakaError):
                fail()

    def test_kernel_failures_chain_cause(self):
        from repro import (
            AccCpuSerial,
            QueueBlocking,
            WorkDivMembers,
            create_task_kernel,
            fn_acc,
            get_dev_by_idx,
        )

        @fn_acc
        def boom(acc):
            raise ZeroDivisionError("1/0")

        q = QueueBlocking(get_dev_by_idx(AccCpuSerial, 0))
        with pytest.raises(AlpakaError) as exc:
            q.enqueue(
                create_task_kernel(AccCpuSerial, WorkDivMembers.make(1, 1, 1), boom)
            )
        assert isinstance(exc.value.__cause__, ZeroDivisionError)
