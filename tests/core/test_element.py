"""Element-level helpers: box/slice/iteration/grid-stride coverage."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.element import (
    element_box,
    element_slice,
    grid_strided_spans,
    independent_elements,
)
from repro.core.vec import Vec
from repro.core.workdiv import WorkDivMembers


class FakeAcc:
    def __init__(self, wd, block_idx, thread_idx):
        self.work_div = wd
        self.grid_block_idx = block_idx
        self.block_thread_idx = thread_idx


def all_threads(wd):
    """Enumerate FakeAccs for every thread of a work division."""
    import itertools

    for b in itertools.product(*(range(e) for e in wd.grid_block_extent)):
        for t in itertools.product(*(range(e) for e in wd.block_thread_extent)):
            yield FakeAcc(wd, Vec(*b), Vec(*t))


class TestElementBox:
    def test_basic_ownership(self):
        wd = WorkDivMembers.make(4, 2, 8)
        acc = FakeAcc(wd, Vec(1), Vec(0))
        assert element_box(acc, Vec(64)) == (slice(16, 24),)

    def test_clipping_at_extent(self):
        wd = WorkDivMembers.make(4, 1, 8)
        acc = FakeAcc(wd, Vec(3), Vec(0))
        assert element_box(acc, Vec(28)) == (slice(24, 28),)

    def test_fully_out_of_bounds_is_empty(self):
        wd = WorkDivMembers.make(8, 1, 8)
        acc = FakeAcc(wd, Vec(7), Vec(0))
        (s,) = element_box(acc, Vec(16))
        assert s.start == s.stop

    def test_2d_box(self):
        wd = WorkDivMembers.make((2, 2), (1, 1), (4, 8))
        acc = FakeAcc(wd, Vec(1, 0), Vec(0, 0))
        assert element_box(acc, Vec(8, 16)) == (slice(4, 8), slice(0, 8))


class TestCoverage:
    """The defining invariant: all threads together cover the data
    exactly once."""

    @given(
        blocks=st.integers(1, 6),
        threads=st.integers(1, 4),
        elems=st.integers(1, 8),
        extent=st.integers(1, 150),
    )
    @settings(max_examples=40)
    def test_1d_partition(self, blocks, threads, elems, extent):
        wd = WorkDivMembers.make(blocks, threads, elems)
        if wd.grid_elem_extent[0] < extent:
            extent = wd.grid_elem_extent[0]  # only covering divisions
        counts = np.zeros(extent, dtype=int)
        for acc in all_threads(wd):
            (s,) = element_box(acc, Vec(extent))
            counts[s] += 1
        assert np.all(counts == 1)

    @given(
        bx=st.integers(1, 3), by=st.integers(1, 3),
        ex=st.integers(1, 4), ey=st.integers(1, 4),
        h=st.integers(1, 12), w=st.integers(1, 12),
    )
    @settings(max_examples=30)
    def test_2d_partition(self, bx, by, ex, ey, h, w):
        wd = WorkDivMembers.make((bx, by), (1, 1), (ex, ey))
        h = min(h, wd.grid_elem_extent[0])
        w = min(w, wd.grid_elem_extent[1])
        counts = np.zeros((h, w), dtype=int)
        for acc in all_threads(wd):
            r, c = element_box(acc, Vec(h, w))
            counts[r, c] += 1
        assert np.all(counts == 1)


class TestElementSlice:
    def test_matches_box(self):
        wd = WorkDivMembers.make(4, 2, 8)
        acc = FakeAcc(wd, Vec(0), Vec(1))
        assert element_slice(acc, 64) == slice(8, 16)

    def test_rejects_2d(self):
        wd = WorkDivMembers.make((2, 2), (1, 1), (1, 1))
        acc = FakeAcc(wd, Vec(0, 0), Vec(0, 0))
        with pytest.raises(ValueError):
            element_slice(acc, Vec(4, 4))


class TestIndependentElements:
    def test_yields_owned_indices(self):
        wd = WorkDivMembers.make(2, 1, 4)
        acc = FakeAcc(wd, Vec(1), Vec(0))
        assert [v[0] for v in independent_elements(acc, Vec(8))] == [4, 5, 6, 7]

    def test_2d_c_order(self):
        wd = WorkDivMembers.make((1, 1), (1, 1), (2, 2))
        acc = FakeAcc(wd, Vec(0, 0), Vec(0, 0))
        idxs = [tuple(v) for v in independent_elements(acc, Vec(2, 2))]
        assert idxs == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_empty_for_out_of_bounds_thread(self):
        wd = WorkDivMembers.make(4, 1, 4)
        acc = FakeAcc(wd, Vec(3), Vec(0))
        assert list(independent_elements(acc, Vec(8))) == []


class TestGridStridedSpans:
    @given(
        blocks=st.integers(1, 4),
        elems=st.integers(1, 8),
        extent=st.integers(1, 200),
    )
    @settings(max_examples=40)
    def test_covers_any_extent(self, blocks, elems, extent):
        """Grid striding covers extents even beyond one grid pass."""
        wd = WorkDivMembers.make(blocks, 1, elems)
        counts = np.zeros(extent, dtype=int)
        for acc in all_threads(wd):
            for span in grid_strided_spans(acc, extent):
                counts[span] += 1
        assert np.all(counts == 1)

    def test_single_pass_equals_slice(self):
        wd = WorkDivMembers.make(4, 2, 8)  # covers exactly 64
        acc = FakeAcc(wd, Vec(2), Vec(1))
        spans = list(grid_strided_spans(acc, 64))
        assert spans == [element_slice(acc, 64)]
