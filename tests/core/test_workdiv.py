"""Work divisions: construction, validation, Table 2 auto-divider."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import InvalidWorkDiv
from repro.core.properties import AccDevProps
from repro.core.vec import Vec
from repro.core.workdiv import (
    MappingStrategy,
    WorkDivMembers,
    divide_work,
    validate_work_div,
)

PROPS = AccDevProps(
    multi_processor_count=8,
    grid_block_extent_max=Vec.all(3, 1 << 20),
    block_thread_extent_max=Vec.all(3, 1024),
    thread_elem_extent_max=Vec.all(3, 1 << 20),
    block_thread_count_max=1024,
    shared_mem_size_bytes=48 * 1024,
)

SERIAL_PROPS = AccDevProps(
    multi_processor_count=1,
    grid_block_extent_max=Vec.all(3, 1 << 20),
    block_thread_extent_max=Vec.all(3, 1),
    thread_elem_extent_max=Vec.all(3, 1 << 20),
    block_thread_count_max=1,
    shared_mem_size_bytes=1 << 20,
)


class TestWorkDivMembers:
    def test_make_broadcast(self):
        wd = WorkDivMembers.make(256, 16, 1)
        assert wd.dim == 1
        assert wd.grid_block_extent == Vec(256)

    def test_make_2d(self):
        wd = WorkDivMembers.make((8, 16), (1, 1), (1, 1))
        assert wd.dim == 2
        assert wd.grid_thread_extent == Vec(8, 16)

    def test_make_int_with_vec(self):
        wd = WorkDivMembers.make(Vec(8, 16), 2, 1)
        assert wd.block_thread_extent == Vec(2, 2)

    def test_derived_counts(self):
        wd = WorkDivMembers.make((3, 4), (2, 8), (2, 2))
        assert wd.block_count == 12
        assert wd.block_thread_count == 16
        assert wd.thread_elem_count == 4
        assert wd.grid_elem_extent == Vec(12, 64)

    def test_dim_mismatch_rejected(self):
        with pytest.raises(InvalidWorkDiv):
            WorkDivMembers(Vec(2, 2), Vec(2), Vec(1, 1))

    def test_nonpositive_rejected(self):
        with pytest.raises(InvalidWorkDiv):
            WorkDivMembers.make(0, 1, 1)
        with pytest.raises(InvalidWorkDiv):
            WorkDivMembers.make(1, 1, -1)

    def test_paper_listing2(self):
        """Listing 2: 2-d division, grid 8x16, others 1."""
        wd = WorkDivMembers.make((8, 16), (1, 1), (1, 1))
        assert wd.block_count == 128


class TestValidate:
    def test_valid_passes(self):
        validate_work_div(WorkDivMembers.make(64, 256, 4), PROPS)

    def test_block_extent_limit(self):
        with pytest.raises(InvalidWorkDiv):
            validate_work_div(WorkDivMembers.make(1, 2048, 1), PROPS)

    def test_block_product_limit(self):
        # Per-axis fine (33*32 <= 1024 per axis) but product too big.
        wd = WorkDivMembers.make((1, 1), (64, 32), (1, 1))
        with pytest.raises(InvalidWorkDiv):
            validate_work_div(wd, PROPS)

    def test_serial_rejects_threads(self):
        with pytest.raises(InvalidWorkDiv):
            validate_work_div(WorkDivMembers.make(4, 2, 1), SERIAL_PROPS)


class TestDivideWork:
    def test_thread_level_mapping(self):
        """Table 2 thread-level row: grid = N/(B*V), block = B, elem = V."""
        wd = divide_work(
            4096, PROPS, MappingStrategy.THREAD_LEVEL,
            block_threads=16, thread_elems=4,
        )
        assert wd.grid_block_extent == Vec(64)
        assert wd.block_thread_extent == Vec(16)
        assert wd.thread_elem_extent == Vec(4)

    def test_block_level_mapping(self):
        """Table 2 block-level row: grid = N/V, block = 1, elem = V."""
        wd = divide_work(
            4096, SERIAL_PROPS, MappingStrategy.BLOCK_LEVEL, thread_elems=4
        )
        assert wd.grid_block_extent == Vec(1024)
        assert wd.block_thread_extent == Vec(1)
        assert wd.thread_elem_extent == Vec(4)

    def test_block_level_rejects_threads(self):
        with pytest.raises(InvalidWorkDiv):
            divide_work(
                64, SERIAL_PROPS, MappingStrategy.BLOCK_LEVEL, block_threads=4
            )

    def test_default_block_is_device_max(self):
        wd = divide_work(1 << 16, PROPS, MappingStrategy.THREAD_LEVEL)
        assert wd.block_thread_count == 1024

    def test_default_block_clamps_to_problem(self):
        wd = divide_work(10, PROPS, MappingStrategy.THREAD_LEVEL)
        assert wd.block_thread_count == 10

    def test_2d_extent(self):
        wd = divide_work(
            (100, 200), PROPS, MappingStrategy.THREAD_LEVEL,
            block_threads=(1, 32), thread_elems=(2, 2),
        )
        assert wd.grid_block_extent == Vec(50, 4)
        assert wd.grid_elem_extent.elementwise_le(Vec(128, 256))

    def test_non_dividing_overhang(self):
        wd = divide_work(
            1000, PROPS, MappingStrategy.THREAD_LEVEL,
            block_threads=16, thread_elems=3,
        )
        assert wd.grid_elem_extent[0] >= 1000
        assert wd.grid_elem_extent[0] < 1000 + 48  # at most one extra block

    @given(
        n=st.integers(1, 1 << 20),
        b=st.integers(1, 64),
        v=st.integers(1, 64),
    )
    def test_coverage_invariant(self, n, b, v):
        """Every division covers the problem with < one block slack."""
        wd = divide_work(
            n, PROPS, MappingStrategy.THREAD_LEVEL,
            block_threads=min(b, 1024), thread_elems=v,
        )
        covered = wd.grid_elem_extent[0]
        per_block = wd.block_thread_count * wd.thread_elem_count
        assert covered >= n
        assert covered - n < per_block

    @given(n=st.integers(1, 1 << 20), v=st.integers(1, 256))
    def test_block_level_invariants(self, n, v):
        wd = divide_work(
            n, SERIAL_PROPS, MappingStrategy.BLOCK_LEVEL, thread_elems=v
        )
        assert wd.block_thread_count == 1
        assert wd.grid_elem_extent[0] >= n


CUDA_SIM_PROPS = AccDevProps(
    multi_processor_count=13,
    grid_block_extent_max=Vec(65535, 65535, (1 << 31) - 1),
    block_thread_extent_max=Vec(64, 1024, 1024),
    thread_elem_extent_max=Vec.all(3, 1 << 20),
    block_thread_count_max=1024,
    shared_mem_size_bytes=48 * 1024,
)


class TestDivideWorkDegenerate:
    """Regression: extents that used to produce divisions
    ``validate_work_div`` rejects (zero extents raised the wrong error;
    narrow 2-d extents overflowed the per-axis grid limit because the
    default block filled only the fastest axis)."""

    @pytest.mark.parametrize("extent", [0, (0,), (4, 0), (0, 0), (1, 0, 8)])
    def test_zero_extent_raises_invalid_work_div(self, extent):
        with pytest.raises(InvalidWorkDiv):
            divide_work(extent, PROPS, MappingStrategy.THREAD_LEVEL)

    @pytest.mark.parametrize(
        "extent",
        [
            (1 << 20, 1),
            (1 << 20, 2),
            (70000, 3),
            (1, 1 << 20),
            (65536, 1),
            (1 << 22, 1, 1),
        ],
    )
    @pytest.mark.parametrize(
        "mapping", [MappingStrategy.THREAD_LEVEL, MappingStrategy.BLOCK_LEVEL]
    )
    def test_narrow_extents_validate_on_cuda_sim(self, extent, mapping):
        props = CUDA_SIM_PROPS.for_dim(len(extent))
        wd = divide_work(extent, props, mapping)
        validate_work_div(wd, props)
        # Full coverage of the problem.
        for a in range(len(extent)):
            assert wd.grid_elem_extent[a] >= extent[a]

    @pytest.mark.parametrize("extent", [1, (1, 1), (1, 1, 1), (7, 1), (1, 7)])
    def test_tiny_extents_all_mappings(self, extent):
        for props in (PROPS, SERIAL_PROPS, CUDA_SIM_PROPS):
            p = props.for_dim(len(extent) if not isinstance(extent, int) else 1)
            for mapping in (
                MappingStrategy.THREAD_LEVEL,
                MappingStrategy.BLOCK_LEVEL,
            ):
                wd = divide_work(extent, p, mapping)
                validate_work_div(wd, p)

    @given(
        h=st.integers(1, 1 << 21),
        w=st.integers(1, 64),
    )
    def test_fuzz_2d_cuda_sim_always_valid(self, h, w):
        props = CUDA_SIM_PROPS.for_dim(2)
        for mapping in (
            MappingStrategy.THREAD_LEVEL,
            MappingStrategy.BLOCK_LEVEL,
        ):
            wd = divide_work((h, w), props, mapping)
            validate_work_div(wd, props)
            assert wd.grid_elem_extent[0] >= h
            assert wd.grid_elem_extent[1] >= w


class TestAutoWorkDiv:
    def test_holds_extent_and_dim(self):
        from repro.core.workdiv import AutoWorkDiv

        a = AutoWorkDiv(Vec(8, 8))
        assert a.extent == Vec(8, 8)
        assert a.dim == 2

    def test_coerces_sequences(self):
        from repro.core.workdiv import AutoWorkDiv

        assert AutoWorkDiv((4, 4)).extent == Vec(4, 4)
        assert AutoWorkDiv(16).extent == Vec(16)

    def test_rejects_nonpositive(self):
        from repro.core.workdiv import AutoWorkDiv

        with pytest.raises(InvalidWorkDiv):
            AutoWorkDiv((4, 0))

    def test_hashable_and_distinct_by_extent(self):
        from repro.core.workdiv import AutoWorkDiv

        a, b = AutoWorkDiv((8, 8)), AutoWorkDiv((16, 16))
        assert a != b
        assert len({a, b, AutoWorkDiv((8, 8))}) == 2

    def test_auto_strategy_returns_concrete_division(self):
        wd = divide_work((32, 32), PROPS, MappingStrategy.AUTO)
        assert isinstance(wd, WorkDivMembers)
        validate_work_div(wd, PROPS.for_dim(2))
