"""Work divisions: construction, validation, Table 2 auto-divider."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import InvalidWorkDiv
from repro.core.properties import AccDevProps
from repro.core.vec import Vec
from repro.core.workdiv import (
    MappingStrategy,
    WorkDivMembers,
    divide_work,
    validate_work_div,
)

PROPS = AccDevProps(
    multi_processor_count=8,
    grid_block_extent_max=Vec.all(3, 1 << 20),
    block_thread_extent_max=Vec.all(3, 1024),
    thread_elem_extent_max=Vec.all(3, 1 << 20),
    block_thread_count_max=1024,
    shared_mem_size_bytes=48 * 1024,
)

SERIAL_PROPS = AccDevProps(
    multi_processor_count=1,
    grid_block_extent_max=Vec.all(3, 1 << 20),
    block_thread_extent_max=Vec.all(3, 1),
    thread_elem_extent_max=Vec.all(3, 1 << 20),
    block_thread_count_max=1,
    shared_mem_size_bytes=1 << 20,
)


class TestWorkDivMembers:
    def test_make_broadcast(self):
        wd = WorkDivMembers.make(256, 16, 1)
        assert wd.dim == 1
        assert wd.grid_block_extent == Vec(256)

    def test_make_2d(self):
        wd = WorkDivMembers.make((8, 16), (1, 1), (1, 1))
        assert wd.dim == 2
        assert wd.grid_thread_extent == Vec(8, 16)

    def test_make_int_with_vec(self):
        wd = WorkDivMembers.make(Vec(8, 16), 2, 1)
        assert wd.block_thread_extent == Vec(2, 2)

    def test_derived_counts(self):
        wd = WorkDivMembers.make((3, 4), (2, 8), (2, 2))
        assert wd.block_count == 12
        assert wd.block_thread_count == 16
        assert wd.thread_elem_count == 4
        assert wd.grid_elem_extent == Vec(12, 64)

    def test_dim_mismatch_rejected(self):
        with pytest.raises(InvalidWorkDiv):
            WorkDivMembers(Vec(2, 2), Vec(2), Vec(1, 1))

    def test_nonpositive_rejected(self):
        with pytest.raises(InvalidWorkDiv):
            WorkDivMembers.make(0, 1, 1)
        with pytest.raises(InvalidWorkDiv):
            WorkDivMembers.make(1, 1, -1)

    def test_paper_listing2(self):
        """Listing 2: 2-d division, grid 8x16, others 1."""
        wd = WorkDivMembers.make((8, 16), (1, 1), (1, 1))
        assert wd.block_count == 128


class TestValidate:
    def test_valid_passes(self):
        validate_work_div(WorkDivMembers.make(64, 256, 4), PROPS)

    def test_block_extent_limit(self):
        with pytest.raises(InvalidWorkDiv):
            validate_work_div(WorkDivMembers.make(1, 2048, 1), PROPS)

    def test_block_product_limit(self):
        # Per-axis fine (33*32 <= 1024 per axis) but product too big.
        wd = WorkDivMembers.make((1, 1), (64, 32), (1, 1))
        with pytest.raises(InvalidWorkDiv):
            validate_work_div(wd, PROPS)

    def test_serial_rejects_threads(self):
        with pytest.raises(InvalidWorkDiv):
            validate_work_div(WorkDivMembers.make(4, 2, 1), SERIAL_PROPS)


class TestDivideWork:
    def test_thread_level_mapping(self):
        """Table 2 thread-level row: grid = N/(B*V), block = B, elem = V."""
        wd = divide_work(
            4096, PROPS, MappingStrategy.THREAD_LEVEL,
            block_threads=16, thread_elems=4,
        )
        assert wd.grid_block_extent == Vec(64)
        assert wd.block_thread_extent == Vec(16)
        assert wd.thread_elem_extent == Vec(4)

    def test_block_level_mapping(self):
        """Table 2 block-level row: grid = N/V, block = 1, elem = V."""
        wd = divide_work(
            4096, SERIAL_PROPS, MappingStrategy.BLOCK_LEVEL, thread_elems=4
        )
        assert wd.grid_block_extent == Vec(1024)
        assert wd.block_thread_extent == Vec(1)
        assert wd.thread_elem_extent == Vec(4)

    def test_block_level_rejects_threads(self):
        with pytest.raises(InvalidWorkDiv):
            divide_work(
                64, SERIAL_PROPS, MappingStrategy.BLOCK_LEVEL, block_threads=4
            )

    def test_default_block_is_device_max(self):
        wd = divide_work(1 << 16, PROPS, MappingStrategy.THREAD_LEVEL)
        assert wd.block_thread_count == 1024

    def test_default_block_clamps_to_problem(self):
        wd = divide_work(10, PROPS, MappingStrategy.THREAD_LEVEL)
        assert wd.block_thread_count == 10

    def test_2d_extent(self):
        wd = divide_work(
            (100, 200), PROPS, MappingStrategy.THREAD_LEVEL,
            block_threads=(1, 32), thread_elems=(2, 2),
        )
        assert wd.grid_block_extent == Vec(50, 4)
        assert wd.grid_elem_extent.elementwise_le(Vec(128, 256))

    def test_non_dividing_overhang(self):
        wd = divide_work(
            1000, PROPS, MappingStrategy.THREAD_LEVEL,
            block_threads=16, thread_elems=3,
        )
        assert wd.grid_elem_extent[0] >= 1000
        assert wd.grid_elem_extent[0] < 1000 + 48  # at most one extra block

    @given(
        n=st.integers(1, 1 << 20),
        b=st.integers(1, 64),
        v=st.integers(1, 64),
    )
    def test_coverage_invariant(self, n, b, v):
        """Every division covers the problem with < one block slack."""
        wd = divide_work(
            n, PROPS, MappingStrategy.THREAD_LEVEL,
            block_threads=min(b, 1024), thread_elems=v,
        )
        covered = wd.grid_elem_extent[0]
        per_block = wd.block_thread_count * wd.thread_elem_count
        assert covered >= n
        assert covered - n < per_block

    @given(n=st.integers(1, 1 << 20), v=st.integers(1, 256))
    def test_block_level_invariants(self, n, v):
        wd = divide_work(
            n, SERIAL_PROPS, MappingStrategy.BLOCK_LEVEL, thread_elems=v
        )
        assert wd.block_thread_count == 1
        assert wd.grid_elem_extent[0] >= n
