"""Table 1 matrix: structure, paper values, executable Alpaka row."""

import pytest

from repro.comparison import (
    Framework,
    Property,
    Rating,
    TABLE1,
    evaluate_alpaka,
    render_series,
    render_table,
    table1_rows,
)


class TestMatrixStructure:
    def test_eleven_frameworks(self):
        assert len(TABLE1) == 11
        names = [fw.name for fw in TABLE1]
        assert names[0] == "NVIDIA CUDA"
        assert names[-1] == "Alpaka"

    def test_every_cell_filled_with_rationale(self):
        for fw in TABLE1:
            for prop in Property:
                assert fw.rating(prop) in Rating
                assert fw.rationale[prop], (fw.name, prop)

    def test_missing_rating_rejected(self):
        with pytest.raises(ValueError):
            Framework("X", {Property.OPENNESS: Rating.YES})

    def test_paper_spot_checks(self):
        """Cells quoted verbatim from the paper's Table 1."""
        by = {fw.name: fw for fw in TABLE1}
        assert by["NVIDIA CUDA"].rating(Property.OPENNESS) is Rating.NO
        assert by["NVIDIA CUDA"].rating(Property.OPTIMIZABILITY) is Rating.PARTIAL
        assert by["OpenCL"].rating(Property.SINGLE_SOURCE) is Rating.PARTIAL
        assert by["KOKKOS"].rating(Property.OPTIMIZABILITY) is Rating.NO
        assert by["KOKKOS"].rating(Property.DATA_STRUCTURE_AGNOSTIC) is Rating.PARTIAL
        assert by["Thrust"].rating(Property.DATA_STRUCTURE_AGNOSTIC) is Rating.NO
        assert by["OpenMP"].rating(Property.HETEROGENEITY) is Rating.PARTIAL

    def test_alpaka_is_all_yes(self):
        """The paper's punchline: Alpaka is the only all-check row."""
        alpaka = next(fw for fw in TABLE1 if fw.name == "Alpaka")
        assert all(alpaka.rating(p) is Rating.YES for p in Property)
        for fw in TABLE1:
            if fw.name != "Alpaka":
                assert any(fw.rating(p) is not Rating.YES for p in Property), fw.name

    def test_rows_renderable(self):
        rows = table1_rows()
        assert len(rows) == 11
        text = render_table(rows, "t")
        assert "Alpaka" in text and "+" in text


class TestExecutableAlpakaRow:
    def test_matches_published_row(self):
        results = evaluate_alpaka()
        assert set(results) == set(Property)
        for prop, (rating, evidence) in results.items():
            assert rating is Rating.YES, (prop, evidence)
            assert evidence


class TestRenderers:
    def test_render_table_alignment(self):
        rows = [{"a": 1, "bb": "xy"}, {"a": 100, "bb": "z"}]
        text = render_table(rows)
        lines = text.splitlines()
        assert len({len(l) for l in lines if "|" in l or "-+-" in l}) == 1

    def test_render_table_empty(self):
        assert render_table([], "title") == "title"

    def test_render_series(self):
        s = {"c1": {1: 0.5, 2: 0.6}, "c2": {2: 0.7}}
        text = render_series(s, "n")
        assert "0.500" in text and "0.700" in text
        # Missing points render blank, not zero.
        first_row = text.splitlines()[2]
        assert "c1" not in first_row
