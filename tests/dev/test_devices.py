"""Devices, platforms, the device manager, memory accounting."""

import pytest

from repro import (
    AccCpuSerial,
    AccGpuCudaSim,
    PlatformCpu,
    PlatformCudaSim,
    get_dev_by_idx,
    get_dev_count,
)
from repro.core.errors import DeviceError
from repro.dev.device import MemorySpace
from repro.dev.manager import platform_of


class TestPlatforms:
    def test_cpu_platform_single_device(self):
        assert PlatformCpu().device_count == 1

    def test_cuda_sim_default_is_k80_with_two_dies(self):
        p = PlatformCudaSim()
        assert p.spec.key == "nvidia-k80"
        assert p.device_count == 2

    def test_k20_has_one_device(self):
        assert PlatformCudaSim("nvidia-k20").device_count == 1

    def test_devices_cached_across_instances(self):
        """Two platform objects expose the same devices, so residency
        checks hold across independently created platforms."""
        a = PlatformCudaSim().get_dev_by_idx(0)
        b = PlatformCudaSim().get_dev_by_idx(0)
        assert a is b

    def test_kind_mismatch_rejected(self):
        with pytest.raises(DeviceError):
            PlatformCpu("nvidia-k80")
        with pytest.raises(DeviceError):
            PlatformCudaSim("intel-xeon-e5-2630v3")

    def test_index_out_of_range(self):
        with pytest.raises(DeviceError):
            PlatformCpu().get_dev_by_idx(5)


class TestDevMan:
    def test_get_dev_by_idx(self):
        dev = get_dev_by_idx(AccCpuSerial, 0)
        assert dev.accessible_from_host

    def test_get_dev_count(self):
        assert get_dev_count(AccGpuCudaSim) == 2
        assert get_dev_count(AccCpuSerial) == 1

    def test_gpu_device_not_host_accessible(self):
        dev = get_dev_by_idx(AccGpuCudaSim, 0)
        assert not dev.accessible_from_host

    def test_non_accelerator_rejected(self):
        with pytest.raises(DeviceError):
            platform_of(int)

    def test_device_names_distinct(self):
        d0 = get_dev_by_idx(AccGpuCudaSim, 0)
        d1 = get_dev_by_idx(AccGpuCudaSim, 1)
        assert d0.name != d1.name
        assert d0.uid != d1.uid


class TestMemorySpace:
    def test_reserve_release(self):
        ms = MemorySpace(1000)
        ms.reserve(600)
        assert ms.free_bytes == 400
        ms.release(600)
        assert ms.free_bytes == 1000

    def test_over_allocation(self):
        ms = MemorySpace(1000)
        ms.reserve(900)
        with pytest.raises(MemoryError):
            ms.reserve(200)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            MemorySpace(100).reserve(-1)

    def test_release_floor_at_zero(self):
        ms = MemorySpace(100)
        ms.release(50)
        assert ms.allocated_bytes == 0

    def test_device_capacity_enforced_via_alloc(self):
        from repro import mem

        dev = get_dev_by_idx(AccGpuCudaSim, 0)
        free = dev.mem.free_bytes
        with pytest.raises(MemoryError):
            mem.alloc(dev, free // 8 + 1024)


class TestSimClock:
    def test_advance_and_reset(self):
        dev = get_dev_by_idx(AccGpuCudaSim, 0)
        dev.reset_sim_time()
        dev.advance_sim_time(1.5)
        dev.advance_sim_time(0.5)
        assert dev.sim_time_s == 2.0
        dev.reset_sim_time()
        assert dev.sim_time_s == 0.0

    def test_no_backwards_time(self):
        dev = get_dev_by_idx(AccGpuCudaSim, 0)
        with pytest.raises(DeviceError):
            dev.advance_sim_time(-1.0)
