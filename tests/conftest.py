"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    QueueBlocking,
    accelerator,
    accelerator_names,
    create_task_kernel,
    divide_work,
    get_dev_by_idx,
    mem,
)

ALL_BACKENDS = accelerator_names()
SYNC_BACKENDS = [
    n for n in ALL_BACKENDS if accelerator(n).supports_block_sync
]
CPU_BACKENDS = [n for n in ALL_BACKENDS if accelerator(n).kind == "cpu"]


@pytest.fixture(params=ALL_BACKENDS)
def any_acc(request):
    """Every registered back-end type."""
    return accelerator(request.param)


@pytest.fixture(params=SYNC_BACKENDS)
def sync_acc(request):
    """Back-ends whose blocks may hold more than one thread."""
    return accelerator(request.param)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


class KernelRunner:
    """Boilerplate-free kernel execution for tests.

    ``run(acc, work_div, kernel, n, 2.0, arrays={'x': x_host, ...})``
    allocates device buffers for the arrays, stages them, runs, and
    returns the array contents after execution.
    """

    def run(self, acc_type, work_div, kernel, *scalars, arrays=None):
        arrays = arrays or {}
        dev = get_dev_by_idx(acc_type, 0)
        queue = QueueBlocking(dev)
        bufs = {}
        for name, host in arrays.items():
            host = np.ascontiguousarray(host)
            buf = mem.alloc(dev, host.shape, dtype=host.dtype)
            mem.copy(queue, buf, host)
            bufs[name] = buf
        args = list(scalars) + [bufs[k] for k in arrays]
        queue.enqueue(create_task_kernel(acc_type, work_div, kernel, *args))
        out = {}
        for name, host in arrays.items():
            res = np.empty_like(np.ascontiguousarray(host))
            mem.copy(queue, res, bufs[name])
            out[name] = res
            bufs[name].free()
        return out

    @staticmethod
    def auto_workdiv(acc_type, n, thread_elems=8):
        dev = get_dev_by_idx(acc_type, 0)
        props = acc_type.get_acc_dev_props(dev)
        return divide_work(
            n, props, acc_type.mapping_strategy, thread_elems=thread_elems
        )


@pytest.fixture
def runner():
    return KernelRunner()
