"""CPU assembler tracing — paper Fig. 4's SSE2 discussion."""

import pytest

from repro.core.errors import TraceError
from repro.kernels import AxpyElementsKernel, AxpyKernel
from repro.trace import (
    classify_fp_instructions,
    trace_cpu_kernel_scalar,
    trace_cpu_kernel_spans,
)
from repro.trace.cpu_asm import CpuArray, CpuTraceContext


class TestScalarPath:
    def test_all_scalar_instructions(self):
        """One element per thread -> movsd/mulsd/addsd only."""
        ctx = trace_cpu_kernel_scalar(AxpyKernel(), ["x", "y"], "n", 2.0)
        counts = classify_fp_instructions(ctx)
        assert counts["packed"] == 0
        assert counts["scalar"] >= 5

    def test_guard_compiles_to_cmp_jge(self):
        ctx = trace_cpu_kernel_scalar(AxpyKernel(), ["x", "y"], "n", 2.0)
        m = ctx.mnemonics()
        assert "cmp" in m and "jge" in m

    def test_paper_scalar_mnemonics(self):
        ctx = trace_cpu_kernel_scalar(AxpyKernel(), ["x", "y"], "n", 2.0)
        m = ctx.mnemonics()
        for op in ("movsd", "mulsd", "addsd"):
            assert op in m, op


class TestVectorPath:
    def test_all_packed_instructions(self):
        """Element spans -> movupd/mulpd/addpd (the paper's packed
        SSE2), with only the alpha constant load remaining scalar."""
        ctx = trace_cpu_kernel_spans(
            AxpyElementsKernel(), ["x", "y"], 4, 2.0, span=4
        )
        counts = classify_fp_instructions(ctx)
        assert counts["packed"] >= 10
        assert counts["scalar"] <= 1  # the hoisted alpha load

    def test_paper_packed_mnemonics(self):
        ctx = trace_cpu_kernel_spans(
            AxpyElementsKernel(), ["x", "y"], 4, 2.0, span=4
        )
        m = ctx.mnemonics()
        for op in ("movupd", "mulpd", "addpd"):
            assert op in m, op

    def test_span_unrolls_by_lanes(self):
        """A 4-double span needs two packed registers per operand."""
        ctx = trace_cpu_kernel_spans(
            AxpyElementsKernel(), ["x", "y"], 4, 2.0, span=4
        )
        m = ctx.mnemonics()
        # x load, y load, y store: 2 each.
        assert m.count("movupd") == 6
        assert m.count("mulpd") == 2
        assert m.count("addpd") == 2

    def test_broadcast_hoisted_once(self):
        ctx = trace_cpu_kernel_spans(
            AxpyElementsKernel(), ["x", "y"], 8, 2.0, span=8
        )
        assert ctx.mnemonics().count("movddup") == 1

    def test_misaligned_span_rejected(self):
        with pytest.raises(TraceError):
            trace_cpu_kernel_spans(
                AxpyElementsKernel(), ["x", "y"], 3, 2.0, span=3
            )


class TestContext:
    def test_pointer_registers_follow_abi(self):
        ctx = CpuTraceContext()
        a = CpuArray(ctx, "a")
        b = CpuArray(ctx, "b")
        assert a.base == "%rdi" and b.base == "%rsi"

    def test_pointer_exhaustion(self):
        ctx = CpuTraceContext()
        for _ in range(6):
            CpuArray(ctx, "p")
        with pytest.raises(TraceError):
            CpuArray(ctx, "overflow")

    def test_text_rendering(self):
        ctx = trace_cpu_kernel_scalar(AxpyKernel(), ["x", "y"], "n", 2.0)
        text = ctx.to_text()
        assert "(%rdi,%r11,8)" in text or "(%rdi," in text
        assert text.strip().endswith(":")  # exit label


class TestPaperComparison:
    def test_element_level_is_the_difference(self):
        """The whole Fig. 4 CPU argument in one assertion: same
        algorithm, scalar source -> scalar code, span source -> packed
        code."""
        scalar = classify_fp_instructions(
            trace_cpu_kernel_scalar(AxpyKernel(), ["x", "y"], "n", 2.0)
        )
        packed = classify_fp_instructions(
            trace_cpu_kernel_spans(
                AxpyElementsKernel(), ["x", "y"], 4, 2.0, span=4
            )
        )
        assert scalar["packed"] == 0 and scalar["scalar"] > 0
        assert packed["packed"] > 0 and packed["scalar"] <= 1
