"""TimelineObserver simulated-clock capture and sanitize detail."""

import numpy as np

from repro import (
    AccGpuCudaSim,
    QueueBlocking,
    WorkDivMembers,
    clear_plan_cache,
    create_task_kernel,
    get_dev_by_idx,
    mem,
    observe,
)
from repro.kernels.axpy import AxpyKernel
from repro.trace import TimelineObserver, trace_execution


def _axpy_task(dev, n=32):
    q = QueueBlocking(dev)
    x = mem.alloc(dev, n)
    y = mem.alloc(dev, n)
    mem.copy(q, x, np.ones(n))
    mem.copy(q, y, np.ones(n))
    task = create_task_kernel(
        AccGpuCudaSim, WorkDivMembers.make(n, 1, 1), AxpyKernel(), n, 2.0, x, y
    )
    return q, task


class TestSimTimeCapture:
    def test_launch_events_carry_sim_time(self):
        clear_plan_cache()
        dev = get_dev_by_idx(AccGpuCudaSim, 0)
        q, task = _axpy_task(dev)
        with trace_execution() as tl:
            q.enqueue(task)
        begin = next(e for e in tl.events if e.kind == "launch_begin")
        end = next(e for e in tl.events if e.kind == "launch_end")
        assert begin.sim_time_fs is not None
        assert end.sim_time_fs is not None
        # AxpyKernel describes its cost, so the modeled clock advanced.
        assert end.sim_time_fs > begin.sim_time_fs

    def test_copy_and_drain_events_carry_sim_time(self):
        dev = get_dev_by_idx(AccGpuCudaSim, 0)
        q = QueueBlocking(dev)
        buf = mem.alloc(dev, 8)
        with trace_execution() as tl:
            mem.memset(q, buf, 0.0)
        copy_ev = next(e for e in tl.events if e.kind == "copy")
        assert copy_ev.sim_time_fs is not None
        buf.free()

    def test_record_sim_time_opt_out(self):
        dev = get_dev_by_idx(AccGpuCudaSim, 0)
        q, task = _axpy_task(dev)
        with observe(TimelineObserver(record_sim_time=False)) as tl:
            q.enqueue(task)
        assert all(e.sim_time_fs is None for e in tl.events)

    def test_block_events_have_no_device(self):
        dev = get_dev_by_idx(AccGpuCudaSim, 0)
        q, task = _axpy_task(dev)
        with trace_execution(record_blocks=True) as tl:
            q.enqueue(task)
        blocks = [e for e in tl.events if e.kind == "block"]
        assert blocks
        assert all(e.sim_time_fs is None for e in blocks)


class TestSanitizeDetail:
    def test_sanitize_event_reports_finding_count(self):
        from repro import AccCpuSerial
        from repro.sanitize import sanitize_task

        dev = get_dev_by_idx(AccCpuSerial, 0)
        n = 8
        q = QueueBlocking(dev)
        x = mem.alloc(dev, n)
        mem.copy(q, x, np.zeros(n))
        task = create_task_kernel(
            AccCpuSerial, WorkDivMembers.make(n, 1, 1),
            AxpyKernel(), n, 1.0, x, x,
        )
        with observe(TimelineObserver()) as tl:
            report = sanitize_task(task, dev)
        ev = next(e for e in tl.events if e.kind == "sanitize")
        assert f"findings={len(report.launches[0].findings)}" in ev.detail
        assert ev.detail.startswith("AxpyKernel:")
        x.free()
