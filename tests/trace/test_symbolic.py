"""Symbolic tracing: value types, FMA contraction, guards, arrays."""

import pytest

from repro.core.errors import TraceError
from repro.trace import IRBuilder, SymArray, SymFloat, SymInt, TraceContext


@pytest.fixture
def ctx():
    return TraceContext("t")


def opcodes(ctx):
    return ctx.b.opcode_stream()


class TestIRBuilder:
    def test_register_classes(self):
        b = IRBuilder()
        assert b.new_reg("r") == "%r1"
        assert b.new_reg("r") == "%r2"
        assert b.new_reg("fd") == "%fd1"
        assert b.new_reg("rd") == "%rd1"
        assert b.new_reg("p") == "%p1"

    def test_unknown_class(self):
        with pytest.raises(TraceError):
            IRBuilder().new_reg("x")

    def test_text_rendering(self):
        b = IRBuilder()
        b.emit("mov.u32", "%r1", "%tid.x")
        b.emit("st.global.f64", None, "%rd1", "%fd1")
        b.emit("ld.global.f64", "%fd2", "%rd2")
        txt = b.to_text()
        assert "mov.u32 %r1, %tid.x;" in txt
        assert "st.global.f64 [%rd1], %fd1;" in txt
        assert "ld.global.f64 %fd2, [%rd2];" in txt

    def test_predicated_branch_rendering(self):
        b = IRBuilder()
        b.emit("bra", None, "BB1", predicate="%p1")
        assert "@%p1 bra BB1;" in b.to_text()


class TestIntOps:
    def test_mul_add_emit(self, ctx):
        a = ctx.int_value(3)
        b = ctx.int_value(4)
        c = a * b + a
        assert isinstance(c, SymInt)
        assert "mul.lo.s32" in opcodes(ctx)
        assert "add.s32" in opcodes(ctx)

    def test_mad(self, ctx):
        a, b, c = (ctx.int_value(i) for i in (1, 2, 3))
        d = a.mad(b, c)
        assert isinstance(d, SymInt)
        assert opcodes(ctx)[-1] == "mad.lo.s32"

    def test_literal_coercion(self, ctx):
        a = ctx.int_value(3)
        _ = a + 7
        assert opcodes(ctx).count("mov.u32") >= 2  # both literals


class TestFmaContraction:
    def test_product_plus_value_is_fma(self, ctx):
        a, x, y = (ctx.float_value(v) for v in (2.0, 3.0, 4.0))
        r = a * x + y
        assert isinstance(r, SymFloat)
        ops = opcodes(ctx)
        assert "fma.rn.f64" in ops
        assert "mul.f64" not in ops  # contracted, not materialised

    def test_value_plus_product_is_fma(self, ctx):
        a, x, y = (ctx.float_value(v) for v in (2.0, 3.0, 4.0))
        r = y + a * x
        ops = opcodes(ctx)
        assert "fma.rn.f64" in ops and "mul.f64" not in ops

    def test_lone_product_materialises(self, ctx):
        a, x = ctx.float_value(2.0), ctx.float_value(3.0)
        p = a * x
        _ = p / ctx.float_value(1.0)
        assert "mul.f64" in opcodes(ctx)

    def test_product_plus_product(self, ctx):
        a, b, c, d = (ctx.float_value(v) for v in (1, 2, 3, 4))
        _ = a * b + c * d
        ops = opcodes(ctx)
        # One product materialises, the other contracts.
        assert ops.count("mul.f64") == 1
        assert ops.count("fma.rn.f64") == 1

    def test_plain_add_sub_div(self, ctx):
        x, y = ctx.float_value(1.0), ctx.float_value(2.0)
        _ = x + y
        _ = x - y
        _ = x / y
        ops = opcodes(ctx)
        assert "add.f64" in ops and "sub.f64" in ops and "div.rn.f64" in ops


class TestGuard:
    def test_if_emits_negated_setp_and_branch(self, ctx):
        i, n = ctx.int_value(0), ctx.int_value(10)
        if i < n:
            taken = True
        assert taken
        ops = opcodes(ctx)
        assert "setp.ge.s32" in ops  # negated lt
        assert "bra" in ops

    def test_exit_label_emitted_at_finish(self, ctx):
        i, n = ctx.int_value(0), ctx.int_value(10)
        if i < n:
            pass
        b = ctx.finish()
        assert b.instructions[-1].op == "label"

    @pytest.mark.parametrize(
        "cond,negated",
        [("__lt__", "setp.ge.s32"), ("__le__", "setp.gt.s32"),
         ("__gt__", "setp.le.s32"), ("__ge__", "setp.lt.s32")],
    )
    def test_negation_table(self, ctx, cond, negated):
        i, n = ctx.int_value(0), ctx.int_value(10)
        bool(getattr(i, cond)(n))
        assert negated in opcodes(ctx)


class TestSymArray:
    def test_load_sequence(self, ctx):
        arr = SymArray(ctx, ctx.b.new_param("rd"), "x")
        i = ctx.int_value(0)
        v = arr[i]
        assert isinstance(v, SymFloat)
        ops = opcodes(ctx)
        for op in ("cvta.to.global.u64", "mul.wide.s32", "add.s64", "ld.global.f64"):
            assert op in ops

    def test_const_array_uses_nc(self, ctx):
        arr = SymArray(ctx, ctx.b.new_param("rd"), "x", const=True)
        _ = arr[ctx.int_value(0)]
        assert "ld.global.nc.f64" in opcodes(ctx)

    def test_offset_shared_between_arrays(self, ctx):
        """The index*8 offset is computed once (as nvcc does)."""
        x = SymArray(ctx, ctx.b.new_param("rd"), "x")
        y = SymArray(ctx, ctx.b.new_param("rd"), "y")
        i = ctx.int_value(0)
        _ = x[i]
        _ = y[i]
        assert opcodes(ctx).count("mul.wide.s32") == 1

    def test_offset_not_shared_across_itemsizes(self, ctx):
        """Regression: two buffers of different dtypes indexed by the
        same register must scale by their own itemsize — the offset
        cache is keyed on (register, itemsize), never register alone."""
        import numpy as np

        f64 = SymArray(ctx, ctx.b.new_param("rd"), "a", dtype=np.float64)
        f32 = SymArray(ctx, ctx.b.new_param("rd"), "b", dtype=np.float32)
        i = ctx.int_value(0)
        _ = f64[i]
        _ = f32[i]
        muls = [
            ins for ins in ctx.b.instructions if ins.op == "mul.wide.s32"
        ]
        assert len(muls) == 2  # one widened product per itemsize
        # Distinct byte-offset registers, scaled by 8 and 4 respectively.
        dsts = {m.dst for m in muls}
        assert len(dsts) == 2
        scales = {m.srcs[-1] for m in muls}
        assert scales == {"8", "4"}

    def test_dtype_selects_load_store_suffix(self, ctx):
        """A float32 buffer loads/stores through .f32, an int32 buffer
        through .s32 — never the hardcoded .f64 path."""
        import numpy as np

        f32 = SymArray(ctx, ctx.b.new_param("rd"), "v", dtype=np.float32)
        i32 = SymArray(ctx, ctx.b.new_param("rd"), "c", dtype=np.int32)
        i = ctx.int_value(0)
        v = f32[i]
        f32[i] = v
        c = i32[i]
        i32[i] = c
        ops = opcodes(ctx)
        assert "ld.global.f32" in ops and "st.global.f32" in ops
        assert "ld.global.s32" in ops and "st.global.s32" in ops
        assert "ld.global.f64" not in ops and "st.global.f64" not in ops

    def test_address_reused_for_store(self, ctx):
        y = SymArray(ctx, ctx.b.new_param("rd"), "y")
        i = ctx.int_value(0)
        v = y[i]
        y[i] = v
        ops = opcodes(ctx)
        assert ops.count("add.s64") == 1  # same address register
        assert "st.global.f64" in ops

    def test_store_materialises_product(self, ctx):
        y = SymArray(ctx, ctx.b.new_param("rd"), "y")
        a, b = ctx.float_value(2.0), ctx.float_value(3.0)
        y[ctx.int_value(0)] = a * b
        assert "mul.f64" in opcodes(ctx)

    def test_concrete_index_rejected(self, ctx):
        x = SymArray(ctx, ctx.b.new_param("rd"), "x")
        with pytest.raises(TraceError):
            _ = x[3]
        with pytest.raises(TraceError):
            x[3] = 1.0
