"""Fig. 4 reproduction and the stream comparator."""

import pytest

from repro.core import Block, Grid, Threads, fn_acc, get_idx, get_work_div
from repro.kernels import AxpyKernel, axpy_cuda_native
from repro.trace import (
    compare_streams,
    normalize,
    trace_alpaka_kernel,
    trace_cuda_kernel,
)

SPECS = [("int", "n"), ("float", "alpha"), ("array", "x"), ("array", "y")]
SPECS_NC = [("int", "n"), ("float", "alpha"), ("const_array", "x"), ("array", "y")]


class TestFig4:
    def test_paper_finding(self):
        """Identical up to register names and one nc cache modifier."""
        a = trace_alpaka_kernel(AxpyKernel(), SPECS)
        b = trace_cuda_kernel(axpy_cuda_native, SPECS_NC)
        r = compare_streams(a, b)
        assert r.identical_up_to_cache_modifiers
        assert len(r.notes) == 1
        assert not r.identical

    def test_identical_without_nc(self):
        a = trace_alpaka_kernel(AxpyKernel(), SPECS)
        b = trace_cuda_kernel(axpy_cuda_native, SPECS)
        r = compare_streams(a, b)
        assert r.identical
        assert r.summary() == "streams identical"

    def test_paper_instruction_shapes(self):
        """The traced stream contains exactly the paper's opcodes."""
        ir = trace_alpaka_kernel(AxpyKernel(), SPECS)
        ops = ir.opcode_stream()
        for expected in (
            "mov.u32", "mad.lo.s32", "setp.ge.s32", "bra",
            "cvta.to.global.u64", "mul.wide.s32", "add.s64",
            "ld.global.f64", "fma.rn.f64", "st.global.f64",
        ):
            assert expected in ops, expected
        # Exactly one FMA, two loads, one store (DAXPY's data flow).
        assert ops.count("fma.rn.f64") == 1
        assert ops.count("ld.global.f64") == 2
        assert ops.count("st.global.f64") == 1

    def test_strict_mode_reports_nc_as_difference(self):
        a = trace_alpaka_kernel(AxpyKernel(), SPECS)
        b = trace_cuda_kernel(axpy_cuda_native, SPECS_NC)
        r = compare_streams(a, b, allow_cache_modifiers=False)
        assert not r.identical_up_to_cache_modifiers
        assert len(r.differences) == 1


class TestComparator:
    def test_register_renaming_is_invisible(self):
        """The same kernel traced twice with different registers in
        flight compares identical."""
        k = AxpyKernel()
        a = trace_alpaka_kernel(k, SPECS)
        b = trace_alpaka_kernel(k, SPECS)
        assert compare_streams(a, b).identical

    def test_different_kernels_differ(self):
        @fn_acc
        def saxpy_wrong(acc, n, alpha, x, y):
            i = get_idx(acc, Grid, Threads)[0]
            if i < n:
                y[i] = alpha * y[i] + x[i]  # operands swapped

        a = trace_alpaka_kernel(AxpyKernel(), SPECS)
        b = trace_alpaka_kernel(saxpy_wrong, SPECS)
        r = compare_streams(a, b)
        assert not r.identical_up_to_cache_modifiers

    def test_length_mismatch_detected(self):
        @fn_acc
        def double_store(acc, n, alpha, x, y):
            i = get_idx(acc, Grid, Threads)[0]
            if i < n:
                v = alpha * x[i] + y[i]
                y[i] = v
                y[i] = v  # one extra store

        a = trace_alpaka_kernel(AxpyKernel(), SPECS)
        b = trace_alpaka_kernel(double_store, SPECS)
        r = compare_streams(a, b)
        assert any("<absent>" in d for _, d, _ in []) or r.differences

    def test_normalize_canonical_names(self):
        ir = trace_alpaka_kernel(AxpyKernel(), SPECS)
        normed = normalize(ir)
        regs = [i.dst for i in normed if i.dst and i.dst.startswith("%r")]
        # First integer register in canonical form is %r1.
        assert "%r1" in regs


class TestTraceAcc:
    def test_block_thread_queries(self):
        @fn_acc
        def k(acc, n, alpha, x, y):
            bi = get_idx(acc, Grid, Threads)[0]
            ti = get_idx(acc, Block, Threads)[0]
            bt = get_work_div(acc, Block, Threads)[0]
            if bi < n:
                y[ti + bt] = alpha * x[bi] + y[bi]

        ir = trace_alpaka_kernel(k, SPECS)
        ops = ir.opcode_stream()
        assert "mov.u32" in ops

    def test_sreg_caching(self):
        """Repeated index queries read the special registers once."""

        @fn_acc
        def k(acc, n, alpha, x, y):
            i = get_idx(acc, Grid, Threads)[0]
            j = get_idx(acc, Grid, Threads)[0]
            if i < n:
                y[j] = alpha * x[i] + y[i]

        ir = trace_alpaka_kernel(k, SPECS)
        ops = ir.opcode_stream()
        assert ops.count("mov.u32") == 3  # ctaid, ntid, tid - once each
        assert ops.count("mad.lo.s32") == 1
