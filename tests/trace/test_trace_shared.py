"""Tracing of shared memory and block barriers (tiled-kernel support)."""

import pytest

from repro.core import Block, Grid, Threads, fn_acc, get_idx
from repro.core.errors import TraceError
from repro.trace import trace_alpaka_kernel
from repro.trace.acc import SymSharedArray, TraceAcc
from repro.trace.symbolic import TraceContext

SPECS = [("int", "n"), ("float", "alpha"), ("array", "x"), ("array", "y")]


@fn_acc
def mini_tiled(acc, n, alpha, x, y):
    i = get_idx(acc, Grid, Threads)[0]
    ti = get_idx(acc, Block, Threads)[0]
    tile = acc.shared_mem("tile", (16,))
    if i < n:
        tile[ti] = x[i]
        acc.sync_block_threads()
        y[i] = alpha * tile[ti] + y[i]


class TestSharedTracing:
    def test_shared_opcodes_present(self):
        ir = trace_alpaka_kernel(mini_tiled, SPECS)
        ops = ir.opcode_stream()
        assert "st.shared.f64" in ops
        assert "ld.shared.f64" in ops
        assert "bar.sync" in ops

    def test_barrier_between_store_and_load(self):
        """The trace preserves program order: store, barrier, load."""
        ir = trace_alpaka_kernel(mini_tiled, SPECS)
        ops = ir.opcode_stream()
        assert ops.index("st.shared.f64") < ops.index("bar.sync")
        assert ops.index("bar.sync") < ops.index("ld.shared.f64")

    def test_shared_address_reused(self):
        """tile[ti] store and load share one address computation."""
        ir = trace_alpaka_kernel(mini_tiled, SPECS)
        text = ir.to_text()
        st_line = next(l for l in text.splitlines() if "st.shared" in l)
        ld_line = next(l for l in text.splitlines() if "ld.shared" in l)
        addr_st = st_line.split("[")[1].split("]")[0]
        addr_ld = ld_line.split("[")[1].split("]")[0]
        assert addr_st == addr_ld

    def test_same_name_same_array(self):
        ctx = TraceContext()
        acc = TraceAcc(ctx)
        a = acc.shared_mem("s", (8,))
        b = acc.shared_mem("s", (8,))
        assert a is b

    def test_value_flows_into_fma(self):
        ir = trace_alpaka_kernel(mini_tiled, SPECS)
        assert "fma.rn.f64" in ir.opcode_stream()

    def test_concrete_index_rejected(self):
        ctx = TraceContext()
        arr = SymSharedArray(ctx, "s")
        with pytest.raises(TraceError):
            arr[0]
