"""Spawn-safety: every kernel family survives the process boundary.

The process-pool scheduler ships ``(kernel, work_div, args)`` to spawned
workers via pickle.  These tests pin down the contract that makes that
safe: every kernel in the library pickles under the spawn start method,
representative kernels compute *bit-identical* results when their blocks
run in worker processes, and unpicklable kernels (lambdas, closures)
degrade to the thread pool rather than failing or corrupting results.
"""

import pickle

import numpy as np
import pytest

from repro import (
    QueueBlocking,
    Vec,
    WorkDivMembers,
    clear_plan_cache,
    create_task_kernel,
    get_dev_by_idx,
    mem,
)
from repro.acc.cpu import AccCpuOmp2Blocks
from repro.kernels import (
    AddOffsetsKernel,
    AxpyElementsKernel,
    AxpyKernel,
    BatchedGemmKernel,
    BitonicSortKernel,
    BlockScanKernel,
    CsrSpmvKernel,
    DotKernel,
    FillKernel,
    GemmCudaStyleKernel,
    GemmOmpStyleKernel,
    GemmTilingKernel,
    HistogramKernel,
    IotaKernel,
    Jacobi2DKernel,
    Jacobi3DKernel,
    MapKernel,
    ScaleKernel,
    SumReduceKernel,
    TransposeNaiveKernel,
    TransposeTiledKernel,
    jacobi_reference_step,
)
from repro.runtime import get_plan, shutdown_schedulers
from repro.runtime.procpool import marshal_launch, reset_worker_state
from repro.runtime.scheduler import PROCESS_WORKERS_ENV, SCHEDULER_ENV

#: One instance per kernel family exported by ``repro.kernels`` — the
#: sweep below keeps this list honest against the library.
KERNEL_INSTANCES = [
    AxpyKernel(),
    AxpyElementsKernel(),
    BatchedGemmKernel(),
    GemmCudaStyleKernel(),
    GemmOmpStyleKernel(),
    GemmTilingKernel(),
    HistogramKernel(),
    SumReduceKernel(),
    DotKernel(),
    BlockScanKernel(),
    AddOffsetsKernel(),
    BitonicSortKernel(chunk=8),
    CsrSpmvKernel(),
    Jacobi2DKernel(),
    Jacobi3DKernel(),
    FillKernel(),
    IotaKernel(),
    ScaleKernel(),
    MapKernel(np.sqrt),  # module-level callable: picklable captured state
    TransposeNaiveKernel(),
    TransposeTiledKernel(),
]


@pytest.fixture(autouse=True)
def _clean():
    clear_plan_cache()
    yield
    clear_plan_cache()
    shutdown_schedulers()
    reset_worker_state()


@pytest.fixture
def dev():
    return get_dev_by_idx(AccCpuOmp2Blocks)


class TestPickleSweep:
    @pytest.mark.parametrize(
        "kernel",
        KERNEL_INSTANCES,
        ids=[type(k).__name__ for k in KERNEL_INSTANCES],
    )
    def test_kernel_pickles_under_spawn(self, kernel):
        """Spawn serialises with pickle; every library kernel must
        round-trip and come back callable."""
        clone = pickle.loads(pickle.dumps(kernel))
        assert type(clone) is type(kernel)
        assert callable(clone)

    def test_sweep_covers_every_exported_kernel_class(self):
        """The instance list above must not silently fall behind the
        library: every ``*Kernel`` name in ``repro.kernels.__all__``
        appears exactly once."""
        import repro.kernels as klib

        exported = {n for n in klib.__all__ if n.endswith("Kernel")}
        swept = {type(k).__name__ for k in KERNEL_INSTANCES}
        assert swept == exported


def _forced(monkeypatch, schedule, workers=2):
    monkeypatch.setenv(SCHEDULER_ENV, schedule)
    monkeypatch.setenv(PROCESS_WORKERS_ENV, str(workers))
    clear_plan_cache()
    shutdown_schedulers()


class TestProcessIdentity:
    """Representative kernels, bit-identical across the boundary."""

    def _scale(self, dev):
        n = 4096
        x = mem.alloc(dev, n, shm=True)
        out = mem.alloc(dev, n, shm=True)
        x.as_numpy()[:] = np.arange(n, dtype=np.float64)
        out.as_numpy()[:] = 0.0
        wd = WorkDivMembers.make((8,), (1,), (n // 8,))
        task = create_task_kernel(
            AccCpuOmp2Blocks, wd, ScaleKernel(), n, 3.0, x, out
        )
        QueueBlocking(dev).enqueue(task)
        result = out.as_numpy().copy()
        schedule = get_plan(task, dev).schedule
        x.free()
        out.free()
        return result, schedule

    def _jacobi(self, dev):
        h, w = 33, 47
        rng = np.random.default_rng(5)
        grid0 = rng.random((h, w))
        src = mem.alloc(dev, (h, w), shm=True)
        dst = mem.alloc(dev, (h, w), shm=True)
        src.as_numpy()[:] = grid0
        dst.as_numpy()[:] = 0.0
        elems = Vec(4, 4)
        blocks = Vec(h, w).ceil_div(elems)
        wd = WorkDivMembers.make(blocks, Vec(1, 1), elems)
        task = create_task_kernel(
            AccCpuOmp2Blocks, wd, Jacobi2DKernel(), h, w, 0.15, src, dst
        )
        QueueBlocking(dev).enqueue(task)
        result = dst.as_numpy().copy()
        schedule = get_plan(task, dev).schedule
        src.free()
        dst.free()
        return result, schedule, grid0

    def _transpose(self, dev):
        n = 96
        rng = np.random.default_rng(9)
        inp0 = rng.random((n, n))
        inp = mem.alloc(dev, (n, n), shm=True)
        out = mem.alloc(dev, (n, n), shm=True)
        inp.as_numpy()[:] = inp0
        out.as_numpy()[:] = 0.0
        tile = 16
        blocks = n // tile
        wd = WorkDivMembers.make(
            Vec(blocks, blocks), Vec(1, 1), Vec(tile, tile)
        )
        task = create_task_kernel(
            AccCpuOmp2Blocks, wd, TransposeNaiveKernel(), n, inp, out
        )
        QueueBlocking(dev).enqueue(task)
        result = out.as_numpy().copy()
        schedule = get_plan(task, dev).schedule
        inp.free()
        out.free()
        return result, schedule, inp0

    def test_scale_bit_identical(self, dev, monkeypatch):
        _forced(monkeypatch, "sequential")
        seq, _ = self._scale(dev)
        _forced(monkeypatch, "processes")
        proc, schedule = self._scale(dev)
        assert schedule == "processes"
        assert np.array_equal(seq, proc)

    def test_jacobi2d_bit_identical(self, dev, monkeypatch):
        _forced(monkeypatch, "sequential")
        seq, _, grid0 = self._jacobi(dev)
        _forced(monkeypatch, "processes")
        proc, schedule, _ = self._jacobi(dev)
        assert schedule == "processes"
        assert np.array_equal(seq, proc)
        np.testing.assert_allclose(
            proc, jacobi_reference_step(grid0, 0.15)
        )

    def test_transpose_bit_identical(self, dev, monkeypatch):
        _forced(monkeypatch, "sequential")
        seq, _, inp0 = self._transpose(dev)
        _forced(monkeypatch, "processes")
        proc, schedule, _ = self._transpose(dev)
        assert schedule == "processes"
        assert np.array_equal(seq, proc)
        assert np.array_equal(proc, inp0.T)


class TestUnpicklableFallback:
    def test_lambda_map_falls_back_and_stays_correct(
        self, dev, monkeypatch
    ):
        _forced(monkeypatch, "processes")
        n = 512
        x = mem.alloc(dev, n, shm=True)
        out = mem.alloc(dev, n, shm=True)
        x.as_numpy()[:] = np.arange(n, dtype=np.float64)
        wd = WorkDivMembers.make((4,), (1,), (n // 4,))
        task = create_task_kernel(
            AccCpuOmp2Blocks, wd, MapKernel(lambda v: v * v + 1.0),
            n, x, out,
        )
        plan = get_plan(task, dev)
        state = marshal_launch(plan, task)
        assert not state.eligible
        assert "pickle" in state.reason
        QueueBlocking(dev).enqueue(task)  # thread-pool fallback path
        assert np.array_equal(
            out.as_numpy(), np.arange(float(n)) ** 2 + 1.0
        )
        x.free()
        out.free()

    def test_closure_over_local_state_falls_back(self, dev, monkeypatch):
        _forced(monkeypatch, "processes")
        offsets = np.full(256, 7.0)

        def shifted(v):
            return v + offsets[: len(v)]

        n = 256
        x = mem.alloc(dev, n, shm=True)
        out = mem.alloc(dev, n, shm=True)
        x.as_numpy()[:] = np.arange(n, dtype=np.float64)
        wd = WorkDivMembers.make((4,), (1,), (n // 4,))
        task = create_task_kernel(
            AccCpuOmp2Blocks, wd, MapKernel(shifted), n, x, out
        )
        state = marshal_launch(get_plan(task, dev), task)
        assert not state.eligible
        QueueBlocking(dev).enqueue(task)
        assert np.array_equal(out.as_numpy(), np.arange(float(n)) + 7.0)
        x.free()
        out.free()
