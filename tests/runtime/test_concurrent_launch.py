"""Concurrent ``launch()`` from many threads sharing one device.

The serving gateway runs one lane thread per device queue, and user
code may call ``launch()`` from its own threads at the same time — the
plan cache (keyed task lookups with an LRU lock), the tuning
generation, and the device's launch accounting must all hold up under
contention without corrupting results or counts.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import (
    accelerator,
    create_task_kernel,
    divide_work,
    get_dev_by_idx,
    mem,
)
from repro.kernels import AxpyElementsKernel, ScaleKernel
from repro.queue.queue import QueueBlocking
from repro.runtime import clear_plan_cache, launch, plan_cache_info

THREADS = 16
LAUNCHES_PER_THREAD = 8
N = 512


@pytest.fixture
def acc():
    return accelerator("AccCpuSerial")


@pytest.fixture
def device(acc):
    return get_dev_by_idx(acc, 0)


def _axpy_once(acc, device, rng):
    x_host = rng.standard_normal(N)
    y_host = rng.standard_normal(N)
    queue = QueueBlocking(device)
    x = mem.alloc(device, (N,), pitched=False)
    y = mem.alloc(device, (N,), pitched=False)
    mem.copy(queue, x, x_host)
    mem.copy(queue, y, y_host)
    props = acc.get_acc_dev_props(device)
    work_div = divide_work(
        N, props, acc.mapping_strategy, thread_elems=256
    )
    task = create_task_kernel(
        acc, work_div, AxpyElementsKernel(), N, 2.0, x, y
    )
    try:
        launch(task, device)
        out = np.empty(N)
        mem.copy(queue, out, y)
    finally:
        x.free()
        y.free()
    return x_host, y_host, out


class TestConcurrentLaunch:
    def test_sixteen_thread_hammer(self, acc, device):
        """16 threads x 8 launches on one device: every result correct,
        no exception, launch accounting exact."""
        clear_plan_cache()
        count_before = device.kernel_launch_count
        errors = []
        barrier = threading.Barrier(THREADS)

        def worker(seed):
            rng = np.random.default_rng(seed)
            try:
                barrier.wait(timeout=30)
                for _ in range(LAUNCHES_PER_THREAD):
                    x, y, out = _axpy_once(acc, device, rng)
                    if not np.array_equal(out, 2.0 * x + y):
                        raise AssertionError("wrong result under contention")
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(1000 + i,))
            for i in range(THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors[:3]
        # The unsynchronized += this guards against loses updates; the
        # count must be exact, not merely close.
        assert (
            device.kernel_launch_count - count_before
            == THREADS * LAUNCHES_PER_THREAD
        )

    def test_plan_cache_hits_under_contention(self, acc, device):
        """Identical tasks from many threads must share one cached plan
        (no duplicate inserts, no corrupted stats)."""
        clear_plan_cache()
        rng = np.random.default_rng(0)
        x_host = rng.standard_normal(N)
        y_host = rng.standard_normal(N)
        barrier = threading.Barrier(8)
        errors = []
        # One shared kernel instance: the plan key includes kernel
        # identity, and sharing it is exactly what the serving
        # workloads (and any long-lived launcher) do.
        kernel = ScaleKernel()

        def worker():
            try:
                barrier.wait(timeout=30)
                for _ in range(10):
                    queue = QueueBlocking(device)
                    x = mem.alloc(device, (N,), pitched=False)
                    y = mem.alloc(device, (N,), pitched=False)
                    mem.copy(queue, x, x_host)
                    mem.copy(queue, y, y_host)
                    props = acc.get_acc_dev_props(device)
                    work_div = divide_work(
                        N, props, acc.mapping_strategy, thread_elems=256
                    )
                    task = create_task_kernel(
                        acc, work_div, kernel, N, 3.0, x, y
                    )
                    try:
                        launch(task, device)
                    finally:
                        x.free()
                        y.free()
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors[:3]
        info = plan_cache_info()
        total = info["hits"] + info["misses"]
        assert total >= 80
        # One plan serves everyone after the first resolution: hit rate
        # must dominate (a tiny miss burst at the start is fine).
        assert info["hits"] >= total - 8

    def test_concurrent_distinct_kernels(self, acc, device):
        """Different tasks interleaved from different threads: distinct
        plans coexist without cross-talk."""
        clear_plan_cache()
        errors = []

        def axpy_worker():
            rng = np.random.default_rng(42)
            try:
                for _ in range(6):
                    x, y, out = _axpy_once(acc, device, rng)
                    assert np.array_equal(out, 2.0 * x + y)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def gemm_worker():
            from repro.serve import LaunchRequest, get_workload

            rng = np.random.default_rng(43)
            try:
                for _ in range(3):
                    A = rng.standard_normal((24, 24))
                    B = rng.standard_normal((24, 24))
                    req = LaunchRequest(
                        workload="gemm",
                        params={"alpha": 1.0, "beta": 0.0},
                        arrays={"A": A, "B": B},
                    )
                    out = get_workload("gemm").execute(
                        [req], acc, device
                    )[0]
                    assert out["C"].shape == (24, 24)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=axpy_worker) for _ in range(4)]
        threads += [threading.Thread(target=gemm_worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors[:3]
