"""Observer exceptions: propagation ordering and scheduler-pool health."""

import pytest

from repro import (
    AccCpuOmp2Blocks,
    AccCpuSerial,
    CountingObserver,
    ExecutionObserver,
    QueueBlocking,
    WorkDivMembers,
    clear_plan_cache,
    create_task_kernel,
    fn_acc,
    get_dev_by_idx,
    observe,
)
from repro.core.errors import KernelError


@fn_acc
def _noop(acc):
    pass


@fn_acc
def _failing(acc):
    raise RuntimeError("kernel boom")


class _RaisingEndObserver(ExecutionObserver):
    def on_launch_end(self, plan, task, device):
        raise ValueError("observer boom")


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


def _task(acc_type, kernel, blocks=8):
    return create_task_kernel(
        acc_type, WorkDivMembers.make(blocks, 1, 1), kernel
    )


class TestObserverExceptionOrdering:
    def test_observer_error_on_clean_launch_propagates(self):
        q = QueueBlocking(get_dev_by_idx(AccCpuSerial, 0))
        with observe(_RaisingEndObserver()):
            with pytest.raises(ValueError, match="observer boom"):
                q.enqueue(_task(AccCpuSerial, _noop))

    def test_kernel_error_wins_over_observer_error(self):
        """A failing kernel's error must reach the caller even when an
        observer also raises from on_launch_end."""
        q = QueueBlocking(get_dev_by_idx(AccCpuSerial, 0))
        with observe(_RaisingEndObserver()):
            with pytest.raises(KernelError, match="_failing") as exc:
                q.enqueue(_task(AccCpuSerial, _failing))
        assert "kernel boom" in str(exc.value.__cause__)

    def test_launch_end_reaches_later_observers_after_kernel_failure(self):
        """Counting continues for observers behind the failing launch."""
        stats = CountingObserver()
        q = QueueBlocking(get_dev_by_idx(AccCpuSerial, 0))
        with observe(stats):
            with pytest.raises(KernelError):
                q.enqueue(_task(AccCpuSerial, _failing))
        assert stats.launches == 1


class TestPoolStaysUsable:
    def test_pool_not_wedged_by_observer_error(self):
        """An observer raising in on_launch_end on a pooled back-end must
        not leave the per-device worker pool unusable (the regression the
        issue names)."""
        dev = get_dev_by_idx(AccCpuOmp2Blocks, 0)
        q = QueueBlocking(dev)
        task = _task(AccCpuOmp2Blocks, _noop, blocks=32)
        with observe(_RaisingEndObserver()):
            for _ in range(3):
                with pytest.raises(ValueError, match="observer boom"):
                    q.enqueue(task)
        # Observer gone: the same pool must run launches to completion.
        with observe(CountingObserver()) as stats:
            q.enqueue(task)
        assert stats.launches == 1
        assert stats.blocks == 32

    def test_pool_survives_kernel_failure_with_raising_observer(self):
        dev = get_dev_by_idx(AccCpuOmp2Blocks, 0)
        q = QueueBlocking(dev)
        with observe(_RaisingEndObserver()):
            with pytest.raises(KernelError, match="_failing"):
                q.enqueue(_task(AccCpuOmp2Blocks, _failing, blocks=16))
        with observe(CountingObserver()) as stats:
            q.enqueue(_task(AccCpuOmp2Blocks, _noop, blocks=16))
        assert stats.launches == 1
        assert stats.blocks == 16
