"""Process-pool block dispatch: classification, workers, fallback."""

import multiprocessing as mp
import os
import subprocess
import sys

import numpy as np
import pytest

from repro import mem
from repro.acc.cpu import AccCpuOmp2Blocks, AccCpuSerial
from repro.core.kernel import create_task_kernel
from repro.core.vec import Vec
from repro.core.workdiv import WorkDivMembers
from repro.dev.manager import (
    device_workers,
    get_dev_by_idx,
    shutdown_device_workers,
)
from repro.kernels.axpy import AxpyElementsKernel, axpy_reference
from repro.kernels.histogram import HistogramKernel, histogram_reference
from repro.queue import QueueBlocking
from repro.runtime import (
    ProcessPoolScheduler,
    clear_plan_cache,
    get_plan,
    scheduler_for,
    shutdown_schedulers,
)
from repro.runtime.procpool import (
    ATOMIC_STRIPES,
    ProcessSharedAtomicDomain,
    marshal_launch,
    process_launch_state,
    reset_worker_state,
    run_chunk,
    worker_init,
)
from repro.runtime.scheduler import PROCESS_WORKERS_ENV, SCHEDULER_ENV


from repro.core.kernel import fn_acc


@fn_acc
def _boom(acc, b):
    raise RuntimeError("nope")


@pytest.fixture
def dev():
    return get_dev_by_idx(AccCpuOmp2Blocks)


@pytest.fixture(autouse=True)
def _clean():
    clear_plan_cache()
    yield
    clear_plan_cache()
    shutdown_schedulers()
    reset_worker_state()


def _axpy_task(dev, n=1024, blocks=4, shm=True):
    x = mem.alloc(dev, n, shm=shm)
    y = mem.alloc(dev, n, shm=shm)
    x.as_numpy()[:] = np.arange(n, dtype=np.float64)
    y.as_numpy()[:] = 1.0
    wd = WorkDivMembers.make((blocks,), (1,), (-(-n // blocks),))
    task = create_task_kernel(
        AccCpuOmp2Blocks, wd, AxpyElementsKernel(), n, 2.0, x, y
    )
    return task, x, y


class TestClassification:
    def test_shm_axpy_is_eligible(self, dev):
        task, x, y = _axpy_task(dev)
        plan = get_plan(task, dev)
        state = marshal_launch(plan, task)
        assert state.eligible, state.reason
        assert state.blob is not None and state.digest
        x.free()
        y.free()

    def test_private_buffer_ineligible_with_reason(self, dev):
        task, x, y = _axpy_task(dev, shm=False)
        plan = get_plan(task, dev)
        state = marshal_launch(plan, task)
        assert not state.eligible
        assert "private-memory" in state.reason
        assert "shm=True" in state.reason
        x.free()
        y.free()

    def test_lambda_kernel_ineligible(self, dev):
        buf = mem.alloc(dev, 64, shm=True)
        wd = WorkDivMembers.make(4, 1, 16)
        task = create_task_kernel(
            AccCpuOmp2Blocks, wd, lambda acc, b: None, buf
        )
        plan = get_plan(task, dev)
        state = marshal_launch(plan, task)
        assert not state.eligible
        assert "pickle" in state.reason
        buf.free()

    def test_view_of_shared_buffer_eligible(self, dev):
        base = mem.alloc(dev, (8, 8), shm=True)
        view = mem.sub_view(base, offset=(2, 0), extent=(4, 8))
        wd = WorkDivMembers.make(2, 1, 2)
        task = create_task_kernel(
            AccCpuOmp2Blocks, wd, AxpyElementsKernel(), 4, 1.0, view, view
        )
        plan = get_plan(task, dev)
        state = marshal_launch(plan, task)
        assert state.eligible, state.reason
        base.free()

    def test_view_of_private_buffer_ineligible(self, dev):
        base = mem.alloc(dev, (8, 8), shm=False)
        view = mem.sub_view(base, offset=(0, 0), extent=(4, 8))
        wd = WorkDivMembers.make(2, 1, 2)
        task = create_task_kernel(
            AccCpuOmp2Blocks, wd, AxpyElementsKernel(), 4, 1.0, view, view
        )
        plan = get_plan(task, dev)
        state = marshal_launch(plan, task)
        assert not state.eligible
        assert "view of a private-memory" in state.reason
        base.free()

    def test_state_memoised_per_args_identity(self, dev):
        task, x, y = _axpy_task(dev)
        plan = get_plan(task, dev)
        s1 = process_launch_state(plan, task)
        s2 = process_launch_state(plan, task)
        assert s1 is s2
        x.free()
        y.free()


class TestProcessSharedAtomicDomain:
    def test_locks_keyed_by_index_not_array(self):
        locks = [mp.get_context("spawn").Lock() for _ in range(8)]
        dom = ProcessSharedAtomicDomain(locks)
        a = np.zeros(4)
        b = np.zeros(4)
        # Same index on different arrays -> same stripe (identity of the
        # array is process-local and must not participate).
        assert dom._lock_for(a, 2) is dom._lock_for(b, 2)
        assert dom._lock_for(a, (1, 3)) is dom._lock_for(b, (1, 3))

    def test_rmw_semantics_preserved(self):
        locks = [mp.get_context("spawn").Lock() for _ in range(4)]
        dom = ProcessSharedAtomicDomain(locks)
        arr = np.zeros(3)
        old = dom.atomic_add(arr, 1, 5.0)
        assert old == 0.0 and arr[1] == 5.0
        assert dom.atomic_max(arr, 1, 3.0) == 5.0 and arr[1] == 5.0

    def test_empty_lock_table_rejected(self):
        with pytest.raises(ValueError):
            ProcessSharedAtomicDomain([])


class TestRunChunkInProcess:
    """run_chunk exercised in-process (worker_init called directly)."""

    def test_runs_span_and_returns_timings(self, dev):
        task, x, y = _axpy_task(dev, n=256, blocks=4)
        plan = get_plan(task, dev)
        state = marshal_launch(plan, task)
        worker_init([mp.get_context("spawn").Lock() for _ in range(4)])
        pid, timings = run_chunk(state.digest, state.blob, 0, 4, True)
        assert pid == os.getpid()
        assert [k for k, _ in timings] == [0, 1, 2, 3]
        assert np.array_equal(
            y.as_numpy(),
            axpy_reference(2.0, np.arange(256.0), np.ones(256)),
        )
        x.free()
        y.free()

    def test_payload_cached_by_digest(self, dev):
        task, x, y = _axpy_task(dev, n=64, blocks=2)
        plan = get_plan(task, dev)
        state = marshal_launch(plan, task)
        worker_init([mp.get_context("spawn").Lock()])
        run_chunk(state.digest, state.blob, 0, 1, False)
        from repro.runtime import procpool

        cached = procpool._payloads[state.digest]
        run_chunk(state.digest, state.blob, 1, 2, False)
        assert procpool._payloads[state.digest] is cached
        x.free()
        y.free()

    def test_kernel_error_carries_worker_pid(self, dev):
        from repro.core.errors import KernelError

        buf = mem.alloc(dev, 8, shm=True)
        wd = WorkDivMembers.make(2, 1, 4)
        task = create_task_kernel(AccCpuOmp2Blocks, wd, _boom, buf)
        plan = get_plan(task, dev)
        state = marshal_launch(plan, task)
        assert state.eligible, state.reason
        worker_init([mp.get_context("spawn").Lock()])
        with pytest.raises(KernelError) as err:
            run_chunk(state.digest, state.blob, 0, 1, False)
        assert "process worker pid" in str(err.value)
        assert err.value.__cause__ is None  # message-only, pickle-safe
        buf.free()


class TestDispatch:
    def test_end_to_end_two_workers(self, dev, monkeypatch):
        monkeypatch.setenv(SCHEDULER_ENV, "processes")
        monkeypatch.setenv(PROCESS_WORKERS_ENV, "2")
        n = 4096
        task, x, y = _axpy_task(dev, n=n, blocks=8)
        queue = QueueBlocking(dev)
        queue.enqueue(task)
        expect = axpy_reference(2.0, np.arange(float(n)), np.ones(n))
        assert np.array_equal(y.as_numpy(), expect)
        plan = get_plan(task, dev)
        assert plan.schedule == "processes"
        sched = scheduler_for(dev, "processes")
        assert isinstance(sched, ProcessPoolScheduler)
        assert sched.worker_count == 2
        # Warm relaunch reuses the marshalled payload and stays right.
        y.as_numpy()[:] = 1.0
        queue.enqueue(task)
        assert np.array_equal(y.as_numpy(), expect)
        x.free()
        y.free()

    def test_atomics_via_shared_lock_table(self, dev, monkeypatch):
        monkeypatch.setenv(SCHEDULER_ENV, "processes")
        monkeypatch.setenv(PROCESS_WORKERS_ENV, "2")
        n, bins = 2048, 16
        rng = np.random.default_rng(3)
        data = rng.random(n)
        x = mem.alloc(dev, n, shm=True)
        hist = mem.alloc(dev, bins, shm=True)
        x.as_numpy()[:] = data
        wd = WorkDivMembers.make((8,), (1,), (n // 8,))
        task = create_task_kernel(
            AccCpuOmp2Blocks, wd, HistogramKernel(), n, 0.0, 1.0, bins,
            x, hist,
        )
        QueueBlocking(dev).enqueue(task)
        assert get_plan(task, dev).schedule == "processes"
        assert np.array_equal(
            hist.as_numpy(), histogram_reference(data, bins, 0.0, 1.0)
        )
        x.free()
        hist.free()

    def test_private_buffers_fall_back_and_stay_correct(
        self, dev, monkeypatch, caplog
    ):
        import logging

        monkeypatch.setenv(SCHEDULER_ENV, "processes")
        n = 512
        task, x, y = _axpy_task(dev, n=n, blocks=4, shm=False)
        with caplog.at_level(logging.INFO, "repro.runtime.scheduler"):
            QueueBlocking(dev).enqueue(task)
        assert np.array_equal(
            y.as_numpy(),
            axpy_reference(2.0, np.arange(float(n)), np.ones(n)),
        )
        assert any(
            "falls back to the thread pool" in r.message for r in caplog.records
        )
        x.free()
        y.free()

    def test_fallback_reason_logged_once(self, dev, monkeypatch, caplog):
        import logging

        monkeypatch.setenv(SCHEDULER_ENV, "processes")
        task, x, y = _axpy_task(dev, shm=False)
        queue = QueueBlocking(dev)
        with caplog.at_level(logging.INFO, "repro.runtime.scheduler"):
            queue.enqueue(task)
            queue.enqueue(task)
        fallbacks = [
            r for r in caplog.records if "falls back" in r.message
        ]
        assert len(fallbacks) == 1
        x.free()
        y.free()

    def test_custom_block_subset_falls_back(self, dev, monkeypatch):
        monkeypatch.setenv(PROCESS_WORKERS_ENV, "2")
        task, x, y = _axpy_task(dev, n=256, blocks=4)
        plan = get_plan(task, dev)
        sched = ProcessPoolScheduler(dev)
        from repro.acc.base import GridContext

        grid = GridContext(
            dev, plan.work_div, plan.props, plan.unwrap_args(task.args)
        )
        subset = plan.block_indices[:2]
        sched.dispatch(plan, grid, subset, task)  # must not hang or raise
        x.free()
        y.free()

    def test_pool_lazy_and_shutdown_idempotent(self, dev, monkeypatch):
        sched = ProcessPoolScheduler(dev)
        assert sched._pool is None  # nothing spawned until needed
        sched.shutdown()
        sched.shutdown()


class TestEnvResolution:
    def test_scheduler_env_values(self, monkeypatch):
        from repro.runtime import resolve_scheduler_override

        monkeypatch.delenv(SCHEDULER_ENV, raising=False)
        assert resolve_scheduler_override() is None
        for raw, want in (
            ("sequential", "sequential"),
            ("threads", "pooled"),
            ("pooled", "pooled"),
            ("processes", "processes"),
            ("PROCESSES", "processes"),
        ):
            monkeypatch.setenv(SCHEDULER_ENV, raw)
            assert resolve_scheduler_override() == want

    def test_scheduler_env_rejects_unknown(self, monkeypatch):
        from repro.runtime import resolve_scheduler_override

        monkeypatch.setenv(SCHEDULER_ENV, "gpu")
        with pytest.raises(ValueError, match="REPRO_SCHEDULER"):
            resolve_scheduler_override()

    def test_process_workers_env(self, monkeypatch):
        from repro.runtime import resolve_process_workers

        monkeypatch.setenv(PROCESS_WORKERS_ENV, "5")
        assert resolve_process_workers() == 5
        monkeypatch.setenv(PROCESS_WORKERS_ENV, "0")
        assert resolve_process_workers() == 1
        monkeypatch.setenv(PROCESS_WORKERS_ENV, "soon")
        with pytest.raises(ValueError):
            resolve_process_workers()

    def test_override_never_remaps_sequential_backends(
        self, dev, monkeypatch
    ):
        monkeypatch.setenv(SCHEDULER_ENV, "processes")
        sdev = get_dev_by_idx(AccCpuSerial)
        buf = mem.alloc(sdev, 64, shm=True)
        wd = WorkDivMembers.make(4, 1, 16)
        task = create_task_kernel(
            AccCpuSerial, wd, AxpyElementsKernel(), 64, 1.0, buf, buf
        )
        assert get_plan(task, sdev).schedule == "sequential"
        buf.free()

    def test_override_is_part_of_plan_identity(self, dev, monkeypatch):
        task, x, y = _axpy_task(dev)
        monkeypatch.delenv(SCHEDULER_ENV, raising=False)
        p1 = get_plan(task, dev)
        monkeypatch.setenv(SCHEDULER_ENV, "processes")
        p2 = get_plan(task, dev)
        assert p1 is not p2
        assert p1.schedule == "pooled" and p2.schedule == "processes"
        x.free()
        y.free()


class TestDevWorkerLifecycle:
    def test_device_workers_reflects_live_pools(self, dev, monkeypatch):
        shutdown_device_workers()
        assert device_workers() == {}
        task, x, y = _axpy_task(dev)
        QueueBlocking(dev).enqueue(task)
        assert (dev.uid, "pooled") in device_workers()
        shutdown_device_workers()
        assert device_workers() == {}
        x.free()
        y.free()


class TestAtexitOrdering:
    def test_exit_with_live_pools_is_clean(self):
        """A process pool still alive at interpreter exit must neither
        deadlock nor print BrokenProcessPool noise: the atexit-registered
        shutdown_schedulers drains it before executor teardown."""
        code = """
import os
os.environ["REPRO_SCHEDULER"] = "processes"
os.environ["REPRO_PROCESS_WORKERS"] = "2"
import numpy as np
from repro import mem
from repro.acc.cpu import AccCpuOmp2Blocks
from repro.core.kernel import create_task_kernel
from repro.core.workdiv import WorkDivMembers
from repro.dev.manager import get_dev_by_idx
from repro.kernels.axpy import AxpyElementsKernel
from repro.queue import QueueBlocking

dev = get_dev_by_idx(AccCpuOmp2Blocks)
x = mem.alloc(dev, 1024, shm=True)
y = mem.alloc(dev, 1024, shm=True)
wd = WorkDivMembers.make(4, 1, 256)
task = create_task_kernel(AccCpuOmp2Blocks, wd, AxpyElementsKernel(),
                          1024, 2.0, x, y)
QueueBlocking(dev).enqueue(task)
print("LAUNCHED")
# exit without shutdown_schedulers(), without free(): atexit must cope
"""
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            timeout=120,
            cwd="/root/repo",
            env={**os.environ, "PYTHONPATH": "src"},
        )
        assert proc.returncode == 0, proc.stderr
        assert "LAUNCHED" in proc.stdout
        assert "BrokenProcessPool" not in proc.stderr
        assert "Traceback" not in proc.stderr
        assert "leaked shared_memory" not in proc.stderr


class TestUnguardedMain:
    def test_unguarded_script_degrades_instead_of_breaking(self, tmp_path):
        """A user script with no ``if __name__ == "__main__":`` guard is
        re-executed top-level by every spawn child during bootstrap.
        Process dispatch inside such a child must fall back to the
        thread pool (the ``_inheriting`` bootstrap marker) instead of
        recursively spawning grandchildren — which would abort the
        bootstrap and break the parent's pool.  The whole script must
        succeed, parent included, with correct results throughout."""
        script = tmp_path / "unguarded.py"
        script.write_text(
            "import os\n"
            'os.environ["REPRO_SCHEDULER"] = "processes"\n'
            'os.environ["REPRO_PROCESS_WORKERS"] = "2"\n'
            "import numpy as np\n"
            "from repro import mem\n"
            "from repro.acc.cpu import AccCpuOmp2Blocks\n"
            "from repro.core.kernel import create_task_kernel\n"
            "from repro.core.workdiv import WorkDivMembers\n"
            "from repro.dev.manager import get_dev_by_idx\n"
            "from repro.kernels.axpy import AxpyElementsKernel\n"
            "from repro.queue import QueueBlocking\n"
            "dev = get_dev_by_idx(AccCpuOmp2Blocks)\n"
            "x = mem.alloc(dev, 1024, shm=True)\n"
            "y = mem.alloc(dev, 1024, shm=True)\n"
            "x.as_numpy()[:] = np.arange(1024.0)\n"
            "y.as_numpy()[:] = 1.0\n"
            "wd = WorkDivMembers.make(4, 1, 256)\n"
            "task = create_task_kernel(AccCpuOmp2Blocks, wd,\n"
            "                          AxpyElementsKernel(), 1024, 2.0, x, y)\n"
            "QueueBlocking(dev).enqueue(task)\n"
            "assert np.array_equal(y.as_numpy(),\n"
            "                      2.0 * np.arange(1024.0) + 1.0)\n"
            "x.free()\n"
            "y.free()\n"
            'print("UNGUARDED-OK")\n'
        )
        proc = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True,
            text=True,
            timeout=120,
            cwd="/root/repo",
            env={**os.environ, "PYTHONPATH": "src"},
        )
        assert proc.returncode == 0, proc.stderr
        # Parent run + one re-execution per bootstrapped worker, all OK.
        assert proc.stdout.count("UNGUARDED-OK") >= 2
        assert "BrokenProcessPool" not in proc.stderr
        assert "bootstrapping phase" not in proc.stderr
