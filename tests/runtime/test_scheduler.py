"""Per-device schedulers: chunking, env-configured caps, determinism."""

import subprocess
import sys

import numpy as np
import pytest

from repro import (
    AccCpuFibers,
    AccCpuOmp2Blocks,
    QueueBlocking,
    WorkDivMembers,
    create_task_kernel,
    fn_acc,
    get_dev_by_idx,
    mem,
)
from repro.core.vec import Vec
from repro.runtime.scheduler import (
    MAX_BLOCK_WORKERS,
    chunk_indices,
    resolve_max_block_workers,
    scheduler_for,
)


class TestChunking:
    def test_chunks_cover_all_indices_in_order(self):
        idx = [Vec(i) for i in range(17)]
        chunks = chunk_indices(idx, 4)
        assert [v for c in chunks for v in c] == idx
        assert len(chunks) <= 4

    def test_chunk_size_is_ceil_div(self):
        idx = [Vec(i) for i in range(10)]
        chunks = chunk_indices(idx, 4)
        # ceil(10/4) = 3 -> chunk sizes 3,3,3,1
        assert [len(c) for c in chunks] == [3, 3, 3, 1]

    def test_fewer_blocks_than_workers(self):
        idx = [Vec(i) for i in range(3)]
        chunks = chunk_indices(idx, 16)
        assert [len(c) for c in chunks] == [1, 1, 1]

    def test_empty_grid(self):
        assert chunk_indices([], 8) == []


class TestWorkerCap:
    def test_default_cap(self, monkeypatch):
        monkeypatch.delenv("REPRO_MAX_BLOCK_WORKERS", raising=False)
        import os

        expected = min(MAX_BLOCK_WORKERS, max(2, os.cpu_count() or 1))
        assert resolve_max_block_workers() == expected

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_BLOCK_WORKERS", "3")
        assert resolve_max_block_workers() == 3

    def test_env_clamped_to_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_BLOCK_WORKERS", "0")
        assert resolve_max_block_workers() == 1

    def test_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_BLOCK_WORKERS", "lots")
        with pytest.raises(ValueError):
            resolve_max_block_workers()

    def test_cap_visible_in_device_properties(self):
        dev = get_dev_by_idx(AccCpuOmp2Blocks, 0)
        props = AccCpuOmp2Blocks.get_acc_dev_props(dev)
        assert props.max_block_workers == resolve_max_block_workers()

    def test_sequential_backend_reports_one_worker(self):
        from repro import AccCpuSerial

        dev = get_dev_by_idx(AccCpuSerial, 0)
        assert AccCpuSerial.get_acc_dev_props(dev).max_block_workers == 1

    def test_cap_applies_to_fresh_pool(self):
        """A subprocess with REPRO_MAX_BLOCK_WORKERS=2 builds a 2-worker
        pool and reports it through device properties."""
        code = (
            "from repro import AccCpuOmp2Blocks, get_dev_by_idx\n"
            "from repro.runtime.scheduler import scheduler_for\n"
            "dev = get_dev_by_idx(AccCpuOmp2Blocks, 0)\n"
            "sched = scheduler_for(dev, 'pooled')\n"
            "props = AccCpuOmp2Blocks.get_acc_dev_props(dev)\n"
            "print(sched.worker_count, props.max_block_workers)\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "REPRO_MAX_BLOCK_WORKERS": "2"},
            cwd="/root/repo",
            check=True,
        )
        assert out.stdout.split() == ["2", "2"]


class TestDispatchSemantics:
    def test_pooled_grid_correctness_large(self):
        @fn_acc
        def bump(acc, data):
            from repro.core import Blocks, Grid, get_idx

            bi = get_idx(acc, Grid, Blocks)[0]
            data[bi] += 1.0

        dev = get_dev_by_idx(AccCpuOmp2Blocks, 0)
        q = QueueBlocking(dev)
        n = 1000
        buf = mem.alloc(dev, n)
        mem.memset(q, buf, 0.0)
        q.enqueue(
            create_task_kernel(
                AccCpuOmp2Blocks, WorkDivMembers.make(n, 1, 1), bump, buf
            )
        )
        assert np.all(buf.as_numpy() == 1.0)
        buf.free()

    def test_fiber_interleaving_preserved_under_runtime(self):
        """The fiber back-end's deterministic round-robin survives the
        scheduler refactor: block order and intra-block fiber order are
        exactly reproducible."""

        @fn_acc
        def k(acc, out):
            from repro.core import Block, Blocks, Grid, Threads, get_idx

            bi = get_idx(acc, Grid, Blocks)[0]
            ti = get_idx(acc, Block, Threads)[0]
            order = acc.atomic_add(out, 0, 1.0)
            out[1 + bi * 4 + ti] = order
            acc.sync_block_threads()

        results = []
        for _ in range(3):
            dev = get_dev_by_idx(AccCpuFibers, 0)
            q = QueueBlocking(dev)
            out = mem.alloc(dev, 1 + 8)
            mem.memset(q, out, 0.0)
            q.enqueue(
                create_task_kernel(
                    AccCpuFibers, WorkDivMembers.make(2, 4, 1), k, out
                )
            )
            results.append(out.as_numpy().copy())
            out.free()
        np.testing.assert_array_equal(results[0], results[1])
        np.testing.assert_array_equal(results[1], results[2])
        # Blocks sequential + fibers round-robin => arrival order is the
        # global linear (block, thread) order.
        np.testing.assert_array_equal(results[0][1:], np.arange(8.0))

    def test_error_in_one_chunk_propagates(self):
        from repro.core.errors import KernelError

        @fn_acc
        def sometimes_bad(acc):
            from repro.core import Blocks, Grid, get_idx

            if get_idx(acc, Grid, Blocks)[0] == 37:
                raise RuntimeError("chunk casualty")

        dev = get_dev_by_idx(AccCpuOmp2Blocks, 0)
        q = QueueBlocking(dev)
        with pytest.raises(KernelError, match="block"):
            q.enqueue(
                create_task_kernel(
                    AccCpuOmp2Blocks, WorkDivMembers.make(64, 1, 1), sometimes_bad
                )
            )

    def test_unknown_schedule_rejected(self):
        dev = get_dev_by_idx(AccCpuOmp2Blocks, 0)
        with pytest.raises(ValueError, match="unknown block schedule"):
            scheduler_for(dev, "quantum")
