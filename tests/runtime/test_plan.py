"""LaunchPlan construction and the LRU plan cache."""

import numpy as np
import pytest

from repro import (
    AccCpuFibers,
    AccCpuOmp2Blocks,
    AccCpuSerial,
    AccGpuCudaSim,
    QueueBlocking,
    WorkDivMembers,
    clear_plan_cache,
    create_task_kernel,
    fn_acc,
    get_dev_by_idx,
    mem,
    plan_cache_info,
)
from repro.core.errors import InvalidWorkDiv, SharedMemError
from repro.runtime import build_plan, get_plan
from repro.acc.engine import (
    run_block_cooperative,
    run_block_single_thread,
)


@fn_acc
def _noop(acc):
    pass


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


class TestBuildPlan:
    def test_captures_strategy_pair(self):
        dev = get_dev_by_idx(AccCpuOmp2Blocks, 0)
        task = create_task_kernel(
            AccCpuOmp2Blocks, WorkDivMembers.make(8, 1, 1), _noop
        )
        plan = build_plan(task, dev)
        assert plan.schedule == "pooled"
        assert plan.block_runner is run_block_single_thread
        assert len(plan.block_indices) == 8
        assert plan.props.dim == 1

    def test_fiber_backend_stays_sequential_and_cooperative(self):
        dev = get_dev_by_idx(AccCpuFibers, 0)
        task = create_task_kernel(
            AccCpuFibers, WorkDivMembers.make(4, 2, 1), _noop
        )
        plan = build_plan(task, dev)
        assert plan.schedule == "sequential"
        assert plan.block_runner is run_block_cooperative

    def test_one_block_grid_plans_sequential(self):
        """Pool dispatch of a single block is pure overhead; the plan
        removes it."""
        dev = get_dev_by_idx(AccCpuOmp2Blocks, 0)
        task = create_task_kernel(
            AccCpuOmp2Blocks, WorkDivMembers.make(1, 1, 64), _noop
        )
        assert build_plan(task, dev).schedule == "sequential"

    def test_invalid_work_div_raises_at_plan_time(self):
        dev = get_dev_by_idx(AccCpuSerial, 0)
        task = create_task_kernel(
            AccCpuSerial, WorkDivMembers.make(1, 64, 1), _noop
        )
        with pytest.raises(InvalidWorkDiv):
            build_plan(task, dev)
        # Nothing was cached for the failing configuration.
        get_plan_raises = pytest.raises(InvalidWorkDiv)
        with get_plan_raises:
            get_plan(task, dev)
        assert plan_cache_info()["size"] == 0

    def test_oversized_shared_mem_rejected(self):
        dev = get_dev_by_idx(AccGpuCudaSim, 0)
        task = create_task_kernel(
            AccGpuCudaSim,
            WorkDivMembers.make(1, 1, 1),
            _noop,
            shared_mem_bytes=1 << 32,
        )
        with pytest.raises(SharedMemError):
            build_plan(task, dev)


class TestPlanCache:
    def test_repeated_launch_hits_cache(self):
        dev = get_dev_by_idx(AccCpuSerial, 0)
        q = QueueBlocking(dev)
        task = create_task_kernel(
            AccCpuSerial, WorkDivMembers.make(4, 1, 1), _noop
        )
        for _ in range(5):
            q.enqueue(task)
        info = plan_cache_info()
        assert info["misses"] == 1
        assert info["hits"] == 4

    def test_distinct_work_divs_get_distinct_plans(self):
        dev = get_dev_by_idx(AccCpuSerial, 0)
        t1 = create_task_kernel(AccCpuSerial, WorkDivMembers.make(4, 1, 1), _noop)
        t2 = create_task_kernel(AccCpuSerial, WorkDivMembers.make(8, 1, 1), _noop)
        p1, p2 = get_plan(t1, dev), get_plan(t2, dev)
        assert p1 is not p2
        assert plan_cache_info()["size"] == 2

    def test_equal_work_div_same_kernel_shares_plan(self):
        """Two distinct task objects with the same (kernel, work-div,
        device) share one plan — the cache keys on configuration, not
        task identity."""
        dev = get_dev_by_idx(AccCpuSerial, 0)
        t1 = create_task_kernel(AccCpuSerial, WorkDivMembers.make(4, 1, 1), _noop)
        t2 = create_task_kernel(AccCpuSerial, WorkDivMembers.make(4, 1, 1), _noop)
        assert get_plan(t1, dev) is get_plan(t2, dev)

    def test_per_device_keying(self):
        d0 = get_dev_by_idx(AccGpuCudaSim, 0)
        d1 = get_dev_by_idx(AccGpuCudaSim, 1)
        task = create_task_kernel(
            AccGpuCudaSim, WorkDivMembers.make(2, 2, 1), _noop
        )
        assert get_plan(task, d0) is not get_plan(task, d1)

    def test_clear_resets_counters(self):
        dev = get_dev_by_idx(AccCpuSerial, 0)
        task = create_task_kernel(AccCpuSerial, WorkDivMembers.make(2, 1, 1), _noop)
        get_plan(task, dev)
        get_plan(task, dev)
        clear_plan_cache()
        info = plan_cache_info()
        assert info == {
            "hits": 0,
            "misses": 0,
            "size": 0,
            "maxsize": info["maxsize"],
        }

    def test_cached_plan_still_checks_residency_on_new_args(self):
        """The plan memoises unwrapped args per task identity; a second
        task with a wrong-device buffer must still be rejected."""
        from repro.core.errors import KernelError, MemorySpaceError

        @fn_acc
        def write(acc, buf):
            buf[0] = 1.0

        cpu = get_dev_by_idx(AccCpuSerial, 0)
        gpu = get_dev_by_idx(AccGpuCudaSim, 0)
        gpu_q = QueueBlocking(gpu)
        wd = WorkDivMembers.make(1, 1, 1)
        ok = mem.alloc(gpu, 4)
        gpu_q.enqueue(create_task_kernel(AccGpuCudaSim, wd, write, ok))
        with pytest.raises((KernelError, MemorySpaceError)):
            gpu_q.enqueue(
                create_task_kernel(AccGpuCudaSim, wd, write, mem.alloc(cpu, 4))
            )

    def test_launch_results_identical_through_cache(self):
        """Correctness invariant: the Nth cached launch computes the
        same result as the 1st."""

        @fn_acc
        def accumulate(acc, out):
            acc.atomic_add(out, 0, 1.0)

        dev = get_dev_by_idx(AccCpuOmp2Blocks, 0)
        q = QueueBlocking(dev)
        out = mem.alloc(dev, 1)
        mem.memset(q, out, 0.0)
        task = create_task_kernel(
            AccCpuOmp2Blocks, WorkDivMembers.make(32, 1, 1), accumulate, out
        )
        for _ in range(4):
            q.enqueue(task)
        assert np.all(out.as_numpy() == 128.0)
        out.free()
