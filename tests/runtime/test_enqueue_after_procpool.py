"""``enqueue_after`` x :class:`ProcessPoolScheduler`.

The wait-gate is a host-side primitive; the process-pool scheduler runs
kernel blocks in *worker processes*.  These tests pin the contract at
their intersection: a launch gated on an event must observe every write
of the predecessor launch, whether those writes travelled through
POSIX shared memory (eligible kernels) or through the thread-pool
fallback (private buffers), and whether the queues belong to the same
or different devices of a platform.
"""

import numpy as np
import pytest

from repro import mem
from repro.acc.cpu import AccCpuOmp2Blocks
from repro.core.index import Blocks, Grid, get_idx
from repro.core.kernel import create_task_kernel, fn_acc
from repro.core.workdiv import WorkDivMembers
from repro.dev.manager import get_dev_by_idx
from repro.queue import Event, QueueNonBlocking, enqueue_after
from repro.runtime import (
    ProcessPoolScheduler,
    clear_plan_cache,
    get_plan,
    scheduler_for,
    shutdown_schedulers,
)
from repro.runtime.procpool import reset_worker_state
from repro.runtime.scheduler import PROCESS_WORKERS_ENV, SCHEDULER_ENV

N = 1024
BLOCKS = 4
SPAN = N // BLOCKS


@fn_acc
def _produce(acc, out):
    blk = get_idx(acc, Grid, Blocks)[0]
    lo = blk * SPAN
    out[lo : lo + SPAN] = np.arange(lo, lo + SPAN, dtype=np.float64)


@fn_acc
def _consume(acc, src, dst):
    blk = get_idx(acc, Grid, Blocks)[0]
    lo = blk * SPAN
    dst[lo : lo + SPAN] = 2.0 * src[lo : lo + SPAN] + 1.0


@pytest.fixture(autouse=True)
def _procpool_env(monkeypatch):
    monkeypatch.setenv(SCHEDULER_ENV, "processes")
    monkeypatch.setenv(PROCESS_WORKERS_ENV, "2")
    clear_plan_cache()
    yield
    clear_plan_cache()
    shutdown_schedulers()
    reset_worker_state()


def _wd():
    return WorkDivMembers.make(BLOCKS, 1, SPAN)


def _run_gated(dev, shm_src: bool, shm_dst: bool):
    """Producer on queue A, consumer on queue B gated via an event."""
    src = mem.alloc(dev, N, shm=shm_src)
    dst = mem.alloc(dev, N, shm=shm_dst)
    src.as_numpy()[:] = -1.0
    dst.as_numpy()[:] = -1.0

    produce = create_task_kernel(AccCpuOmp2Blocks, _wd(), _produce, src)
    consume = create_task_kernel(AccCpuOmp2Blocks, _wd(), _consume, src, dst)

    qa, qb = QueueNonBlocking(dev), QueueNonBlocking(dev)
    ev = Event(dev)
    qa.enqueue(produce)
    ev.record(qa)
    enqueue_after(qb, ev)
    qb.enqueue(consume)
    qb.wait()
    qa.wait()

    expect = 2.0 * np.arange(float(N)) + 1.0
    np.testing.assert_array_equal(dst.as_numpy(), expect)

    plans = get_plan(produce, dev), get_plan(consume, dev)
    qa.destroy()
    qb.destroy()
    src.free()
    dst.free()
    return plans


class TestGatedVisibility:
    def test_shm_buffers_worker_process_writes_visible(self):
        """Both launches eligible: the producer's writes land in worker
        processes; the gated consumer (also in workers) must read them
        back through the shared segment — any lost write shows up as a
        ``-1`` surviving into ``dst``."""
        dev = get_dev_by_idx(AccCpuOmp2Blocks)
        p_prod, p_cons = _run_gated(dev, shm_src=True, shm_dst=True)
        assert p_prod.schedule == "processes" == p_cons.schedule
        assert isinstance(
            scheduler_for(dev, "processes"), ProcessPoolScheduler
        )

    def test_private_buffers_fall_back_but_stay_ordered(self):
        """Private (non-shm) buffers make the launches process-pool
        ineligible; the fallback path must preserve the exact same
        gating semantics."""
        dev = get_dev_by_idx(AccCpuOmp2Blocks)
        _run_gated(dev, shm_src=False, shm_dst=False)

    def test_mixed_shm_producer_private_consumer(self):
        """Producer goes through worker processes, the consumer falls
        back to threads — the cross-scheduler edge is the interesting
        one: thread-side code must see process-side writes."""
        dev = get_dev_by_idx(AccCpuOmp2Blocks)
        p_prod, p_cons = _run_gated(dev, shm_src=True, shm_dst=False)
        assert p_prod.schedule == "processes"

    def test_chain_of_gated_rounds(self):
        """A multi-round pipeline (produce -> gated bump -> gated bump)
        re-using one event, every stage in worker processes."""
        dev = get_dev_by_idx(AccCpuOmp2Blocks)
        buf = mem.alloc(dev, N, shm=True)
        buf.as_numpy()[:] = 0.0
        bump = create_task_kernel(AccCpuOmp2Blocks, _wd(), _bump_blocks, buf)
        assert get_plan(bump, dev).schedule == "processes"

        qa, qb = QueueNonBlocking(dev), QueueNonBlocking(dev)
        ev = Event(dev)
        queues = [qa, qb]
        rounds = 6
        for i in range(rounds):
            q = queues[i % 2]
            if i:
                enqueue_after(q, ev)  # gate on the previous round
            q.enqueue(bump)
            ev.record(q)
        for q in queues:
            q.wait()
        # Every round observed the previous one: no lost increments.
        assert np.all(buf.as_numpy() == float(rounds))
        qa.destroy()
        qb.destroy()
        buf.free()


@fn_acc
def _bump_blocks(acc, b):
    blk = get_idx(acc, Grid, Blocks)[0]
    lo = blk * SPAN
    b[lo : lo + SPAN] += 1.0
