"""ExecutionObserver hooks: registration, notification, counters."""

import numpy as np
import pytest

from repro import (
    AccCpuOmp2Blocks,
    AccCpuSerial,
    AccGpuCudaSim,
    CountingObserver,
    ExecutionObserver,
    QueueBlocking,
    QueueNonBlocking,
    WorkDivMembers,
    clear_plan_cache,
    create_task_kernel,
    fn_acc,
    get_dev_by_idx,
    mem,
    observe,
    register_observer,
    unregister_observer,
)
from repro.runtime.instrument import observers


@fn_acc
def _noop(acc):
    pass


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


class TestRegistration:
    def test_observe_context_registers_and_removes(self):
        obs = CountingObserver()
        assert obs not in observers()
        with observe(obs):
            assert obs in observers()
        assert obs not in observers()

    def test_register_is_idempotent(self):
        obs = CountingObserver()
        register_observer(obs)
        register_observer(obs)
        try:
            assert observers().count(obs) == 1
        finally:
            unregister_observer(obs)
        assert obs not in observers()


class TestLaunchHooks:
    def test_launch_and_block_counts(self):
        dev = get_dev_by_idx(AccCpuSerial, 0)
        q = QueueBlocking(dev)
        task = create_task_kernel(AccCpuSerial, WorkDivMembers.make(6, 1, 1), _noop)
        with observe(CountingObserver()) as stats:
            q.enqueue(task)
            q.enqueue(task)
        assert stats.launches == 2
        assert stats.blocks == 12
        assert stats.per_backend == {"AccCpuSerial": 2}

    def test_plan_cache_counters_via_observer(self):
        dev = get_dev_by_idx(AccCpuSerial, 0)
        q = QueueBlocking(dev)
        task = create_task_kernel(AccCpuSerial, WorkDivMembers.make(2, 1, 1), _noop)
        with observe(CountingObserver()) as stats:
            for _ in range(5):
                q.enqueue(task)
        assert stats.plan_cache_misses == 1
        assert stats.plan_cache_hits == 4
        assert stats.plan_cache_hit_rate == pytest.approx(0.8)

    def test_launch_end_fires_even_on_kernel_failure(self):
        from repro.core.errors import KernelError

        @fn_acc
        def bad(acc):
            raise RuntimeError("boom")

        ends = []

        class EndWatcher(ExecutionObserver):
            def on_launch_end(self, plan, task, device):
                ends.append(plan.acc_type.name)

        dev = get_dev_by_idx(AccCpuSerial, 0)
        q = QueueBlocking(dev)
        with observe(EndWatcher()):
            with pytest.raises(KernelError):
                q.enqueue(
                    create_task_kernel(
                        AccCpuSerial, WorkDivMembers.make(1, 1, 1), bad
                    )
                )
        assert ends == ["AccCpuSerial"]

    def test_block_hook_sees_every_block_of_pooled_launch(self):
        seen = []

        class BlockWatcher(ExecutionObserver):
            def on_block(self, plan, block_idx):
                seen.append(block_idx)

        dev = get_dev_by_idx(AccCpuOmp2Blocks, 0)
        q = QueueBlocking(dev)
        with observe(BlockWatcher()):
            q.enqueue(
                create_task_kernel(
                    AccCpuOmp2Blocks, WorkDivMembers.make(40, 1, 1), _noop
                )
            )
        assert len(seen) == 40
        assert len(set(tuple(b) for b in seen)) == 40


class TestCopyAndQueueHooks:
    def test_copy_and_memset_notify(self):
        dev = get_dev_by_idx(AccGpuCudaSim, 0)
        q = QueueBlocking(dev)
        buf = mem.alloc(dev, 16)
        with observe(CountingObserver()) as stats:
            mem.memset(q, buf, 0.0)
            mem.copy(q, buf, np.ones(16))
            out = np.zeros(16)
            mem.copy(q, out, buf)
        assert stats.copies == 3
        buf.free()

    def test_nonblocking_queue_drain_notifies(self):
        dev = get_dev_by_idx(AccGpuCudaSim, 0)
        q = QueueNonBlocking(dev)
        with observe(CountingObserver()) as stats:
            for _ in range(3):
                q.enqueue(lambda: None)
            q.wait()
        assert stats.queue_drains >= 1
        q.destroy()

    def test_bench_harness_launch_stats(self):
        from repro.bench import launch_stats

        dev = get_dev_by_idx(AccCpuSerial, 0)
        q = QueueBlocking(dev)
        task = create_task_kernel(AccCpuSerial, WorkDivMembers.make(3, 1, 1), _noop)
        with launch_stats() as stats:
            q.enqueue(task)
            q.enqueue(task)
        assert stats.launches == 2
        assert stats.plan_cache_hits == 1

    def test_counting_snapshot_includes_per_backend(self):
        """Regression: snapshot() used to omit the per_backend split."""
        dev = get_dev_by_idx(AccCpuSerial, 0)
        q = QueueBlocking(dev)
        task = create_task_kernel(AccCpuSerial, WorkDivMembers.make(2, 1, 1), _noop)
        with observe(CountingObserver()) as stats:
            q.enqueue(task)
            q.enqueue(task)
        snap = stats.snapshot()
        assert snap["per_backend"] == {"AccCpuSerial": 2}
        assert snap["launches"] == 2
        assert snap["tuning_cache_hits"] == 0
        assert snap["tuning_cache_misses"] == 0
        # The snapshot is a copy: mutating it must not touch the live
        # counters.
        snap["per_backend"]["AccCpuSerial"] = 99
        assert stats.per_backend["AccCpuSerial"] == 2

    def test_timeline_observer_records_ordered_events(self):
        from repro.trace import trace_execution

        dev = get_dev_by_idx(AccCpuSerial, 0)
        q = QueueBlocking(dev)
        task = create_task_kernel(AccCpuSerial, WorkDivMembers.make(2, 1, 1), _noop)
        buf = mem.alloc(dev, 4)
        with trace_execution(record_blocks=True) as tl:
            q.enqueue(task)
            mem.memset(q, buf, 1.0)
        kinds = [e.kind for e in tl.events]
        assert kinds[0] == "launch_begin"
        assert kinds.count("block") == 2
        assert "launch_end" in kinds
        assert "copy" in kinds
        assert tl.span(0) is not None and tl.span(0) >= 0.0
        assert "AccCpuSerial" in tl.render()
        buf.free()
