"""Hot-swapping tuned divisions under load: launches racing a tuning
generation bump must stay bit-identical.

The fleet's online re-tuner publishes new divisions while requests are
in flight; the only synchronisation is the tuning-generation counter
folded into AUTO plan-cache keys.  These tests hammer that seam."""

import threading
import time

import numpy as np
import pytest

from repro import (
    AccCpuSerial,
    AutoWorkDiv,
    QueueBlocking,
    create_task_kernel,
    divide_work,
    fn_acc,
    get_dev_by_idx,
    mem,
)
from repro.core.workdiv import validate_work_div
from repro.mem import memset
from repro.runtime import clear_plan_cache, get_plan
from repro.tuning import TuningCache, default_cache, reset_default_cache
from repro.tuning.cache import (
    CachedResult,
    bump_tuning_generation,
    tuning_generation,
)

N = 512


class SwapKernel:
    @fn_acc
    def __call__(self, acc, n, out):
        from repro.core.element import independent_elements

        for i in independent_elements(acc, n):
            out[i[0]] = i[0] * 2.0 + 1.0  # no zeros: under-coverage shows


@pytest.fixture(autouse=True)
def _isolated(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TUNING_CACHE", str(tmp_path / "cache.json"))
    reset_default_cache()
    clear_plan_cache()
    yield
    reset_default_cache()
    clear_plan_cache()


def _divisions(props):
    """A handful of distinct valid divisions to swap between."""
    out = []
    for te in (1, 2, 4, 8):
        wd = divide_work(
            N, props, AccCpuSerial.mapping_strategy, thread_elems=te
        )
        validate_work_div(wd, props)
        if wd not in out:
            out.append(wd)
    assert len(out) >= 2
    return out


class TestHotSwap:
    def test_bump_invalidates_auto_plans(self):
        acc = AccCpuSerial
        dev = get_dev_by_idx(acc)
        k = SwapKernel()
        out = mem.alloc(dev, N)
        task = create_task_kernel(acc, AutoWorkDiv(N), k, N, out)
        before = get_plan(task, dev)
        bump_tuning_generation()
        assert get_plan(task, dev) is not before

    def test_adopted_entry_swaps_the_plan_without_clearing(self):
        """Simulates a fleet adoption: a sibling's entry lands via
        put_key (which bumps the generation) and the very next AUTO
        launch must resolve to it — no clear_plan_cache() anywhere."""
        acc = AccCpuSerial
        dev = get_dev_by_idx(acc)
        props = acc.get_acc_dev_props(dev).for_dim(1)
        k = SwapKernel()
        out = mem.alloc(dev, N)
        task = create_task_kernel(acc, AutoWorkDiv(N), k, N, out)
        heuristic_plan = get_plan(task, dev)

        tuned = _divisions(props)[-1]
        key = TuningCache.key(k, acc, dev, N)
        default_cache().put_key(
            key,
            CachedResult(
                work_div=tuned, seconds=1e-6, strategy="random", source="modeled"
            ),
        )
        after = get_plan(task, dev)
        assert after is not heuristic_plan
        assert after.work_div == tuned

    def test_launches_racing_generation_bumps_stay_bit_identical(self):
        """The acceptance scenario: a bumper thread republishes tuned
        divisions as fast as it can while the main thread launches AUTO
        kernels; every single result must be bit-identical."""
        acc = AccCpuSerial
        dev = get_dev_by_idx(acc)
        props = acc.get_acc_dev_props(dev).for_dim(1)
        k = SwapKernel()
        key = TuningCache.key(k, acc, dev, N)
        cache = default_cache()
        divisions = _divisions(props)
        expected = np.arange(N) * 2.0 + 1.0

        stop = threading.Event()

        def bumper():
            i = 0
            while not stop.is_set():
                wd = divisions[i % len(divisions)]
                cache.put_key(
                    key,
                    CachedResult(
                        work_div=wd,
                        seconds=1e-6,
                        strategy="evolve",
                        source="modeled",
                    ),
                )
                i += 1
                time.sleep(0.0005)

        out = mem.alloc(dev, N)
        q = QueueBlocking(dev)
        host = np.empty(N)
        gen_before = tuning_generation()
        seen_divisions = set()

        thread = threading.Thread(target=bumper, daemon=True)
        thread.start()
        try:
            for _ in range(60):
                memset(q, out, 0)
                task = create_task_kernel(acc, AutoWorkDiv(N), k, N, out)
                plan = get_plan(task, dev)
                seen_divisions.add(plan.work_div)
                q.enqueue(task)
                mem.copy(q, host, out)
                # Bit-identical, not approximately equal: a division swap
                # must never change what the kernel computes.
                assert np.array_equal(host, expected)
        finally:
            stop.set()
            thread.join(timeout=5.0)

        # The race was real: generations advanced and the plan cache
        # actually served more than one tuned division.
        assert tuning_generation() > gen_before
        assert len(seen_divisions) >= 2
        validate_work_div(plan.work_div, props)

    def test_final_state_serves_the_last_published_division(self):
        acc = AccCpuSerial
        dev = get_dev_by_idx(acc)
        props = acc.get_acc_dev_props(dev).for_dim(1)
        k = SwapKernel()
        key = TuningCache.key(k, acc, dev, N)
        out = mem.alloc(dev, N)
        task = create_task_kernel(acc, AutoWorkDiv(N), k, N, out)
        last = None
        for wd in _divisions(props):
            default_cache().put_key(
                key,
                CachedResult(
                    work_div=wd, seconds=1e-6, strategy="evolve", source="modeled"
                ),
            )
            last = wd
        assert get_plan(task, dev).work_div == last
