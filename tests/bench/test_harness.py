"""Bench harness utilities."""

import os
import time

import pytest

from repro import AccGpuCudaSim, get_dev_by_idx
from repro.bench.harness import (
    REPORT_DIR_ENV,
    measure_wall,
    sim_time_of,
    write_report,
)


class TestMeasureWall:
    def test_returns_positive_time(self):
        t = measure_wall(lambda: sum(range(1000)), repeat=2, warmup=1)
        assert t > 0

    def test_takes_minimum(self):
        calls = {"n": 0}

        def fn():
            calls["n"] += 1
            if calls["n"] == 2:  # one slow call among fast ones
                time.sleep(0.05)

        t = measure_wall(fn, repeat=3, warmup=0)
        assert t < 0.04  # the slow outlier was discarded

    def test_warmup_counted_separately(self):
        calls = {"n": 0}

        def fn():
            calls["n"] += 1

        measure_wall(fn, repeat=3, warmup=2)
        assert calls["n"] == 5


class TestSimTimeOf:
    def test_captures_delta(self):
        dev = get_dev_by_idx(AccGpuCudaSim, 0)
        with sim_time_of(dev) as t:
            dev.advance_sim_time(0.25)
        assert t[0] == pytest.approx(0.25)

    def test_zero_without_work(self):
        dev = get_dev_by_idx(AccGpuCudaSim, 0)
        with sim_time_of(dev) as t:
            pass
        assert t[0] == 0.0


class TestWriteReport:
    def test_env_override_and_newline(self, tmp_path, monkeypatch):
        monkeypatch.setenv(REPORT_DIR_ENV, str(tmp_path))
        path = write_report("r.txt", "hello")
        assert path == str(tmp_path / "r.txt")
        assert open(path).read() == "hello\n"

    def test_overwrites(self, tmp_path, monkeypatch):
        monkeypatch.setenv(REPORT_DIR_ENV, str(tmp_path))
        write_report("r.txt", "one")
        write_report("r.txt", "two")
        assert open(tmp_path / "r.txt").read() == "two\n"
