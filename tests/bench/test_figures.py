"""Figure generators: each returns data with the paper's shape.

These are the library-level counterparts of the assertions in
``benchmarks/``; they run on a reduced size sweep so the whole shape
check stays fast in the unit suite.
"""

import numpy as np
import pytest

from repro.bench import (
    fig4_ptx_comparison,
    fig5_zero_overhead,
    fig6_swapped_backends,
    fig8_single_source_tiling,
    fig9_performance_portability,
    fig10_hase,
    table2_rows,
    table3_rows,
)

SIZES = (1024, 4096)


class TestFig4:
    def test_paper_statement(self):
        data = fig4_ptx_comparison()
        assert data["comparison"].identical_up_to_cache_modifiers
        assert len(data["comparison"].notes) == 1
        assert "ld.global.nc.f64" in data["native_ptx"]
        assert "ld.global.nc" not in data["alpaka_ptx"]


class TestFig5:
    def test_overhead_band(self):
        curves = fig5_zero_overhead(SIZES)
        assert len(curves) == 2
        for curve in curves.values():
            for v in curve.values():
                assert 0.94 <= v <= 1.01

    def test_omp_has_zero_overhead(self):
        curves = fig5_zero_overhead(SIZES)
        omp = [c for name, c in curves.items() if "OMP2" in name][0]
        assert all(v == pytest.approx(1.0) for v in omp.values())

    def test_cuda_overhead_is_nonzero_but_small(self):
        curves = fig5_zero_overhead(SIZES)
        cuda = [c for name, c in curves.items() if "CUDA" in name][0]
        assert all(0.94 <= v < 1.0 for v in cuda.values())


class TestFig6:
    def test_collapse(self):
        curves = fig6_swapped_backends(SIZES)
        assert len(curves) == 2
        for curve in curves.values():
            for v in curve.values():
                assert v < 0.2


class TestFig8:
    def test_tiling_competes_and_elements_help(self):
        curves = fig8_single_source_tiling(SIZES)
        assert len(curves) == 4
        for curve in curves.values():
            assert all(v >= 0.85 for v in curve.values())
        gpu1 = curves["Alpaka(CUDA) tiling 1 element on K80"]
        gpu4 = curves["Alpaka(CUDA) tiling 4 elements on K80"]
        assert all(gpu4[n] > gpu1[n] for n in SIZES)


class TestFig9:
    def test_around_twenty_percent(self):
        curves = fig9_performance_portability((4096,))
        assert len(curves) == 5
        fracs = [c[4096] for c in curves.values()]
        assert all(0.1 <= f <= 0.45 for f in fracs)
        assert max(fracs) / min(fracs) <= 3.0


class TestFig10:
    def test_paper_ratios(self):
        rows = fig10_hase()
        by = {r["Configuration"]: r for r in rows}
        assert by["Alpaka(CUDA) on K20"]["Speedup vs native K20"] == 1.0
        assert by["Alpaka(OMP2) on E5-2630v3"]["Speedup vs native K20"] == (
            pytest.approx(540.0 / 1170.0, abs=0.08)
        )
        assert by["Alpaka(OMP2) on Opteron 6276"]["Speedup vs native K20"] == (
            pytest.approx(480.0 / 1170.0, abs=0.08)
        )

    def test_gflops_below_peak(self):
        for row in fig10_hase():
            assert row["Application [GFLOPS]"] <= row["Hardware peak [GFLOPS]"]


class TestTables:
    def test_table2_all_backends(self):
        rows = table2_rows()
        assert len(rows) == 7
        for row in rows:
            assert row["Grid"] == "1"
            assert row["Element"] == "V"

    def test_table3_matches_registry(self):
        rows = table3_rows()
        assert [r["Vendor"] for r in rows] == [
            "AMD", "Intel", "Intel", "NVIDIA", "NVIDIA",
        ]
