"""The ``python -m repro.bench`` report generator."""

import os

import pytest

from repro.bench.__main__ import GENERATORS, main
from repro.bench.harness import REPORT_DIR_ENV


@pytest.fixture
def report_dir(tmp_path, monkeypatch):
    monkeypatch.setenv(REPORT_DIR_ENV, str(tmp_path))
    return tmp_path


class TestCli:
    def test_selected_targets(self, report_dir, capsys):
        assert main(["table3", "fig4"]) == 0
        assert (report_dir / "table3.txt").exists()
        assert (report_dir / "fig4.txt").exists()
        out = capsys.readouterr().out
        assert "K80" in out and "fma.rn.f64" in out

    def test_unknown_target(self, report_dir, capsys):
        assert main(["fig7"]) == 2
        assert "unknown" in capsys.readouterr().out

    def test_all_generators_registered(self):
        assert set(GENERATORS) == {
            "table1", "table2", "table3",
            "fig4", "fig5", "fig6", "fig8", "fig9", "fig10",
        }

    def test_fast_targets_produce_nonempty_reports(self, report_dir):
        for name in ("table1", "table2", "fig6", "fig9", "fig10"):
            assert main([name]) == 0
            content = (report_dir / f"{name}.txt").read_text()
            assert len(content) > 100, name
