"""Hardware models: Table 3 registry, spec validation, cache model."""

import pytest

from repro.hardware import (
    AccessPattern,
    CacheLevel,
    CacheModel,
    HardwareSpec,
    TABLE3_KEYS,
    all_machines,
    host_machine,
    machine,
    machine_keys,
    register_machine,
    table3_rows,
)


class TestRegistry:
    def test_five_paper_machines(self):
        assert len(TABLE3_KEYS) == 5
        for key in TABLE3_KEYS:
            machine(key)

    def test_unknown_machine(self):
        with pytest.raises(KeyError, match="known"):
            machine("cray-1")

    def test_paper_peaks_exact(self):
        assert machine("amd-opteron-6276").peak_gflops_dp == 480.0
        assert machine("intel-xeon-e5-2609").peak_gflops_dp == 150.0
        assert machine("intel-xeon-e5-2630v3").peak_gflops_dp == 540.0
        assert machine("nvidia-k20").peak_gflops_dp == 1170.0
        assert machine("nvidia-k80").peak_gflops_dp == 2900.0

    def test_paper_core_counts(self):
        assert machine("amd-opteron-6276").device_count == 4
        assert machine("amd-opteron-6276").cores_per_device == 16
        assert machine("intel-xeon-e5-2609").cores_per_device == 4
        assert machine("nvidia-k20").cores_per_device == 2496
        assert machine("nvidia-k80").device_count == 2

    def test_paper_clocks(self):
        assert machine("amd-opteron-6276").clock_string() == "2.30 (3.20) GHz"
        assert machine("intel-xeon-e5-2609").clock_string() == "2.40 GHz"
        assert machine("nvidia-k80").clock_string() == "0.56 (0.88) GHz"

    def test_duplicate_registration_rejected(self):
        with pytest.raises(KeyError):
            register_machine(machine("nvidia-k20"))

    def test_replace_allowed(self):
        spec = machine("nvidia-k20")
        assert register_machine(spec, replace=True) is spec

    def test_host_machine_present(self):
        assert machine("host").kind == "cpu"
        assert host_machine().cores_per_device >= 1

    def test_all_machines_sorted(self):
        assert [m.key for m in all_machines()] == machine_keys()

    def test_xeon_phi_future_work_model(self):
        """The paper's future-work target exists as a model but is not
        part of Table 3."""
        phi = machine("intel-xeon-phi-5110p")
        assert phi.kind == "cpu"
        assert phi.cores_per_device == 60
        assert phi.simd_dp_lanes == 8
        assert phi.key not in TABLE3_KEYS

    def test_table3_rows_shape(self):
        rows = table3_rows()
        assert len(rows) == 5
        assert rows[0]["Vendor"] == "AMD"
        assert rows[4]["Th. double peak performance"] == "2x1450 GFLOPS"
        assert rows[2]["Number of cores per device"] == "8 (16 hyper-threads)"


class TestSpecValidation:
    def _base(self, **kw):
        d = dict(
            key="t", vendor="v", architecture="a", kind="cpu",
            device_count=1, cores_per_device=4, clock_ghz=2.0,
            turbo_ghz=None, release="now", peak_gflops_dp=100.0,
            global_mem_bandwidth_gbs=50.0,
        )
        d.update(kw)
        return HardwareSpec(**d)

    def test_bad_kind(self):
        with pytest.raises(ValueError):
            self._base(kind="tpu")

    def test_gpu_needs_sms(self):
        with pytest.raises(ValueError):
            self._base(kind="gpu")
        self._base(kind="gpu", sm_count=2)

    def test_nonpositive_peak(self):
        with pytest.raises(ValueError):
            self._base(peak_gflops_dp=0.0)

    def test_derived_quantities(self):
        s = self._base(device_count=2, cores_per_device=8)
        assert s.total_cores == 16
        assert s.device_peak_gflops_dp == 50.0
        assert s.flops_per_cycle_per_core == pytest.approx(100.0 / (16 * 2.0))

    def test_cache_level_validation(self):
        with pytest.raises(ValueError):
            CacheLevel("L1", 0, 10.0, 1.0)
        with pytest.raises(ValueError):
            CacheLevel("L1", 1024, -1.0, 1.0)

    def test_cache_lookup(self):
        spec = machine("intel-xeon-e5-2630v3")
        assert spec.cache_level("L2").size_bytes == 256 * 1024
        with pytest.raises(KeyError):
            spec.cache_level("L9")


class TestCacheModel:
    def setup_method(self):
        self.model = CacheModel(machine("intel-xeon-e5-2630v3"))

    def test_smallest_fitting_level_serves(self):
        assert self.model.serving_level(16 * 1024).name == "L1"
        assert self.model.serving_level(128 * 1024).name == "L2"
        assert self.model.serving_level(4 << 20).name == "L3"

    def test_oversized_goes_to_dram(self):
        assert self.model.serving_level(1 << 30) is None
        est = self.model.bandwidth(1 << 30)
        assert est.level_name == "global"
        assert est.raw_bandwidth_gbs == 136.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            self.model.serving_level(-1)

    def test_pattern_ordering(self):
        """contiguous >= tiled > strided > random, at any level."""
        ws = 1 << 30
        bw = {
            p: self.model.bandwidth(ws, p).effective_bandwidth_gbs
            for p in AccessPattern
        }
        assert bw[AccessPattern.CONTIGUOUS] >= bw[AccessPattern.TILED]
        assert bw[AccessPattern.TILED] > bw[AccessPattern.STRIDED]
        assert bw[AccessPattern.STRIDED] > bw[AccessPattern.RANDOM]

    def test_strided_is_line_ratio(self):
        """One double per 64-byte line -> 1/8 efficiency."""
        est = self.model.bandwidth(1 << 30, AccessPattern.STRIDED)
        assert est.efficiency == 0.125

    def test_transfer_time(self):
        t = self.model.line_transfer_time_s(136e9, AccessPattern.CONTIGUOUS)
        assert t == pytest.approx(1.0)

    def test_gpu_shared_level(self):
        gm = CacheModel(machine("nvidia-k80"))
        lvl = gm.serving_level(4 * 1024)
        assert lvl.name == "shared"
