"""Machine-model JSON round-trips and registry loading."""

import json

import pytest

from repro.hardware import (
    load_machine,
    machine,
    save_machine,
    spec_from_dict,
    spec_to_dict,
)
from repro.hardware.registry import TABLE3_KEYS


class TestRoundtrip:
    @pytest.mark.parametrize("key", TABLE3_KEYS)
    def test_every_paper_machine_roundtrips(self, key):
        spec = machine(key)
        assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_file_roundtrip(self, tmp_path):
        spec = machine("nvidia-k80")
        path = save_machine(spec, str(tmp_path / "k80.json"))
        loaded = load_machine(path)
        assert loaded == spec

    def test_json_is_plain(self, tmp_path):
        path = save_machine(machine("intel-xeon-e5-2609"), str(tmp_path / "m.json"))
        data = json.load(open(path))
        assert data["peak_gflops_dp"] == 150.0
        assert isinstance(data["caches"], list)

    def test_dict_source(self):
        d = spec_to_dict(machine("amd-opteron-6276"))
        assert load_machine(d) == machine("amd-opteron-6276")


class TestValidationThroughLoad:
    def test_bad_values_rejected(self):
        d = spec_to_dict(machine("nvidia-k20"))
        d["peak_gflops_dp"] = -1.0
        with pytest.raises(ValueError):
            spec_from_dict(d)

    def test_bad_cache_rejected(self):
        d = spec_to_dict(machine("nvidia-k20"))
        d["caches"][0]["size_bytes"] = 0
        with pytest.raises(ValueError):
            spec_from_dict(d)


class TestRegistryIntegration:
    def test_register_and_retarget(self, tmp_path):
        d = spec_to_dict(machine("intel-xeon-e5-2630v3"))
        d["key"] = "my-test-node"
        d["cores_per_device"] = 12
        path = tmp_path / "node.json"
        json.dump(d, open(path, "w"))
        spec = load_machine(str(path), register=True)
        assert machine("my-test-node") is spec

        from repro.acc import AccCpuOmp2Blocks

        acc = AccCpuOmp2Blocks.for_machine("my-test-node")
        assert acc.platform().spec.cores_per_device == 12

    def test_duplicate_registration_guard(self):
        d = spec_to_dict(machine("nvidia-k20"))
        with pytest.raises(KeyError):
            load_machine(d, register=True)
        load_machine(d, register=True, replace=True)  # explicit override
