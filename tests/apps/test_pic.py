"""Mini-PIC: loading, kernels, conservation laws, plasma physics."""

import numpy as np
import pytest

from repro import AccCpuOmp2Blocks, AccCpuSerial, AccGpuCudaSim
from repro.apps.pic import (
    PicGrid,
    PicSimulation,
    cold_plasma_particles,
)


class TestGridAndLoading:
    def test_grid_measures(self):
        g = PicGrid(ng=16, length=8.0)
        assert g.dx == 0.5
        assert len(g.cell_centers) == 16
        assert g.cell_centers[0] == 0.25

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            PicGrid(ng=1)
        with pytest.raises(ValueError):
            PicGrid(ng=8, length=-1.0)

    def test_wrap(self):
        g = PicGrid(ng=8, length=4.0)
        np.testing.assert_allclose(
            g.wrap(np.array([-0.5, 4.5, 2.0])), [3.5, 0.5, 2.0]
        )

    def test_quiet_start_density(self):
        g = PicGrid(ng=16)
        x, v, w = cold_plasma_particles(g, particles_per_cell=10)
        assert len(x) == 160
        assert np.all(v == 0)
        assert len(x) * w / g.length == pytest.approx(1.0)  # n0 = 1

    def test_displacement_and_thermal(self):
        g = PicGrid(ng=16)
        x0, _, _ = cold_plasma_particles(g, 4)
        x1, v1, _ = cold_plasma_particles(
            g, 4, displacement=0.1, thermal_velocity=0.01
        )
        assert not np.array_equal(x0, x1)
        assert v1.std() == pytest.approx(0.01, rel=0.3)

    def test_validation(self):
        g = PicGrid(ng=8)
        with pytest.raises(ValueError):
            cold_plasma_particles(g, 0)


class TestConservation:
    @pytest.fixture(scope="class")
    def sim_history(self):
        grid = PicGrid(ng=16)
        x, v, w = cold_plasma_particles(grid, 10, displacement=0.02)
        sim = PicSimulation(AccCpuSerial, grid, x, v, w)
        hist = sim.run(steps=100, dt=0.1)
        rho = sim._host(sim.rho)
        e = sim._host(sim.e_field)
        sim.free()
        return hist, rho, e, grid

    def test_charge_neutrality(self, sim_history):
        """Ion background exactly cancels the deposited electrons."""
        _, rho, _, grid = sim_history
        assert abs(rho.sum() * grid.dx) < 1e-10

    def test_field_zero_mean(self, sim_history):
        _, _, e, _ = sim_history
        assert abs(e.mean()) < 1e-12

    def test_energy_bounded(self, sim_history):
        """Leapfrog keeps total energy bounded (no secular blow-up)."""
        hist, _, _, _ = sim_history
        te = hist.total_energy
        assert (te.max() - te.min()) / te.mean() < 0.3

    def test_energy_exchanges(self, sim_history):
        """Field and kinetic energy trade places (oscillation)."""
        hist, _, _, _ = sim_history
        fe = np.array(hist.field_energy)
        ke = np.array(hist.kinetic_energy)
        assert fe.max() > 10 * fe.min()
        assert ke.max() > 0


class TestPlasmaPhysics:
    def test_langmuir_frequency(self):
        """Cold plasma oscillates at omega_p = 1 (normalised units)."""
        grid = PicGrid(ng=32)
        x, v, w = cold_plasma_particles(grid, 20, displacement=0.01)
        sim = PicSimulation(AccCpuSerial, grid, x, v, w)
        dt, steps = 0.1, 300
        hist = sim.run(steps, dt)
        sim.free()
        fe = np.asarray(hist.field_energy)
        freqs = np.fft.rfftfreq(steps, dt) * 2.0 * np.pi
        spec = np.abs(np.fft.rfft(fe - fe.mean()))
        omega = freqs[np.argmax(spec)] / 2.0  # energy beats at 2*omega_p
        assert omega == pytest.approx(1.0, abs=0.15)

    def test_unperturbed_plasma_stays_quiet(self):
        grid = PicGrid(ng=16)
        x, v, w = cold_plasma_particles(grid, 10)
        sim = PicSimulation(AccCpuSerial, grid, x, v, w)
        hist = sim.run(steps=20, dt=0.1)
        sim.free()
        assert max(hist.field_energy) < 1e-20

    def test_larger_displacement_more_energy(self):
        grid = PicGrid(ng=16)
        energies = []
        for amp in (0.01, 0.02):
            x, v, w = cold_plasma_particles(grid, 10, displacement=amp)
            sim = PicSimulation(AccCpuSerial, grid, x, v, w)
            hist = sim.run(steps=40, dt=0.1)
            sim.free()
            energies.append(max(hist.field_energy))
        # Field energy scales ~ amplitude^2.
        assert energies[1] == pytest.approx(4 * energies[0], rel=0.2)


class TestCrossBackend:
    def test_backends_agree_exactly(self):
        grid = PicGrid(ng=16)
        results = {}
        for acc in (AccCpuSerial, AccCpuOmp2Blocks, AccGpuCudaSim):
            x, v, w = cold_plasma_particles(grid, 8, displacement=0.02)
            sim = PicSimulation(acc, grid, x, v, w)
            sim.run(steps=25, dt=0.1)
            results[acc.name] = sim._host(sim.e_field).copy()
            sim.free()
        base = results.pop("AccCpuSerial")
        for name, e in results.items():
            # Deposit order differs across back-ends only through
            # atomic merge order: float addition reordering, ~1e-13.
            np.testing.assert_allclose(e, base, atol=1e-10, err_msg=name)
