"""HASE geometry: mesh measures, point location, sampling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.hase import PrismMesh


@pytest.fixture
def mesh():
    return PrismMesh(nx=4, ny=3, nz=2, width=2.0, height=1.5, depth=0.4)


class TestMeasures:
    def test_counts(self, mesh):
        assert mesh.triangle_count == 24
        assert mesh.prism_count == 48

    def test_volumes_partition_slab(self, mesh):
        assert mesh.prism_count * mesh.prism_volume == pytest.approx(
            mesh.total_volume
        )

    def test_cell_sizes(self, mesh):
        assert mesh.cell_dx == 0.5
        assert mesh.cell_dy == 0.5
        assert mesh.layer_dz == 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            PrismMesh(0, 1, 1)
        with pytest.raises(ValueError):
            PrismMesh(1, 1, 1, width=-1.0)


class TestPointLocation:
    def test_lower_upper_halves(self, mesh):
        # Cell (0,0) spans [0,.5]x[0,.5]; diagonal splits it.
        lo = mesh.locate_triangles(np.array([[0.1, 0.1]]))
        hi = mesh.locate_triangles(np.array([[0.45, 0.45]]))
        assert lo[0] == 0 and hi[0] == 1

    def test_cell_indexing(self, mesh):
        # Second cell in x: triangles 2 and 3.
        t = mesh.locate_triangles(np.array([[0.6, 0.1]]))
        assert t[0] == 2

    def test_layering(self, mesh):
        low = mesh.locate_prisms(np.array([[0.1, 0.1, 0.05]]))
        high = mesh.locate_prisms(np.array([[0.1, 0.1, 0.3]]))
        assert high[0] - low[0] == mesh.triangle_count

    def test_boundary_clamping(self, mesh):
        pts = np.array(
            [[2.0, 1.5, 0.4], [0.0, 0.0, 0.0], [2.1, -0.1, 0.5]]
        )
        prisms = mesh.locate_prisms(pts)
        assert np.all((prisms >= 0) & (prisms < mesh.prism_count))

    @given(
        x=st.floats(0.0, 2.0, exclude_max=True),
        y=st.floats(0.0, 1.5, exclude_max=True),
        z=st.floats(0.0, 0.4, exclude_max=True),
    )
    @settings(max_examples=60)
    def test_every_point_has_a_prism(self, x, y, z):
        # A fresh mesh per example (hypothesis forbids reusing the
        # function-scoped fixture; construction is trivial anyway).
        mesh = PrismMesh(nx=4, ny=3, nz=2, width=2.0, height=1.5, depth=0.4)
        p = mesh.locate_prisms(np.array([[x, y, z]]))[0]
        assert 0 <= p < mesh.prism_count

    def test_centroids_locate_to_own_prism(self, mesh):
        """Each centroid lies inside the prism it belongs to — the
        strongest consistency check between numbering and location."""
        c = mesh.prism_centroids()
        located = mesh.locate_prisms(c)
        np.testing.assert_array_equal(located, np.arange(mesh.prism_count))


class TestSampling:
    def test_uniform_mapping(self, mesh):
        u = np.array([[0.0, 0.0, 0.0], [0.5, 0.5, 0.5]])
        pts = mesh.sample_volume_points(u)
        np.testing.assert_allclose(pts[0], [0, 0, 0])
        np.testing.assert_allclose(pts[1], [1.0, 0.75, 0.2])

    def test_shape_validation(self, mesh):
        with pytest.raises(ValueError):
            mesh.sample_volume_points(np.zeros((5, 2)))

    def test_samples_fill_prisms_uniformly(self, mesh):
        """Chi-squared check: uniform samples hit prisms uniformly."""
        from scipy import stats
        from repro.rand import PhiloxRng

        n = 48_000
        u = PhiloxRng(5).uniform(3 * n).reshape(n, 3)
        pts = mesh.sample_volume_points(u)
        prisms = mesh.locate_prisms(pts)
        counts = np.bincount(prisms, minlength=mesh.prism_count)
        expected = n / mesh.prism_count
        chi2 = ((counts - expected) ** 2 / expected).sum()
        dof = mesh.prism_count - 1
        assert chi2 < stats.chi2.ppf(0.999, dof)
