"""HASE adaptive runner: convergence, multi-device, cross-back-end."""

import numpy as np
import pytest

from repro import AccCpuOmp2Blocks, AccCpuSerial, AccGpuCudaSim
from repro.apps.hase import (
    GainMedium,
    PrismMesh,
    compute_ase_flux,
    default_sample_points,
    gaussian_pump_profile,
)


@pytest.fixture(scope="module")
def medium():
    mesh = PrismMesh(nx=6, ny=6, nz=3, width=1.0, height=1.0, depth=0.2)
    return GainMedium(mesh, gaussian_pump_profile(mesh, 4.0e20))


@pytest.fixture(scope="module")
def points(medium):
    return default_sample_points(medium, per_edge=2)


class TestAdaptivity:
    def test_converges_or_caps(self, medium, points):
        res = compute_ase_flux(
            AccCpuSerial, medium, points,
            target_rel_error=0.10, initial_samples=128,
            max_samples_per_point=4096,
        )
        done = (res.rel_error <= 0.10) | (res.samples >= 4096)
        assert np.all(done)
        assert res.rounds >= 1

    def test_tighter_tolerance_spends_more(self, medium, points):
        loose = compute_ase_flux(
            AccCpuSerial, medium, points,
            target_rel_error=0.3, initial_samples=64,
            max_samples_per_point=8192,
        )
        tight = compute_ase_flux(
            AccCpuSerial, medium, points,
            target_rel_error=0.05, initial_samples=64,
            max_samples_per_point=8192,
        )
        assert tight.samples.sum() > loose.samples.sum()

    def test_error_estimate_is_honest(self, medium, points):
        """Two independent runs agree within their combined claimed
        error bars (5 sigma slack)."""
        a = compute_ase_flux(
            AccCpuSerial, medium, points, seed=1,
            target_rel_error=0.05, initial_samples=256,
            max_samples_per_point=8192,
        )
        b = compute_ase_flux(
            AccCpuSerial, medium, points, seed=999,
            target_rel_error=0.05, initial_samples=256,
            max_samples_per_point=8192,
        )
        rel = np.abs(a.flux - b.flux) / a.flux
        assert np.all(rel < 5 * (a.rel_error + b.rel_error) + 1e-9)


class TestMultiDevice:
    def test_uses_both_k80_dies(self, medium, points):
        res = compute_ase_flux(
            AccGpuCudaSim, medium, points,
            target_rel_error=0.2, initial_samples=64,
            max_samples_per_point=512,
        )
        assert len(res.device_names) == 2
        assert res.sim_time_s > 0  # modeled clock advanced

    def test_single_device_option(self, medium, points):
        res = compute_ase_flux(
            AccGpuCudaSim, medium, points,
            target_rel_error=0.2, initial_samples=64,
            max_samples_per_point=512, use_all_devices=False,
        )
        assert len(res.device_names) == 1

    def test_multi_device_matches_single(self, medium, points):
        """Sharding over devices changes only the MC streams, not the
        physics."""
        multi = compute_ase_flux(
            AccGpuCudaSim, medium, points,
            target_rel_error=0.08, initial_samples=512,
            max_samples_per_point=8192,
        )
        single = compute_ase_flux(
            AccGpuCudaSim, medium, points,
            target_rel_error=0.08, initial_samples=512,
            max_samples_per_point=8192, use_all_devices=False,
        )
        rel = np.abs(multi.flux - single.flux) / single.flux
        assert np.all(rel < 5 * (multi.rel_error + single.rel_error))


class TestCrossBackend:
    def test_cpu_backends_agree(self, medium, points):
        serial = compute_ase_flux(
            AccCpuSerial, medium, points,
            target_rel_error=0.08, initial_samples=512,
            max_samples_per_point=4096,
        )
        omp = compute_ase_flux(
            AccCpuOmp2Blocks, medium, points,
            target_rel_error=0.08, initial_samples=512,
            max_samples_per_point=4096,
        )
        # Identical work division and Philox streams -> identical sums.
        np.testing.assert_allclose(serial.flux, omp.flux, rtol=1e-12)

    def test_input_validation(self, medium):
        with pytest.raises(ValueError):
            compute_ase_flux(AccCpuSerial, medium, np.zeros((4, 2)))
