"""HASE physics and ray-marching gain integration."""

import numpy as np
import pytest

from repro.apps.hase import (
    GainMedium,
    PrismMesh,
    ase_contributions,
    gaussian_pump_profile,
    path_gain,
)


@pytest.fixture
def mesh():
    return PrismMesh(nx=5, ny=5, nz=2, width=1.0, height=1.0, depth=0.2)


def uniform_medium(mesh, n2_value):
    return GainMedium(mesh, np.full(mesh.prism_count, n2_value))


class TestGainMedium:
    def test_gain_coefficient_formula(self, mesh):
        m = uniform_medium(mesh, 3.0e20)
        expected = 2.0e-20 * 3.0e20 - 1.0e-21 * (6.0e20 - 3.0e20)
        assert np.allclose(m.gain_coefficients, expected)

    def test_unpumped_medium_absorbs(self, mesh):
        m = uniform_medium(mesh, 0.0)
        assert np.all(m.gain_coefficients < 0)

    def test_validation(self, mesh):
        with pytest.raises(ValueError):
            GainMedium(mesh, np.zeros(3))  # wrong length
        with pytest.raises(ValueError):
            GainMedium(mesh, np.full(mesh.prism_count, 7.0e20))  # > n_total
        with pytest.raises(ValueError):
            GainMedium(mesh, np.full(mesh.prism_count, -1.0))

    def test_emission_density(self, mesh):
        m = uniform_medium(mesh, 1.9e20)
        assert np.allclose(m.emission_density, 1.9e20 / 9.5e-4)

    def test_pump_profile_shape(self, mesh):
        n2 = gaussian_pump_profile(mesh, 4.0e20)
        assert n2.shape == (mesh.prism_count,)
        assert np.all(n2 >= 0) and np.all(n2 <= 4.0e20)
        # Peak near the slab centre, on the pumped (z=0) side.
        c = mesh.prism_centroids()
        centre_mask = (
            (np.abs(c[:, 0] - 0.5) < 0.15)
            & (np.abs(c[:, 1] - 0.5) < 0.15)
            & (c[:, 2] < 0.1)
        )
        corner_mask = (c[:, 0] < 0.2) & (c[:, 1] < 0.2) & (c[:, 2] > 0.1)
        assert n2[centre_mask].mean() > 2 * n2[corner_mask].mean()

    def test_pump_validation(self, mesh):
        with pytest.raises(ValueError):
            gaussian_pump_profile(mesh, -1.0)


class TestPathGain:
    def test_uniform_medium_analytic(self, mesh):
        """In a uniform medium the integral is exact: gain = exp(g*d)."""
        m = uniform_medium(mesh, 3.0e20)
        g = m.gain_coefficients[0]
        starts = np.array([[0.1, 0.1, 0.1], [0.5, 0.2, 0.05]])
        end = np.array([0.9, 0.9, 0.15])
        gain, dist = path_gain(m, starts, end, steps=16)
        np.testing.assert_allclose(gain, np.exp(g * dist), rtol=1e-12)

    def test_zero_length_ray(self, mesh):
        m = uniform_medium(mesh, 3.0e20)
        p = np.array([[0.3, 0.3, 0.1]])
        gain, dist = path_gain(m, p, p[0], steps=8)
        assert dist[0] == 0.0
        assert gain[0] == 1.0

    def test_two_layer_medium_converges(self, mesh):
        """Piecewise medium: marching converges to the exact two-segment
        integral as steps grow."""
        n2 = np.zeros(mesh.prism_count)
        n2[mesh.triangle_count:] = 4.0e20  # top layer pumped
        m = GainMedium(mesh, n2)
        g_lo = m.gain_coefficients[0]
        g_hi = m.gain_coefficients[-1]
        start = np.array([[0.52, 0.52, 0.0]])
        end = np.array([0.52, 0.52, 0.2])  # vertical ray, half per layer
        exact = np.exp((g_lo + g_hi) * 0.1)
        gain, _ = path_gain(m, start, end, steps=64)
        np.testing.assert_allclose(gain[0], exact, rtol=1e-3)

    def test_validation(self, mesh):
        m = uniform_medium(mesh, 1e20)
        with pytest.raises(ValueError):
            path_gain(m, np.zeros(3), np.zeros(3))
        with pytest.raises(ValueError):
            path_gain(m, np.zeros((2, 3)), np.zeros(3), steps=0)


class TestAseContributions:
    def test_positive_and_finite(self, mesh):
        m = uniform_medium(mesh, 3.0e20)
        rng = np.random.default_rng(0)
        starts = m.mesh.sample_volume_points(rng.random((100, 3)))
        c = ase_contributions(m, starts, np.array([0.5, 0.5, 0.2]))
        assert np.all(c > 0) and np.all(np.isfinite(c))

    def test_singularity_regularised(self, mesh):
        """Emission points at the sample point do not blow up."""
        m = uniform_medium(mesh, 3.0e20)
        s = np.array([0.5, 0.5, 0.1])
        c = ase_contributions(m, s[None, :], s)
        assert np.isfinite(c[0])

    def test_stronger_pump_more_ase(self, mesh):
        rng = np.random.default_rng(1)
        starts = mesh.sample_volume_points(rng.random((200, 3)))
        s = np.array([0.5, 0.5, 0.2])
        weak = ase_contributions(uniform_medium(mesh, 1.0e20), starts, s)
        strong = ase_contributions(uniform_medium(mesh, 4.0e20), starts, s)
        assert strong.mean() > weak.mean()

    def test_distance_attenuation_dominates_nearby(self, mesh):
        """With negligible gain, contributions fall like 1/d^2."""
        m = uniform_medium(mesh, 5e19)  # nearly transparent
        s = np.array([0.9, 0.9, 0.19])
        near = np.array([[0.8, 0.8, 0.19]])
        far = np.array([[0.1, 0.1, 0.01]])
        c_near = ase_contributions(m, near, s)[0]
        c_far = ase_contributions(m, far, s)[0]
        assert c_near > c_far
