"""Importance sampling of the gain volume (variance reduction)."""

import numpy as np
import pytest

from repro.apps.hase import (
    GainMedium,
    PrismMesh,
    ase_contributions,
    gaussian_pump_profile,
    importance_sample_starts,
)
from repro.rand import PhiloxRng


@pytest.fixture(scope="module")
def peaked_medium():
    mesh = PrismMesh(nx=8, ny=8, nz=3)
    n2 = gaussian_pump_profile(mesh, 4.0e20, waist_fraction=0.15)
    return GainMedium(mesh, n2)


def draws(n, seed=11):
    return PhiloxRng(seed).uniform(4 * n).reshape(n, 4)


class TestSamplerGeometry:
    def test_points_inside_slab(self, peaked_medium):
        starts, w = importance_sample_starts(peaked_medium, draws(2000))
        m = peaked_medium.mesh
        assert np.all(starts >= 0)
        assert np.all(starts[:, 0] <= m.width)
        assert np.all(starts[:, 1] <= m.height)
        assert np.all(starts[:, 2] <= m.depth)
        assert np.all(w > 0)

    def test_points_land_in_drawn_prism(self, peaked_medium):
        """The triangle fold is exact: every sampled point locates back
        to a prism with the emission density it was weighted for."""
        starts, w = importance_sample_starts(peaked_medium, draws(4000))
        located = peaked_medium.mesh.locate_prisms(starts)
        dens = peaked_medium.emission_density
        p_uniform = 1.0 / peaked_medium.mesh.prism_count
        probs = dens / dens.sum()
        np.testing.assert_allclose(w, p_uniform / probs[located], rtol=1e-12)

    def test_sampling_follows_density(self, peaked_medium):
        """Hot prisms receive proportionally more samples."""
        n = 60_000
        starts, _ = importance_sample_starts(peaked_medium, draws(n, seed=5))
        counts = np.bincount(
            peaked_medium.mesh.locate_prisms(starts),
            minlength=peaked_medium.mesh.prism_count,
        )
        dens = peaked_medium.emission_density
        expected = n * dens / dens.sum()
        mask = expected > 50
        ratio = counts[mask] / expected[mask]
        assert np.all(np.abs(ratio - 1.0) < 0.5)
        assert abs(ratio.mean() - 1.0) < 0.05

    def test_validation(self, peaked_medium):
        with pytest.raises(ValueError):
            importance_sample_starts(peaked_medium, np.zeros((5, 3)))
        mesh = peaked_medium.mesh
        dark = GainMedium(mesh, np.zeros(mesh.prism_count))
        with pytest.raises(ValueError):
            importance_sample_starts(dark, draws(10))


class TestEstimatorProperties:
    def _estimators(self, medium, n, seed):
        s = np.array([0.5, 0.5, medium.mesh.depth * 0.999])
        u3 = PhiloxRng(seed).uniform(3 * n).reshape(n, 3)
        uni = (
            ase_contributions(medium, medium.mesh.sample_volume_points(u3), s)
            * medium.mesh.total_volume
        )
        starts, w = importance_sample_starts(medium, draws(n, seed + 1))
        imp = ase_contributions(medium, starts, s) * medium.mesh.total_volume * w
        return uni, imp

    def test_unbiased(self, peaked_medium):
        uni, imp = self._estimators(peaked_medium, 40_000, seed=21)
        se = np.sqrt(uni.var() / len(uni) + imp.var() / len(imp))
        assert abs(uni.mean() - imp.mean()) < 5 * se

    def test_variance_reduced_for_peaked_pump(self, peaked_medium):
        uni, imp = self._estimators(peaked_medium, 20_000, seed=31)
        rel_var_uni = uni.var() / uni.mean() ** 2
        rel_var_imp = imp.var() / imp.mean() ** 2
        assert rel_var_imp < rel_var_uni

    def test_flat_pump_degenerates_to_uniform(self):
        mesh = PrismMesh(nx=6, ny=6, nz=2)
        flat = GainMedium(mesh, np.full(mesh.prism_count, 2.0e20))
        _, w = importance_sample_starts(flat, draws(1000))
        np.testing.assert_allclose(w, 1.0, rtol=1e-12)
