"""Execution engines: error propagation, fibers determinism, residency."""

import threading

import numpy as np
import pytest

from repro import (
    AccCpuFibers,
    AccCpuSerial,
    AccCpuThreads,
    AccGpuCudaSim,
    QueueBlocking,
    WorkDivMembers,
    create_task_kernel,
    fn_acc,
    get_dev_by_idx,
    get_idx,
    mem,
)
from repro.core import Block, Grid, Threads, Blocks
from repro.core.errors import KernelError, MemorySpaceError


class TestErrorPropagation:
    @pytest.mark.parametrize(
        "acc", [AccCpuSerial, AccCpuThreads, AccCpuFibers, AccGpuCudaSim]
    )
    def test_kernel_error_names_block(self, acc):
        @fn_acc
        def bad(acc_, out):
            if get_idx(acc_, Grid, Blocks)[0] == 1:
                raise RuntimeError("boom in block 1")
            out[0] = 1.0

        dev = get_dev_by_idx(acc, 0)
        q = QueueBlocking(dev)
        out = mem.alloc(dev, 1)
        wd = (
            WorkDivMembers.make(3, 2, 1)
            if acc.supports_block_sync
            else WorkDivMembers.make(3, 1, 1)
        )
        with pytest.raises(KernelError, match="block"):
            q.enqueue(create_task_kernel(acc, wd, bad, out))

    def test_sibling_threads_unwind_after_failure(self):
        """One failing thread must not deadlock siblings at a barrier."""

        @fn_acc
        def bad(acc, out):
            ti = get_idx(acc, Block, Threads)[0]
            if ti == 0:
                raise RuntimeError("thread 0 dies before the barrier")
            acc.sync_block_threads()  # would hang without barrier abort
            out[ti] = 1.0

        dev = get_dev_by_idx(AccCpuThreads, 0)
        q = QueueBlocking(dev)
        out = mem.alloc(dev, 4)
        wd = WorkDivMembers.make(1, 4, 1)
        with pytest.raises(KernelError):
            q.enqueue(create_task_kernel(AccCpuThreads, wd, bad, out))


class TestFiberSemantics:
    def test_cooperative_no_interleaving_between_syncs(self):
        """Fibers run one at a time: a read-modify-write sequence
        without atomics is safe between sync points (boost::fibers
        semantics), unlike with preemptive threads."""

        @fn_acc
        def k(acc, out):
            # Deliberately non-atomic RMW with a data hazard window.
            v = out[0]
            for _ in range(100):
                v = v + 1.0
            out[0] = v

        dev = get_dev_by_idx(AccCpuFibers, 0)
        q = QueueBlocking(dev)
        out = mem.alloc(dev, 1)
        wd = WorkDivMembers.make(1, 8, 1)
        q.enqueue(create_task_kernel(AccCpuFibers, wd, k, out))
        assert out.as_numpy()[0] == 800.0

    def test_fiber_round_robin_order(self):
        """Control transfers at barriers in deterministic round-robin."""

        @fn_acc
        def k(acc, out):
            ti = get_idx(acc, Block, Threads)[0]
            n = acc.atomic_add(out, 0, 1.0)  # pre-barrier arrival order
            out[1 + ti] = n
            acc.sync_block_threads()
            if ti == 0:
                out[5] = out[0]

        dev = get_dev_by_idx(AccCpuFibers, 0)
        q = QueueBlocking(dev)
        out = mem.alloc(dev, 6)
        wd = WorkDivMembers.make(1, 4, 1)
        q.enqueue(create_task_kernel(AccCpuFibers, wd, k, out))
        got = out.as_numpy()
        # Fibers reached the barrier strictly in thread order.
        np.testing.assert_array_equal(got[1:5], [0.0, 1.0, 2.0, 3.0])

    def test_fibers_are_repeatable(self):
        @fn_acc
        def k(acc, out):
            ti = get_idx(acc, Block, Threads)[0]
            old = acc.atomic_add(out, 0, 1.0)
            acc.sync_block_threads()
            out[1 + ti] = old * 10

        results = []
        for _ in range(3):
            dev = get_dev_by_idx(AccCpuFibers, 0)
            q = QueueBlocking(dev)
            out = mem.alloc(dev, 5)
            wd = WorkDivMembers.make(1, 4, 1)
            q.enqueue(create_task_kernel(AccCpuFibers, wd, k, out))
            results.append(out.as_numpy().copy())
        np.testing.assert_array_equal(results[0], results[1])
        np.testing.assert_array_equal(results[1], results[2])


class TestResidency:
    def test_wrong_device_buffer_rejected(self):
        """A kernel on the GPU may not receive a CPU buffer (alpaka
        would dereference a wild pointer; we raise)."""
        cpu = get_dev_by_idx(AccCpuSerial, 0)
        gpu_q = QueueBlocking(get_dev_by_idx(AccGpuCudaSim, 0))
        cpu_buf = mem.alloc(cpu, 8)

        @fn_acc
        def k(acc, buf):
            buf[0] = 1.0

        wd = WorkDivMembers.make(1, 1, 1)
        with pytest.raises((KernelError, MemorySpaceError)):
            gpu_q.enqueue(create_task_kernel(AccGpuCudaSim, wd, k, cpu_buf))

    def test_cross_gpu_die_buffer_rejected(self):
        d0 = get_dev_by_idx(AccGpuCudaSim, 0)
        d1 = get_dev_by_idx(AccGpuCudaSim, 1)
        buf0 = mem.alloc(d0, 8)
        q1 = QueueBlocking(d1)

        @fn_acc
        def k(acc, buf):
            buf[0] = 1.0

        wd = WorkDivMembers.make(1, 1, 1)
        with pytest.raises((KernelError, MemorySpaceError)):
            q1.enqueue(create_task_kernel(AccGpuCudaSim, wd, k, buf0))


class TestLaunchAccounting:
    def test_launch_counter(self):
        dev = get_dev_by_idx(AccCpuSerial, 0)
        q = QueueBlocking(dev)
        before = dev.kernel_launch_count

        @fn_acc
        def k(acc):
            pass

        wd = WorkDivMembers.make(2, 1, 1)
        q.enqueue(create_task_kernel(AccCpuSerial, wd, k))
        q.enqueue(create_task_kernel(AccCpuSerial, wd, k))
        assert dev.kernel_launch_count == before + 2
