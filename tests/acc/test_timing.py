"""Modeled-time accumulation on devices (advance_modeled_time)."""

import numpy as np
import pytest

from repro import (
    AccCpuOmp2Blocks,
    AccCpuSerial,
    AccGpuCudaSim,
    QueueBlocking,
    WorkDivMembers,
    create_task_kernel,
    fn_acc,
    get_dev_by_idx,
    mem,
)
from repro.kernels import GemmTilingKernel, gemm_workdiv_tiling


def run_gemm(acc_type, n=12, bt=1, v=4):
    dev = get_dev_by_idx(acc_type, 0)
    q = QueueBlocking(dev)
    rng = np.random.default_rng(0)
    bufs = []
    for _ in range(3):
        b = mem.alloc(dev, (n, n))
        mem.copy(q, b, rng.random((n, n)))
        bufs.append(b)
    dev.reset_sim_time()
    q.enqueue(
        create_task_kernel(
            acc_type, gemm_workdiv_tiling(n, bt, v), GemmTilingKernel(),
            n, 1.0, bufs[0], bufs[1], 0.0, bufs[2],
        )
    )
    t = dev.sim_time_s
    for b in bufs:
        b.free()
    return t


class TestModeledTime:
    def test_described_kernel_advances_clock(self):
        assert run_gemm(AccGpuCudaSim, bt=2, v=2) > 0.0

    def test_undescribed_kernel_costs_nothing(self):
        @fn_acc
        def plain(acc, out):
            out[0] = 1.0

        dev = get_dev_by_idx(AccGpuCudaSim, 0)
        q = QueueBlocking(dev)
        out = mem.alloc(dev, 1)
        dev.reset_sim_time()
        q.enqueue(
            create_task_kernel(
                AccGpuCudaSim, WorkDivMembers.make(1, 1, 1), plain, out
            )
        )
        assert dev.sim_time_s == 0.0

    def test_serial_slower_than_parallel_on_same_machine(self):
        """Same kernel, same modeled machine: the serial back-end's
        modeled time exceeds the OpenMP-block back-end's (1 vs 16
        cores)."""
        serial = AccCpuSerial.for_machine("intel-xeon-e5-2630v3")
        omp = AccCpuOmp2Blocks.for_machine("intel-xeon-e5-2630v3")
        t_serial = run_gemm(serial, n=32, bt=1, v=4)
        t_omp = run_gemm(omp, n=32, bt=1, v=4)
        assert t_serial > 5 * t_omp

    def test_k20_slower_than_k80_for_equal_work(self):
        k20 = AccGpuCudaSim.for_machine("nvidia-k20")
        k80 = AccGpuCudaSim.for_machine("nvidia-k80")
        t20 = run_gemm(k20, n=16, bt=2, v=2)
        t80 = run_gemm(k80, n=16, bt=2, v=2)
        # Equal shapes; the faster device's kernel-time side differs,
        # both are positive and finite.
        assert t20 > 0 and t80 > 0

    def test_sim_time_accumulates_across_launches(self):
        acc = AccGpuCudaSim
        dev = get_dev_by_idx(acc, 0)
        t1 = run_gemm(acc, bt=2, v=2)
        # run_gemm resets, so run twice manually to check accumulation.
        q = QueueBlocking(dev)
        rng = np.random.default_rng(1)
        bufs = []
        for _ in range(3):
            b = mem.alloc(dev, (12, 12))
            mem.copy(q, b, rng.random((12, 12)))
            bufs.append(b)
        dev.reset_sim_time()
        task = create_task_kernel(
            acc, gemm_workdiv_tiling(12, 2, 2), GemmTilingKernel(),
            12, 1.0, bufs[0], bufs[1], 0.0, bufs[2],
        )
        q.enqueue(task)
        q.enqueue(task)
        assert dev.sim_time_s == pytest.approx(2 * t1, rel=1e-9)
