"""Per-device block-worker pools under concurrent launches."""

import threading

import numpy as np
import pytest

from repro import (
    AccCpuOmp2Blocks,
    QueueBlocking,
    QueueNonBlocking,
    WorkDivMembers,
    create_task_kernel,
    fn_acc,
    get_dev_by_idx,
    mem,
)
from repro.core.element import grid_strided_spans
from repro.runtime.scheduler import PooledScheduler, scheduler_for


class TestPerDevicePool:
    def test_scheduler_is_cached_per_device(self):
        dev = get_dev_by_idx(AccCpuOmp2Blocks, 0)
        a = scheduler_for(dev, "pooled")
        b = scheduler_for(dev, "pooled")
        assert a is b
        assert isinstance(a, PooledScheduler)
        assert a.worker_count >= 1

    def test_sequential_and_pooled_are_distinct(self):
        dev = get_dev_by_idx(AccCpuOmp2Blocks, 0)
        assert scheduler_for(dev, "pooled") is not scheduler_for(
            dev, "sequential"
        )

    def test_concurrent_launches_share_pool_safely(self):
        """Two non-blocking queues launching block-parallel kernels at
        the same time: no deadlock, both results correct."""
        dev = get_dev_by_idx(AccCpuOmp2Blocks, 0)
        n = 4096

        @fn_acc
        def double(acc, m, data):
            for span in grid_strided_spans(acc, m):
                data[span] *= 2.0

        queues, bufs = [], []
        for _ in range(3):
            q = QueueNonBlocking(dev)
            buf = mem.alloc(dev, n)
            mem.copy(q, buf, np.ones(n))
            wd = WorkDivMembers.make(64, 1, 64)
            for _ in range(4):
                q.enqueue(create_task_kernel(AccCpuOmp2Blocks, wd, double, n, buf))
            queues.append(q)
            bufs.append(buf)
        for q in queues:
            q.wait()
            q.destroy()
        for buf in bufs:
            assert np.all(buf.as_numpy() == 16.0)
            buf.free()

    def test_pool_exception_does_not_poison_pool(self):
        dev = get_dev_by_idx(AccCpuOmp2Blocks, 0)

        @fn_acc
        def bad(acc):
            raise RuntimeError("block failure")

        @fn_acc
        def good(acc, out):
            acc.atomic_add(out, 0, 1.0)

        from repro.core.errors import KernelError

        q = QueueBlocking(dev)
        wd = WorkDivMembers.make(8, 1, 1)
        with pytest.raises(KernelError):
            q.enqueue(create_task_kernel(AccCpuOmp2Blocks, wd, bad))
        out = mem.alloc(dev, 1)
        q.enqueue(create_task_kernel(AccCpuOmp2Blocks, wd, good, out))
        assert out.as_numpy()[0] == 8.0
        out.free()

    def test_many_blocks_complete_through_bounded_pool(self):
        """More blocks than pool workers: all still execute exactly
        once (chunked dispatch covers the whole grid)."""
        dev = get_dev_by_idx(AccCpuOmp2Blocks, 0)
        from repro.core import Blocks, Grid, get_idx

        @fn_acc
        def mark(acc, data):
            bi = get_idx(acc, Grid, Blocks)[0]
            acc.atomic_add(data, bi, 1.0)

        q = QueueBlocking(dev)
        buf = mem.alloc(dev, 500)
        wd = WorkDivMembers.make(500, 1, 1)
        q.enqueue(create_task_kernel(AccCpuOmp2Blocks, wd, mark, buf))
        assert np.all(buf.as_numpy() == 1.0)
        buf.free()

    def test_chunked_dispatch_uses_multiple_workers(self):
        """A large grid actually spreads over more than one pool
        thread (not serialised through a single chunk)."""
        import time

        dev = get_dev_by_idx(AccCpuOmp2Blocks, 0)
        threads_seen = set()
        lock = threading.Lock()

        @fn_acc
        def snoop(acc):
            # Slow enough that the chunks' lifetimes overlap, forcing
            # the pool to put them on distinct workers.
            time.sleep(0.002)
            with lock:
                threads_seen.add(threading.get_ident())

        q = QueueBlocking(dev)
        wd = WorkDivMembers.make(32, 1, 1)
        q.enqueue(create_task_kernel(AccCpuOmp2Blocks, wd, snoop))
        workers = scheduler_for(dev, "pooled").worker_count
        if workers > 1:
            assert len(threads_seen) > 1
