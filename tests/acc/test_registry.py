"""Accelerator registry and back-end metadata."""

import pytest

from repro.acc import (
    AccCpuFibers,
    AccCpuOmp2Blocks,
    AccCpuOmp2Threads,
    AccCpuSerial,
    AccCpuThreads,
    AccGpuCudaSim,
    accelerator,
    accelerator_names,
    all_accelerators,
    cpu_accelerators,
    sync_capable_accelerators,
)
from repro.core.workdiv import MappingStrategy


class TestRegistry:
    def test_all_seven_registered(self):
        assert len(accelerator_names()) == 7

    def test_lookup_by_name(self):
        assert accelerator("AccCpuSerial") is AccCpuSerial
        assert accelerator("AccGpuCudaSim") is AccGpuCudaSim

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="known"):
            accelerator("AccFpgaSim")

    def test_cpu_filter(self):
        cpus = cpu_accelerators()
        assert AccGpuCudaSim not in cpus
        assert len(cpus) == 6  # five host back-ends + OpenMP target

    def test_sync_filter(self):
        syncs = sync_capable_accelerators()
        assert AccCpuSerial not in syncs
        assert AccCpuOmp2Blocks not in syncs
        assert AccGpuCudaSim in syncs
        assert AccCpuFibers in syncs


class TestBackendMetadata:
    def test_table2_strategies(self):
        """Paper Table 2: which back-ends use which mapping."""
        assert AccCpuSerial.mapping_strategy is MappingStrategy.BLOCK_LEVEL
        assert AccCpuOmp2Blocks.mapping_strategy is MappingStrategy.BLOCK_LEVEL
        assert AccCpuOmp2Threads.mapping_strategy is MappingStrategy.THREAD_LEVEL
        assert AccCpuThreads.mapping_strategy is MappingStrategy.THREAD_LEVEL
        assert AccGpuCudaSim.mapping_strategy is MappingStrategy.THREAD_LEVEL

    def test_parallel_scopes(self):
        assert AccCpuSerial.parallel_scope == "none"
        assert AccCpuFibers.parallel_scope == "none"  # one runnable fiber
        assert AccCpuOmp2Blocks.parallel_scope == "blocks"
        assert AccCpuOmp2Threads.parallel_scope == "threads"
        assert AccGpuCudaSim.parallel_scope == "both"

    def test_not_instantiable(self):
        for acc in all_accelerators():
            with pytest.raises(TypeError):
                acc()

    def test_props_respect_backend_limits(self):
        for acc in all_accelerators():
            dev = acc.platform().get_dev_by_idx(0)
            props = acc.get_acc_dev_props(dev)
            if not acc.supports_block_sync:
                assert props.block_thread_count_max == 1
            else:
                assert props.block_thread_count_max > 1

    def test_cuda_sim_props_are_cuda_shaped(self):
        dev = AccGpuCudaSim.platform().get_dev_by_idx(0)
        p = AccGpuCudaSim.get_acc_dev_props(dev)
        assert p.warp_size == 32
        assert p.block_thread_count_max == 1024
        assert p.shared_mem_size_bytes == 48 * 1024
        assert p.multi_processor_count == 13  # K80 GK210 SMX count


class TestForMachine:
    def test_variant_caching(self):
        a = AccCpuOmp2Blocks.for_machine("intel-xeon-e5-2630v3")
        b = AccCpuOmp2Blocks.for_machine("intel-xeon-e5-2630v3")
        assert a is b

    def test_variant_is_subclass(self):
        v = AccCpuOmp2Blocks.for_machine("amd-opteron-6276")
        assert issubclass(v, AccCpuOmp2Blocks)
        assert v.platform().spec.key == "amd-opteron-6276"

    def test_gpu_variant(self):
        v = AccGpuCudaSim.for_machine("nvidia-k20")
        assert v.platform().spec.key == "nvidia-k20"
        assert v.platform().device_count == 1

    def test_variants_do_not_collide_across_backends(self):
        a = AccCpuOmp2Blocks.for_machine("amd-opteron-6276")
        b = AccCpuSerial.for_machine("amd-opteron-6276")
        assert a is not b
        assert a.parallel_scope != b.parallel_scope


class TestExecutionStrategies:
    def test_every_backend_declares_a_pair(self):
        from repro import accelerator_names, execution_strategies

        strategies = execution_strategies()
        assert sorted(strategies) == accelerator_names()
        for schedule, execute in strategies.values():
            assert schedule in ("sequential", "pooled")
            assert execute in ("single", "preemptive", "cooperative")

    def test_known_pairs(self):
        from repro import execution_strategies

        s = execution_strategies()
        assert s["AccCpuSerial"] == ("sequential", "single")
        assert s["AccCpuOmp2Blocks"] == ("pooled", "single")
        assert s["AccCpuFibers"] == ("sequential", "cooperative")
        assert s["AccGpuCudaSim"] == ("sequential", "preemptive")
        assert s["AccOmp4TargetSim"] == ("pooled", "preemptive")
