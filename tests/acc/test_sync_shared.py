"""Block synchronisation and shared memory across sync-capable back-ends."""

import numpy as np
import pytest

from repro import WorkDivMembers, fn_acc, get_idx, get_work_div
from repro.core import Block, Grid, Threads, Blocks
from repro.core.errors import KernelError, SharedMemError


class RotateKernel:
    """Each thread writes its id to shared memory, syncs, then reads its
    neighbour's value — wrong without a working barrier."""

    @fn_acc
    def __call__(self, acc, out):
        ti = get_idx(acc, Block, Threads)[0]
        bt = get_work_div(acc, Block, Threads)[0]
        bi = get_idx(acc, Grid, Blocks)[0]
        scratch = acc.shared_mem("s", (bt,))
        scratch[ti] = float(ti)
        acc.sync_block_threads()
        out[bi * bt + ti] = scratch[(ti + 1) % bt]


class PingPongKernel:
    """Multiple barrier generations in alternation."""

    @fn_acc
    def __call__(self, acc, rounds, out):
        ti = get_idx(acc, Block, Threads)[0]
        bt = get_work_div(acc, Block, Threads)[0]
        a = acc.shared_mem("a", (bt,))
        b = acc.shared_mem("b", (bt,))
        a[ti] = float(ti)
        acc.sync_block_threads()
        src, dst = a, b
        for _ in range(rounds):
            dst[ti] = src[(ti + 1) % bt]
            acc.sync_block_threads()
            src, dst = dst, src
        out[ti] = src[ti]


class TestBarriers:
    def test_neighbour_rotation(self, sync_acc, runner):
        # Block of 4 threads: within every sync-capable back-end's
        # limit (the OpenMP-target device caps at 4 hardware threads).
        wd = WorkDivMembers.make(3, 4, 1)
        out = runner.run(
            sync_acc, wd, RotateKernel(), arrays={"out": np.zeros(12)}
        )["out"]
        expected = np.tile((np.arange(4) + 1) % 4, 3).astype(float)
        np.testing.assert_array_equal(out, expected)

    @pytest.mark.parametrize("rounds", [1, 2, 7])
    def test_multiple_generations(self, sync_acc, runner, rounds):
        bt = 4
        wd = WorkDivMembers.make(1, bt, 1)
        out = runner.run(
            sync_acc, wd, PingPongKernel(), rounds,
            arrays={"out": np.zeros(bt)},
        )["out"]
        expected = (np.arange(bt) + rounds) % bt
        np.testing.assert_array_equal(out, expected.astype(float))

    def test_sync_noop_with_single_thread(self, any_acc, runner):
        """A lone thread may call sync on every back-end (trivial
        barrier)."""

        @fn_acc
        def k(acc, out):
            acc.sync_block_threads()
            out[0] = 1.0

        wd = WorkDivMembers.make(1, 1, 1)
        out = runner.run(any_acc, wd, k, arrays={"out": np.zeros(1)})["out"]
        assert out[0] == 1.0


class TestSharedMemory:
    def test_same_array_across_threads(self, sync_acc, runner):
        wd = WorkDivMembers.make(1, 4, 1)  # within every back-end's cap

        @fn_acc
        def k(acc, out):
            ti = get_idx(acc, Block, Threads)[0]
            s = acc.shared_mem("x", (4,))
            s[ti] = ti + 10.0
            acc.sync_block_threads()
            if ti == 0:
                out[:] = s[:]

        out = runner.run(sync_acc, wd, k, arrays={"out": np.zeros(4)})["out"]
        np.testing.assert_array_equal(out, [10.0, 11.0, 12.0, 13.0])

    def test_blocks_do_not_share(self, any_acc, runner):
        """Shared memory is discarded between blocks (paper 3.2.2)."""

        @fn_acc
        def k(acc, out):
            bi = get_idx(acc, Grid, Blocks)[0]
            s = acc.shared_var("v")
            out[bi] = s[0]  # must read this block's fresh zero
            s[0] = bi + 1.0

        wd = WorkDivMembers.make(4, 1, 1)
        out = runner.run(any_acc, wd, k, arrays={"out": np.ones(4)})["out"]
        np.testing.assert_array_equal(out, np.zeros(4))

    def test_divergent_shape_rejected(self, sync_acc, runner):
        @fn_acc
        def k(acc, out):
            ti = get_idx(acc, Block, Threads)[0]
            acc.shared_mem("s", (int(ti) + 1,))
            acc.sync_block_threads()

        wd = WorkDivMembers.make(1, 2, 1)
        with pytest.raises(KernelError) as exc:
            runner.run(sync_acc, wd, k, arrays={"out": np.zeros(1)})
        assert isinstance(exc.value.__cause__, SharedMemError)

    def test_capacity_enforced(self, runner):
        from repro import AccGpuCudaSim

        @fn_acc
        def k(acc, out):
            acc.shared_mem("big", (100_000,))  # 800 KB > 48 KB

        wd = WorkDivMembers.make(1, 1, 1)
        with pytest.raises(KernelError) as exc:
            runner.run(AccGpuCudaSim, wd, k, arrays={"out": np.zeros(1)})
        assert isinstance(exc.value.__cause__, SharedMemError)

    def test_dtype_and_2d_shapes(self, sync_acc, runner):
        @fn_acc
        def k(acc, out):
            s = acc.shared_mem("m", (2, 3), dtype=np.int64)
            ti = get_idx(acc, Block, Threads)[0]
            if ti == 0:
                s[1, 2] = 42
            acc.sync_block_threads()
            if ti == 1:
                out[0] = float(s[1, 2])

        wd = WorkDivMembers.make(1, 2, 1)
        out = runner.run(sync_acc, wd, k, arrays={"out": np.zeros(1)})["out"]
        assert out[0] == 42.0


class TestSerialBackendContract:
    def test_serial_rejects_multithread_blocks(self, runner):
        from repro import AccCpuSerial
        from repro.core.errors import InvalidWorkDiv

        wd = WorkDivMembers.make(1, 2, 1)
        with pytest.raises(InvalidWorkDiv):
            runner.run(
                AccCpuSerial, wd, RotateKernel(), arrays={"out": np.zeros(2)}
            )

    def test_omp_blocks_rejects_multithread_blocks(self, runner):
        from repro import AccCpuOmp2Blocks
        from repro.core.errors import InvalidWorkDiv

        wd = WorkDivMembers.make(1, 2, 1)
        with pytest.raises(InvalidWorkDiv):
            runner.run(
                AccCpuOmp2Blocks, wd, RotateKernel(), arrays={"out": np.zeros(2)}
            )
