"""The simulated OpenMP 4.x target-offload back-end (future work)."""

import numpy as np
import pytest

from repro import (
    AccCpuSerial,
    AccOmp4TargetSim,
    MemorySpaceError,
    QueueBlocking,
    WorkDivMembers,
    create_task_kernel,
    get_dev_by_idx,
    mem,
)
from repro.acc import PlatformOmpTarget
from repro.core.errors import KernelError


class TestOffloadSemantics:
    def test_device_data_environment_is_isolated(self):
        """Host pointers are not device pointers: map clauses (copies)
        are mandatory."""
        dev = get_dev_by_idx(AccOmp4TargetSim, 0)
        assert not dev.accessible_from_host
        buf = mem.alloc(dev, 8)
        with pytest.raises(MemorySpaceError):
            buf.as_numpy()

    def test_host_buffer_rejected_as_kernel_arg(self):
        host = get_dev_by_idx(AccCpuSerial, 0)
        host_buf = mem.alloc(host, 4)
        dev = get_dev_by_idx(AccOmp4TargetSim, 0)
        q = QueueBlocking(dev)

        from repro import fn_acc

        @fn_acc
        def k(acc, data):
            data[0] = 1.0

        with pytest.raises((KernelError, MemorySpaceError)):
            q.enqueue(
                create_task_kernel(
                    AccOmp4TargetSim, WorkDivMembers.make(1, 1, 1), k, host_buf
                )
            )

    def test_map_roundtrip(self, rng):
        dev = get_dev_by_idx(AccOmp4TargetSim, 0)
        q = QueueBlocking(dev)
        data = rng.random(32)
        buf = mem.alloc(dev, 32)
        mem.copy(q, buf, data)  # map(to:)
        out = np.zeros(32)
        mem.copy(q, out, buf)  # map(from:)
        np.testing.assert_array_equal(out, data)


class TestTeamsExecution:
    def test_defaults_to_xeon_phi(self):
        dev = get_dev_by_idx(AccOmp4TargetSim, 0)
        assert dev.spec.key == "intel-xeon-phi-5110p"
        props = AccOmp4TargetSim.get_acc_dev_props(dev)
        assert props.block_thread_count_max == 4  # KNC hardware threads
        assert props.multi_processor_count == 60

    def test_both_levels_parallel(self):
        assert AccOmp4TargetSim.parallel_scope == "both"
        assert AccOmp4TargetSim.supports_block_sync

    def test_team_barrier_works(self, runner):
        from repro import fn_acc, get_idx, get_work_div
        from repro.core import Block, Threads

        @fn_acc
        def rotate(acc, out):
            ti = get_idx(acc, Block, Threads)[0]
            bt = get_work_div(acc, Block, Threads)[0]
            s = acc.shared_mem("s", (bt,))
            s[ti] = float(ti)
            acc.sync_block_threads()
            out[ti] = s[(ti + 1) % bt]

        wd = WorkDivMembers.make(1, 4, 1)
        out = runner.run(AccOmp4TargetSim, wd, rotate, arrays={"out": np.zeros(4)})
        np.testing.assert_array_equal(out["out"], [1.0, 2.0, 3.0, 0.0])

    def test_block_size_capped_at_hw_threads(self, runner):
        from repro import fn_acc
        from repro.core.errors import InvalidWorkDiv

        @fn_acc
        def k(acc, out):
            pass

        wd = WorkDivMembers.make(1, 8, 1)  # > 4 hardware threads
        with pytest.raises(InvalidWorkDiv):
            runner.run(AccOmp4TargetSim, wd, k, arrays={"out": np.zeros(1)})

    def test_for_machine_variant(self):
        v = AccOmp4TargetSim.for_machine("intel-xeon-e5-2630v3")
        dev = v.platform().get_dev_by_idx(0)
        assert dev.spec.key == "intel-xeon-e5-2630v3"
        assert not dev.accessible_from_host  # still behind the offload

    def test_gpu_machine_rejected(self):
        with pytest.raises(ValueError):
            PlatformOmpTarget("nvidia-k80")
