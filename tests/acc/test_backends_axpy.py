"""The single-source contract: one kernel, every back-end, same result."""

import numpy as np
import pytest

from repro import WorkDivMembers
from repro.kernels import AxpyElementsKernel, AxpyKernel, axpy_reference


class TestAxpyEverywhere:
    def test_scalar_kernel(self, any_acc, runner, rng):
        """The Fig. 4 one-element-per-thread kernel."""
        n = 100
        x = rng.random(n)
        y = rng.random(n)
        expected = axpy_reference(3.0, x, y)
        if any_acc.supports_block_sync:
            from repro import get_dev_by_idx

            cap = any_acc.get_acc_dev_props(
                get_dev_by_idx(any_acc, 0)
            ).block_thread_count_max
            bt = min(8, cap)
            wd = WorkDivMembers.make(-(-104 // bt), bt, 1)  # guard clips
        else:
            wd = WorkDivMembers.make(104, 1, 1)
        out = runner.run(
            any_acc, wd, AxpyKernel(), n, 3.0, arrays={"x": x, "y": y}
        )
        np.testing.assert_allclose(out["y"], expected)
        np.testing.assert_allclose(out["x"], x)  # input untouched

    def test_element_kernel(self, any_acc, runner, rng):
        """The vector-span kernel with auto work division."""
        n = 1000
        x = rng.random(n)
        y = rng.random(n)
        expected = axpy_reference(-0.5, x, y)
        wd = runner.auto_workdiv(any_acc, n, thread_elems=64)
        out = runner.run(
            any_acc, wd, AxpyElementsKernel(), n, -0.5, arrays={"x": x, "y": y}
        )
        np.testing.assert_allclose(out["y"], expected)

    def test_grid_striding_with_undersized_grid(self, any_acc, runner, rng):
        """A grid smaller than the data still covers it (persistent
        threads) on every back-end."""
        n = 777
        x = rng.random(n)
        y = rng.random(n)
        expected = axpy_reference(2.0, x, y)
        if any_acc.supports_block_sync:
            wd = WorkDivMembers.make(2, 4, 10)  # covers only 80 per pass
        else:
            wd = WorkDivMembers.make(8, 1, 10)  # 4 <= every sync cap
        out = runner.run(
            any_acc, wd, AxpyElementsKernel(), n, 2.0, arrays={"x": x, "y": y}
        )
        np.testing.assert_allclose(out["y"], expected)

    def test_results_identical_across_backends(self, runner, rng):
        """Bitwise identical results — the testability property."""
        from repro import accelerator, accelerator_names

        n = 257
        x = rng.random(n)
        y = rng.random(n)
        results = {}
        for name in accelerator_names():
            acc = accelerator(name)
            wd = runner.auto_workdiv(acc, n, thread_elems=16)
            out = runner.run(
                acc, wd, AxpyElementsKernel(), n, 1.25, arrays={"x": x, "y": y}
            )
            results[name] = out["y"]
        baseline = results.pop("AccCpuSerial")
        for name, val in results.items():
            np.testing.assert_array_equal(val, baseline, err_msg=name)
