"""CUDA-shaped per-axis limits on the simulated GPU."""

import pytest

from repro import AccGpuCudaSim, Vec, WorkDivMembers, get_dev_by_idx
from repro.core.errors import InvalidWorkDiv
from repro.core.workdiv import validate_work_div


@pytest.fixture
def props():
    return AccGpuCudaSim.get_acc_dev_props(get_dev_by_idx(AccGpuCudaSim, 0))


class TestPerAxisLimits:
    def test_block_z_axis_capped_at_64(self, props):
        """CUDA allows 1024 threads along x/y but only 64 along z; our
        component 0 (slowest) maps to z."""
        ok = WorkDivMembers.make(Vec(1, 1, 1), Vec(64, 4, 4), Vec(1, 1, 1))
        validate_work_div(ok, props)
        bad = WorkDivMembers.make(Vec(1, 1, 1), Vec(65, 1, 1), Vec(1, 1, 1))
        with pytest.raises(InvalidWorkDiv):
            validate_work_div(bad, props)

    def test_block_total_capped_at_1024(self, props):
        bad = WorkDivMembers.make(Vec(1, 1), Vec(64, 64), Vec(1, 1))
        with pytest.raises(InvalidWorkDiv):
            validate_work_div(bad, props)
        ok = WorkDivMembers.make(Vec(1, 1), Vec(32, 32), Vec(1, 1))
        validate_work_div(ok, props)

    def test_grid_y_axis_capped_at_65535(self, props):
        bad = WorkDivMembers.make(Vec(1, 70000, 1), Vec(1, 1, 1), Vec(1, 1, 1))
        with pytest.raises(InvalidWorkDiv):
            validate_work_div(bad, props)

    def test_grid_x_axis_is_huge(self, props):
        ok = WorkDivMembers.make(Vec(1, 1, 1 << 20), Vec(1, 1, 1), Vec(1, 1, 1))
        validate_work_div(ok, props)

    def test_1d_division_uses_fastest_axis_limits(self, props):
        """A 1-d work division is constrained by the x-axis limits."""
        ok = WorkDivMembers.make(1 << 20, 1024, 1)
        validate_work_div(ok, props)
        with pytest.raises(InvalidWorkDiv):
            validate_work_div(WorkDivMembers.make(1, 1025, 1), props)

    def test_2d_division_uses_xy_limits(self, props):
        ok = WorkDivMembers.make(Vec(65535, 1 << 20), Vec(1, 1), Vec(1, 1))
        validate_work_div(ok, props)
        with pytest.raises(InvalidWorkDiv):
            validate_work_div(
                WorkDivMembers.make(Vec(65536, 1), Vec(1, 1), Vec(1, 1)), props
            )
