"""Warp/lane index accessors."""

import numpy as np
import pytest

from repro import (
    AccCpuSerial,
    AccGpuCudaSim,
    QueueBlocking,
    WorkDivMembers,
    create_task_kernel,
    fn_acc,
    get_dev_by_idx,
    mem,
)


def collect(acc_type, wd, field):
    rows = []

    @fn_acc
    def probe(acc, out):
        rows.append(
            (
                tuple(acc.block_thread_idx),
                getattr(acc, field),
            )
        )

    dev = get_dev_by_idx(acc_type, 0)
    q = QueueBlocking(dev)
    out = mem.alloc(dev, 1)
    q.enqueue(create_task_kernel(acc_type, wd, probe, out))
    return dict(rows)


class TestWarpIndices:
    def test_warp_partitioning_on_gpu(self):
        wd = WorkDivMembers.make(1, 96, 1)  # 3 warps of 32
        warps = collect(AccGpuCudaSim, wd, "warp_idx")
        assert warps[(0,)] == 0
        assert warps[(31,)] == 0
        assert warps[(32,)] == 1
        assert warps[(95,)] == 2

    def test_lane_indices_on_gpu(self):
        wd = WorkDivMembers.make(1, 64, 1)
        lanes = collect(AccGpuCudaSim, wd, "lane_idx")
        assert lanes[(0,)] == 0
        assert lanes[(33,)] == 1
        assert sorted(set(lanes.values())) == list(range(32))

    def test_2d_block_linearisation(self):
        wd = WorkDivMembers.make((1, 1), (2, 32), (1, 1))
        warps = collect(AccGpuCudaSim, wd, "warp_idx")
        # Row 0 (flat 0..31) is warp 0; row 1 (flat 32..63) is warp 1.
        assert warps[(0, 5)] == 0
        assert warps[(1, 5)] == 1

    def test_cpu_backends_have_unit_warps(self):
        wd = WorkDivMembers.make(4, 1, 1)
        lanes = collect(AccCpuSerial, wd, "lane_idx")
        assert set(lanes.values()) == {0}
        warps = collect(AccCpuSerial, wd, "warp_idx")
        assert set(warps.values()) == {0}

    def test_warp_size_property(self):
        wd = WorkDivMembers.make(1, 1, 1)
        assert collect(AccGpuCudaSim, wd, "warp_size")[(0,)] == 32
        assert collect(AccCpuSerial, wd, "warp_size")[(0,)] == 1
