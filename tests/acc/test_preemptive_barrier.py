"""Preemptive-engine barrier semantics under errors and divergence.

Regression suite for the dynamic-party block barrier: a sibling's
failure must surface the *original* kernel exception (with thread and
block context), never a raw ``threading.BrokenBarrierError``; and a
thread exiting without syncing must release waiting siblings instead of
deadlocking — the same contract the cooperative fiber engine pins in
``test_fiber_divergence.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Block,
    QueueBlocking,
    Threads,
    WorkDivMembers,
    accelerator,
    create_task_kernel,
    fn_acc,
    get_dev_by_idx,
    get_idx,
    mem,
)
from repro.core.errors import KernelError

PREEMPTIVE = ["AccCpuThreads", "AccCpuOmp2Threads", "AccGpuCudaSim"]


def _run(acc_name, kernel, n=4, threads=4):
    acc = accelerator(acc_name)
    dev = get_dev_by_idx(acc, 0)
    q = QueueBlocking(dev)
    out = mem.alloc(dev, n)
    mem.memset(q, out, 0.0)
    wd = WorkDivMembers.make(1, threads, 1)
    q.enqueue(create_task_kernel(acc, wd, kernel, n, out))
    host = np.zeros(n)
    mem.copy(q, host, out)
    return host


class FailAtBarrierKernel:
    """Thread 2 raises while its siblings wait at the barrier."""

    @fn_acc
    def __call__(self, acc, n, out):
        ti = get_idx(acc, Block, Threads)[0]
        if ti == 2:
            raise ValueError("boom from thread 2")
        acc.sync_block_threads()
        out[ti] = 1.0


class CatchAroundSyncKernel:
    """User code wrapping sync in ``except Exception`` must never see
    the engine's internal unwind signal."""

    @fn_acc
    def __call__(self, acc, n, out):
        ti = get_idx(acc, Block, Threads)[0]
        if ti == 0:
            raise ValueError("boom")
        try:
            acc.sync_block_threads()
            out[ti] = 1.0
        except Exception:
            out[ti] = -1.0


class EarlyReturnKernel:
    @fn_acc
    def __call__(self, acc, n, out):
        ti = get_idx(acc, Block, Threads)[0]
        out[ti] = 1.0
        if ti == 0:
            return
        acc.sync_block_threads()
        out[ti] = 2.0


@pytest.mark.parametrize("backend", PREEMPTIVE)
class TestSiblingFailure:
    def test_original_exception_with_context(self, backend):
        with pytest.raises(KernelError) as exc_info:
            _run(backend, FailAtBarrierKernel())
        msg = str(exc_info.value)
        assert "thread" in msg and "block" in msg
        assert "FailAtBarrierKernel" in msg
        cause = exc_info.value.__cause__
        assert isinstance(cause, ValueError)
        assert "boom from thread 2" in str(cause)

    def test_no_broken_barrier_error_anywhere(self, backend):
        import threading

        with pytest.raises(KernelError) as exc_info:
            _run(backend, FailAtBarrierKernel())
        exc = exc_info.value
        seen = set()
        while exc is not None and id(exc) not in seen:
            seen.add(id(exc))
            assert not isinstance(exc, threading.BrokenBarrierError)
            exc = exc.__cause__ or exc.__context__

    def test_user_except_never_sees_engine_unwind(self, backend):
        with pytest.raises(KernelError):
            _run(backend, CatchAroundSyncKernel())
        # If the engine's unwind signal were an Exception, a sibling's
        # handler would have swallowed it and written -1; the raise
        # above (attributed to thread 0) is the observable contract.


@pytest.mark.parametrize("backend", PREEMPTIVE)
class TestDivergentExit:
    def test_early_returner_releases_barrier(self, backend):
        # Must complete (no deadlock, no exception), matching the
        # cooperative back-ends' pinned semantics.
        out = _run(backend, EarlyReturnKernel())
        np.testing.assert_array_equal(out, [1.0, 2.0, 2.0, 2.0])

    def test_all_but_one_exit_early(self, backend):
        class K:
            @fn_acc
            def __call__(self, acc, n, out):
                ti = get_idx(acc, Block, Threads)[0]
                out[ti] = 1.0
                if ti != 3:
                    return
                acc.sync_block_threads()
                out[ti] = 2.0

        out = _run(backend, K())
        np.testing.assert_array_equal(out, [1.0, 1.0, 1.0, 2.0])
