"""Fiber scheduler edge cases: divergent exits around barriers.

CUDA leaves divergent ``__syncthreads`` undefined; the cooperative
scheduler's contract is merely *no deadlock*: when every still-running
fiber waits at a barrier and the rest have exited, the barrier releases.
These tests pin that behaviour (and the analogous preemptive-engine
abort path) so refactors cannot regress it into a hang.
"""

import numpy as np
import pytest

from repro import (
    AccCpuFibers,
    QueueBlocking,
    WorkDivMembers,
    create_task_kernel,
    fn_acc,
    get_dev_by_idx,
    get_idx,
    mem,
)
from repro.core import Block, Threads


def run_fibers(kernel, threads, out_len):
    dev = get_dev_by_idx(AccCpuFibers, 0)
    q = QueueBlocking(dev)
    out = mem.alloc(dev, out_len)
    wd = WorkDivMembers.make(1, threads, 1)
    q.enqueue(create_task_kernel(AccCpuFibers, wd, kernel, out))
    res = out.as_numpy().copy()
    out.free()
    return res


class TestDivergentExit:
    def test_early_returner_does_not_deadlock_barrier(self):
        """Fiber 0 exits before the barrier; the remaining fibers'
        barrier still completes."""

        @fn_acc
        def k(acc, out):
            ti = get_idx(acc, Block, Threads)[0]
            if ti == 0:
                out[0] = 1.0
                return
            acc.sync_block_threads()
            out[ti] = 2.0

        res = run_fibers(k, 4, 4)
        np.testing.assert_array_equal(res, [1.0, 2.0, 2.0, 2.0])

    def test_all_but_one_exit_early(self):
        @fn_acc
        def k(acc, out):
            ti = get_idx(acc, Block, Threads)[0]
            if ti != 3:
                out[ti] = -1.0
                return
            acc.sync_block_threads()
            out[3] = 7.0

        res = run_fibers(k, 4, 4)
        np.testing.assert_array_equal(res, [-1.0, -1.0, -1.0, 7.0])

    def test_exit_between_generations(self):
        """A fiber that leaves after the first barrier must not stall
        the second generation."""

        @fn_acc
        def k(acc, out):
            ti = get_idx(acc, Block, Threads)[0]
            acc.sync_block_threads()
            if ti == 1:
                out[1] = 5.0
                return
            acc.sync_block_threads()
            out[ti] = 9.0

        res = run_fibers(k, 3, 3)
        np.testing.assert_array_equal(res, [9.0, 5.0, 9.0])

    def test_single_fiber_many_syncs(self):
        @fn_acc
        def k(acc, out):
            for i in range(10):
                acc.sync_block_threads()
            out[0] = 10.0

        res = run_fibers(k, 1, 1)
        assert res[0] == 10.0

    def test_interleaving_still_round_robin_after_divergence(self):
        """After a divergent exit, baton order stays deterministic."""

        @fn_acc
        def k(acc, out):
            ti = get_idx(acc, Block, Threads)[0]
            if ti == 0:
                return
            old = acc.atomic_add(out, 0, 1.0)
            acc.sync_block_threads()
            out[ti] = old

        first = run_fibers(k, 4, 4)
        second = run_fibers(k, 4, 4)
        np.testing.assert_array_equal(first, second)
        # Fibers 1..3 arrived in thread order.
        np.testing.assert_array_equal(first[1:], [0.0, 1.0, 2.0])
