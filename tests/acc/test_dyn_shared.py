"""Dynamic block shared memory (launch-time sized)."""

import numpy as np
import pytest

from repro import (
    AccGpuCudaSim,
    QueueBlocking,
    WorkDivMembers,
    create_task_kernel,
    fn_acc,
    get_dev_by_idx,
    get_idx,
    mem,
)
from repro.core import Block, Threads
from repro.core.errors import KernelError, SharedMemError


class RotateDyn:
    @fn_acc
    def __call__(self, acc, out):
        ti = get_idx(acc, Block, Threads)[0]
        s = acc.shared_mem_dyn()
        bt = s.shape[0]
        s[ti] = float(ti)
        acc.sync_block_threads()
        out[ti] = s[(ti + 1) % bt]


class TestDynamicSharedMem:
    def test_basic(self, sync_acc, runner):
        from repro import QueueBlocking, create_task_kernel, get_dev_by_idx

        dev = get_dev_by_idx(sync_acc, 0)
        q = QueueBlocking(dev)
        cap = sync_acc.get_acc_dev_props(dev).block_thread_count_max
        bt = min(8, cap)
        out = mem.alloc(dev, bt)
        wd = WorkDivMembers.make(1, bt, 1)
        q.enqueue(
            create_task_kernel(
                sync_acc, wd, RotateDyn(), out, shared_mem_bytes=bt * 8
            )
        )
        res = np.zeros(bt)
        mem.copy(q, res, out)
        np.testing.assert_array_equal(res, (np.arange(bt) + 1) % bt)

    def test_size_follows_launch_parameter(self):
        sizes = []

        @fn_acc
        def probe(acc, out):
            sizes.append(acc.shared_mem_dyn(np.float32).shape[0])

        dev = get_dev_by_idx(AccGpuCudaSim, 0)
        q = QueueBlocking(dev)
        out = mem.alloc(dev, 1)
        wd = WorkDivMembers.make(1, 1, 1)
        for nbytes in (64, 256):
            q.enqueue(
                create_task_kernel(
                    AccGpuCudaSim, wd, probe, out, shared_mem_bytes=nbytes
                )
            )
        assert sizes == [16, 64]  # bytes / sizeof(float32)

    def test_unsized_request_raises(self):
        @fn_acc
        def probe(acc, out):
            acc.shared_mem_dyn()

        dev = get_dev_by_idx(AccGpuCudaSim, 0)
        q = QueueBlocking(dev)
        out = mem.alloc(dev, 1)
        wd = WorkDivMembers.make(1, 1, 1)
        with pytest.raises(KernelError) as exc:
            q.enqueue(create_task_kernel(AccGpuCudaSim, wd, probe, out))
        assert isinstance(exc.value.__cause__, SharedMemError)

    def test_over_limit_rejected_at_launch(self):
        @fn_acc
        def probe(acc, out):
            pass

        dev = get_dev_by_idx(AccGpuCudaSim, 0)
        q = QueueBlocking(dev)
        out = mem.alloc(dev, 1)
        wd = WorkDivMembers.make(1, 1, 1)
        with pytest.raises(SharedMemError):
            q.enqueue(
                create_task_kernel(
                    AccGpuCudaSim, wd, probe, out,
                    shared_mem_bytes=49 * 1024,  # > 48 KiB limit
                )
            )

    def test_negative_rejected(self):
        @fn_acc
        def probe(acc):
            pass

        wd = WorkDivMembers.make(1, 1, 1)
        with pytest.raises(KernelError):
            create_task_kernel(
                AccGpuCudaSim, wd, probe, shared_mem_bytes=-1
            )

    def test_dyn_plus_static_budget_shared(self):
        """Dynamic and static allocations draw from one block budget."""

        @fn_acc
        def probe(acc, out):
            acc.shared_mem_dyn()  # 40 KiB
            acc.shared_mem("more", (2048,))  # 16 KiB -> over 48 KiB

        dev = get_dev_by_idx(AccGpuCudaSim, 0)
        q = QueueBlocking(dev)
        out = mem.alloc(dev, 1)
        wd = WorkDivMembers.make(1, 1, 1)
        with pytest.raises(KernelError) as exc:
            q.enqueue(
                create_task_kernel(
                    AccGpuCudaSim, wd, probe, out,
                    shared_mem_bytes=40 * 1024,
                )
            )
        assert isinstance(exc.value.__cause__, SharedMemError)
