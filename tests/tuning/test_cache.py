"""Tuning cache: keys, persistence, tolerance of rot."""

import json
import os

import pytest

from repro import AccCpuSerial, AccGpuCudaSim, get_dev_by_idx
from repro.core.workdiv import WorkDivMembers
from repro.tuning import (
    CachedResult,
    TuningCache,
    TUNING_CACHE_ENV,
    default_cache,
    default_cache_path,
    reset_default_cache,
)
from repro.tuning.cache import bucket_extent, device_fingerprint, kernel_id


def _kernel_a(acc):
    pass


def _kernel_b(acc):
    pass


class _KernelCls:
    def __call__(self, acc):
        pass


WD = WorkDivMembers.make(4, 1, 8)
ENTRY = CachedResult(work_div=WD, seconds=1.5e-6, strategy="exhaustive", source="modeled")


class TestKeys:
    def test_kernel_id_functions_differ(self):
        assert kernel_id(_kernel_a) != kernel_id(_kernel_b)

    def test_kernel_id_instances_share_class_identity(self):
        assert kernel_id(_KernelCls()) == kernel_id(_KernelCls())
        assert kernel_id(_KernelCls()) == kernel_id(_KernelCls)

    def test_kernel_id_lambdas_differ(self):
        k1 = lambda acc: None  # noqa: E731
        k2 = lambda acc: None  # noqa: E731
        assert kernel_id(k1) != kernel_id(k2)

    def test_kernel_id_nested_functions_differ(self):
        def first():
            def kern(acc):
                pass

            return kern

        def second():
            def kern(acc):
                pass

            return kern

        assert kernel_id(first()) != kernel_id(second())
        # The same definition site keeps a stable identity.
        assert kernel_id(first()) == kernel_id(first())

    def test_kernel_id_rejects_non_callable(self):
        with pytest.raises(TypeError):
            kernel_id(42)

    def test_bucket_extent_next_pow2(self):
        assert bucket_extent(1000) == "1024"
        assert bucket_extent(1024) == "1024"
        assert bucket_extent((3, 100)) == "4x128"
        assert bucket_extent(1) == "1"

    def test_same_bucket_same_key(self):
        dev = get_dev_by_idx(AccCpuSerial)
        k1 = TuningCache.key(_kernel_a, AccCpuSerial, dev, 513)
        k2 = TuningCache.key(_kernel_a, AccCpuSerial, dev, 1024)
        k3 = TuningCache.key(_kernel_a, AccCpuSerial, dev, 512)
        assert k1 == k2
        assert k1 != k3

    def test_fingerprint_distinguishes_devices(self):
        cpu = get_dev_by_idx(AccCpuSerial)
        gpu = get_dev_by_idx(AccGpuCudaSim)
        assert device_fingerprint(cpu) != device_fingerprint(gpu)

    def test_key_distinguishes_backends(self):
        cpu = get_dev_by_idx(AccCpuSerial)
        gpu = get_dev_by_idx(AccGpuCudaSim)
        assert TuningCache.key(_kernel_a, AccCpuSerial, cpu, 64) != TuningCache.key(
            _kernel_a, AccGpuCudaSim, gpu, 64
        )


class TestPersistence:
    def test_serialize_reload_hit(self, tmp_path):
        path = str(tmp_path / "c.json")
        dev = get_dev_by_idx(AccCpuSerial)
        cache = TuningCache(path)
        cache.put(_kernel_a, AccCpuSerial, dev, 1000, ENTRY)
        cache.save()

        reloaded = TuningCache(path)
        hit = reloaded.get(_kernel_a, AccCpuSerial, dev, 700)  # same bucket
        assert hit is not None
        assert hit.work_div == WD
        assert hit.seconds == ENTRY.seconds
        assert hit.strategy == "exhaustive"
        assert hit.source == "modeled"

    def test_miss_on_other_kernel_and_extent(self, tmp_path):
        path = str(tmp_path / "c.json")
        dev = get_dev_by_idx(AccCpuSerial)
        cache = TuningCache(path)
        cache.put(_kernel_a, AccCpuSerial, dev, 1000, ENTRY)
        assert cache.get(_kernel_b, AccCpuSerial, dev, 1000) is None
        assert cache.get(_kernel_a, AccCpuSerial, dev, 4096) is None

    def test_missing_file_is_empty(self, tmp_path):
        cache = TuningCache(str(tmp_path / "absent.json"))
        assert len(cache) == 0

    def test_corrupt_file_is_empty(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text("{ not json !!!")
        cache = TuningCache(str(path))
        assert len(cache) == 0

    def test_wrong_version_is_empty(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text(json.dumps({"version": 999, "entries": {"k": {}}}))
        assert len(TuningCache(str(path))) == 0

    def test_rotten_entry_skipped_others_kept(self, tmp_path):
        path = str(tmp_path / "c.json")
        dev = get_dev_by_idx(AccCpuSerial)
        cache = TuningCache(path)
        cache.put(_kernel_a, AccCpuSerial, dev, 64, ENTRY)
        cache.save()
        data = json.loads(open(path).read())
        data["entries"]["bad|key"] = {"grid": "nonsense"}
        open(path, "w").write(json.dumps(data))
        reloaded = TuningCache(path)
        assert len(reloaded) == 1
        assert reloaded.get(_kernel_a, AccCpuSerial, dev, 64) is not None

    def test_save_is_atomic_no_temp_left_behind(self, tmp_path):
        path = str(tmp_path / "c.json")
        dev = get_dev_by_idx(AccCpuSerial)
        cache = TuningCache(path)
        cache.put(_kernel_a, AccCpuSerial, dev, 64, ENTRY)
        cache.save()
        leftovers = [f for f in os.listdir(tmp_path) if f.endswith(".tmp")]
        assert leftovers == []
        assert json.loads(open(path).read())["version"] >= 1

    def test_clear_forgets_entries(self, tmp_path):
        dev = get_dev_by_idx(AccCpuSerial)
        cache = TuningCache(str(tmp_path / "c.json"))
        cache.put(_kernel_a, AccCpuSerial, dev, 64, ENTRY)
        cache.clear()
        assert cache.get(_kernel_a, AccCpuSerial, dev, 64) is None


class TestEnvOverride:
    def test_env_var_moves_default_path(self, monkeypatch, tmp_path):
        target = str(tmp_path / "elsewhere" / "cache.json")
        monkeypatch.setenv(TUNING_CACHE_ENV, target)
        reset_default_cache()
        assert default_cache_path() == target
        assert default_cache().path == target

    def test_default_path_in_cwd_without_env(self, monkeypatch):
        monkeypatch.delenv(TUNING_CACHE_ENV, raising=False)
        assert default_cache_path() == os.path.join(
            os.getcwd(), ".repro-tuning-cache.json"
        )

    def test_default_cache_is_singleton(self):
        assert default_cache() is default_cache()
        reset_default_cache()
        # A new instance after reset, still pointing at the env path.
        assert default_cache() is default_cache()
