"""Tuning cache: keys, persistence, tolerance of rot, concurrency."""

import json
import os
import subprocess
import sys
import warnings

import pytest

from repro import AccCpuSerial, AccGpuCudaSim, get_dev_by_idx
from repro.core.workdiv import WorkDivMembers
from repro.tuning import (
    CachedResult,
    TuningCache,
    TUNING_CACHE_ENV,
    default_cache,
    default_cache_path,
    reset_default_cache,
)
from repro.tuning.cache import bucket_extent, device_fingerprint, kernel_id


def _kernel_a(acc):
    pass


def _kernel_b(acc):
    pass


class _KernelCls:
    def __call__(self, acc):
        pass


WD = WorkDivMembers.make(4, 1, 8)
ENTRY = CachedResult(work_div=WD, seconds=1.5e-6, strategy="exhaustive", source="modeled")


class TestKeys:
    def test_kernel_id_functions_differ(self):
        assert kernel_id(_kernel_a) != kernel_id(_kernel_b)

    def test_kernel_id_instances_share_class_identity(self):
        assert kernel_id(_KernelCls()) == kernel_id(_KernelCls())
        assert kernel_id(_KernelCls()) == kernel_id(_KernelCls)

    def test_kernel_id_lambdas_differ(self):
        k1 = lambda acc: None  # noqa: E731
        k2 = lambda acc: None  # noqa: E731
        assert kernel_id(k1) != kernel_id(k2)

    def test_kernel_id_nested_functions_differ(self):
        def first():
            def kern(acc):
                pass

            return kern

        def second():
            def kern(acc):
                pass

            return kern

        assert kernel_id(first()) != kernel_id(second())
        # The same definition site keeps a stable identity.
        assert kernel_id(first()) == kernel_id(first())

    def test_kernel_id_rejects_non_callable(self):
        with pytest.raises(TypeError):
            kernel_id(42)

    def test_bucket_extent_next_pow2(self):
        assert bucket_extent(1000) == "1024"
        assert bucket_extent(1024) == "1024"
        assert bucket_extent((3, 100)) == "4x128"
        assert bucket_extent(1) == "1"

    def test_same_bucket_same_key(self):
        dev = get_dev_by_idx(AccCpuSerial)
        k1 = TuningCache.key(_kernel_a, AccCpuSerial, dev, 513)
        k2 = TuningCache.key(_kernel_a, AccCpuSerial, dev, 1024)
        k3 = TuningCache.key(_kernel_a, AccCpuSerial, dev, 512)
        assert k1 == k2
        assert k1 != k3

    def test_fingerprint_distinguishes_devices(self):
        cpu = get_dev_by_idx(AccCpuSerial)
        gpu = get_dev_by_idx(AccGpuCudaSim)
        assert device_fingerprint(cpu) != device_fingerprint(gpu)

    def test_key_distinguishes_backends(self):
        cpu = get_dev_by_idx(AccCpuSerial)
        gpu = get_dev_by_idx(AccGpuCudaSim)
        assert TuningCache.key(_kernel_a, AccCpuSerial, cpu, 64) != TuningCache.key(
            _kernel_a, AccGpuCudaSim, gpu, 64
        )


class TestPersistence:
    def test_serialize_reload_hit(self, tmp_path):
        path = str(tmp_path / "c.json")
        dev = get_dev_by_idx(AccCpuSerial)
        cache = TuningCache(path)
        cache.put(_kernel_a, AccCpuSerial, dev, 1000, ENTRY)
        cache.save()

        reloaded = TuningCache(path)
        hit = reloaded.get(_kernel_a, AccCpuSerial, dev, 700)  # same bucket
        assert hit is not None
        assert hit.work_div == WD
        assert hit.seconds == ENTRY.seconds
        assert hit.strategy == "exhaustive"
        assert hit.source == "modeled"

    def test_miss_on_other_kernel_and_extent(self, tmp_path):
        path = str(tmp_path / "c.json")
        dev = get_dev_by_idx(AccCpuSerial)
        cache = TuningCache(path)
        cache.put(_kernel_a, AccCpuSerial, dev, 1000, ENTRY)
        assert cache.get(_kernel_b, AccCpuSerial, dev, 1000) is None
        assert cache.get(_kernel_a, AccCpuSerial, dev, 4096) is None

    def test_missing_file_is_empty_and_silent(self, tmp_path):
        cache = TuningCache(str(tmp_path / "absent.json"))
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any warning fails the test
            assert len(cache) == 0

    def test_corrupt_file_warns_and_starts_fresh(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text("{ not json !!!")
        cache = TuningCache(str(path))
        with pytest.warns(RuntimeWarning, match="corrupt or truncated"):
            assert len(cache) == 0

    def test_wrong_version_warns_and_starts_fresh(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text(json.dumps({"version": 999, "entries": {"k": {}}}))
        with pytest.warns(RuntimeWarning, match="unrecognised schema"):
            assert len(TuningCache(str(path))) == 0

    def test_corrupt_file_is_usable_and_save_repairs_it(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text("]]] total rot")
        dev = get_dev_by_idx(AccCpuSerial)
        cache = TuningCache(str(path))
        with pytest.warns(RuntimeWarning):
            cache.put(_kernel_a, AccCpuSerial, dev, 64, ENTRY)
        cache.save()
        data = json.loads(path.read_text())
        assert data["version"] >= 1
        assert len(data["entries"]) == 1

    def test_rotten_entry_skipped_others_kept(self, tmp_path):
        path = str(tmp_path / "c.json")
        dev = get_dev_by_idx(AccCpuSerial)
        cache = TuningCache(path)
        cache.put(_kernel_a, AccCpuSerial, dev, 64, ENTRY)
        cache.save()
        data = json.loads(open(path).read())
        data["entries"]["bad|key"] = {"grid": "nonsense"}
        open(path, "w").write(json.dumps(data))
        reloaded = TuningCache(path)
        assert len(reloaded) == 1
        assert reloaded.get(_kernel_a, AccCpuSerial, dev, 64) is not None

    def test_save_is_atomic_no_temp_left_behind(self, tmp_path):
        path = str(tmp_path / "c.json")
        dev = get_dev_by_idx(AccCpuSerial)
        cache = TuningCache(path)
        cache.put(_kernel_a, AccCpuSerial, dev, 64, ENTRY)
        cache.save()
        leftovers = [f for f in os.listdir(tmp_path) if f.endswith(".tmp")]
        assert leftovers == []
        assert json.loads(open(path).read())["version"] >= 1

    def test_clear_forgets_entries(self, tmp_path):
        dev = get_dev_by_idx(AccCpuSerial)
        cache = TuningCache(str(tmp_path / "c.json"))
        cache.put(_kernel_a, AccCpuSerial, dev, 64, ENTRY)
        cache.clear()
        assert cache.get(_kernel_a, AccCpuSerial, dev, 64) is None


class TestRawKeyAPI:
    def test_put_key_get_key_roundtrip(self, tmp_path):
        cache = TuningCache(str(tmp_path / "c.json"))
        cache.put_key("raw|key", ENTRY)
        assert cache.get_key("raw|key") == ENTRY
        assert "raw|key" in cache

    def test_entries_snapshot_is_a_copy(self, tmp_path):
        cache = TuningCache(str(tmp_path / "c.json"))
        cache.put_key("a", ENTRY)
        snap = cache.entries_snapshot()
        snap.clear()
        assert cache.get_key("a") == ENTRY

    def test_put_key_bumps_the_tuning_generation(self, tmp_path):
        from repro.tuning.cache import tuning_generation

        cache = TuningCache(str(tmp_path / "c.json"))
        before = tuning_generation()
        cache.put_key("a", ENTRY)
        assert tuning_generation() > before


class TestMergeOnWrite:
    """Regression: the pre-fleet save was read-modify-write from memory
    only — two processes tuning different kernels silently dropped each
    other's entries (last writer wins)."""

    def _entry(self, blocks):
        return CachedResult(
            work_div=WorkDivMembers.make(blocks, 1, 8),
            seconds=1e-6,
            strategy="exhaustive",
            source="modeled",
        )

    def test_two_writers_keep_both_entries(self, tmp_path):
        path = str(tmp_path / "c.json")
        # Both "processes" load the (empty) file before either saves.
        a, b = TuningCache(path), TuningCache(path)
        len(a), len(b)
        a.put_key("kernel-a", self._entry(2))
        a.save()
        b.put_key("kernel-b", self._entry(4))
        b.save()  # must merge kernel-a back in, not clobber it
        final = TuningCache(path)
        assert final.get_key("kernel-a") is not None
        assert final.get_key("kernel-b") is not None

    def test_conflicting_key_favours_the_writers_own_entry(self, tmp_path):
        path = str(tmp_path / "c.json")
        a, b = TuningCache(path), TuningCache(path)
        len(a), len(b)
        a.put_key("k", self._entry(2))
        a.save()
        b.put_key("k", self._entry(4))
        b.save()
        # B measured most recently from its own point of view.
        assert TuningCache(path).get_key("k").work_div.grid_block_extent[0] == 4

    def test_clear_then_save_does_not_resurrect_disk_entries(self, tmp_path):
        path = str(tmp_path / "c.json")
        cache = TuningCache(path)
        cache.put_key("k", self._entry(2))
        cache.save()
        cache.clear()
        cache.save()
        assert len(TuningCache(path)) == 0

    def test_reload_adopts_sibling_entries(self, tmp_path):
        path = str(tmp_path / "c.json")
        a, b = TuningCache(path), TuningCache(path)
        len(b)  # load before the sibling writes
        a.put_key("k", self._entry(2))
        a.save()
        assert b.get_key("k") is None  # stale in-memory view
        assert b.reload() == 1
        assert b.get_key("k") is not None

    def test_reload_never_drops_unsaved_local_entries(self, tmp_path):
        path = str(tmp_path / "c.json")
        a, b = TuningCache(path), TuningCache(path)
        b.put_key("local", self._entry(2))  # not yet saved
        a.put_key("remote", self._entry(4))
        a.save()
        b.reload()
        assert b.get_key("local") is not None
        assert b.get_key("remote") is not None

    def test_concurrent_writer_processes_lose_nothing(self, tmp_path):
        """Four real processes save distinct keys into one file at the
        same time; the advisory file lock must keep all four."""
        path = str(tmp_path / "c.json")
        script = tmp_path / "writer.py"
        script.write_text(
            "import sys\n"
            "from repro.core.workdiv import WorkDivMembers\n"
            "from repro.tuning import CachedResult, TuningCache\n"
            "idx = int(sys.argv[1])\n"
            "cache = TuningCache(sys.argv[2])\n"
            "entry = CachedResult(\n"
            "    work_div=WorkDivMembers.make(idx + 1, 1, 8),\n"
            "    seconds=1e-6, strategy='exhaustive', source='modeled')\n"
            "for round in range(5):\n"
            "    cache.put_key(f'kernel-{idx}-{round}', entry)\n"
            "    cache.save()\n"
        )
        repo = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p
            for p in (os.path.join(repo, "src"), env.get("PYTHONPATH"))
            if p
        )
        procs = [
            subprocess.Popen(
                [sys.executable, str(script), str(i), path],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                env=env,
                text=True,
            )
            for i in range(4)
        ]
        for p in procs:
            _, err = p.communicate(timeout=120)
            assert p.returncode == 0, err
        final = TuningCache(path)
        assert len(final) == 20  # 4 writers x 5 rounds, nothing dropped


class TestMeasuredAtArbitration:
    """Regression: merge-on-write used to let the in-memory entry win
    every conflict, so a sibling process whose cache lagged a drift
    re-tune wrote the stale entry back over the fresh one on its next
    save(); reload() conversely clobbered newer unsaved local entries.
    ``measured_at`` now arbitrates both ways: the newest measurement
    wins, ties keep the in-memory entry."""

    def _entry(self, blocks, measured_at=0.0):
        return CachedResult(
            work_div=WorkDivMembers.make(blocks, 1, 8),
            seconds=1e-6,
            strategy="exhaustive",
            source="modeled",
            measured_at=measured_at,
        )

    def _grid(self, cache, key):
        return cache.get_key(key).work_div.grid_block_extent[0]

    def test_measured_at_roundtrips_through_the_file(self, tmp_path):
        path = str(tmp_path / "c.json")
        cache = TuningCache(path)
        cache.put_key("k", self._entry(2, measured_at=123.25))
        cache.save()
        assert TuningCache(path).get_key("k").measured_at == 123.25

    def test_legacy_entries_read_as_unstamped(self, tmp_path):
        path = str(tmp_path / "c.json")
        cache = TuningCache(path)
        cache.put_key("k", self._entry(2))  # measured_at=0.0 not written
        cache.save()
        assert "measured_at" not in json.loads(open(path).read())["entries"]["k"]
        assert TuningCache(path).get_key("k").measured_at == 0.0

    def test_save_does_not_resurrect_a_stale_entry_over_a_retune(self, tmp_path):
        path = str(tmp_path / "c.json")
        a, b = TuningCache(path), TuningCache(path)
        a.put_key("k", self._entry(2, measured_at=100.0))
        a.save()
        b.reload()  # the sibling adopted the original tune
        a.put_key("k", self._entry(8, measured_at=200.0))  # drift re-tune
        a.save()
        b.save()  # the sibling's stale in-memory entry must NOT win
        assert self._grid(TuningCache(path), "k") == 8
        assert self._grid(b, "k") == 8  # ...and b itself adopted the re-tune

    def test_save_keeps_the_writers_newer_measurement(self, tmp_path):
        path = str(tmp_path / "c.json")
        a, b = TuningCache(path), TuningCache(path)
        len(a), len(b)
        a.put_key("k", self._entry(2, measured_at=100.0))
        a.save()
        b.put_key("k", self._entry(4, measured_at=200.0))
        b.save()
        assert self._grid(TuningCache(path), "k") == 4

    def test_reload_does_not_clobber_a_newer_inmemory_entry(self, tmp_path):
        path = str(tmp_path / "c.json")
        a, b = TuningCache(path), TuningCache(path)
        a.put_key("k", self._entry(2, measured_at=100.0))
        a.save()
        b.put_key("k", self._entry(8, measured_at=200.0))  # fresher, unsaved
        b.reload()
        assert self._grid(b, "k") == 8

    def test_reload_adopts_a_newer_disk_entry(self, tmp_path):
        path = str(tmp_path / "c.json")
        a, b = TuningCache(path), TuningCache(path)
        b.put_key("k", self._entry(2, measured_at=100.0))
        a.put_key("k", self._entry(8, measured_at=200.0))
        a.save()
        assert b.reload() == 1
        assert self._grid(b, "k") == 8


class TestEnvOverride:
    def test_env_var_moves_default_path(self, monkeypatch, tmp_path):
        target = str(tmp_path / "elsewhere" / "cache.json")
        monkeypatch.setenv(TUNING_CACHE_ENV, target)
        reset_default_cache()
        assert default_cache_path() == target
        assert default_cache().path == target

    def test_default_path_in_cwd_without_env(self, monkeypatch):
        monkeypatch.delenv(TUNING_CACHE_ENV, raising=False)
        assert default_cache_path() == os.path.join(
            os.getcwd(), ".repro-tuning-cache.json"
        )

    def test_default_cache_is_singleton(self):
        assert default_cache() is default_cache()
        reset_default_cache()
        # A new instance after reset, still pointing at the env path.
        assert default_cache() is default_cache()
