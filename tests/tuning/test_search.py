"""Search strategies, driven by synthetic objectives (no kernels)."""

import pytest

from repro.core.workdiv import WorkDivMembers
from repro.tuning import SEARCH_STRATEGIES, run_search
from repro.tuning.search import (
    coordinate_descent_search,
    exhaustive_search,
    random_search,
)


def _divisions(n):
    """n distinct 1-d divisions: blocks i+1, 1 thread, 1 elem."""
    return [WorkDivMembers.make(i + 1, 1, 1) for i in range(n)]


def _objective_min_at(target):
    def obj(wd):
        return abs(wd.grid_block_extent[0] - target) + 1.0

    return obj


class TestExhaustive:
    def test_finds_global_minimum(self):
        cands = _divisions(20)
        res = exhaustive_search(cands, _objective_min_at(13))
        assert res.best.work_div.grid_block_extent[0] == 13
        assert res.measurements == 20
        assert res.strategy == "exhaustive"

    def test_budget_caps_measurements(self):
        cands = _divisions(20)
        res = exhaustive_search(cands, _objective_min_at(3), budget=5)
        assert res.measurements == 5

    def test_inf_candidates_skipped_for_best(self):
        cands = _divisions(5)

        def obj(wd):
            return float("inf") if wd.grid_block_extent[0] != 2 else 1.0

        res = exhaustive_search(cands, obj)
        assert res.best.work_div.grid_block_extent[0] == 2

    def test_all_inf_raises(self):
        with pytest.raises(RuntimeError):
            exhaustive_search(_divisions(3), lambda wd: float("inf"))


class TestRandom:
    def test_deterministic_for_seed(self):
        cands = _divisions(50)
        r1 = random_search(cands, _objective_min_at(7), budget=10, seed=42)
        r2 = random_search(cands, _objective_min_at(7), budget=10, seed=42)
        assert [t.work_div for t in r1.trials] == [t.work_div for t in r2.trials]

    def test_different_seeds_differ(self):
        cands = _divisions(50)
        r1 = random_search(cands, _objective_min_at(7), budget=10, seed=1)
        r2 = random_search(cands, _objective_min_at(7), budget=10, seed=2)
        assert [t.work_div for t in r1.trials] != [t.work_div for t in r2.trials]

    def test_seeds_always_measured(self):
        cands = _divisions(50)
        res = random_search(cands, _objective_min_at(30), seeds=3, budget=5)
        measured = [t.work_div for t in res.trials]
        assert cands[0] in measured
        assert cands[1] in measured
        assert cands[2] in measured
        assert res.measurements == 5

    def test_no_budget_measures_everything(self):
        cands = _divisions(12)
        res = random_search(cands, _objective_min_at(5))
        assert res.measurements == 12
        assert res.best.work_div.grid_block_extent[0] == 5


class TestCoordinateDescent:
    def _grid(self):
        """2-knob space: blocks fixed, (threads, elems) in a grid."""
        out = []
        for b in (1, 2, 4, 8, 16):
            for v in (1, 2, 4, 8, 16):
                out.append(WorkDivMembers.make(4, b, v))
        return out

    def test_converges_to_separable_minimum(self):
        cands = self._grid()

        def obj(wd):
            b = wd.block_thread_extent[0]
            v = wd.thread_elem_extent[0]
            return (b - 8) ** 2 + (v - 2) ** 2 + 1.0

        res = coordinate_descent_search(cands, obj, seeds=1)
        assert res.best.work_div.block_thread_extent[0] == 8
        assert res.best.work_div.thread_elem_extent[0] == 2
        # Descent must beat exhaustive cost on a separable landscape.
        assert res.measurements < len(cands)

    def test_budget_respected(self):
        cands = self._grid()
        res = coordinate_descent_search(
            cands, lambda wd: float(wd.block_thread_count), budget=6
        )
        assert res.measurements <= 6


class TestPruning:
    def test_predicted_slow_candidates_pruned(self):
        cands = _divisions(10)
        predicted = {wd: 1.0 for wd in cands[:5]}
        for wd in cands[5:]:
            predicted[wd] = 1e6  # hopeless per the model
        measured = []

        def obj(wd):
            measured.append(wd)
            return 1.0

        res = exhaustive_search(cands, obj, predicted=predicted)
        assert res.pruned == 5
        assert len(measured) == 5

    def test_seeds_exempt_from_pruning(self):
        cands = _divisions(10)
        predicted = {wd: 1e9 for wd in cands}
        predicted[cands[5]] = 1.0
        res = exhaustive_search(
            cands, lambda wd: 1.0, seeds=2, predicted=predicted
        )
        measured = [t.work_div for t in res.trials]
        assert cands[0] in measured and cands[1] in measured

    def test_unpredicted_candidates_survive(self):
        cands = _divisions(10)
        predicted = {cands[3]: 1.0}
        res = exhaustive_search(cands, lambda wd: 1.0, predicted=predicted)
        assert res.pruned == 0
        assert res.measurements == 10

    def test_unpredicted_candidates_measure_after_predicted(self):
        """A budgeted search must spend its measurements on the
        model-ranked candidates first, not on unpredicted ones."""
        cands = _divisions(10)
        predicted = {cands[7]: 1.0, cands[8]: 2.0}
        measured = []

        def obj(wd):
            measured.append(wd)
            return 1.0

        exhaustive_search(cands, obj, budget=2, predicted=predicted)
        assert measured == [cands[7], cands[8]]


class TestDispatch:
    def test_known_strategies(self):
        # "evolve" registers lazily when repro.tuning.fleet is imported
        # (run_search loads it on first demand), so it may or may not be
        # present depending on what ran before this test.
        assert {"exhaustive", "random", "coordinate"} <= set(SEARCH_STRATEGIES)
        assert set(SEARCH_STRATEGIES) <= {
            "exhaustive", "random", "coordinate", "evolve",
        }

    def test_evolve_registers_on_demand(self):
        res = run_search(
            "evolve",
            _divisions(6),
            _objective_min_at(3),
            budget=6,
            hof_path=None,
        )
        assert res.strategy == "evolve"
        assert "evolve" in SEARCH_STRATEGIES

    def test_run_search_dispatches(self):
        res = run_search("exhaustive", _divisions(4), _objective_min_at(2))
        assert res.strategy == "exhaustive"

    def test_unknown_strategy_raises(self):
        with pytest.raises(ValueError, match="unknown search strategy"):
            run_search("genetic", _divisions(2), _objective_min_at(1))
