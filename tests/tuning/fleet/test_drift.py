"""Drift detection and the background re-tune loop (no kernels)."""

import threading
import time

from repro.tuning.fleet.config import FleetConfig
from repro.tuning.fleet.drift import DriftMonitor, WorkloadStats


def _cfg(**kwargs):
    defaults = dict(
        drift_window=4,
        drift_threshold=1.5,
        drift_ewma_alpha=0.9,
        drift_cooldown=0.0,
    )
    defaults.update(kwargs)
    return FleetConfig(**defaults)


class TestWorkloadStats:
    def test_no_verdict_before_full_window(self):
        s = WorkloadStats(window=8, alpha=0.5)
        for _ in range(7):
            s.observe(1.0)
        assert s.baseline_median is None
        assert not s.drifted(1.5)

    def test_baseline_set_at_first_full_window(self):
        s = WorkloadStats(window=8, alpha=0.5)
        for _ in range(8):
            s.observe(1.0)
        assert s.baseline_median == 1.0
        assert s.baseline_p95 == 1.0

    def test_steady_latency_never_drifts(self):
        s = WorkloadStats(window=8, alpha=0.5)
        for _ in range(100):
            s.observe(1.0)
        assert not s.drifted(1.5)

    def test_sustained_shift_trips_the_ewma_test(self):
        s = WorkloadStats(window=8, alpha=0.5)
        for _ in range(8):
            s.observe(1.0)
        for _ in range(8):
            s.observe(2.0)  # 2x the baseline, threshold 1.5x
        assert s.drifted(1.5)

    def test_fat_tail_trips_the_percentile_test(self):
        # alpha tiny: the EWMA barely moves, only the p95 can fire.
        s = WorkloadStats(window=8, alpha=0.01)
        for _ in range(8):
            s.observe(1.0)
        for _ in range(7):
            s.observe(1.0)
        s.observe(10.0)  # one spike fattens the window p95
        assert s.ewma < 1.5  # the mean test alone would stay silent
        assert s.drifted(1.5)

    def test_reset_requires_a_new_baseline(self):
        s = WorkloadStats(window=4, alpha=0.5)
        for _ in range(8):
            s.observe(1.0)
        s.reset()
        assert s.baseline_median is None
        for _ in range(4):
            s.observe(5.0)
        # 5.0 is the *new* normal after a re-tune, not drift.
        assert s.baseline_median == 5.0
        assert not s.drifted(1.5)


class TestDriftMonitor:
    def _drive(self, monitor, workload="axpy", base=0.001, factor=4.0, n=12):
        for _ in range(monitor.config.drift_window):
            monitor.observe(workload, base)
        for _ in range(n):
            monitor.observe(workload, base * factor)

    def test_drift_triggers_one_background_retune(self):
        calls = []
        fired = threading.Event()

        def retune(workload):
            calls.append(workload)
            fired.set()

        mon = DriftMonitor(retune, _cfg())
        self._drive(mon)
        assert fired.wait(timeout=5.0)
        assert mon.wait_idle(timeout=5.0)
        assert calls == ["axpy"]
        mon.close()

    def test_observe_never_runs_the_retune_inline(self):
        observer_thread = threading.current_thread()
        seen = []
        fired = threading.Event()

        def retune(workload):
            seen.append(threading.current_thread())
            fired.set()

        mon = DriftMonitor(retune, _cfg())
        self._drive(mon)
        assert fired.wait(timeout=5.0)
        mon.wait_idle(timeout=5.0)
        assert seen and seen[0] is not observer_thread
        mon.close()

    def test_stats_reset_after_retune(self):
        # Hold the re-tune open until every observation is delivered, so
        # no trailing sample can rebuild the baseline after the reset.
        fired = threading.Event()
        release = threading.Event()

        def retune(workload):
            fired.set()
            release.wait(timeout=5.0)

        mon = DriftMonitor(retune, _cfg())
        self._drive(mon)
        assert fired.wait(timeout=5.0)
        release.set()
        assert mon.wait_idle(timeout=5.0)
        snap = mon.snapshot()["axpy"]
        assert snap["baseline_median"] is None  # earns a fresh baseline
        assert not snap["retuning"]
        mon.close()

    def test_cooldown_suppresses_back_to_back_retunes(self):
        calls = []
        fired = threading.Event()

        def retune(workload):
            calls.append(workload)
            fired.set()

        mon = DriftMonitor(retune, _cfg(drift_cooldown=3600.0))
        self._drive(mon)
        assert fired.wait(timeout=5.0)
        assert mon.wait_idle(timeout=5.0)
        # Re-baseline low, drift again: still inside the cooldown.
        self._drive(mon)
        time.sleep(0.1)
        mon.wait_idle(timeout=5.0)
        assert calls == ["axpy"]
        mon.close()

    def test_failing_retune_does_not_kill_the_monitor(self):
        fired = threading.Event()

        def retune(workload):
            fired.set()
            raise RuntimeError("device fell off the bus")

        mon = DriftMonitor(retune, _cfg())
        self._drive(mon)
        assert fired.wait(timeout=5.0)
        assert mon.wait_idle(timeout=5.0)
        # Still observing and still able to detect again later.
        mon.observe("axpy", 0.001)
        assert mon.snapshot()["axpy"]["samples"] > 0
        mon.close()

    def test_workloads_are_tracked_independently(self):
        calls = []
        fired = threading.Event()

        def retune(workload):
            calls.append(workload)
            fired.set()

        mon = DriftMonitor(retune, _cfg())
        for _ in range(20):
            mon.observe("scale", 0.001)  # steady; must never re-tune
        self._drive(mon, workload="axpy")
        assert fired.wait(timeout=5.0)
        mon.wait_idle(timeout=5.0)
        assert calls == ["axpy"]
        assert set(mon.snapshot()) == {"axpy", "scale"}
        mon.close()

    def test_closed_monitor_ignores_observations(self):
        calls = []
        mon = DriftMonitor(calls.append, _cfg())
        mon.close()
        self._drive(mon)
        assert calls == []
        assert mon.snapshot() == {}
