"""Fleet configuration: mode/address parsing and the env surface."""

import pytest

from repro.core.errors import TuningFleetError
from repro.tuning.fleet.config import (
    DEFAULT_DAEMON_PORT,
    DRIFT_BUDGET_ENV,
    DRIFT_COOLDOWN_ENV,
    DRIFT_EWMA_ENV,
    DRIFT_THRESHOLD_ENV,
    DRIFT_WINDOW_ENV,
    FLEET_ADDR_ENV,
    FLEET_ENV,
    FleetConfig,
    FleetConfigError,
    fleet_config_from_env,
    parse_addr,
    parse_fleet_mode,
)


class TestParseMode:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            (None, "off"),
            ("", "off"),
            ("0", "off"),
            ("off", "off"),
            ("no", "off"),
            ("1", "lock"),
            ("lock", "lock"),
            ("file", "lock"),
            ("FLOCK", "lock"),
            ("daemon", "daemon"),
            ("socket", "daemon"),
            ("  Serve  ", "daemon"),
        ],
    )
    def test_aliases(self, raw, expected):
        assert parse_fleet_mode(raw) == expected

    def test_garbage_raises(self):
        with pytest.raises(FleetConfigError, match="off|lock|daemon"):
            parse_fleet_mode("cluster")


class TestParseAddr:
    def test_host_and_port(self):
        assert parse_addr("10.0.0.3:9000") == ("10.0.0.3", 9000)

    def test_bare_host_gets_default_port(self):
        assert parse_addr("tuner.local") == ("tuner.local", DEFAULT_DAEMON_PORT)

    def test_bare_port_gets_loopback(self):
        assert parse_addr(":9001") == ("127.0.0.1", 9001)

    def test_non_integer_port_raises(self):
        with pytest.raises(FleetConfigError, match="not an integer"):
            parse_addr("host:http")

    def test_out_of_range_port_raises(self):
        with pytest.raises(FleetConfigError, match="out of range"):
            parse_addr("host:70000")


class TestFleetConfig:
    def test_defaults_are_off(self):
        cfg = FleetConfig()
        assert cfg.mode == "off"
        assert cfg.addr == ("127.0.0.1", DEFAULT_DAEMON_PORT)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": "cluster"},
            {"port": -1},
            {"lease_timeout": 0},
            {"wait_timeout": -1.0},
            {"io_timeout": 0},
            {"poll_interval": 0},
            {"drift_threshold": 1.0},
            {"drift_window": 3},
            {"drift_ewma_alpha": 0.0},
            {"drift_ewma_alpha": 1.5},
            {"drift_cooldown": -1},
            {"drift_budget": 0},
        ],
    )
    def test_invalid_values_raise(self, kwargs):
        with pytest.raises(FleetConfigError):
            FleetConfig(**kwargs)

    def test_error_type_is_catchable_both_ways(self):
        with pytest.raises(TuningFleetError):
            FleetConfig(mode="cluster")
        with pytest.raises(ValueError):
            FleetConfig(mode="cluster")

    def test_with_overrides_rejects_unknown_field(self):
        with pytest.raises(FleetConfigError):
            FleetConfig().with_overrides(banana=1)


class TestFromEnv:
    def test_unset_env_is_off(self, monkeypatch):
        monkeypatch.delenv(FLEET_ENV, raising=False)
        assert fleet_config_from_env().mode == "off"

    def test_mode_and_addr(self, monkeypatch):
        monkeypatch.setenv(FLEET_ENV, "daemon")
        monkeypatch.setenv(FLEET_ADDR_ENV, "127.0.0.1:7777")
        cfg = fleet_config_from_env()
        assert cfg.mode == "daemon"
        assert cfg.addr == ("127.0.0.1", 7777)

    def test_drift_family(self, monkeypatch):
        monkeypatch.setenv(DRIFT_THRESHOLD_ENV, "2.5")
        monkeypatch.setenv(DRIFT_WINDOW_ENV, "16")
        monkeypatch.setenv(DRIFT_COOLDOWN_ENV, "5")
        monkeypatch.setenv(DRIFT_BUDGET_ENV, "4")
        monkeypatch.setenv(DRIFT_EWMA_ENV, "0.5")
        cfg = fleet_config_from_env()
        assert cfg.drift_threshold == 2.5
        assert cfg.drift_window == 16
        assert cfg.drift_cooldown == 5.0
        assert cfg.drift_budget == 4
        assert cfg.drift_ewma_alpha == 0.5

    def test_base_survives_where_env_is_silent(self, monkeypatch):
        monkeypatch.delenv(FLEET_ENV, raising=False)
        base = FleetConfig(mode="lock", wait_timeout=7.0)
        cfg = fleet_config_from_env(base)
        assert cfg.mode == "lock"  # env unset leaves the base mode alone
        assert cfg.wait_timeout == 7.0

    def test_bad_number_raises(self, monkeypatch):
        monkeypatch.setenv(DRIFT_WINDOW_ENV, "many")
        with pytest.raises(FleetConfigError, match=DRIFT_WINDOW_ENV):
            fleet_config_from_env()
