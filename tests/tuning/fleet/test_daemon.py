"""The fleet daemon and its JSON-lines client, exercised in-process."""

import threading
import time

import pytest

from repro.core.errors import TuningFleetError
from repro.core.vec import Vec
from repro.core.workdiv import WorkDivMembers
from repro.tuning import TuningCache
from repro.tuning.cache import CachedResult
from repro.tuning.fleet.client import FleetClient
from repro.tuning.fleet.config import FleetConfig
from repro.tuning.fleet.daemon import FleetDaemon

KEY = "k|AccCpuSerial|m:cpu:1x4@3GHz|512"
ENTRY = CachedResult(
    work_div=WorkDivMembers(Vec(4), Vec(2), Vec(8)),
    seconds=1.25e-6,
    strategy="exhaustive",
    source="modeled",
    schedule="pooled",
)


@pytest.fixture()
def daemon(tmp_path):
    d = FleetDaemon(
        FleetConfig(mode="daemon", lease_timeout=30.0, wait_timeout=10.0),
        cache_path=str(tmp_path / "daemon-cache.json"),
        host="127.0.0.1",
        port=0,
    )
    d.start()
    yield d
    d.shutdown()


@pytest.fixture()
def client(daemon):
    cfg = FleetConfig(
        mode="daemon", host=daemon.host, port=daemon.port, io_timeout=5.0
    )
    c = FleetClient(cfg)
    yield c
    c.close()


def _second_client(daemon):
    return FleetClient(
        FleetConfig(
            mode="daemon", host=daemon.host, port=daemon.port, io_timeout=5.0
        )
    )


class TestOps:
    def test_ping(self, client):
        assert client.ping()

    def test_get_miss(self, client):
        assert client.get(KEY) is None

    def test_put_then_get_roundtrips_the_entry(self, client):
        client.put(KEY, ENTRY)
        got = client.get(KEY)
        assert got == ENTRY  # work div, seconds, strategy, schedule intact

    def test_put_persists_atomically(self, daemon, client):
        client.put(KEY, ENTRY)
        # A cold cache object reading the daemon's file sees the entry.
        fresh = TuningCache(daemon.cache.path)
        assert fresh.get_key(KEY) == ENTRY

    def test_stats_shape(self, client):
        client.put(KEY, ENTRY)
        stats = client.stats()
        assert stats["entries"] == 1
        assert stats["leases"] == 0
        assert stats["ops"]["put"] == 1
        assert stats["uptime"] >= 0
        assert stats["cache_path"]

    def test_unknown_op_rejected_but_connection_survives(self, client):
        with pytest.raises(TuningFleetError, match="unknown op"):
            client._roundtrip({"op": "explode"})
        assert client.ping()  # same socket still serves


class TestLeases:
    def test_exactly_one_winner(self, daemon, client):
        other = _second_client(daemon)
        try:
            token = client.lease(KEY)
            assert token
            assert other.lease(KEY) is None
        finally:
            other.close()

    def test_lease_on_cached_key_is_denied(self, client):
        client.put(KEY, ENTRY)
        assert client.lease(KEY) is None  # nothing left to measure

    def test_release_reopens_the_race(self, client):
        token = client.lease(KEY)
        client.release(KEY, token)
        assert client.lease(KEY)

    def test_put_with_token_clears_the_lease(self, daemon, client):
        token = client.lease(KEY)
        client.put(KEY, ENTRY, token=token)
        assert client.stats()["leases"] == 0

    def test_put_without_token_leaves_the_active_lease_alone(self, daemon, client):
        """Regression: an uncoordinated publish (token=None, e.g. a
        tune_schedule re-measure) used to cancel the measuring holder's
        lease."""
        holder = _second_client(daemon)
        try:
            token = holder.lease(KEY)
            assert token
            client.put(KEY, ENTRY)  # no token: not the holder's publish
            assert client.stats()["leases"] == 1  # holder keeps measuring
            holder.put(KEY, ENTRY, token=token)  # its own publish clears
            assert client.stats()["leases"] == 0
        finally:
            holder.close()

    def test_renew_extends_a_held_lease(self, tmp_path):
        d = FleetDaemon(
            FleetConfig(mode="daemon", lease_timeout=0.4),
            cache_path=str(tmp_path / "c.json"),
            host="127.0.0.1",
            port=0,
        )
        d.start()
        cfg = FleetConfig(
            mode="daemon", host=d.host, port=d.port, io_timeout=5.0
        )
        holder, other = FleetClient(cfg), FleetClient(cfg)
        try:
            token = holder.lease(KEY)
            assert token
            # Heartbeat well past the original 0.4 s deadline...
            for _ in range(4):
                time.sleep(0.15)
                assert holder.renew(KEY, token)
            # ...and the lease is still held, not expired and re-granted.
            assert other.lease(KEY) is None
        finally:
            holder.close()
            other.close()
            d.shutdown()

    def test_renew_with_wrong_token_is_refused(self, client):
        token = client.lease(KEY)
        assert token
        assert not client.renew(KEY, "not-the-token")
        assert not client.renew("never|leased|key", token)

    def test_expired_lease_stops_blocking(self, tmp_path):
        d = FleetDaemon(
            FleetConfig(mode="daemon", lease_timeout=0.2),
            cache_path=str(tmp_path / "c.json"),
            host="127.0.0.1",
            port=0,
        )
        d.start()
        c = FleetClient(
            FleetConfig(mode="daemon", host=d.host, port=d.port, io_timeout=5.0)
        )
        try:
            assert c.lease(KEY)
            time.sleep(0.3)
            assert c.lease(KEY)  # the dead worker's lease expired
        finally:
            c.close()
            d.shutdown()


class TestWait:
    def test_wait_resolves_on_publish(self, daemon, client):
        publisher = _second_client(daemon)
        token = publisher.lease(KEY)
        got = []
        t = threading.Thread(target=lambda: got.append(client.wait(KEY, 10.0)))
        t.start()
        try:
            time.sleep(0.05)
            publisher.put(KEY, ENTRY, token=token)
            t.join(timeout=5.0)
            assert got == [ENTRY]
        finally:
            publisher.close()

    def test_wait_returns_early_when_lease_abandoned(self, daemon, client):
        holder = _second_client(daemon)
        token = holder.lease(KEY)
        got = []
        t = threading.Thread(target=lambda: got.append(client.wait(KEY, 30.0)))
        t.start()
        try:
            time.sleep(0.05)
            started = time.monotonic()
            holder.release(KEY, token)
            t.join(timeout=5.0)
            assert got == [None]
            assert time.monotonic() - started < 5.0  # not the 30 s timeout
        finally:
            holder.close()

    def test_wait_without_any_lease_returns_immediately(self, client):
        started = time.monotonic()
        assert client.wait(KEY, 30.0) is None
        assert time.monotonic() - started < 5.0

    def test_wait_times_out_under_a_live_lease(self, daemon, client):
        holder = _second_client(daemon)
        holder.lease(KEY)
        try:
            started = time.monotonic()
            assert client.wait(KEY, 0.3) is None
            assert time.monotonic() - started >= 0.3
        finally:
            holder.close()


class TestClientFailureModes:
    def test_unreachable_daemon_raises_at_construction(self):
        cfg = FleetConfig(
            mode="daemon", host="127.0.0.1", port=1, io_timeout=0.5
        )
        with pytest.raises(TuningFleetError, match="unreachable"):
            FleetClient(cfg)

    def test_daemon_shutdown_surfaces_as_fleet_error(self, daemon):
        c = _second_client(daemon)
        daemon.shutdown()
        with pytest.raises(TuningFleetError):
            c.ping()
        # And the client stays closed rather than half-alive.
        with pytest.raises(TuningFleetError, match="closed"):
            c.ping()
