"""Lease sidecar files: exclusive create, stale break, liveness."""

import json
import os
import time

from repro.tuning.fleet.lock import LeaseFile, lease_path

KEY = "kernel|AccCpuSerial|machine:cpu:1x4@3GHz|1024"


def _leases(tmp_path, timeout=120.0):
    return LeaseFile(str(tmp_path / "cache.json"), timeout=timeout)


class TestAcquire:
    def test_first_acquire_wins(self, tmp_path):
        lf = _leases(tmp_path)
        lease = lf.try_acquire(KEY)
        assert lease is not None
        assert lease.key == KEY
        assert os.path.exists(lease.path)

    def test_body_records_pid_and_key(self, tmp_path):
        lf = _leases(tmp_path)
        lease = lf.try_acquire(KEY)
        body = json.loads(open(lease.path).read())
        assert body["pid"] == os.getpid()
        assert body["key"] == KEY

    def test_second_acquire_denied_while_held(self, tmp_path):
        lf = _leases(tmp_path)
        assert lf.try_acquire(KEY) is not None
        assert lf.try_acquire(KEY) is None

    def test_release_frees_the_lease(self, tmp_path):
        lf = _leases(tmp_path)
        lease = lf.try_acquire(KEY)
        lf.release(lease)
        assert not os.path.exists(lease.path)
        assert lf.try_acquire(KEY) is not None

    def test_release_is_idempotent(self, tmp_path):
        lf = _leases(tmp_path)
        lease = lf.try_acquire(KEY)
        lf.release(lease)
        lf.release(lease)  # must not raise

    def test_distinct_keys_do_not_contend(self, tmp_path):
        lf = _leases(tmp_path)
        assert lf.try_acquire("key-a") is not None
        assert lf.try_acquire("key-b") is not None


class TestStaleBreak:
    def test_stale_lease_is_broken_and_reacquired(self, tmp_path):
        lf = _leases(tmp_path, timeout=0.5)
        lease = lf.try_acquire(KEY)
        # Age the file past the timeout instead of sleeping.
        old = time.time() - 10.0
        os.utime(lease.path, (old, old))
        again = lf.try_acquire(KEY)
        assert again is not None

    def test_fresh_lease_is_not_broken(self, tmp_path):
        lf = _leases(tmp_path, timeout=60.0)
        assert lf.try_acquire(KEY) is not None
        assert lf.try_acquire(KEY) is None


class TestHolderAlive:
    def test_absent_lease_is_dead(self, tmp_path):
        assert not _leases(tmp_path).holder_alive(KEY)

    def test_fresh_lease_is_alive(self, tmp_path):
        lf = _leases(tmp_path)
        lf.try_acquire(KEY)
        assert lf.holder_alive(KEY)

    def test_stale_lease_is_dead(self, tmp_path):
        lf = _leases(tmp_path, timeout=0.5)
        lease = lf.try_acquire(KEY)
        old = time.time() - 10.0
        os.utime(lease.path, (old, old))
        assert not lf.holder_alive(KEY)


class TestTouch:
    """Regression: a live holder whose measurement outlasts the lease
    timeout had its lease broken by siblings; touch() is the heartbeat
    that keeps it alive."""

    def test_touch_keeps_a_long_measurement_alive(self, tmp_path):
        lf = _leases(tmp_path, timeout=0.5)
        lease = lf.try_acquire(KEY)
        old = time.time() - 10.0
        os.utime(lease.path, (old, old))  # would count as stale...
        assert lf.touch(lease)  # ...but the holder heartbeats
        assert lf.holder_alive(KEY)
        assert lf.try_acquire(KEY) is None  # siblings cannot break it

    def test_touch_reports_an_already_broken_lease(self, tmp_path):
        lf = _leases(tmp_path)
        lease = lf.try_acquire(KEY)
        os.unlink(lease.path)
        assert not lf.touch(lease)


class TestLeasePath:
    def test_stable_per_key(self):
        assert lease_path("/x/c.json", KEY) == lease_path("/x/c.json", KEY)

    def test_distinct_per_key(self):
        assert lease_path("/x/c.json", "a") != lease_path("/x/c.json", "b")

    def test_sits_next_to_the_cache(self, tmp_path):
        p = lease_path(str(tmp_path / "c.json"), KEY)
        assert p.startswith(str(tmp_path / "c.json"))
        assert p.endswith(".lease")
