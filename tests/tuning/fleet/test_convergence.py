"""End-to-end fleet convergence: 4 real worker processes autotune the
same (kernel, back-end, device, extent) and must produce exactly ONE
fleet-wide measurement run, with every worker ending on the winner's
division — in daemon mode and in file-lock-only mode."""

import json
import os
import subprocess
import sys

from repro.tuning import TuningCache
from repro.tuning.fleet.config import FLEET_ADDR_ENV, FLEET_ENV
from repro.tuning.fleet.daemon import FleetDaemon
from repro.tuning.fleet.config import FleetConfig

N_WORKERS = 4

# Every worker runs this same script, so the kernel's identity
# (module + qualname) is identical fleet-wide.
WORKER = """\
import json

from repro import AccCpuSerial, QueueBlocking, autotune, fn_acc, get_dev_by_idx, mem
from repro.mem import memset


class FleetKernel:
    @fn_acc
    def __call__(self, acc, n, out):
        from repro.core.element import independent_elements

        for i in independent_elements(acc, n):
            out[i[0]] = i[0] * 2.0


def main():
    acc = AccCpuSerial
    dev = get_dev_by_idx(acc)
    n = 256
    out = mem.alloc(dev, n)
    memset(QueueBlocking(dev), out, 0)
    res = autotune(
        FleetKernel(), acc, n, (n, out), device=dev,
        strategy="random", budget=3, max_block_threads=8,
    )
    print(json.dumps({
        "strategy": res.strategy,
        "measurements": res.measurements,
        "from_cache": res.from_cache,
        "block": list(res.work_div.block_thread_extent),
        "elems": list(res.work_div.thread_elem_extent),
        "key": res.cache_key,
    }))


main()
"""


def _spawn_workers(tmp_path, extra_env):
    script = tmp_path / "worker.py"
    script.write_text(WORKER)
    env = dict(os.environ)
    repo = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    )
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(repo, "src"), env.get("PYTHONPATH")) if p
    )
    env["REPRO_TUNING_CACHE"] = str(tmp_path / "shared-cache.json")
    env["REPRO_TUNING_HOF"] = str(tmp_path / "hof.json")
    env.update(extra_env)
    procs = [
        subprocess.Popen(
            [sys.executable, str(script)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            cwd=str(tmp_path),
            text=True,
        )
        for _ in range(N_WORKERS)
    ]
    results = []
    for p in procs:
        out, err = p.communicate(timeout=120)
        assert p.returncode == 0, f"worker failed:\n{err}\n{out}"
        results.append(json.loads(out.strip().splitlines()[-1]))
    return results


def _assert_converged(results, cache_path):
    # Exactly one full measurement run happened fleet-wide.
    measured = [r for r in results if r["measurements"] > 0]
    assert len(measured) == 1, results
    winner = measured[0]
    assert winner["strategy"] == "random"
    # Nobody fell back to the heuristic (the winner was fast enough),
    # and everyone ended on the winner's tuned division.
    for r in results:
        assert r["strategy"] in ("random", "fleet", "cache"), results
        assert r["key"] == winner["key"]
        assert r["block"] == winner["block"]
        assert r["elems"] == winner["elems"]
    # The shared cache holds the single winning entry.
    cache = TuningCache(cache_path)
    entry = cache.get_key(winner["key"])
    assert entry is not None
    assert list(entry.work_div.block_thread_extent) == winner["block"]


class TestConvergence:
    def test_file_lock_mode(self, tmp_path):
        results = _spawn_workers(tmp_path, {FLEET_ENV: "lock"})
        _assert_converged(results, str(tmp_path / "shared-cache.json"))

    def test_daemon_mode(self, tmp_path):
        daemon = FleetDaemon(
            FleetConfig(mode="daemon"),
            cache_path=str(tmp_path / "shared-cache.json"),
            host="127.0.0.1",
            port=0,
        )
        host, port = daemon.start()
        try:
            results = _spawn_workers(
                tmp_path,
                {FLEET_ENV: "daemon", FLEET_ADDR_ENV: f"{host}:{port}"},
            )
        finally:
            daemon.shutdown()
        _assert_converged(results, str(tmp_path / "shared-cache.json"))

    def test_daemon_unreachable_degrades_to_standalone(self, tmp_path):
        """A worker pointed at a dead daemon must still tune (the fleet
        only removes duplicate work; it is never a dependency)."""
        solo = tmp_path / "solo"
        solo.mkdir()
        results = _spawn_workers(
            solo, {FLEET_ENV: "daemon", FLEET_ADDR_ENV: "127.0.0.1:1"}
        )
        # Without coordination at least the first finisher measured for
        # itself (late starters may still hit the saved file)...
        assert any(r["measurements"] > 0 for r in results)
        # ...and merge-on-write leaves one coherent cache file behind.
        cache = TuningCache(str(solo / "shared-cache.json"))
        assert cache.get_key(results[0]["key"]) is not None
