"""Coordinator contract: fetch / lease / publish / wait across both
transports, plus the autotune() integration seams."""

import glob
import threading
import time

import pytest

from repro import AccCpuSerial, QueueBlocking, autotune, fn_acc, get_dev_by_idx
from repro.core.errors import TuningFleetError
from repro.core.vec import Vec
from repro.core.workdiv import WorkDivMembers
from repro.tuning import TuningCache
from repro.tuning.cache import CachedResult
from repro.tuning.fleet.config import FLEET_ENV, FleetConfig
from repro.tuning.fleet.coordinator import (
    DaemonCoordinator,
    FileLockCoordinator,
    maybe_coordinator,
    reset_coordinator,
)
from repro.tuning.fleet.daemon import FleetDaemon

KEY = "k|AccCpuSerial|m:cpu:1x4@3GHz|1024"
ENTRY = CachedResult(
    work_div=WorkDivMembers(Vec(8), Vec(1), Vec(4)),
    seconds=2e-6,
    strategy="random",
    source="modeled",
)


def _cfg(**kwargs):
    defaults = dict(mode="lock", wait_timeout=5.0, poll_interval=0.01)
    defaults.update(kwargs)
    return FleetConfig(**defaults)


def _pair(tmp_path, config=None):
    """Two coordinators over the same file = two worker processes."""
    cfg = config or _cfg()
    path = str(tmp_path / "cache.json")
    a = FileLockCoordinator(TuningCache(path), cfg)
    b = FileLockCoordinator(TuningCache(path), cfg)
    return a, b


class TestFileLock:
    def test_fetch_miss_then_published_hit(self, tmp_path):
        a, b = _pair(tmp_path)
        assert b.fetch(KEY) is None
        token = a.try_lease(KEY)
        assert token is not None
        a.publish(KEY, ENTRY, token=token)
        # B has its own TuningCache object: only a *fresh* read sees it.
        assert b.fetch(KEY) == ENTRY

    def test_only_one_lease_granted(self, tmp_path):
        a, b = _pair(tmp_path)
        assert a.try_lease(KEY) is not None
        assert b.try_lease(KEY) is None

    def test_publish_releases_the_lease(self, tmp_path):
        a, b = _pair(tmp_path)
        token = a.try_lease(KEY)
        a.publish(KEY, ENTRY, token=token)
        assert glob.glob(str(tmp_path / "*.lease")) == []

    def test_lease_after_publish_is_denied(self, tmp_path):
        """The post-acquire re-check: a worker whose cache view predates
        the winner's publish must not win the now-free lease and
        re-measure."""
        a, b = _pair(tmp_path)
        token = a.try_lease(KEY)
        a.publish(KEY, ENTRY, token=token)
        assert b.try_lease(KEY) is None
        assert b.cache.get_key(KEY) == ENTRY  # the re-check adopted it

    def test_wait_for_resolves_on_publish(self, tmp_path):
        a, b = _pair(tmp_path)
        token = a.try_lease(KEY)
        got = []

        def waiter():
            got.append(b.wait_for(KEY, timeout=5.0))

        t = threading.Thread(target=waiter)
        t.start()
        time.sleep(0.05)
        a.publish(KEY, ENTRY, token=token)
        t.join(timeout=5.0)
        assert got == [ENTRY]
        assert b.cache.get_key(KEY) == ENTRY

    def test_wait_for_abandoned_returns_early(self, tmp_path):
        a, b = _pair(tmp_path, _cfg(wait_timeout=30.0))
        token = a.try_lease(KEY)
        a.release(KEY, token)  # gave up without publishing
        started = time.monotonic()
        assert b.wait_for(KEY) is None
        assert time.monotonic() - started < 5.0  # no 30 s timeout ridden out

    def test_wait_for_times_out_while_holder_lives(self, tmp_path):
        a, b = _pair(tmp_path)
        a.try_lease(KEY)  # held, never published
        started = time.monotonic()
        assert b.wait_for(KEY, timeout=0.2) is None
        assert time.monotonic() - started >= 0.2

    def test_release_without_token_is_noop(self, tmp_path):
        a, _ = _pair(tmp_path)
        a.release(KEY, None)  # must not raise


class TestDaemonTransport:
    @pytest.fixture()
    def daemon(self, tmp_path):
        d = FleetDaemon(
            _cfg(mode="daemon"),
            cache_path=str(tmp_path / "daemon-cache.json"),
            host="127.0.0.1",
            port=0,
        )
        host, port = d.start()
        yield d, _cfg(mode="daemon", host=host, port=port)
        d.shutdown()

    def _coord(self, tmp_path, cfg, name):
        return DaemonCoordinator(TuningCache(str(tmp_path / name)), cfg)

    def test_lease_publish_fetch_roundtrip(self, tmp_path, daemon):
        _, cfg = daemon
        a = self._coord(tmp_path, cfg, "worker-a.json")
        b = self._coord(tmp_path, cfg, "worker-b.json")
        try:
            assert b.fetch(KEY) is None
            token = a.try_lease(KEY)
            assert token is not None
            assert b.try_lease(KEY) is None
            a.publish(KEY, ENTRY, token=token)
            assert b.fetch(KEY) == ENTRY
            # fetch() adopts: the launch path reads locally, no socket.
            assert b.cache.get_key(KEY) == ENTRY
        finally:
            a.close()
            b.close()

    def test_wait_for_is_push_not_poll(self, tmp_path, daemon):
        _, cfg = daemon
        a = self._coord(tmp_path, cfg, "worker-a.json")
        b = self._coord(tmp_path, cfg, "worker-b.json")
        try:
            token = a.try_lease(KEY)
            got = []
            t = threading.Thread(
                target=lambda: got.append(b.wait_for(KEY, timeout=10.0))
            )
            t.start()
            time.sleep(0.05)
            started = time.monotonic()
            a.publish(KEY, ENTRY, token=token)
            t.join(timeout=5.0)
            assert got == [ENTRY]
            # The waiter unblocked on the publish, not on a timeout.
            assert time.monotonic() - started < 5.0
        finally:
            a.close()
            b.close()


class TestMaybeCoordinator:
    def test_off_by_default(self, tmp_path):
        # conftest clears REPRO_TUNING_FLEET for every test.
        assert maybe_coordinator(TuningCache(str(tmp_path / "c.json"))) is None

    def test_lock_mode_from_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(FLEET_ENV, "lock")
        cache = TuningCache(str(tmp_path / "c.json"))
        coord = maybe_coordinator(cache)
        assert isinstance(coord, FileLockCoordinator)
        # Process-wide singleton for the same cache.
        assert maybe_coordinator(cache) is coord
        reset_coordinator()
        assert maybe_coordinator(cache) is not coord

    def test_unreachable_daemon_degrades_to_none(self, tmp_path):
        cfg = _cfg(mode="daemon", host="127.0.0.1", port=1, io_timeout=0.5)
        assert maybe_coordinator(TuningCache(str(tmp_path / "c.json")), cfg) is None


class _StubFleet:
    """Scripted coordinator for driving autotune()'s fallback paths."""

    def __init__(self, lease_results, wait_result=None):
        self.lease_results = list(lease_results)
        self.wait_result = wait_result
        self.released = []
        self.published = []

    def fetch(self, key):
        return None

    def try_lease(self, key):
        return self.lease_results.pop(0) if self.lease_results else None

    def wait_for(self, key, timeout=None):
        return self.wait_result

    def release(self, key, token):
        self.released.append((key, token))

    def publish(self, key, result, token=None):
        self.published.append((key, result, token))


class _DyingFleet(_StubFleet):
    """A coordinator whose transport died after construction: the named
    ops raise TuningFleetError mid-conversation."""

    def __init__(self, dies_on, **kwargs):
        super().__init__(**kwargs)
        self.dies_on = set(dies_on)

    def _maybe_die(self, op):
        if op in self.dies_on:
            raise TuningFleetError(f"daemon gone ({op})")

    def fetch(self, key):
        self._maybe_die("fetch")
        return super().fetch(key)

    def try_lease(self, key):
        self._maybe_die("try_lease")
        return super().try_lease(key)

    def wait_for(self, key, timeout=None):
        self._maybe_die("wait_for")
        return super().wait_for(key, timeout)

    def publish(self, key, result, token=None):
        self._maybe_die("publish")
        return super().publish(key, result, token)


class _Kern:
    @fn_acc
    def __call__(self, acc, n, out):
        from repro.core.element import independent_elements

        for i in independent_elements(acc, n):
            out[i[0]] = i[0] * 2.0


def _tune_args(n=256):
    from repro import mem
    from repro.mem import memset

    dev = get_dev_by_idx(AccCpuSerial)
    out = mem.alloc(dev, n)
    memset(QueueBlocking(dev), out, 0)
    return dev, (n, out)


class TestAutotuneIntegration:
    def _patch(self, monkeypatch, stub):
        import repro.tuning.fleet.coordinator as coord_mod

        monkeypatch.setattr(
            coord_mod, "maybe_coordinator", lambda cache, config=None: stub
        )

    def test_loser_adopts_the_winners_result(self, monkeypatch):
        dev, args = _tune_args()
        adopted = CachedResult(
            work_div=WorkDivMembers(Vec(32), Vec(1), Vec(8)),
            seconds=3e-6,
            strategy="random",
            source="modeled",
        )
        stub = _StubFleet(lease_results=[None], wait_result=adopted)
        self._patch(monkeypatch, stub)
        res = autotune(_Kern(), AccCpuSerial, 256, args, device=dev)
        assert res.strategy == "fleet"
        assert res.from_cache
        assert res.measurements == 0
        assert res.launches == 0
        assert res.work_div.block_thread_extent == adopted.work_div.block_thread_extent
        assert res.work_div.thread_elem_extent == adopted.work_div.thread_elem_extent

    def test_waited_out_loser_gets_the_heuristic(self, monkeypatch):
        from repro import divide_work

        dev, args = _tune_args()
        stub = _StubFleet(lease_results=[None, None], wait_result=None)
        self._patch(monkeypatch, stub)
        res = autotune(_Kern(), AccCpuSerial, 256, args, device=dev)
        assert res.strategy == "fleet-heuristic"
        assert res.measurements == 0
        assert res.launches == 0
        props = AccCpuSerial.get_acc_dev_props(dev).for_dim(1)
        assert res.work_div == divide_work(
            256, props, AccCpuSerial.mapping_strategy
        )

    def test_winner_publishes_through_the_fleet(self, monkeypatch):
        dev, args = _tune_args()
        stub = _StubFleet(lease_results=["tok-1"])
        self._patch(monkeypatch, stub)
        res = autotune(
            _Kern(), AccCpuSerial, 256, args, device=dev,
            strategy="random", budget=2, max_block_threads=8,
        )
        assert not res.from_cache
        assert len(stub.published) == 1
        key, entry, token = stub.published[0]
        assert key == res.cache_key
        assert token == "tok-1"
        assert entry.work_div == res.work_div
        # Fresh measurements are stamped so merge conflicts resolve to
        # the newest entry fleet-wide.
        assert entry.measured_at > 0

    def test_failed_search_releases_the_lease(self, monkeypatch):
        dev, args = _tune_args()
        stub = _StubFleet(lease_results=["tok-1"])
        self._patch(monkeypatch, stub)
        with pytest.raises(ValueError):
            autotune(
                _Kern(), AccCpuSerial, 256, args, device=dev, strategy="nope"
            )
        assert stub.released == [(TuningCache.key(_Kern(), AccCpuSerial, get_dev_by_idx(AccCpuSerial), 256), "tok-1")]
        assert stub.published == []

    def test_tune_schedule_gap_measures_instead_of_starving(self, monkeypatch):
        """Regression: a schedule-less fleet entry plus the daemon's
        'cached' lease denial used to starve tune_schedule callers on
        the fleet-heuristic forever; they must measure locally."""
        dev, args = _tune_args()
        schedule_less = CachedResult(
            work_div=WorkDivMembers(Vec(32), Vec(1), Vec(8)),
            seconds=3e-6,
            strategy="random",
            source="modeled",
        )
        stub = _StubFleet(lease_results=[None], wait_result=schedule_less)
        self._patch(monkeypatch, stub)
        res = autotune(
            _Kern(), AccCpuSerial, 256, args, device=dev,
            strategy="random", budget=2, max_block_threads=8,
            tune_schedule=True,
        )
        assert res.strategy != "fleet-heuristic"
        assert not res.from_cache
        assert res.measurements >= 1
        # The re-measured entry is published back, uncoordinated
        # (token=None) — the daemon stores it without touching leases.
        assert len(stub.published) == 1
        _, entry, token = stub.published[0]
        assert token is None
        assert entry.work_div == res.work_div

    def test_lock_mode_end_to_end_single_process(self, monkeypatch, tmp_path, isolated_cache):
        monkeypatch.setenv(FLEET_ENV, "lock")
        dev, args = _tune_args()
        res = autotune(
            _Kern(), AccCpuSerial, 256, args, device=dev,
            strategy="random", budget=2, max_block_threads=8,
        )
        assert not res.from_cache
        assert res.measurements >= 1
        assert isolated_cache.exists()  # publish() persisted
        # No lease litter once the measurement is published.
        assert glob.glob(str(isolated_cache) + ".*.lease") == []
        # A "sibling process" (fresh cache object) sees the entry.
        sibling = TuningCache(str(isolated_cache))
        assert sibling.get_key(res.cache_key) is not None


class TestFleetTransportDeath:
    """Regression (high severity): a daemon dying *after* the
    coordinator connected used to raise TuningFleetError out of
    autotune(); it must degrade that call to standalone tuning."""

    def _patch(self, monkeypatch, stub):
        import repro.tuning.fleet.coordinator as coord_mod

        monkeypatch.setattr(
            coord_mod, "maybe_coordinator", lambda cache, config=None: stub
        )

    @pytest.mark.parametrize(
        "op", ["fetch", "try_lease", "wait_for", "publish"]
    )
    def test_dead_transport_degrades_to_standalone(self, monkeypatch, op):
        from repro.tuning import default_cache

        dev, args = _tune_args()
        lease_results = ["tok-1"] if op == "publish" else [None, None]
        stub = _DyingFleet(dies_on=[op], lease_results=lease_results)
        self._patch(monkeypatch, stub)
        res = autotune(
            _Kern(), AccCpuSerial, 256, args, device=dev,
            strategy="random", budget=2, max_block_threads=8,
        )
        assert not res.from_cache
        assert res.measurements >= 1  # measured standalone, no error
        # The result still landed in the local cache.
        assert default_cache().get_key(res.cache_key) is not None

    def test_daemon_death_midsession_degrades(
        self, monkeypatch, tmp_path, isolated_cache
    ):
        """End to end over the real transport: tune once through a live
        daemon, kill it, tune again on the same (still connected)
        coordinator."""
        from repro.tuning.fleet.config import FLEET_ADDR_ENV

        daemon = FleetDaemon(
            _cfg(mode="daemon"),
            cache_path=str(tmp_path / "daemon-cache.json"),
            host="127.0.0.1",
            port=0,
        )
        host, port = daemon.start()
        monkeypatch.setenv(FLEET_ENV, "daemon")
        monkeypatch.setenv(FLEET_ADDR_ENV, f"{host}:{port}")
        reset_coordinator()
        dev, args = _tune_args()
        try:
            res = autotune(
                _Kern(), AccCpuSerial, 256, args, device=dev,
                strategy="random", budget=2, max_block_threads=8,
            )
            assert not res.from_cache
        finally:
            daemon.shutdown()
        # The daemon is gone but the coordinator is still wired up; the
        # next tuning call must complete standalone, not raise.
        dev2, args2 = _tune_args(512)
        res2 = autotune(
            _Kern(), AccCpuSerial, 512, args2, device=dev2,
            strategy="random", budget=2, max_block_threads=8,
        )
        assert res2.measurements >= 1


class TestLeaseHeartbeat:
    """A held lease is refreshed while the measurement runs, so tuning
    runs longer than lease_timeout are not broken mid-measurement."""

    def test_heartbeat_refreshes_while_measuring(self):
        from repro.tuning import _lease_heartbeat

        class _Recorder:
            config = _cfg(mode="lock", lease_timeout=0.3)

            def __init__(self):
                self.refreshed = []

            def refresh(self, key, token):
                self.refreshed.append((key, token))

        fleet = _Recorder()
        with _lease_heartbeat(fleet, "key", "tok"):
            time.sleep(0.35)  # > lease_timeout / 3
        beats = list(fleet.refreshed)
        assert ("key", "tok") in beats
        time.sleep(0.15)
        assert fleet.refreshed == beats  # stopped with the context

    def test_refresh_failure_ends_the_heartbeat_quietly(self):
        from repro.tuning import _lease_heartbeat

        class _Dying:
            config = _cfg(mode="lock", lease_timeout=0.3)

            def refresh(self, key, token):
                raise TuningFleetError("daemon gone")

        with _lease_heartbeat(_Dying(), "key", "tok"):
            time.sleep(0.25)  # the beat thread must swallow the error

    def test_no_heartbeat_without_a_lease(self):
        from repro.tuning import _lease_heartbeat

        with _lease_heartbeat(None, "key", None):
            pass
