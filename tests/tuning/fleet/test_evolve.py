"""Evolutionary search: convergence, determinism, budget, hall of fame."""

import json

import pytest

from repro.core.workdiv import WorkDivMembers
from repro.tuning import SEARCH_STRATEGIES, run_search
from repro.tuning.fleet.evolve import (
    default_hof_path,
    evolve_search,
    load_hall_of_fame,
)
from repro.tuning.fleet.config import HOF_ENV


def _grid():
    """2-knob space: blocks fixed, (threads, elems) in a 5x5 grid."""
    out = []
    for b in (1, 2, 4, 8, 16):
        for v in (1, 2, 4, 8, 16):
            out.append(WorkDivMembers.make(4, b, v))
    return out


def _separable(wd):
    b = wd.block_thread_extent[0]
    v = wd.thread_elem_extent[0]
    return (b - 8) ** 2 + (v - 2) ** 2 + 1.0


class TestSearch:
    def test_finds_separable_minimum(self, tmp_path):
        res = evolve_search(
            _grid(), _separable, seed=1, hof_path=str(tmp_path / "hof.json")
        )
        assert res.best.work_div.block_thread_extent[0] == 8
        assert res.best.work_div.thread_elem_extent[0] == 2
        assert res.strategy == "evolve"

    def test_deterministic_for_seed(self, tmp_path):
        hof = str(tmp_path / "hof.json")
        r1 = evolve_search(_grid(), _separable, seed=7, budget=12, hof_path=hof)
        r2 = evolve_search(_grid(), _separable, seed=7, budget=12, hof_path=hof)
        assert [t.work_div for t in r1.trials] == [t.work_div for t in r2.trials]

    def test_budget_caps_distinct_measurements(self, tmp_path):
        res = evolve_search(
            _grid(), _separable, budget=6, hof_path=str(tmp_path / "hof.json")
        )
        assert res.measurements <= 6
        # Memoisation: no division measured twice.
        seen = [t.work_div for t in res.trials]
        assert len(seen) == len(set(seen))

    def test_crossover_children_stay_in_candidate_space(self, tmp_path):
        cands = _grid()
        valid = set(cands)
        measured = []

        def obj(wd):
            measured.append(wd)
            return _separable(wd)

        evolve_search(cands, obj, seed=3, hof_path=str(tmp_path / "hof.json"))
        assert all(wd in valid for wd in measured)

    def test_single_candidate_space(self, tmp_path):
        cands = [WorkDivMembers.make(4, 2, 2)]
        res = evolve_search(
            cands, lambda wd: 1.0, hof_path=str(tmp_path / "hof.json")
        )
        assert res.best.work_div == cands[0]
        assert res.measurements == 1

    def test_empty_candidate_space_raises(self, tmp_path):
        with pytest.raises(ValueError, match="empty"):
            evolve_search([], _separable, hof_path=str(tmp_path / "hof.json"))

    def test_model_ranking_seeds_generation_zero(self, tmp_path):
        """With a perfect performance model, generation 0 must already
        measure the model's favourite."""
        cands = _grid()
        predicted = {wd: _separable(wd) for wd in cands}
        res = evolve_search(
            cands,
            _separable,
            budget=4,
            predicted=predicted,
            population=4,
            hof_path=str(tmp_path / "hof.json"),
        )
        assert res.best.seconds == 1.0  # the global minimum, found in gen 0


class TestHallOfFame:
    def test_run_is_persisted(self, tmp_path):
        hof = str(tmp_path / "hof.json")
        res = evolve_search(
            _grid(), _separable, seed=1, hof_label="axpy|cpu", hof_path=hof
        )
        doc = load_hall_of_fame(hof)
        assert len(doc["runs"]) == 1
        run = doc["runs"][0]
        assert run["label"] == "axpy|cpu"
        assert run["strategy"] == "evolve"
        assert run["measurements"] == res.measurements
        assert run["best"]["seconds"] == res.best.seconds
        assert run["generations"]
        gen0 = run["generations"][0]
        assert gen0["generation"] == 0
        assert gen0["hall_of_fame"]

    def test_runs_accumulate(self, tmp_path):
        hof = str(tmp_path / "hof.json")
        evolve_search(_grid(), _separable, seed=1, hof_path=hof)
        evolve_search(_grid(), _separable, seed=2, hof_path=hof)
        assert len(load_hall_of_fame(hof)["runs"]) == 2

    def test_generation_bests_never_worsen(self, tmp_path):
        hof = str(tmp_path / "hof.json")
        evolve_search(_grid(), _separable, seed=5, hof_path=hof)
        gens = load_hall_of_fame(hof)["runs"][0]["generations"]
        bests = [g["best_seconds"] for g in gens if g["best_seconds"]]
        assert all(a >= b for a, b in zip(bests, bests[1:]))

    def test_missing_file_loads_empty_skeleton(self, tmp_path):
        doc = load_hall_of_fame(str(tmp_path / "absent.json"))
        assert doc == {"version": 1, "runs": []}

    def test_rotten_file_loads_empty_and_is_overwritten(self, tmp_path):
        hof = tmp_path / "hof.json"
        hof.write_text("{ rot !!!")
        assert load_hall_of_fame(str(hof))["runs"] == []
        evolve_search(_grid(), _separable, hof_path=str(hof))
        assert len(load_hall_of_fame(str(hof))["runs"]) == 1
        json.loads(hof.read_text())  # valid JSON again

    def test_default_path_honours_env(self, monkeypatch, tmp_path):
        target = str(tmp_path / "elsewhere.json")
        monkeypatch.setenv(HOF_ENV, target)
        assert default_hof_path() == target


class TestRegistration:
    def test_importing_fleet_registers_evolve(self):
        assert SEARCH_STRATEGIES["evolve"] is evolve_search

    def test_run_search_routes_hof_kwargs(self, tmp_path):
        hof = str(tmp_path / "hof.json")
        res = run_search(
            "evolve",
            _grid(),
            _separable,
            budget=8,
            hof_path=hof,
            hof_label="via-dispatch",
        )
        assert res.strategy == "evolve"
        assert load_hall_of_fame(hof)["runs"][0]["label"] == "via-dispatch"


class TestScheduleGenome:
    """The joint (division, schedule) genome behind tune_schedule +
    strategy='evolve' — how `compiled` competes inside one run."""

    def obj_div_only(self, wd):
        raise AssertionError(
            "plain objective must not run when every individual "
            "carries a schedule"
        )

    def test_best_schedule_and_trials(self, tmp_path):
        def sched_obj(wd, sched):
            # 'compiled' wins everywhere; within it the separable
            # landscape picks the usual minimum.
            base = _separable(wd)
            return base * (0.1 if sched == "compiled" else 1.0)

        res = evolve_search(
            _grid(),
            self.obj_div_only,
            seed=2,
            hof_path=str(tmp_path / "hof.json"),
            schedules=("sequential", "pooled", "compiled"),
            schedule_objective=sched_obj,
        )
        assert res.best_schedule == "compiled"
        assert set(res.schedule_trials) <= {"sequential", "pooled", "compiled"}
        assert "compiled" in res.schedule_trials
        assert res.schedule_trials["compiled"] == min(
            res.schedule_trials.values()
        )
        assert res.best.work_div.block_thread_extent[0] == 8
        assert res.best.work_div.thread_elem_extent[0] == 2

    def test_without_schedules_best_schedule_is_none(self, tmp_path):
        res = evolve_search(
            _grid(), _separable, seed=1, hof_path=str(tmp_path / "hof.json")
        )
        assert res.best_schedule is None
        assert res.schedule_trials == {}

    def test_deterministic_for_seed_with_schedules(self, tmp_path):
        def sched_obj(wd, sched):
            return _separable(wd) + (0.5 if sched == "pooled" else 0.0)

        hof = str(tmp_path / "hof.json")
        kw = dict(
            schedules=("sequential", "pooled"),
            schedule_objective=sched_obj,
            seed=9,
            budget=15,
            hof_path=hof,
        )
        r1 = evolve_search(_grid(), self.obj_div_only, **kw)
        r2 = evolve_search(_grid(), self.obj_div_only, **kw)
        assert [t.work_div for t in r1.trials] == [
            t.work_div for t in r2.trials
        ]
        assert r1.best_schedule == r2.best_schedule

    def test_generation_zero_covers_every_schedule(self, tmp_path):
        seen = set()

        def sched_obj(wd, sched):
            seen.add(sched)
            return _separable(wd)

        evolve_search(
            _grid(),
            self.obj_div_only,
            seed=0,
            budget=8,
            population=8,
            hof_path=str(tmp_path / "hof.json"),
            schedules=("sequential", "pooled", "processes", "compiled"),
            schedule_objective=sched_obj,
        )
        assert seen == {"sequential", "pooled", "processes", "compiled"}

    def test_hof_records_schedule(self, tmp_path):
        hof = str(tmp_path / "hof.json")

        def sched_obj(wd, sched):
            return _separable(wd) * (0.5 if sched == "compiled" else 1.0)

        evolve_search(
            _grid(),
            self.obj_div_only,
            seed=4,
            hof_path=hof,
            schedules=("sequential", "compiled"),
            schedule_objective=sched_obj,
        )
        run = load_hall_of_fame(hof)["runs"][0]
        assert run["best"]["schedule"] == "compiled"
        fame = run["generations"][0]["hall_of_fame"]
        assert all("schedule" in entry for entry in fame)
