"""End-to-end autotuning: search → cache → AUTO resolution."""

import pytest

from repro import (
    AccCpuSerial,
    AutoWorkDiv,
    QueueBlocking,
    accelerator,
    accelerator_names,
    autotune,
    create_task_kernel,
    divide_work,
    fn_acc,
    get_dev_by_idx,
)
from repro.bench import launch_stats
from repro.core.workdiv import MappingStrategy, validate_work_div
from repro.perfmodel import KernelCharacteristics
from repro.runtime import clear_plan_cache, get_plan
from repro.tuning import (
    TuningCache,
    auto_divide,
    default_cache,
    measure_division,
    resolve_work_div,
)


class TunableKernel:
    """Self-describing kernel whose model genuinely prefers big element
    blocks (vector_friendly flips at 4 elements), so tuning has a real
    landscape to descend."""

    @fn_acc
    def __call__(self, acc, n, out):
        from repro.core.element import independent_elements

        for i in independent_elements(acc, n):
            out[i[0]] = i[0] * 2.0

    def characteristics(self, work_div, n, out):
        from repro.hardware.cache import AccessPattern

        return KernelCharacteristics(
            flops=float(n) * 8,
            global_read_bytes=8.0 * n,
            global_write_bytes=8.0 * n,
            working_set_bytes=1024,
            thread_access_pattern=AccessPattern.CONTIGUOUS,
            vector_friendly=work_div.thread_elem_count >= 4,
        )


N = 512


def _sized_args(acc, n):
    from repro import mem
    from repro.mem import memset

    dev = get_dev_by_idx(acc)
    out = mem.alloc(dev, n)
    q = QueueBlocking(dev)
    memset(q, out, 0)
    return dev, (n, out)


def _args(acc):
    return _sized_args(acc, N)


class TestAutotune:
    def test_beats_or_ties_default_heuristic(self, any_acc):
        dev, args = _args(any_acc)
        props = any_acc.get_acc_dev_props(dev).for_dim(1)
        default_wd = divide_work(N, props, any_acc.mapping_strategy)
        default_s = measure_division(
            TunableKernel(), any_acc, dev, default_wd, args
        ).seconds
        res = autotune(
            TunableKernel(), any_acc, N, args, device=dev,
            strategy="random", budget=6, max_block_threads=16, save=False,
        )
        assert res.seconds <= default_s
        assert not res.from_cache
        assert res.measurements >= 1
        validate_work_div(res.work_div, props)

    def test_second_call_hits_cache_with_zero_launches(self):
        acc = AccCpuSerial
        dev, args = _args(acc)
        k = TunableKernel()
        first = autotune(k, acc, N, args, device=dev, strategy="random", budget=4)
        with launch_stats() as stats:
            second = autotune(k, acc, N, args, device=dev)
        assert second.from_cache
        assert second.launches == 0
        assert stats.launches == 0
        assert second.work_div == first.work_div
        assert second.strategy == "cache"

    def test_cache_survives_process_restart_simulation(self, isolated_cache):
        acc = AccCpuSerial
        dev, args = _args(acc)
        k = TunableKernel()
        first = autotune(k, acc, N, args, device=dev, budget=4, strategy="random")
        assert isolated_cache.exists()
        # A fresh TuningCache object reading the same file = "restart".
        fresh = TuningCache(str(isolated_cache))
        hit = autotune(k, acc, N, args, device=dev, cache=fresh)
        assert hit.from_cache
        assert hit.work_div == first.work_div

    def test_force_remeasures(self):
        acc = AccCpuSerial
        dev, args = _args(acc)
        k = TunableKernel()
        autotune(k, acc, N, args, device=dev, budget=4, strategy="random")
        res = autotune(
            k, acc, N, args, device=dev, budget=4, strategy="random", force=True
        )
        assert not res.from_cache
        assert res.measurements >= 1

    def test_extent_bucketing_shares_results(self):
        acc = AccCpuSerial
        dev, args = _args(acc)
        k = TunableKernel()
        autotune(k, acc, 400, args, device=dev, budget=4, strategy="random")
        # 400 and 512 share the (256, 512] bucket.
        res = autotune(k, acc, 512, args, device=dev)
        assert res.from_cache

    def test_cache_hit_refits_grid_to_requested_extent(self):
        """A hit tuned at a smaller extent in the same bucket must not
        serve its tuning-time grid verbatim — that grid under-covers the
        larger request and elements past the tuned extent never run."""
        acc = AccCpuSerial
        k = TunableKernel()
        dev, args = _sized_args(acc, 600)
        tuned = autotune(k, acc, 600, args, device=dev, budget=4, strategy="random")
        # 600 and 1000 share the (512, 1024] bucket.
        res = autotune(k, acc, 1000, args, device=dev)
        assert res.from_cache
        assert res.work_div.grid_elem_extent[0] >= 1000
        assert res.work_div.block_thread_extent == tuned.work_div.block_thread_extent
        assert res.work_div.thread_elem_extent == tuned.work_div.thread_elem_extent
        props = acc.get_acc_dev_props(dev).for_dim(1)
        validate_work_div(res.work_div, props)

    def test_unknown_strategy_raises(self):
        acc = AccCpuSerial
        dev, args = _args(acc)
        with pytest.raises(ValueError):
            autotune(
                TunableKernel(), acc, N, args, device=dev, strategy="nope"
            )

    @pytest.mark.slow
    def test_exhaustive_across_all_backends(self):
        """The full sweep on every back-end — slow, excluded from tier 1."""
        for name in accelerator_names():
            acc = accelerator(name)
            dev, args = _args(acc)
            res = autotune(
                TunableKernel(), acc, N, args, device=dev,
                strategy="exhaustive", max_block_threads=32, save=False,
            )
            props = acc.get_acc_dev_props(dev).for_dim(1)
            validate_work_div(res.work_div, props)


class TestAutoDivide:
    def test_heuristic_without_kernel_context(self, any_acc):
        dev = get_dev_by_idx(any_acc)
        props = any_acc.get_acc_dev_props(dev)
        wd = auto_divide(N, props, acc_type=any_acc)
        assert wd == divide_work(N, props, any_acc.mapping_strategy)

    def test_heuristic_without_acc_type(self):
        acc = AccCpuSerial
        dev = get_dev_by_idx(acc)
        props = acc.get_acc_dev_props(dev)
        wd = auto_divide(N, props)
        validate_work_div(wd, props.for_dim(1))

    def test_cache_hit_wins(self):
        acc = AccCpuSerial
        dev, args = _args(acc)
        k = TunableKernel()
        tuned = autotune(k, acc, N, args, device=dev, budget=4, strategy="random")
        props = acc.get_acc_dev_props(dev)
        wd = auto_divide(N, props, kernel=k, acc_type=acc, device=dev)
        assert wd == tuned.work_div

    def test_cache_hit_covers_larger_extent_in_same_bucket(self):
        acc = AccCpuSerial
        k = TunableKernel()
        dev, args = _sized_args(acc, 600)
        autotune(k, acc, 600, args, device=dev, budget=4, strategy="random")
        props = acc.get_acc_dev_props(dev)
        wd = auto_divide(1000, props, kernel=k, acc_type=acc, device=dev)
        assert wd.grid_elem_extent[0] >= 1000
        validate_work_div(wd, props.for_dim(1))

    def test_divide_work_auto_strategy(self, any_acc):
        dev = get_dev_by_idx(any_acc)
        props = any_acc.get_acc_dev_props(dev)
        wd = divide_work(N, props, MappingStrategy.AUTO, acc_type=any_acc)
        validate_work_div(wd, props.for_dim(1))


class TestAutoWorkDivLaunch:
    def test_auto_task_resolves_and_runs(self, any_acc):
        import numpy as np

        dev, (n, out) = _args(any_acc)
        q = QueueBlocking(dev)
        task = create_task_kernel(
            any_acc, AutoWorkDiv(N), TunableKernel(), n, out
        )
        q.enqueue(task)
        host = np.empty(N)
        from repro import mem

        mem.copy(q, host, out)
        assert np.allclose(host, np.arange(N) * 2.0)

    def test_resolution_prefers_tuned_division(self):
        acc = AccCpuSerial
        dev, args = _args(acc)
        k = TunableKernel()
        tuned = autotune(k, acc, N, args, device=dev, budget=4, strategy="random")
        clear_plan_cache()
        task = create_task_kernel(acc, AutoWorkDiv(N), k, *args)
        plan = get_plan(task, dev)
        assert plan.work_div == tuned.work_div

    def test_auto_launch_covers_larger_extent_in_same_bucket(self):
        """End-to-end regression: tuning at 600 then launching AUTO at
        1000 (same pow2 bucket) must execute all 1000 elements."""
        import numpy as np

        from repro import mem

        acc = AccCpuSerial
        k = TunableKernel()
        dev, args600 = _sized_args(acc, 600)
        autotune(k, acc, 600, args600, device=dev, budget=4, strategy="random")
        _, (n, out) = _sized_args(acc, 1000)
        q = QueueBlocking(dev)
        q.enqueue(create_task_kernel(acc, AutoWorkDiv(1000), k, n, out))
        host = np.empty(1000)
        mem.copy(q, host, out)
        assert np.allclose(host, np.arange(1000) * 2.0)

    def test_plan_cache_sees_fresh_tuning_results(self):
        """A plan resolved before autotune() must not keep serving the
        pre-tuning heuristic division afterwards."""
        acc = AccCpuSerial
        dev, args = _args(acc)
        k = TunableKernel()
        task = create_task_kernel(acc, AutoWorkDiv(N), k, *args)
        props = acc.get_acc_dev_props(dev)
        before = get_plan(task, dev)
        assert before.work_div == divide_work(N, props, acc.mapping_strategy)
        tuned = autotune(k, acc, N, args, device=dev, budget=4, strategy="random")
        after = get_plan(task, dev)  # no clear_plan_cache() in between
        assert after is not before
        assert after.work_div == tuned.work_div

    def test_resolve_work_div_passthrough_for_concrete(self):
        acc = AccCpuSerial
        dev, args = _args(acc)
        props = acc.get_acc_dev_props(dev)
        wd = divide_work(N, props, MappingStrategy.BLOCK_LEVEL)
        task = create_task_kernel(acc, wd, TunableKernel(), *args)
        assert resolve_work_div(task, dev) is wd

    def test_resolution_without_cache_uses_heuristic(self):
        acc = AccCpuSerial
        dev, args = _args(acc)
        assert len(default_cache()) == 0
        task = create_task_kernel(acc, AutoWorkDiv(N), TunableKernel(), *args)
        wd = resolve_work_div(task, dev)
        props = acc.get_acc_dev_props(dev)
        assert wd == divide_work(N, props, acc.mapping_strategy)

    def test_distinct_extents_get_distinct_plans(self):
        acc = AccCpuSerial
        dev, args = _args(acc)
        k = TunableKernel()
        t1 = create_task_kernel(acc, AutoWorkDiv(64), k, 64, args[1])
        t2 = create_task_kernel(acc, AutoWorkDiv(256), k, 256, args[1])
        p1 = get_plan(t1, dev)
        p2 = get_plan(t2, dev)
        assert p1 is not p2
        assert p1.work_div != p2.work_div
