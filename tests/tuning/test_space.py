"""Candidate space: every emitted division is valid, everywhere."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import accelerator, accelerator_names, get_dev_by_idx
from repro.core.errors import InvalidWorkDiv
from repro.core.workdiv import MappingStrategy, validate_work_div
from repro.tuning import candidate_divisions, default_division, seed_divisions


def _props(acc, dim):
    dev = get_dev_by_idx(acc, 0)
    return acc.get_acc_dev_props(dev).for_dim(dim)


class TestSeeds:
    def test_seeds_are_table2_defaults(self, any_acc):
        props = _props(any_acc, 1)
        seeds = seed_divisions(1024, props)
        assert seeds, "every back-end must have at least one seed"
        for mapping in (
            MappingStrategy.THREAD_LEVEL,
            MappingStrategy.BLOCK_LEVEL,
        ):
            wd = default_division(1024, props, mapping)
            if wd is not None:
                assert wd in seeds

    def test_seeds_deduplicate(self):
        # On a 1-thread back-end both mappings collapse to the same
        # division; the seed list must not repeat it.
        acc = accelerator("AccCpuSerial")
        props = _props(acc, 1)
        seeds = seed_divisions(64, props)
        assert len(seeds) == len(set(seeds))


class TestCandidateValidity:
    """The roundtrip property: space → validate never rejects."""

    @pytest.mark.parametrize("extent", [1, 17, 1024, (8, 8), (100, 3), (5, 7, 9)])
    def test_all_candidates_valid_for_all_backends(self, extent):
        for name in accelerator_names():
            acc = accelerator(name)
            dim = len(extent) if isinstance(extent, tuple) else 1
            props = _props(acc, dim)
            cands = candidate_divisions(extent, props)
            assert cands, (name, extent)
            for wd in cands:
                validate_work_div(wd, props)

    def test_candidates_unique(self, any_acc):
        props = _props(any_acc, 2)
        cands = candidate_divisions((32, 32), props)
        assert len(cands) == len(set(cands))

    def test_seeds_lead_the_list(self, any_acc):
        props = _props(any_acc, 2)
        seeds = seed_divisions((32, 32), props)
        cands = candidate_divisions((32, 32), props)
        assert cands[: len(seeds)] == seeds

    def test_max_block_threads_caps_generated_candidates(self, any_acc):
        props = _props(any_acc, 2)
        seeds = seed_divisions((64, 64), props)
        cands = candidate_divisions((64, 64), props, max_block_threads=4)
        for wd in cands:
            if wd not in seeds:
                assert wd.block_thread_count <= 4

    def test_max_total_elems_caps_element_extents(self, any_acc):
        props = _props(any_acc, 2)
        seeds = seed_divisions((64, 64), props)
        for wd in candidate_divisions((64, 64), props, max_total_elems=8):
            if wd not in seeds:
                assert wd.thread_elem_count <= 8

    def test_nonpositive_extent_raises(self, any_acc):
        props = _props(any_acc, 2)
        with pytest.raises(InvalidWorkDiv):
            candidate_divisions((0, 8), props)

    @settings(max_examples=30, deadline=None)
    @given(
        h=st.integers(1, 4096),
        w=st.integers(1, 64),
        name=st.sampled_from(accelerator_names()),
    )
    def test_property_roundtrip_fuzz(self, h, w, name):
        """Arbitrary 2-d extents, every back-end: all candidates valid
        and the space always covers the problem."""
        acc = accelerator(name)
        props = _props(acc, 2)
        cands = candidate_divisions(
            (h, w), props, max_total_elems=64, max_block_threads=16
        )
        assert cands
        for wd in cands:
            validate_work_div(wd, props)
            assert wd.grid_elem_extent[0] >= h
            assert wd.grid_elem_extent[1] >= w
