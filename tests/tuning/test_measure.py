"""Measurement: modeled clock for self-describing kernels, wall clock
otherwise, everything through the real runtime."""

import pytest

from repro import (
    AccCpuSerial,
    QueueBlocking,
    create_task_kernel,
    divide_work,
    fn_acc,
    get_dev_by_idx,
)
from repro.bench import launch_stats
from repro.core.workdiv import MappingStrategy
from repro.perfmodel import KernelCharacteristics
from repro.tuning import measure_division, measure_task


@fn_acc
def _plain_kernel(acc):
    pass


class _ModeledKernel:
    """Kernel that describes itself → deterministic modeled seconds."""

    @fn_acc
    def __call__(self, acc):
        pass

    def characteristics(self, work_div):
        from repro.hardware.cache import AccessPattern

        return KernelCharacteristics(
            flops=1e6,
            global_read_bytes=8e3,
            global_write_bytes=8e3,
            working_set_bytes=1024,
            thread_access_pattern=AccessPattern.CONTIGUOUS,
            vector_friendly=True,
        )


def _wd(acc, n=64):
    dev = get_dev_by_idx(acc)
    props = acc.get_acc_dev_props(dev)
    return divide_work(n, props, MappingStrategy.BLOCK_LEVEL)


class TestMeasureTask:
    def test_modeled_kernel_uses_sim_clock(self):
        acc = AccCpuSerial
        dev = get_dev_by_idx(acc)
        task = create_task_kernel(acc, _wd(acc), _ModeledKernel())
        mt = measure_task(task, dev)
        assert mt.source == "modeled"
        assert mt.seconds > 0
        assert mt.launches == 1  # warmup launches are the measurement

    def test_modeled_measurement_is_deterministic(self):
        acc = AccCpuSerial
        dev = get_dev_by_idx(acc)
        task = create_task_kernel(acc, _wd(acc), _ModeledKernel())
        s1 = measure_task(task, dev).seconds
        s2 = measure_task(task, dev).seconds
        assert s1 == s2

    def test_modeled_measurement_immune_to_clock_magnitude(self):
        # Regression: with a float accumulator clock, the measured
        # delta of identical launches drifted in the last bit once the
        # shared device clock grew large (order-dependent test flake).
        acc = AccCpuSerial
        dev = get_dev_by_idx(acc)
        task = create_task_kernel(acc, _wd(acc), _ModeledKernel())
        baseline = measure_task(task, dev).seconds
        for advance in (0.0931, 17.77, 123456.789):
            dev.advance_sim_time(advance)
            assert measure_task(task, dev).seconds == baseline

    def test_undescribed_kernel_falls_back_to_wall(self):
        acc = AccCpuSerial
        dev = get_dev_by_idx(acc)
        task = create_task_kernel(acc, _wd(acc), _plain_kernel)
        mt = measure_task(task, dev, warmup=1, repeat=2)
        assert mt.source == "wall"
        assert mt.seconds > 0
        assert mt.launches == 3  # 1 warmup + 2 timed

    def test_launches_go_through_runtime(self):
        acc = AccCpuSerial
        dev = get_dev_by_idx(acc)
        task = create_task_kernel(acc, _wd(acc), _ModeledKernel())
        with launch_stats() as stats:
            mt = measure_task(task, dev)
        assert stats.launches == mt.launches

    def test_warmup_must_be_positive(self):
        acc = AccCpuSerial
        dev = get_dev_by_idx(acc)
        task = create_task_kernel(acc, _wd(acc), _plain_kernel)
        with pytest.raises(ValueError):
            measure_task(task, dev, warmup=0)

    def test_explicit_queue_is_used(self):
        acc = AccCpuSerial
        dev = get_dev_by_idx(acc)
        q = QueueBlocking(dev)
        task = create_task_kernel(acc, _wd(acc), _ModeledKernel())
        mt = measure_task(task, dev, queue=q)
        assert mt.seconds > 0


class TestMeasureDivision:
    def test_binds_and_measures(self):
        acc = AccCpuSerial
        dev = get_dev_by_idx(acc)
        mt = measure_division(_ModeledKernel(), acc, dev, _wd(acc))
        assert mt.source == "modeled"
        assert mt.seconds > 0

    def test_different_divisions_can_differ(self):
        acc = AccCpuSerial
        dev = get_dev_by_idx(acc)
        props = acc.get_acc_dev_props(dev)
        k = _ModeledKernel()
        wd_a = divide_work(
            4096, props, MappingStrategy.BLOCK_LEVEL, thread_elems=1
        )
        wd_b = divide_work(
            4096, props, MappingStrategy.BLOCK_LEVEL, thread_elems=256
        )
        sa = measure_division(k, acc, dev, wd_a).seconds
        sb = measure_division(k, acc, dev, wd_b).seconds
        assert sa > 0 and sb > 0
