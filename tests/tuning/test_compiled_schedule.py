"""Selecting and persisting the `compiled` schedule through tuning.

The trace-vectorized replay is a first-class block schedule: the
``tune_schedule=True`` sweep measures it, ``strategy="evolve"`` carries
it in the genome, the winner persists through the cache (and the fleet
in lock mode), and AUTO launches pick it up at plan time.
"""

import pytest

import repro.tuning as tuning
from repro import get_dev_by_idx, mem
from repro.acc.cpu import AccCpuOmp2Blocks, AccCpuSerial
from repro.core.element import grid_strided_spans
from repro.core.kernel import fn_acc
from repro.tuning import MeasuredTime, autotune, default_cache
from repro.tuning import _schedule_candidates


class _ElemKernel:
    @fn_acc
    def __call__(self, acc, n, out):
        for span in grid_strided_spans(acc, n):
            out[span] = 2.0

    def __repr__(self):
        return "_ElemKernel()"


def _args(n=256):
    dev = get_dev_by_idx(AccCpuOmp2Blocks)
    out = mem.alloc(dev, n)
    out.as_numpy()[:] = 0.0
    return dev, (n, out)


@pytest.fixture
def compiled_wins(monkeypatch):
    """Deterministic measurements: `compiled` is 100x faster than any
    other schedule, divisions score by block count (fewer is better) —
    no wall clocks, no flaky CI timing."""

    def fake_measure_division(
        kernel, acc_type, device, wd, args=(), *, schedule=None, **kw
    ):
        base = 1e-4 + 1e-7 * int(wd.block_count)
        if schedule == "compiled":
            base *= 0.01
        return MeasuredTime(seconds=base, source="wall", launches=1)

    monkeypatch.setattr(tuning, "measure_division", fake_measure_division)
    return fake_measure_division


class TestCandidates:
    def test_pooled_backend_offers_compiled(self):
        cands = _schedule_candidates(AccCpuOmp2Blocks)
        assert "compiled" in cands
        assert set(cands) >= {"sequential", "pooled", "compiled"}

    def test_sequential_backend_offers_nothing(self):
        assert _schedule_candidates(AccCpuSerial) == ()


class TestSweep:
    def test_sweep_selects_and_caches_compiled(self, compiled_wins):
        dev, args = _args()
        res = autotune(
            _ElemKernel(), AccCpuOmp2Blocks, 256, args, device=dev,
            strategy="random", budget=2, tune_schedule=True,
        )
        assert res.schedule == "compiled"
        assert "compiled" in res.schedule_trials
        assert res.schedule_trials["compiled"] == min(
            res.schedule_trials.values()
        )
        # Round trip: the persisted entry answers the next call with
        # zero measurements and the stored schedule.
        res2 = autotune(
            _ElemKernel(), AccCpuOmp2Blocks, 256, args, device=dev,
            strategy="random", budget=2, tune_schedule=True,
        )
        assert res2.from_cache
        assert res2.schedule == "compiled"


class TestEvolveGenome:
    def test_evolve_selects_compiled_without_post_sweep(
        self, compiled_wins
    ):
        dev, args = _args()
        res = autotune(
            _ElemKernel(), AccCpuOmp2Blocks, 256, args, device=dev,
            strategy="evolve", budget=12, tune_schedule=True,
        )
        assert res.strategy == "evolve"
        assert res.schedule == "compiled"
        entry = default_cache().get(
            _ElemKernel(), AccCpuOmp2Blocks, dev, 256
        )
        assert entry is not None
        assert entry.schedule == "compiled"

    def test_evolve_without_tune_schedule_stores_none(self, compiled_wins):
        dev, args = _args()
        res = autotune(
            _ElemKernel(), AccCpuOmp2Blocks, 256, args, device=dev,
            strategy="evolve", budget=8,
        )
        assert res.schedule is None


class TestFleetRoundTrip:
    def test_lock_mode_round_trips_compiled(
        self, compiled_wins, monkeypatch, isolated_cache
    ):
        from repro.tuning import reset_default_cache
        from repro.tuning.fleet.config import FLEET_ENV
        from repro.tuning.fleet.coordinator import reset_coordinator

        monkeypatch.setenv(FLEET_ENV, "lock")
        reset_coordinator()
        dev, args = _args()
        res = autotune(
            _ElemKernel(), AccCpuOmp2Blocks, 256, args, device=dev,
            strategy="evolve", budget=12, tune_schedule=True,
        )
        assert res.schedule == "compiled"
        # A sibling worker (fresh in-process cache, same fleet) adopts
        # the published entry, schedule included.
        reset_default_cache()
        reset_coordinator()
        res2 = autotune(
            _ElemKernel(), AccCpuOmp2Blocks, 256, args, device=dev,
            strategy="evolve", budget=12, tune_schedule=True,
        )
        assert res2.from_cache
        assert res2.schedule == "compiled"


class TestPlanPickup:
    def test_auto_launch_resolves_compiled_at_plan_time(
        self, compiled_wins, monkeypatch
    ):
        from repro import create_task_kernel
        from repro.core.workdiv import AutoWorkDiv
        from repro.runtime import clear_plan_cache, get_plan
        from repro.runtime.scheduler import SCHEDULER_ENV

        monkeypatch.delenv(SCHEDULER_ENV, raising=False)
        dev, args = _args()
        autotune(
            _ElemKernel(), AccCpuOmp2Blocks, 256, args, device=dev,
            strategy="random", budget=2, tune_schedule=True,
        )
        clear_plan_cache()
        task = create_task_kernel(
            AccCpuOmp2Blocks, AutoWorkDiv(256), _ElemKernel(), *args
        )
        plan = get_plan(task, dev)
        assert plan.schedule == "compiled"
