"""Tuning-suite fixtures: every test runs against an isolated cache."""

from __future__ import annotations

import pytest

from repro.runtime import clear_plan_cache
from repro.tuning import TUNING_CACHE_ENV, reset_default_cache
from repro.tuning.fleet.config import FLEET_ENV, HOF_ENV
from repro.tuning.fleet.coordinator import reset_coordinator


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Point the default tuning cache (and the evolve hall of fame) at
    per-test temp files so tests never read or write a developer's real
    state, keep the fleet off unless a test opts in, and keep the plan
    cache cold so launch counting starts from zero."""
    path = tmp_path / "tuning-cache.json"
    monkeypatch.setenv(TUNING_CACHE_ENV, str(path))
    monkeypatch.setenv(HOF_ENV, str(tmp_path / "tuning-hof.json"))
    monkeypatch.delenv(FLEET_ENV, raising=False)
    reset_default_cache()
    reset_coordinator()
    clear_plan_cache()
    yield path
    reset_default_cache()
    reset_coordinator()
    clear_plan_cache()
