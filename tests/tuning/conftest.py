"""Tuning-suite fixtures: every test runs against an isolated cache."""

from __future__ import annotations

import pytest

from repro.runtime import clear_plan_cache
from repro.tuning import TUNING_CACHE_ENV, reset_default_cache


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Point the default tuning cache at a per-test temp file so tests
    never read or write a developer's real cache, and keep the plan
    cache cold so launch counting starts from zero."""
    path = tmp_path / "tuning-cache.json"
    monkeypatch.setenv(TUNING_CACHE_ENV, str(path))
    reset_default_cache()
    clear_plan_cache()
    yield path
    reset_default_cache()
    clear_plan_cache()
