"""Accelerator math table: scalar/vector duality and dispatch seam."""

import numpy as np
import pytest

from repro import AccCpuSerial, QueueBlocking, WorkDivMembers, create_task_kernel
from repro import fn_acc, get_dev_by_idx, mem
from repro.math import DEFAULT_MATH, MathOps


class TestDuality:
    """Every op accepts scalars and arrays — the property that lets one
    kernel source serve the scalar and the vector element path."""

    @pytest.mark.parametrize(
        "name,x",
        [
            ("sqrt", 4.0), ("rsqrt", 4.0), ("exp", 0.5), ("log", 2.0),
            ("sin", 0.3), ("cos", 0.3), ("tan", 0.3), ("abs", -2.0),
            ("floor", 1.7), ("ceil", 1.2), ("erf", 0.5),
        ],
    )
    def test_unary(self, name, x):
        op = getattr(DEFAULT_MATH, name)
        scalar = op(x)
        vector = op(np.full(5, x))
        assert vector.shape == (5,)
        np.testing.assert_allclose(vector, scalar)

    @pytest.mark.parametrize(
        "name,args",
        [("pow", (2.0, 3.0)), ("atan2", (1.0, 2.0)), ("min", (1.0, 2.0)),
         ("max", (1.0, 2.0)), ("fmod", (7.0, 3.0))],
    )
    def test_binary(self, name, args):
        op = getattr(DEFAULT_MATH, name)
        scalar = op(*args)
        vector = op(*(np.full(4, a) for a in args))
        np.testing.assert_allclose(vector, scalar)

    def test_fma(self):
        assert DEFAULT_MATH.fma(2.0, 3.0, 4.0) == 10.0
        np.testing.assert_allclose(
            DEFAULT_MATH.fma(np.arange(3.0), 2.0, 1.0), [1.0, 3.0, 5.0]
        )

    def test_clamp(self):
        assert DEFAULT_MATH.clamp(5.0, 0.0, 2.0) == 2.0
        np.testing.assert_array_equal(
            DEFAULT_MATH.clamp(np.array([-1.0, 0.5, 3.0]), 0.0, 1.0),
            [0.0, 0.5, 1.0],
        )

    def test_known_values(self):
        assert DEFAULT_MATH.sqrt(9.0) == 3.0
        np.testing.assert_allclose(DEFAULT_MATH.exp(0.0), 1.0)
        np.testing.assert_allclose(DEFAULT_MATH.erf(0.0), 0.0)
        np.testing.assert_allclose(DEFAULT_MATH.rsqrt(4.0), 0.5)


class TestDispatchSeam:
    def test_kernel_uses_acc_math(self):
        """Kernels reach math through the accelerator; a back-end (or
        test) can substitute its own table."""

        @fn_acc
        def k(acc, out):
            out[0] = acc.math.sqrt(16.0)

        dev = get_dev_by_idx(AccCpuSerial, 0)
        q = QueueBlocking(dev)
        out = mem.alloc(dev, 1)
        q.enqueue(create_task_kernel(AccCpuSerial, WorkDivMembers.make(1, 1, 1), k, out))
        assert out.as_numpy()[0] == 4.0

    def test_table_substitution(self):
        class FastMath(MathOps):
            @staticmethod
            def sqrt(x):
                return x * 0 + 1.0  # deliberately wrong, observable

        assert FastMath().sqrt(25.0) == 1.0
        assert MathOps().sqrt(25.0) == 5.0
