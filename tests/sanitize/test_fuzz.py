"""Seeded schedule fuzzing on the CUDA simulator: determinism + replay."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Block, Threads, WorkDivMembers, accelerator, fn_acc, get_idx

CUDA = accelerator("AccGpuCudaSim")


class RacyPairKernel:
    """Threads exchange through shared memory without a barrier."""

    @fn_acc
    def __call__(self, acc, n, out):
        ti = get_idx(acc, Block, Threads)[0]
        s = acc.shared_mem("x", (n,))
        s[ti] = float(ti + 1)
        out[ti] = s[(ti + 1) % n]


def _fuzz(san_runner, seed, schedules=1):
    wd = WorkDivMembers.make(1, 4, 1)
    report, _ = san_runner.run(
        CUDA, wd, RacyPairKernel(), 4,
        arrays={"out": np.zeros(4)},
        seed=seed,
        schedules=schedules,
    )
    return report


class TestFuzzDeterminism:
    def test_same_seed_same_findings(self, san_runner):
        a = _fuzz(san_runner, seed=7)
        b = _fuzz(san_runner, seed=7)
        assert not a.clean and not b.clean
        assert sorted(f.describe() for f in a.findings) == sorted(
            f.describe() for f in b.findings
        )

    def test_seed_recorded_on_launch_and_findings(self, san_runner):
        report = _fuzz(san_runner, seed=11)
        assert report.launches[0].seed == 11
        assert all(f.seed == 11 for f in report.findings)
        assert report.failing_seeds == [11]

    def test_multi_schedule_seeds_are_sequential(self, san_runner):
        report = _fuzz(san_runner, seed=100, schedules=3)
        assert [rec.seed for rec in report.launches] == [100, 101, 102]

    def test_failing_seed_replay_hint_in_report(self, san_runner):
        report = _fuzz(san_runner, seed=5)
        text = report.render()
        assert "REPRO_SANITIZE_SEED=5" in text

    def test_fuzzed_schedules_keep_detecting(self, san_runner):
        # The epoch model is schedule-independent: every seed must flag
        # the race, whatever interleaving the fuzzer picked.
        for seed in (0, 1, 2):
            report = _fuzz(san_runner, seed=seed)
            assert not report.clean

    def test_safe_kernel_stays_clean_under_fuzzing(self, san_runner):
        class Safe:
            @fn_acc
            def __call__(self, acc, n, out):
                ti = get_idx(acc, Block, Threads)[0]
                s = acc.shared_mem("x", (n,))
                s[ti] = float(ti + 1)
                acc.sync_block_threads()
                out[ti] = s[(ti + 1) % n]

        wd = WorkDivMembers.make(1, 4, 1)
        for seed in (0, 1):
            report, out = san_runner.run(
                CUDA, wd, Safe(), 4, arrays={"out": np.zeros(4)}, seed=seed
            )
            assert report.clean, report.render()
            np.testing.assert_array_equal(out["out"], [2.0, 3.0, 4.0, 1.0])


@pytest.mark.slow
class TestFuzzSweep:
    def test_many_seeds_all_flag_the_demo_race(self, san_runner):
        report = _fuzz(san_runner, seed=0, schedules=20)
        assert len(report.failing_seeds) == 20

    def test_gemm_demo_flagged_across_seeds(self):
        from repro.sanitize.demos import run_demo

        report = run_demo(
            "racy-gemm", "AccGpuCudaSim", seed=0, schedules=10
        )
        assert len(report.failing_seeds) == 10
