"""The seeded-buggy demos must be flagged; shipped kernels must be clean."""

from __future__ import annotations

import pytest

from repro.sanitize.demos import DEMOS, demo_backends, run_demo
from repro.sanitize.sweep import DEFAULT_SWEEP_BACKENDS, sweep_kernels


class TestDemosFlagged:
    @pytest.mark.parametrize("backend", ["AccCpuThreads", "AccCpuFibers"])
    def test_racy_gemm_flagged_on_sync_backends(self, backend):
        report = run_demo("racy-gemm", backend)
        assert report.counts_by_kind().get("data-race", 0) > 0

    def test_racy_gemm_flagged_on_fuzzed_cuda_sim(self):
        report = run_demo("racy-gemm", "AccGpuCudaSim", seed=0, schedules=2)
        assert report.counts_by_kind().get("data-race", 0) > 0
        assert report.failing_seeds == [0, 1]

    @pytest.mark.parametrize("backend", ["AccCpuSerial", "AccGpuCudaSim"])
    def test_oob_stencil_flagged(self, backend):
        report = run_demo("oob-stencil", backend)
        counts = report.counts_by_kind()
        assert counts.get("negative-index", 0) >= 1
        assert counts.get("out-of-bounds", 0) >= 1

    def test_demo_registry_backends(self):
        for name in DEMOS:
            assert list(demo_backends(name))

    def test_unknown_demo_rejected(self):
        with pytest.raises(ValueError, match="unknown demo"):
            run_demo("not-a-demo")


class TestShippedKernelsClean:
    def test_serial_sweep_clean(self):
        report = sweep_kernels(["AccCpuSerial"])
        assert report.clean, report.render()
        assert len(report.launches) >= 15

    def test_threads_sweep_subset_clean(self):
        report = sweep_kernels(
            ["AccCpuThreads"], only=["gemm", "reduce", "sort", "scan"]
        )
        assert report.clean, report.render()

    @pytest.mark.slow
    def test_default_backends_sweep_clean(self):
        report = sweep_kernels(DEFAULT_SWEEP_BACKENDS)
        assert report.clean, report.render()

    @pytest.mark.slow
    def test_fuzzed_cuda_sim_sweep_clean(self):
        report = sweep_kernels(["AccGpuCudaSim"], seed=1)
        assert report.clean, report.render()
