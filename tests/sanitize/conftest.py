"""Shared helpers for the sanitizer suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import QueueBlocking, create_task_kernel, get_dev_by_idx, mem


class SanitizedRunner:
    """Build a task from host arrays and run it under the sanitizer."""

    def run(
        self,
        acc_type,
        work_div,
        kernel,
        *scalars,
        arrays=None,
        seed=None,
        schedules=1,
    ):
        from repro.sanitize import sanitize_task

        arrays = arrays or {}
        dev = get_dev_by_idx(acc_type, 0)
        queue = QueueBlocking(dev)
        bufs = {}
        for name, host in arrays.items():
            host = np.ascontiguousarray(host)
            buf = mem.alloc(dev, host.shape, dtype=host.dtype)
            mem.copy(queue, buf, host)
            bufs[name] = buf
        args = list(scalars) + [bufs[k] for k in arrays]
        task = create_task_kernel(acc_type, work_div, kernel, *args)
        report = sanitize_task(task, dev, seed=seed, schedules=schedules)
        out = {}
        for name, host in arrays.items():
            res = np.empty_like(np.ascontiguousarray(host))
            mem.copy(queue, res, bufs[name])
            out[name] = res
            bufs[name].free()
        return report, out


@pytest.fixture
def san_runner():
    return SanitizedRunner()
