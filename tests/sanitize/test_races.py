"""Race detection at the kernel level: racy/safe pairs per back-end."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Block, Grid, Threads, Vec, WorkDivMembers, fn_acc, get_idx
from repro.core.index import Blocks
from repro.sanitize import AccessRecorder, SanitizeMonitor, ShadowArray


class MissingBarrierKernel:
    """Each thread writes its shared slot, then reads a neighbour's slot
    without an intervening barrier — the canonical shared-memory race."""

    @fn_acc
    def __call__(self, acc, n, out):
        ti = get_idx(acc, Block, Threads)[0]
        s = acc.shared_mem("t", (n,))
        s[ti] = float(ti + 1)
        out[ti] = s[(ti + 1) % n]


class BarrierSeparatedKernel:
    """The same exchange with the barrier in place — must stay clean."""

    @fn_acc
    def __call__(self, acc, n, out):
        ti = get_idx(acc, Block, Threads)[0]
        s = acc.shared_mem("t", (n,))
        s[ti] = float(ti + 1)
        acc.sync_block_threads()
        out[ti] = s[(ti + 1) % n]


class GlobalCollisionKernel:
    """Every block writes the same global cell — a cross-block race on
    any back-end (there is no grid-wide barrier inside a kernel)."""

    @fn_acc
    def __call__(self, acc, n, out):
        bi = get_idx(acc, Grid, Blocks)[0]
        out[0] = float(bi)


class DisjointWritesKernel:
    @fn_acc
    def __call__(self, acc, n, out):
        i = get_idx(acc, Grid, Threads)[0]
        if i < n:
            out[i] = float(i)


class AtomicCounterKernel:
    """Every thread atomically bumps one counter — never a race."""

    @fn_acc
    def __call__(self, acc, n, out):
        acc.atomic_add(out, 0, 1.0)


class TestSharedMemoryRaces:
    def test_missing_barrier_flagged(self, sync_acc, san_runner):
        wd = WorkDivMembers.make(1, 4, 1)
        report, _ = san_runner.run(
            sync_acc, wd, MissingBarrierKernel(), 4,
            arrays={"out": np.zeros(4)},
        )
        kinds = {f.kind for f in report.findings}
        assert "data-race" in kinds

    def test_barrier_separated_clean(self, sync_acc, san_runner):
        wd = WorkDivMembers.make(1, 4, 1)
        report, out = san_runner.run(
            sync_acc, wd, BarrierSeparatedKernel(), 4,
            arrays={"out": np.zeros(4)},
        )
        assert report.clean, report.render()
        np.testing.assert_array_equal(out["out"], [2.0, 3.0, 4.0, 1.0])

    def test_race_names_shared_array_and_sites(self, sync_acc, san_runner):
        wd = WorkDivMembers.make(1, 4, 1)
        report, _ = san_runner.run(
            sync_acc, wd, MissingBarrierKernel(), 4,
            arrays={"out": np.zeros(4)},
        )
        races = [f for f in report.findings if f.kind == "data-race"]
        assert any(f.array.startswith("shared[t]@block") for f in races)
        assert any(
            f.site is not None and f.other_site is not None for f in races
        )


class TestGlobalMemoryRaces:
    def test_cross_block_collision_flagged(self, any_acc, san_runner):
        wd = WorkDivMembers.make(4, 1, 1)
        report, _ = san_runner.run(
            any_acc, wd, GlobalCollisionKernel(), 4,
            arrays={"out": np.zeros(1)},
        )
        assert {f.kind for f in report.findings} == {"data-race"}

    def test_disjoint_writes_clean(self, any_acc, san_runner):
        wd = WorkDivMembers.make(4, 1, 1)
        report, out = san_runner.run(
            any_acc, wd, DisjointWritesKernel(), 4,
            arrays={"out": np.zeros(4)},
        )
        assert report.clean, report.render()
        np.testing.assert_array_equal(out["out"], np.arange(4.0))

    def test_atomic_updates_clean(self, any_acc, san_runner):
        wd = WorkDivMembers.make(4, 1, 1)
        report, out = san_runner.run(
            any_acc, wd, AtomicCounterKernel(), 4,
            arrays={"out": np.zeros(1)},
        )
        assert report.clean, report.render()
        assert out["out"][0] == 4.0


class _Blk:
    def __init__(self, idx):
        self.block_idx = idx


@settings(max_examples=50, deadline=None)
@given(
    phase1=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 7)), max_size=12
    ),
    phase2=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 7), st.booleans()),
        max_size=12,
    ),
)
def test_barrier_separated_patterns_never_race(phase1, phase2):
    """Property: any write pattern in phase 1 followed by a block-wide
    barrier and any access pattern in phase 2 is race-free — unless
    phase 2 itself collides."""
    wd = WorkDivMembers.make(1, 4, 1)
    rec = AccessRecorder(wd)
    rec.monitor = SanitizeMonitor(rec)
    base = np.zeros(8)
    s = ShadowArray.wrap_root(base, rec.track("a", base, "global"))

    p1_writers = {}  # cell -> set of threads
    for thread, cell in phase1:
        rec.monitor.thread_begin(_Blk(Vec(0)), Vec(thread))
        s[cell] = 1.0
        p1_writers.setdefault(cell, set()).add(thread)
    # Block-wide barrier: every phase-2 access runs at epoch 1.
    accesses = {}  # cell -> list of (thread, is_write)
    for thread, cell, is_write in phase2:
        rec.monitor.thread_begin(_Blk(Vec(0)), Vec(thread))
        rec.monitor._tls.ctx.epoch = 1
        if is_write:
            s[cell] = 2.0
        else:
            _ = s[cell]
        accesses.setdefault(cell, []).append((thread, is_write))

    collide = any(len(ts) > 1 for ts in p1_writers.values()) or any(
        t1 != t2 and (w1 or w2)
        for pairs in accesses.values()
        for i, (t1, w1) in enumerate(pairs)
        for t2, w2 in pairs[i + 1 :]
    )
    if not collide:
        assert rec.findings == [], [f.describe() for f in rec.findings]
