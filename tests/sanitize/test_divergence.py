"""Barrier divergence: detected by the sanitizer, survived by engines."""

from __future__ import annotations

import numpy as np

from repro import Block, Threads, WorkDivMembers, fn_acc, get_idx


class EarlyExitKernel:
    """Thread 0 skips the barrier entirely; siblings sync once."""

    @fn_acc
    def __call__(self, acc, n, out):
        ti = get_idx(acc, Block, Threads)[0]
        out[ti] = 1.0
        if ti == 0:
            return
        acc.sync_block_threads()
        out[ti] = 2.0


class UniformSyncKernel:
    @fn_acc
    def __call__(self, acc, n, out):
        ti = get_idx(acc, Block, Threads)[0]
        out[ti] = 1.0
        acc.sync_block_threads()
        out[ti] = 2.0


class TestDivergence:
    def test_divergent_sync_flagged(self, sync_acc, san_runner):
        wd = WorkDivMembers.make(1, 4, 1)
        report, out = san_runner.run(
            sync_acc, wd, EarlyExitKernel(), 4, arrays={"out": np.zeros(4)}
        )
        kinds = [f.kind for f in report.findings]
        assert "barrier-divergence" in kinds
        # The engines release the barrier on divergent exit (no deadlock,
        # no exception): the block still completes.
        np.testing.assert_array_equal(out["out"], [1.0, 2.0, 2.0, 2.0])

    def test_divergence_finding_names_epochs(self, sync_acc, san_runner):
        wd = WorkDivMembers.make(1, 4, 1)
        report, _ = san_runner.run(
            sync_acc, wd, EarlyExitKernel(), 4, arrays={"out": np.zeros(4)}
        )
        div = [f for f in report.findings if f.kind == "barrier-divergence"]
        assert len(div) == 1
        assert "0 vs 1" in div[0].detail
        assert div[0].block == (0,)

    def test_uniform_sync_clean(self, sync_acc, san_runner):
        wd = WorkDivMembers.make(1, 4, 1)
        report, out = san_runner.run(
            sync_acc, wd, UniformSyncKernel(), 4, arrays={"out": np.zeros(4)}
        )
        assert report.clean, report.render()
        np.testing.assert_array_equal(out["out"], np.full(4, 2.0))

    def test_single_thread_blocks_never_diverge(self, any_acc, san_runner):
        wd = WorkDivMembers.make(4, 1, 1)

        from repro import Grid

        class OneThread:
            @fn_acc
            def __call__(self, acc, n, out):
                out[get_idx(acc, Grid, Threads)[0]] = 1.0

        report, _ = san_runner.run(
            any_acc, wd, OneThread(), 4, arrays={"out": np.zeros(4)}
        )
        assert not [
            f for f in report.findings if f.kind == "barrier-divergence"
        ]
