"""The compiled-vs-interpreted cross-check sweep and its CLI."""

import os

import pytest

from repro.sanitize import sweep_crosscheck
from repro.sanitize.cli import main as sanitize_main


@pytest.fixture(autouse=True)
def fresh_compile_state(monkeypatch):
    from repro.compile import reset_compile_stats
    from repro.runtime import clear_plan_cache

    monkeypatch.delenv("REPRO_SCHEDULER", raising=False)
    monkeypatch.delenv("REPRO_COMPILE_CROSSCHECK", raising=False)
    clear_plan_cache()
    reset_compile_stats()
    yield
    clear_plan_cache()
    reset_compile_stats()


class TestSweep:
    def test_full_sweep_is_clean(self):
        report = sweep_crosscheck()
        assert report.clean
        # Every family runs: compilable ones through the vectorized
        # path (each launch cross-checked), the rest via classified
        # fallbacks — nothing crashes unclassified.
        assert len(report.ran) == 12
        assert report.compiled_launches > 0
        assert report.crosschecks == report.compiled_launches
        assert report.fallbacks  # sweep includes non-compilable families
        # Every reason is a classified slug, never a raw traceback.
        assert all(
            r and " " not in r and r == r.lower() for r in report.fallbacks
        )

    def test_only_restricts_families(self):
        report = sweep_crosscheck(only=["axpy"])
        assert report.clean
        assert [k for k, _ in report.ran] == ["axpy"]
        assert report.compiled_launches > 0

    def test_env_restored_after_sweep(self):
        sweep_crosscheck(only=["axpy"])
        assert "REPRO_SCHEDULER" not in os.environ
        assert "REPRO_COMPILE_CROSSCHECK" not in os.environ

    def test_render_mentions_verdict(self):
        report = sweep_crosscheck(only=["axpy", "reduce"])
        out = report.render()
        assert "CLEAN" in out
        assert "crosschecks" in out

    def test_failure_reported_not_raised(self, monkeypatch):
        from repro.core.errors import CompileCrossCheckError
        import repro.sanitize.sweep as sweep_mod

        def boom(acc, device, queue):
            raise CompileCrossCheckError("forced mismatch")

        monkeypatch.setattr(
            sweep_mod, "KERNEL_SWEEP", (("boom", boom),)
        )
        report = sweep_crosscheck()
        assert not report.clean
        assert "forced mismatch" in report.failures[0]
        assert "FAILED" in report.render()


class TestCli:
    def test_crosscheck_subcommand_exit_zero(self, capsys):
        rc = sanitize_main(["crosscheck", "--only", "axpy"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "CLEAN" in out
