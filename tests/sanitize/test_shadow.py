"""ShadowArray mechanics: recording, attribution, numpy interop."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Vec, WorkDivMembers
from repro.sanitize import AccessRecorder, SanitizeMonitor, ShadowArray
from repro.sanitize.shadow import SanitizedAccessError


class _Block:
    def __init__(self, idx):
        self.block_idx = idx


def make_recorder(blocks=1, threads=4):
    wd = WorkDivMembers.make(blocks, threads, 1)
    rec = AccessRecorder(wd)
    rec.monitor = SanitizeMonitor(rec)
    return rec


def enter_thread(rec, block=0, thread=0):
    rec.monitor.thread_begin(_Block(Vec(block)), Vec(thread))


def wrap(rec, base, name="a"):
    return ShadowArray.wrap_root(base, rec.track(name, base, "global"))


class TestMetadata:
    def test_shape_dtype_len(self):
        rec = make_recorder()
        s = wrap(rec, np.zeros((3, 5)))
        assert s.shape == (3, 5)
        assert s.dtype == np.float64
        assert s.ndim == 2 and s.size == 15 and len(s) == 3

    def test_asarray_matches_base(self):
        rec = make_recorder()
        base = np.arange(6.0)
        enter_thread(rec)
        assert np.array_equal(np.asarray(wrap(rec, base)), base)


class TestRecording:
    def test_same_thread_rw_is_clean(self):
        rec = make_recorder()
        s = wrap(rec, np.zeros(8))
        enter_thread(rec, thread=0)
        s[3] = 1.0
        assert s[3] == 1.0
        assert rec.findings == []

    def test_write_write_same_epoch_races(self):
        rec = make_recorder()
        s = wrap(rec, np.zeros(8))
        enter_thread(rec, thread=0)
        s[3] = 1.0
        enter_thread(rec, thread=1)
        s[3] = 2.0
        kinds = [f.kind for f in rec.findings]
        assert kinds == ["data-race"]

    def test_barrier_orders_accesses(self):
        rec = make_recorder()
        s = wrap(rec, np.zeros(8))
        enter_thread(rec, thread=0)
        s[3] = 1.0
        rec.monitor.on_sync(None)
        enter_thread(rec, thread=1)
        rec.monitor._tls.ctx.epoch = 1  # sibling passed the same barrier
        assert s[3] == 1.0
        assert rec.findings == []

    def test_view_attributes_to_root_cells(self):
        rec = make_recorder()
        s = wrap(rec, np.zeros((4, 4)))
        enter_thread(rec, thread=0)
        row = s[2]          # lazy basic-index view
        row[1] = 5.0        # writes root cell (2, 1)
        enter_thread(rec, thread=1)
        s[2, 1] = 6.0
        assert len(rec.findings) == 1
        assert rec.findings[0].cell == (2, 1)

    def test_disjoint_cells_do_not_race(self):
        rec = make_recorder()
        s = wrap(rec, np.zeros(8))
        enter_thread(rec, thread=0)
        s[0] = 1.0
        enter_thread(rec, thread=1)
        s[1] = 2.0
        assert rec.findings == []

    def test_read_read_is_clean(self):
        rec = make_recorder()
        s = wrap(rec, np.arange(8.0))
        enter_thread(rec, thread=0)
        _ = s[2]
        enter_thread(rec, thread=1)
        _ = s[2]
        assert rec.findings == []

    def test_cross_block_write_write_races(self):
        rec = make_recorder(blocks=2, threads=1)
        s = wrap(rec, np.zeros(4))
        rec.monitor.thread_begin(_Block(Vec(0)), Vec(0))
        s[0] = 1.0
        rec.monitor.thread_begin(_Block(Vec(1)), Vec(0))
        s[0] = 2.0
        assert [f.kind for f in rec.findings] == ["data-race"]

    def test_atomic_accesses_do_not_race(self):
        rec = make_recorder()
        s = wrap(rec, np.zeros(4))
        enter_thread(rec, thread=0)
        with rec.monitor.atomic_section():
            s[0] = s[0] + 1.0
        enter_thread(rec, thread=1)
        with rec.monitor.atomic_section():
            s[0] = s[0] + 1.0
        assert rec.findings == []

    def test_iadd_keeps_inplace_semantics(self):
        rec = make_recorder()
        base = np.zeros(4)
        s = wrap(rec, base)
        enter_thread(rec)
        s += 2.0
        assert np.array_equal(base, np.full(4, 2.0))

    def test_advanced_index_returns_plain_copy(self):
        rec = make_recorder()
        s = wrap(rec, np.arange(8.0))
        enter_thread(rec)
        picked = s[np.array([1, 3])]
        assert type(picked) is np.ndarray
        assert np.array_equal(picked, [1.0, 3.0])


class TestIndexFindings:
    def test_negative_index_flagged_and_raises(self):
        rec = make_recorder()
        s = wrap(rec, np.arange(8.0))
        enter_thread(rec)
        with pytest.raises(SanitizedAccessError):
            _ = s[-1]
        assert [f.kind for f in rec.findings] == ["negative-index"]

    def test_out_of_bounds_flagged_and_raises(self):
        rec = make_recorder()
        s = wrap(rec, np.arange(8.0))
        enter_thread(rec)
        with pytest.raises(SanitizedAccessError):
            s[8] = 1.0
        assert [f.kind for f in rec.findings] == ["out-of-bounds"]

    def test_finding_carries_source_site(self):
        rec = make_recorder()
        s = wrap(rec, np.zeros(4))
        enter_thread(rec, thread=0)
        s[1] = 1.0
        enter_thread(rec, thread=1)
        s[1] = 2.0
        f = rec.findings[0]
        assert f.site is not None and f.site.filename == __file__
        assert "s[1] = 2.0" in (f.site.source_line or "")
