"""Reports, activation paths, observer/timeline integration, CLI."""

from __future__ import annotations

import pytest

from repro import (
    Grid,
    QueueBlocking,
    Threads,
    WorkDivMembers,
    accelerator,
    create_task_kernel,
    fn_acc,
    get_dev_by_idx,
    get_idx,
    mem,
    observe,
)
from repro.core.errors import SanitizerError
from repro.runtime.instrument import ExecutionObserver
from repro.sanitize import SANITIZE_ENV, enabled, sanitize_active, session_report


class RacyKernel:
    @fn_acc
    def __call__(self, acc, n, out):
        bi = get_idx(acc, Grid, Threads)[0]
        out[0] = float(bi)


class CleanKernel:
    @fn_acc
    def __call__(self, acc, n, out):
        i = get_idx(acc, Grid, Threads)[0]
        if i < n:
            out[i] = float(i)


def _launch(kernel, n=4):
    acc = accelerator("AccCpuSerial")
    dev = get_dev_by_idx(acc, 0)
    q = QueueBlocking(dev)
    out = mem.alloc(dev, n)
    mem.memset(q, out, 0.0)
    wd = WorkDivMembers.make(n, 1, 1)
    q.enqueue(create_task_kernel(acc, wd, kernel, n, out))
    return out


class TestActivation:
    def test_inactive_by_default(self):
        assert not sanitize_active()

    def test_enabled_context_collects(self):
        with enabled(label="t") as report:
            assert sanitize_active()
            _launch(RacyKernel())
        assert not sanitize_active()
        assert not report.clean
        assert report.launches[0].kernel == "RacyKernel"

    def test_env_var_activates(self, monkeypatch):
        monkeypatch.setenv(SANITIZE_ENV, "1")
        assert sanitize_active()
        before = len(session_report().launches)
        _launch(CleanKernel())
        assert len(session_report().launches) == before + 1

    def test_clean_launch_clean_report(self):
        with enabled() as report:
            _launch(CleanKernel())
        assert report.clean
        report.raise_if_findings()  # no-op when clean

    def test_raise_if_findings(self):
        with enabled() as report:
            _launch(RacyKernel())
        with pytest.raises(SanitizerError, match="data-race"):
            report.raise_if_findings()


class TestReportContents:
    def test_render_names_kernel_backend_and_site(self):
        with enabled() as report:
            _launch(RacyKernel())
        text = report.render()
        assert "RacyKernel" in text and "AccCpuSerial" in text
        assert "data-race" in text and __file__ in text
        assert "out[0] = float(bi)" in text

    def test_counts_by_kind(self):
        with enabled() as report:
            _launch(RacyKernel())
        assert set(report.counts_by_kind()) == {"data-race"}

    def test_findings_dedup_with_count(self):
        with enabled() as report:
            _launch(RacyKernel(), n=6)
        races = [f for f in report.findings if f.kind == "data-race"]
        assert len(races) == 1  # one site pair, deduplicated
        assert races[0].count == 5


class TestObserverIntegration:
    def test_on_sanitizer_report_hook_fires(self):
        seen = []

        class Obs(ExecutionObserver):
            def on_sanitizer_report(self, plan, record):
                seen.append(record)

        with observe(Obs()):
            with enabled():
                _launch(RacyKernel())
        assert len(seen) == 1
        assert seen[0].kernel == "RacyKernel" and seen[0].findings

    def test_timeline_records_sanitize_event(self):
        from repro.trace.timeline import trace_execution

        with trace_execution() as tl:
            with enabled():
                _launch(RacyKernel())
        ev = [e for e in tl.events if e.kind == "sanitize"]
        assert len(ev) == 1
        assert "data-race" in ev[0].detail

    def test_launch_begin_end_still_fire_when_sanitized(self):
        from repro import CountingObserver

        with observe(CountingObserver()) as stats:
            with enabled():
                _launch(CleanKernel())
        assert stats.launches == 1


class TestCli:
    def test_kernels_subcommand_clean(self, capsys):
        from repro.sanitize.cli import main

        rc = main(["kernels", "--backend", "AccCpuSerial", "--only", "axpy"])
        assert rc == 0
        assert "kernel sweep clean" in capsys.readouterr().out

    def test_demos_subcommand_flags(self, capsys):
        from repro.sanitize.cli import main

        rc = main(["demos", "oob-stencil", "--backend", "AccCpuSerial"])
        assert rc == 0
        assert "flagged as intended" in capsys.readouterr().out

    def test_run_subcommand_on_script(self, tmp_path, capsys):
        from repro.sanitize.cli import main

        script = tmp_path / "buggy.py"
        script.write_text(
            "import numpy as np\n"
            "from repro import (QueueBlocking, WorkDivMembers, accelerator,\n"
            "    create_task_kernel, fn_acc, get_dev_by_idx, get_idx, mem,\n"
            "    Grid, Threads)\n"
            "class K:\n"
            "    @fn_acc\n"
            "    def __call__(self, acc, n, out):\n"
            "        out[0] = float(get_idx(acc, Grid, Threads)[0])\n"
            "acc = accelerator('AccCpuSerial')\n"
            "dev = get_dev_by_idx(acc, 0)\n"
            "q = QueueBlocking(dev)\n"
            "out = mem.alloc(dev, 1)\n"
            "mem.memset(q, out, 0.0)\n"
            "q.enqueue(create_task_kernel(\n"
            "    acc, WorkDivMembers.make(4, 1, 1), K(), 4, out))\n"
        )
        rc = main(["run", str(script)])
        assert rc == 1
        assert "data-race" in capsys.readouterr().out
