"""Out-of-bounds and negative-index detection through real launches."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Grid, Threads, WorkDivMembers, fn_acc, get_idx
from repro.core.errors import ExtentError, KernelError


class ReadPastEndKernel:
    @fn_acc
    def __call__(self, acc, n, src, dst):
        i = get_idx(acc, Grid, Threads)[0]
        if i < n:
            dst[i] = src[i + 1]  # BUG at i == n-1


class NegativeIndexKernel:
    @fn_acc
    def __call__(self, acc, n, src, dst):
        i = get_idx(acc, Grid, Threads)[0]
        if i < n:
            dst[i] = src[i - 1]  # BUG at i == 0


class TestSanitizedBounds:
    def test_read_past_end_flagged(self, any_acc, san_runner):
        wd = WorkDivMembers.make(4, 1, 1)
        report, _ = san_runner.run(
            any_acc, wd, ReadPastEndKernel(), 4,
            arrays={"src": np.arange(4.0), "dst": np.zeros(4)},
        )
        oob = [f for f in report.findings if f.kind == "out-of-bounds"]
        assert len(oob) == 1
        assert oob[0].array == "src"
        assert "index 4" in oob[0].detail

    def test_negative_index_flagged(self, any_acc, san_runner):
        wd = WorkDivMembers.make(4, 1, 1)
        report, _ = san_runner.run(
            any_acc, wd, NegativeIndexKernel(), 4,
            arrays={"src": np.arange(4.0), "dst": np.zeros(4)},
        )
        neg = [f for f in report.findings if f.kind == "negative-index"]
        assert len(neg) == 1
        assert neg[0].array == "src"
        assert neg[0].block == (0,)

    def test_other_blocks_still_run(self, any_acc, san_runner):
        # The faulting block aborts; every other block completes.
        wd = WorkDivMembers.make(4, 1, 1)
        report, out = san_runner.run(
            any_acc, wd, NegativeIndexKernel(), 4,
            arrays={"src": np.arange(4.0), "dst": np.zeros(4)},
        )
        assert not report.clean
        np.testing.assert_array_equal(out["dst"][1:], [0.0, 1.0, 2.0])

    def test_in_bounds_clean(self, any_acc, san_runner):
        class Clamped:
            @fn_acc
            def __call__(self, acc, n, src, dst):
                i = get_idx(acc, Grid, Threads)[0]
                if 0 < i < n - 1:
                    dst[i] = src[i - 1] + src[i + 1]

        wd = WorkDivMembers.make(4, 1, 1)
        report, _ = san_runner.run(
            any_acc, wd, Clamped(), 4,
            arrays={"src": np.arange(4.0), "dst": np.zeros(4)},
        )
        assert report.clean, report.render()


class TestUnsanitizedGuard:
    """Satellite: negative kernel indices are rejected even without the
    sanitizer — numpy's wrap-around silently hides OOB bugs."""

    def test_negative_index_raises_extent_error(self, any_acc, runner):
        wd = WorkDivMembers.make(4, 1, 1)
        with pytest.raises(KernelError) as exc_info:
            runner.run(
                any_acc, wd, NegativeIndexKernel(), 4,
                arrays={"src": np.arange(4.0), "dst": np.zeros(4)},
            )
        cause = exc_info.value.__cause__
        seen = set()
        while cause is not None and id(cause) not in seen:
            seen.add(id(cause))
            if isinstance(cause, ExtentError):
                break
            cause = cause.__cause__
        assert isinstance(cause, ExtentError)
        assert "-1" in str(cause)

    def test_positive_indexing_unaffected(self, any_acc, runner):
        class Fine:
            @fn_acc
            def __call__(self, acc, n, src, dst):
                i = get_idx(acc, Grid, Threads)[0]
                if i < n:
                    dst[i] = src[i] * 2.0

        wd = WorkDivMembers.make(4, 1, 1)
        out = runner.run(
            any_acc, wd, Fine(), 4,
            arrays={"src": np.arange(4.0), "dst": np.zeros(4)},
        )
        np.testing.assert_array_equal(out["dst"], [0.0, 2.0, 4.0, 6.0])
