"""enqueue_callback robustness: a raising callback must neither kill
the drain thread nor poison the queue (regression for the serving
gateway's lane-completion path)."""

from __future__ import annotations

import threading

import pytest

from repro import accelerator, get_dev_by_idx
from repro.core.errors import KernelError, QueueError
from repro.queue.queue import QueueBlocking, QueueNonBlocking


@pytest.fixture
def device():
    return get_dev_by_idx(accelerator("AccCpuSerial"), 0)


@pytest.fixture
def queue(device):
    q = QueueNonBlocking(device)
    yield q
    # Drain leftovers without letting a deliberately-raised test error
    # escape the fixture.
    try:
        q.destroy()
    except (KernelError, QueueError):
        pass


class TestCallbackHappyPath:
    def test_callback_runs_in_order(self, queue):
        order = []
        queue.enqueue(lambda: order.append("task"))
        queue.enqueue_callback(lambda: order.append("callback"))
        queue.enqueue(lambda: order.append("after"))
        queue.wait()
        assert order == ["task", "callback", "after"]

    def test_callback_on_blocking_queue_runs_inline(self, device):
        ran = []
        q = QueueBlocking(device)
        q.enqueue_callback(lambda: ran.append(True))
        assert ran == [True]


class TestRaisingCallback:
    def test_error_surfaces_on_wait(self, queue):
        def bad():
            raise ValueError("callback exploded")

        queue.enqueue_callback(bad)
        with pytest.raises(QueueError, match="callback"):
            queue.wait()

    def test_error_chains_original(self, queue):
        def bad():
            raise ValueError("the original")

        queue.enqueue_callback(bad)
        with pytest.raises(QueueError) as exc_info:
            queue.wait()
        assert isinstance(exc_info.value.__cause__, ValueError)

    def test_drain_thread_survives(self, queue):
        """Later tasks still run after a callback raised — the drain
        thread must not be wedged or dead."""
        ran = []

        def bad():
            raise RuntimeError("boom")

        queue.enqueue_callback(bad)
        queue.enqueue(lambda: ran.append("task_after"))
        queue.enqueue_callback(lambda: ran.append("cb_after"))
        with pytest.raises(QueueError):
            queue.wait()
        assert ran == ["task_after", "cb_after"]

    def test_queue_not_poisoned_for_enqueue(self, queue):
        """A raising callback must not make the next enqueue throw the
        way a failing *task* does."""

        def bad():
            raise RuntimeError("boom")

        queue.enqueue_callback(bad)
        ran = threading.Event()
        queue.enqueue(ran.set)  # must not raise
        assert ran.wait(timeout=5)

    def test_error_reported_once(self, queue):
        def bad():
            raise RuntimeError("boom")

        queue.enqueue_callback(bad)
        with pytest.raises(QueueError):
            queue.wait()
        queue.wait()  # second wait: clean

    def test_multiple_errors_aggregated(self, queue):
        for i in range(3):
            queue.enqueue_callback(
                lambda i=i: (_ for _ in ()).throw(ValueError(f"cb{i}"))
            )
        with pytest.raises(QueueError, match="3 enqueued callback"):
            queue.wait()


class TestCallbackVsTaskPoison:
    def test_task_failure_still_poisons(self, queue):
        """The task poison contract is unchanged by the callback fix."""

        def bad_task():
            raise RuntimeError("task boom")

        queue.enqueue(bad_task)
        with pytest.raises(KernelError):
            queue.wait()

    def test_callback_runs_on_poisoned_queue(self, queue):
        """Completion callbacks are delivery guarantees: they run even
        after an earlier task failed, so an awaiter is never stranded."""
        delivered = threading.Event()

        def bad_task():
            raise RuntimeError("task boom")

        queue.enqueue(bad_task)
        queue.enqueue_callback(delivered.set)
        assert delivered.wait(timeout=5)
        with pytest.raises(KernelError):
            queue.wait()

    def test_skipped_tasks_after_poison_but_callbacks_run(self, queue):
        ran = []
        queue.enqueue(lambda: (_ for _ in ()).throw(RuntimeError("x")))
        queue.enqueue(lambda: ran.append("task"))  # skipped: poisoned
        queue.enqueue_callback(lambda: ran.append("cb"))  # still runs
        with pytest.raises(KernelError):
            queue.wait()
        assert ran == ["cb"]
