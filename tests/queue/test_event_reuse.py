"""Event reuse semantics: record + wait + re-record, across queues and
under the process-pool scheduler — and the ``wait_queue_for`` /
``enqueue_after`` alias contract.

One :class:`~repro.queue.Event` object is a reusable marker (CUDA
semantics): every ``record`` re-arms it, ``wait`` targets the *latest*
record, and a wait-gate captures the record current at gate-creation
time so a later re-record never retroactively widens an existing
dependency.
"""

import threading
import time

import numpy as np
import pytest

from repro import mem
from repro.acc.cpu import AccCpuOmp2Blocks, AccCpuSerial
from repro.core.kernel import create_task_kernel, fn_acc
from repro.core.workdiv import WorkDivMembers
from repro.dev.manager import get_dev_by_idx
from repro.queue import (
    Event,
    QueueBlocking,
    QueueNonBlocking,
    enqueue_after,
    wait_queue_for,
)
from repro.runtime import clear_plan_cache, get_plan, shutdown_schedulers
from repro.runtime.procpool import reset_worker_state
from repro.runtime.scheduler import PROCESS_WORKERS_ENV, SCHEDULER_ENV


@pytest.fixture
def dev():
    return get_dev_by_idx(AccCpuSerial, 0)


class TestAliasContract:
    """``wait_queue_for`` must stay a shim over ``enqueue_after``."""

    def test_alias_delegates_not_reimplements(self, dev, monkeypatch):
        """The paper-era spelling routes through the canonical one, so
        the two can never drift apart semantically."""
        calls = []
        import repro.queue.event as event_mod

        monkeypatch.setattr(
            event_mod,
            "enqueue_after",
            lambda queue, event: calls.append((queue, event)),
        )
        q = QueueBlocking(dev)
        ev = Event(dev)
        event_mod.wait_queue_for(q, ev)
        assert calls == [(q, ev)]

    def test_both_spellings_gate_identically(self, dev):
        """Functional equivalence: either spelling defers queue B's task
        until the event in queue A fires."""
        for gate in (wait_queue_for, enqueue_after):
            order = []
            qa, qb = QueueNonBlocking(dev), QueueNonBlocking(dev)
            ev = Event(dev)
            qa.enqueue(lambda: (time.sleep(0.05), order.append("a"))[-1])
            ev.record(qa)
            gate(qb, ev)
            qb.enqueue(lambda: order.append("b"))
            qb.wait()
            assert order == ["a", "b"], gate.__name__
            qa.destroy()
            qb.destroy()


class TestRecordWaitReRecord:
    def test_wait_targets_latest_record(self, dev):
        """After a re-record, ``wait`` blocks until the *new* record
        fires — completion of the first round does not satisfy it."""
        q = QueueNonBlocking(dev)
        ev = Event(dev)
        ev.record(q)
        assert ev.wait(timeout=2.0)
        assert ev.record_count == 1 and ev.fired_count == 1

        q.enqueue(lambda: time.sleep(0.2))
        ev.record(q)
        # The first fire must not satisfy the second record.
        assert ev.wait(timeout=0.02) is False
        assert ev.wait(timeout=5.0)
        assert ev.record_count == 2 and ev.fired_count == 2
        q.destroy()

    def test_re_record_into_a_different_queue(self, dev):
        """The same event object marks progress of whichever queue it
        was last recorded into."""
        q1, q2 = QueueNonBlocking(dev), QueueNonBlocking(dev)
        hits = []
        ev = Event(dev)
        q1.enqueue(lambda: hits.append("q1"))
        ev.record(q1)
        assert ev.wait(timeout=2.0)

        q2.enqueue(lambda: (time.sleep(0.05), hits.append("q2"))[-1])
        ev.record(q2)
        assert ev.wait(timeout=2.0)
        assert hits == ["q1", "q2"]
        q1.destroy()
        q2.destroy()

    def test_gate_pins_record_at_creation(self, dev):
        """A dependency taken on record N stays a dependency on record N
        even if the event is re-recorded before the gate opens."""
        qa, qb = QueueNonBlocking(dev), QueueNonBlocking(dev)
        ev = Event(dev)
        release = threading.Event()
        order = []

        qa.enqueue(lambda: (release.wait(5.0), order.append("a1"))[-1])
        ev.record(qa)              # record #1 (not yet fired)
        enqueue_after(qb, ev)      # gate pinned to record #1
        qb.enqueue(lambda: order.append("b"))

        qa.enqueue(lambda: order.append("a2"))
        ev.record(qa)              # record #2, behind a1/a2

        release.set()
        qb.wait()
        qa.wait()
        # b needed only record #1 (a1); it must not have waited for a2's
        # round... but in-order qa semantics put a1 first regardless —
        # the observable contract is simply that b ran after a1.
        assert order.index("b") > order.index("a1")
        assert ev.wait(timeout=2.0)
        assert ev.record_count == 2 and ev.fired_count == 2
        qa.destroy()
        qb.destroy()

    def test_reuse_across_many_rounds(self, dev):
        """A pipelined loop reusing one event per iteration (the classic
        double-buffer pattern) stays consistent over many rounds."""
        q = QueueNonBlocking(dev)
        ev = Event(dev)
        counter = {"n": 0}
        for i in range(25):
            q.enqueue(lambda: counter.__setitem__("n", counter["n"] + 1))
            ev.record(q)
            assert ev.wait(timeout=2.0)
            assert counter["n"] == i + 1
        assert ev.record_count == 25 == ev.fired_count
        q.destroy()


class TestReuseUnderProcessPool:
    """The same reuse contract when the gated work runs in worker
    *processes* (shared-memory buffers, processes scheduler)."""

    @pytest.fixture(autouse=True)
    def _procpool_env(self, monkeypatch):
        monkeypatch.setenv(SCHEDULER_ENV, "processes")
        monkeypatch.setenv(PROCESS_WORKERS_ENV, "2")
        clear_plan_cache()
        yield
        clear_plan_cache()
        shutdown_schedulers()
        reset_worker_state()

    def test_record_wait_re_record_with_process_kernels(self):
        dev = get_dev_by_idx(AccCpuOmp2Blocks)
        buf = mem.alloc(dev, 64, shm=True)
        buf.as_numpy()[:] = 0.0
        wd = WorkDivMembers.make(4, 1, 16)
        task = create_task_kernel(AccCpuOmp2Blocks, wd, _add_one, buf)
        assert get_plan(task, dev).schedule == "processes"

        q = QueueNonBlocking(dev)
        ev = Event(dev)
        for round_no in range(3):
            q.enqueue(task)
            ev.record(q)
            assert ev.wait(timeout=30.0)
            # The event firing proves the worker-process writes landed.
            assert np.all(buf.as_numpy() == float(round_no + 1))
        assert ev.record_count == 3 == ev.fired_count
        q.destroy()
        buf.free()


@fn_acc
def _add_one(acc, b):
    from repro.core.index import Blocks, Grid, get_idx

    blk = get_idx(acc, Grid, Blocks)[0]
    b[blk * 16 : (blk + 1) * 16] += 1.0
