"""Queues: in-order execution, blocking vs non-blocking, errors."""

import threading
import time

import pytest

from repro import AccCpuSerial, get_dev_by_idx
from repro.core.errors import KernelError, QueueError
from repro.queue import QueueBlocking, QueueNonBlocking, enqueue, wait


@pytest.fixture
def dev():
    return get_dev_by_idx(AccCpuSerial, 0)


class Recorder:
    def __init__(self):
        self.events = []
        self.lock = threading.Lock()

    def task(self, tag, delay=0.0):
        def run():
            if delay:
                time.sleep(delay)
            with self.lock:
                self.events.append(tag)

        return run


class TestBlockingQueue:
    def test_executes_immediately(self, dev):
        rec = Recorder()
        q = QueueBlocking(dev)
        q.enqueue(rec.task("a"))
        assert rec.events == ["a"]

    def test_wait_is_noop(self, dev):
        q = QueueBlocking(dev)
        q.wait()

    def test_task_objects_with_execute(self, dev):
        class T:
            ran_on = None

            def execute(self, device):
                T.ran_on = device

        q = QueueBlocking(dev)
        q.enqueue(T())
        assert T.ran_on is dev

    def test_bad_task_rejected(self, dev):
        q = QueueBlocking(dev)
        with pytest.raises(QueueError):
            q.enqueue(42)

    def test_destroyed_queue_rejects(self, dev):
        q = QueueBlocking(dev)
        q.destroy()
        with pytest.raises(QueueError):
            q.enqueue(lambda: None)


class TestNonBlockingQueue:
    def test_in_order_execution(self, dev):
        """Paper 3.4.5: no operation begins before all previously
        issued operations completed."""
        rec = Recorder()
        q = QueueNonBlocking(dev)
        q.enqueue(rec.task("slow", delay=0.05))
        q.enqueue(rec.task("fast"))
        q.wait()
        assert rec.events == ["slow", "fast"]
        q.destroy()

    def test_enqueue_does_not_block_host(self, dev):
        rec = Recorder()
        q = QueueNonBlocking(dev)
        t0 = time.perf_counter()
        q.enqueue(rec.task("x", delay=0.2))
        host_resumed_after = time.perf_counter() - t0
        assert host_resumed_after < 0.1  # host resumed while device works
        q.wait()
        assert rec.events == ["x"]
        q.destroy()

    def test_async_error_reported_on_wait(self, dev):
        q = QueueNonBlocking(dev)

        def boom():
            raise RuntimeError("async failure")

        q.enqueue(boom)
        with pytest.raises(KernelError) as exc:
            q.wait()
        assert isinstance(exc.value.__cause__, RuntimeError)
        q.destroy()

    def test_error_skips_later_tasks(self, dev):
        rec = Recorder()
        q = QueueNonBlocking(dev)

        def boom():
            raise RuntimeError("x")

        q.enqueue(rec.task("before"))
        q.enqueue(boom)
        q.enqueue(rec.task("after"))
        with pytest.raises(KernelError):
            q.wait()
        assert rec.events == ["before"]
        q.destroy()

    def test_queue_usable_after_error(self, dev):
        rec = Recorder()
        q = QueueNonBlocking(dev)
        q.enqueue(lambda: (_ for _ in ()).throw(RuntimeError("x")))
        with pytest.raises(KernelError):
            q.wait()
        q.enqueue(rec.task("recovered"))
        q.wait()
        assert rec.events == ["recovered"]
        q.destroy()

    def test_many_tasks_ordered(self, dev):
        rec = Recorder()
        q = QueueNonBlocking(dev)
        for i in range(200):
            q.enqueue(rec.task(i))
        q.wait()
        assert rec.events == list(range(200))
        q.destroy()

    def test_destroy_drains(self, dev):
        rec = Recorder()
        q = QueueNonBlocking(dev)
        q.enqueue(rec.task("t", delay=0.05))
        q.destroy()
        assert rec.events == ["t"]

    def test_context_manager(self, dev):
        rec = Recorder()
        with QueueNonBlocking(dev) as q:
            q.enqueue(rec.task("cm"))
        assert rec.events == ["cm"]


class TestFreeFunctions:
    def test_enqueue_and_wait(self, dev):
        rec = Recorder()
        q = QueueNonBlocking(dev)
        enqueue(q, rec.task("f"))
        wait(q)
        assert rec.events == ["f"]
        q.destroy()
