"""Event sim-time stamps (cudaEventElapsedTime analogue)."""

import pytest

from repro import AccGpuCudaSim, get_dev_by_idx
from repro.core.errors import QueueError
from repro.queue import Event, QueueBlocking, elapsed_sim_time


@pytest.fixture
def gpu():
    return get_dev_by_idx(AccGpuCudaSim, 0)


class TestSimTimeStamps:
    def test_stamps_bracket_modeled_work(self, gpu):
        import numpy as np

        from repro import mem

        q = QueueBlocking(gpu)
        start = Event(gpu)
        stop = Event(gpu)
        start.record(q)
        # A host->device copy advances the simulated clock (PCIe model).
        buf = mem.alloc(gpu, 1 << 16)
        mem.copy(q, buf, np.zeros(1 << 16))
        stop.record(q)
        dt = elapsed_sim_time(start, stop)
        expected = (1 << 16) * 8 / (8.0 * 1e9)
        assert dt == pytest.approx(expected, rel=1e-6)

    def test_zero_elapsed_without_work(self, gpu):
        q = QueueBlocking(gpu)
        a, b = Event(gpu), Event(gpu)
        a.record(q)
        b.record(q)
        assert elapsed_sim_time(a, b) == 0.0

    def test_unfired_event_rejected(self, gpu):
        fired = Event(gpu)
        QueueBlocking(gpu)
        unfired = Event(gpu)
        fired.record(QueueBlocking(gpu))
        with pytest.raises(QueueError):
            elapsed_sim_time(fired, unfired)

    def test_cross_device_rejected(self, gpu):
        other = get_dev_by_idx(AccGpuCudaSim, 1)
        a = Event(gpu)
        b = Event(other)
        a.record(QueueBlocking(gpu))
        b.record(QueueBlocking(other))
        with pytest.raises(QueueError):
            elapsed_sim_time(a, b)

    def test_stamp_property_none_before_fire(self, gpu):
        assert Event(gpu).sim_time_at_fire is None
