"""Queue stress: concurrent producers, many queues, interleaved devices."""

import threading

import numpy as np
import pytest

from repro import AccCpuOmp2Blocks, AccGpuCudaSim, get_dev_by_idx, mem
from repro.queue import QueueBlocking, QueueNonBlocking


class TestConcurrentProducers:
    def test_every_task_runs_exactly_once(self):
        dev = get_dev_by_idx(AccGpuCudaSim, 0)
        q = QueueNonBlocking(dev)
        counter = {"n": 0}
        lock = threading.Lock()

        def bump():
            with lock:
                counter["n"] += 1

        def producer():
            for _ in range(100):
                q.enqueue(bump)

        producers = [threading.Thread(target=producer) for _ in range(4)]
        for p in producers:
            p.start()
        for p in producers:
            p.join()
        q.wait()
        assert counter["n"] == 400
        q.destroy()

    def test_two_queues_one_device_interleave_safely(self):
        """Multiple queues per device are legal (CUDA streams); their
        tasks interleave but each queue stays internally ordered."""
        dev = get_dev_by_idx(AccGpuCudaSim, 0)
        qa, qb = QueueNonBlocking(dev), QueueNonBlocking(dev)
        seen = {"a": [], "b": []}

        for i in range(50):
            qa.enqueue(lambda i=i: seen["a"].append(i))
            qb.enqueue(lambda i=i: seen["b"].append(i))
        qa.wait()
        qb.wait()
        assert seen["a"] == list(range(50))
        assert seen["b"] == list(range(50))
        qa.destroy()
        qb.destroy()

    def test_many_small_copies_in_order(self, rng):
        """200 dependent copies through one queue: last write wins."""
        dev = get_dev_by_idx(AccGpuCudaSim, 0)
        q = QueueNonBlocking(dev)
        buf = mem.alloc(dev, 4)
        for i in range(200):
            mem.copy(q, buf, np.full(4, float(i)))
        out = np.zeros(4)
        mem.copy(q, out, buf)
        q.wait()
        assert np.all(out == 199.0)
        q.destroy()

    def test_queues_on_different_devices_are_independent(self):
        d0 = get_dev_by_idx(AccGpuCudaSim, 0)
        d1 = get_dev_by_idx(AccGpuCudaSim, 1)
        cpu = get_dev_by_idx(AccCpuOmp2Blocks, 0)
        order = []
        lock = threading.Lock()

        def tag(t):
            def run():
                with lock:
                    order.append(t)

            return run

        queues = [QueueNonBlocking(d) for d in (d0, d1, cpu)]
        for i, q in enumerate(queues):
            for j in range(20):
                q.enqueue(tag((i, j)))
        for q in queues:
            q.wait()
            q.destroy()
        # Per-queue order preserved even though queues interleave.
        for i in range(3):
            mine = [j for (qi, j) in order if qi == i]
            assert mine == list(range(20))
