"""Events: host sync and cross-queue dependencies."""

import threading
import time

import pytest

from repro import AccCpuSerial, AccGpuCudaSim, get_dev_by_idx
from repro.core.errors import QueueError
from repro.queue import Event, QueueBlocking, QueueNonBlocking, record, wait_queue_for


@pytest.fixture
def dev():
    return get_dev_by_idx(AccCpuSerial, 0)


class TestEventBasics:
    def test_unrecorded_event_is_complete(self, dev):
        ev = Event(dev)
        assert ev.is_complete
        assert ev.wait(timeout=0.1)

    def test_record_and_wait_blocking_queue(self, dev):
        q = QueueBlocking(dev)
        ev = Event(dev)
        ev.record(q)
        assert ev.is_complete

    def test_record_into_foreign_queue_rejected(self, dev):
        other = get_dev_by_idx(AccGpuCudaSim, 0)
        q = QueueBlocking(other)
        with pytest.raises(QueueError):
            Event(dev).record(q)

    def test_event_fires_after_preceding_tasks(self, dev):
        order = []
        q = QueueNonBlocking(dev)
        q.enqueue(lambda: (time.sleep(0.05), order.append("task"))[-1])
        ev = Event(dev)
        ev.record(q)
        assert ev.wait(timeout=2.0)
        assert order == ["task"]
        q.destroy()

    def test_re_record_rearms(self, dev):
        q = QueueNonBlocking(dev)
        ev = Event(dev)
        ev.record(q)
        assert ev.wait(timeout=1.0)
        q.enqueue(lambda: time.sleep(0.05))
        ev.record(q)
        assert not ev.is_complete or ev.wait(timeout=2.0)
        q.wait()
        assert ev.is_complete
        q.destroy()

    def test_free_function_record(self, dev):
        q = QueueBlocking(dev)
        ev = record(Event(dev), q)
        assert ev.is_complete


class TestCrossQueueDependency:
    def test_wait_queue_for(self, dev):
        """Queue B must not run its task before the event in queue A."""
        order = []
        qa = QueueNonBlocking(dev)
        qb = QueueNonBlocking(dev)
        ev = Event(dev)

        qa.enqueue(lambda: (time.sleep(0.1), order.append("a"))[-1])
        ev.record(qa)
        wait_queue_for(qb, ev)
        qb.enqueue(lambda: order.append("b"))

        qb.wait()
        assert order == ["a", "b"]
        qa.destroy()
        qb.destroy()

    def test_timeout_returns_false(self, dev):
        q = QueueNonBlocking(dev)
        ev = Event(dev)
        q.enqueue(lambda: time.sleep(0.5))
        ev.record(q)
        assert ev.wait(timeout=0.05) is False
        q.wait()
        assert ev.wait(timeout=1.0)
        q.destroy()
