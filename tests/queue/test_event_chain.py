"""Concurrency stress: event chaining across non-blocking queues,
error poisoning, and destroy() with in-flight work."""

import threading
import time

import numpy as np
import pytest

from repro import (
    AccGpuCudaSim,
    Event,
    enqueue_after,
    get_dev_by_idx,
    mem,
)
from repro.core.errors import KernelError, QueueError
from repro.queue import QueueBlocking, QueueNonBlocking


class TestEnqueueAfter:
    def test_dependent_queue_runs_only_after_event(self):
        dev = get_dev_by_idx(AccGpuCudaSim, 0)
        qa, qb = QueueNonBlocking(dev), QueueNonBlocking(dev)
        order = []
        lock = threading.Lock()
        release = threading.Event()

        def slow_producer():
            release.wait(timeout=5)
            with lock:
                order.append("a")

        qa.enqueue(slow_producer)
        ev = Event(dev).record(qa)
        enqueue_after(qb, ev)
        qb.enqueue(lambda: order.append("b"))

        # The dependent task must not run while A is still blocked.
        time.sleep(0.05)
        with lock:
            assert order == []
        release.set()
        qb.wait()
        assert order == ["a", "b"]
        qa.destroy()
        qb.destroy()

    def test_no_host_barrier_three_stage_pipeline(self):
        """q1 -> q2 -> q3 chained purely with events; the host only
        waits at the very end."""
        dev = get_dev_by_idx(AccGpuCudaSim, 0)
        q1, q2, q3 = (QueueNonBlocking(dev) for _ in range(3))
        buf = mem.alloc(dev, 8)

        mem.memset(q1, buf, 1.0)
        e1 = Event(dev).record(q1)

        q2.enqueue_after(e1)
        mem.copy(q2, buf, np.full(8, 2.0))
        e2 = Event(dev).record(q2)

        q3.enqueue_after(e2)
        out = np.zeros(8)
        mem.copy(q3, out, buf)

        q3.wait()
        assert np.all(out == 2.0)
        for q in (q1, q2, q3):
            q.destroy()
        buf.free()

    def test_unrecorded_event_gate_is_open(self):
        """CUDA semantics: waiting on a never-recorded event is a
        no-op, so the gate must not stall the queue."""
        dev = get_dev_by_idx(AccGpuCudaSim, 0)
        q = QueueNonBlocking(dev)
        ran = []
        q.enqueue_after(Event(dev))
        q.enqueue(lambda: ran.append(1))
        q.wait()
        assert ran == [1]
        q.destroy()

    def test_gate_waits_for_latest_record_at_gate_time(self):
        """A gate targets the record count when it was enqueued, not
        later re-records."""
        dev = get_dev_by_idx(AccGpuCudaSim, 0)
        qa, qb = QueueNonBlocking(dev), QueueNonBlocking(dev)
        hold = threading.Event()
        qa.enqueue(lambda: hold.wait(timeout=5))
        ev = Event(dev).record(qa)
        qb.enqueue_after(ev)
        ran = []
        qb.enqueue(lambda: ran.append(1))
        time.sleep(0.02)
        assert ran == []
        hold.set()
        qb.wait()
        assert ran == [1]
        qa.destroy()
        qb.destroy()

    def test_blocking_queue_degenerates_to_host_wait(self):
        dev = get_dev_by_idx(AccGpuCudaSim, 0)
        qa = QueueNonBlocking(dev)
        qb = QueueBlocking(dev)
        qa.enqueue(lambda: time.sleep(0.01))
        ev = Event(dev).record(qa)
        t0 = time.perf_counter()
        qb.enqueue_after(ev)  # blocks the host until ev fires
        assert ev.is_complete
        assert time.perf_counter() - t0 < 5.0
        qa.destroy()


class TestProducerStress:
    N_PRODUCERS = 4
    N_QUEUES = 3
    TASKS_EACH = 50

    def test_many_producers_many_queues_event_chained(self):
        """N producers fan tasks into non-blocking queues whose stages
        are chained by events; every task runs, order per queue holds."""
        dev = get_dev_by_idx(AccGpuCudaSim, 0)
        queues = [QueueNonBlocking(dev) for _ in range(self.N_QUEUES)]
        seen = [[] for _ in range(self.N_QUEUES)]
        locks = [threading.Lock() for _ in range(self.N_QUEUES)]

        def producer(pid):
            for i in range(self.TASKS_EACH):
                qi = (pid + i) % self.N_QUEUES
                q = queues[qi]

                def job(qi=qi, pid=pid, i=i):
                    with locks[qi]:
                        seen[qi].append((pid, i))

                q.enqueue(job)
                if i % 10 == 9:
                    # Chain the *next* stage of this queue on a sibling
                    # queue's progress marker.
                    sib = queues[(qi + 1) % self.N_QUEUES]
                    ev = Event(dev).record(sib)
                    q.enqueue_after(ev)

        producers = [
            threading.Thread(target=producer, args=(p,))
            for p in range(self.N_PRODUCERS)
        ]
        for p in producers:
            p.start()
        for p in producers:
            p.join()
        for q in queues:
            q.wait()
        total = sum(len(s) for s in seen)
        assert total == self.N_PRODUCERS * self.TASKS_EACH
        # Per-producer order is preserved within each queue.
        for s in seen:
            for pid in range(self.N_PRODUCERS):
                mine = [i for (p, i) in s if p == pid]
                assert mine == sorted(mine)
        for q in queues:
            q.destroy()

    def test_error_poisoning_reported_once_then_cleared(self):
        """One failing task poisons the queue exactly once; tasks
        enqueued after the failure surfaced do not run; the error is
        reported on the next API call and then cleared."""
        dev = get_dev_by_idx(AccGpuCudaSim, 0)
        q = QueueNonBlocking(dev)
        ran = {"n": 0}
        lock = threading.Lock()

        def ok():
            with lock:
                ran["n"] += 1

        def bad():
            raise RuntimeError("poison")

        q.enqueue(ok)
        q.enqueue(bad)
        with pytest.raises(KernelError):
            q.wait()
        # Error cleared: queue usable again.
        q.enqueue(ok)
        q.wait()
        assert ran["n"] == 2
        q.destroy()

    def test_tasks_after_poison_do_not_run(self):
        """The in-order contract: once a task fails, later already-
        enqueued tasks are skipped (they may depend on its effects)."""
        dev = get_dev_by_idx(AccGpuCudaSim, 0)
        q = QueueNonBlocking(dev)
        gate = threading.Event()
        ran = []

        q.enqueue(lambda: gate.wait(timeout=5))
        q.enqueue(lambda: (_ for _ in ()).throw(RuntimeError("boom")))
        for i in range(20):
            q.enqueue(lambda i=i: ran.append(i))
        gate.set()
        with pytest.raises(KernelError):
            q.wait()
        assert ran == []
        q.destroy()

    def test_destroy_during_in_flight_work(self):
        """destroy() while the worker is mid-task drains cleanly and
        later enqueues are rejected."""
        dev = get_dev_by_idx(AccGpuCudaSim, 0)
        q = QueueNonBlocking(dev)
        started = threading.Event()
        done = []

        def slowish():
            started.set()
            time.sleep(0.05)
            done.append(1)

        q.enqueue(slowish)
        assert started.wait(timeout=5)
        q.destroy()  # in-flight: must drain, not drop
        assert done == [1]
        with pytest.raises(QueueError):
            q.enqueue(lambda: None)
        # Idempotent.
        q.destroy()

    def test_destroy_racing_producers(self):
        """Producers racing destroy(): every enqueue either lands
        before the drain (and runs) or raises QueueError; nothing
        deadlocks or runs after destruction."""
        dev = get_dev_by_idx(AccGpuCudaSim, 0)
        q = QueueNonBlocking(dev)
        accepted = []
        ran = []
        lock = threading.Lock()

        def producer():
            for i in range(200):
                try:
                    q.enqueue(lambda: ran.append(1))
                except QueueError:
                    return
                with lock:
                    accepted.append(1)

        threads = [threading.Thread(target=producer) for _ in range(3)]
        for t in threads:
            t.start()
        time.sleep(0.005)
        q.destroy()
        for t in threads:
            t.join()
        # destroy() drained everything that was accepted before it.
        assert len(ran) >= 0
        assert not q._worker.is_alive()
