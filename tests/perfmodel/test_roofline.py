"""Roofline model: resource derivation, ceilings, monotonicity laws."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import ModelError
from repro.core.workdiv import WorkDivMembers
from repro.hardware import AccessPattern, machine
from repro.perfmodel import (
    KernelCharacteristics,
    machine_resources,
    predict_time,
)

K80 = machine("nvidia-k80")
HSW = machine("intel-xeon-e5-2630v3")


def chars(**kw):
    d = dict(
        flops=2e12,
        global_read_bytes=1e9,
        global_write_bytes=1e8,
        working_set_bytes=4096,
        thread_access_pattern=AccessPattern.TILED,
        vector_friendly=True,
    )
    d.update(kw)
    return KernelCharacteristics(**d)


GPU_WD = WorkDivMembers.make(4096, 256, 1)
CPU_WD = WorkDivMembers.make(4096, 1, 128)


class TestMachineResources:
    def test_gpu_gets_one_device(self):
        r = machine_resources(K80, "gpu")
        assert r.peak_gflops == 1450.0
        assert r.dram_bandwidth_gbs == 240.0
        assert r.cores == 2496

    def test_cpu_gets_whole_machine(self):
        r = machine_resources(HSW, "cpu")
        assert r.peak_gflops == 540.0
        assert r.cores == 16

    def test_kind_mismatch(self):
        with pytest.raises(ModelError):
            machine_resources(K80, "cpu")
        with pytest.raises(ModelError):
            machine_resources(HSW, "gpu")


class TestCeilings:
    def test_compute_bound_kernel(self):
        p = predict_time(K80, "gpu", GPU_WD, chars(), "both")
        assert p.bound == "compute"
        assert p.seconds >= p.compute_seconds
        assert 0 < p.fraction_of_peak <= 1.0

    def test_dram_bound_kernel(self):
        c = chars(flops=1e9, global_read_bytes=1e12, working_set_bytes=1 << 34)
        p = predict_time(K80, "gpu", GPU_WD, c, "both")
        assert p.bound == "dram"

    def test_on_chip_ceiling_binds_dgemm_like(self):
        c = chars(on_chip_read_bytes=16e12)  # 16 B per FMA
        p = predict_time(K80, "gpu", GPU_WD, c, "both")
        assert p.bound == "on_chip"
        # The ~20%-of-peak signature (paper Fig. 9 mechanism).
        assert 0.05 < p.fraction_of_peak < 0.35

    def test_spill_traffic_used_when_cache_overflows(self):
        fits = chars(global_read_bytes=1e9, spill_read_bytes=1e12,
                     working_set_bytes=1024)
        spills = chars(global_read_bytes=1e9, spill_read_bytes=1e12,
                       working_set_bytes=1 << 34)
        t_fit = predict_time(HSW, "cpu", CPU_WD, fits, "blocks").dram_seconds
        t_spill = predict_time(HSW, "cpu", CPU_WD, spills, "blocks").dram_seconds
        assert t_spill > 100 * t_fit

    def test_sync_cost_cpu_vs_gpu(self):
        c = chars(block_sync_generations=1e6)
        wd = WorkDivMembers.make(1024, 64, 1)
        cpu_sync = predict_time(HSW, "cpu", wd, c, "threads").sync_seconds
        gpu_sync = predict_time(K80, "gpu", wd, c, "both").sync_seconds
        assert cpu_sync > 50 * gpu_sync


class TestGpuEfficiency:
    def test_single_thread_blocks_waste_warps(self):
        lone = WorkDivMembers.make(4096, 1, 1)
        full = WorkDivMembers.make(128, 256, 1)
        t_lone = predict_time(K80, "gpu", lone, chars(), "both").seconds
        t_full = predict_time(K80, "gpu", full, chars(), "both").seconds
        assert t_lone > 20 * t_full  # ~32x warp waste

    def test_small_grids_underoccupy(self):
        tiny = WorkDivMembers.make(2, 64, 1)
        big = WorkDivMembers.make(4096, 64, 1)
        t_tiny = predict_time(K80, "gpu", tiny, chars(), "both").seconds
        t_big = predict_time(K80, "gpu", big, chars(), "both").seconds
        assert t_tiny > t_big

    def test_occupancy_saturates(self):
        big = WorkDivMembers.make(4096, 256, 1)
        bigger = WorkDivMembers.make(8192, 256, 1)
        t1 = predict_time(K80, "gpu", big, chars(), "both").seconds
        t2 = predict_time(K80, "gpu", bigger, chars(), "both").seconds
        assert t1 == pytest.approx(t2)


class TestCpuEfficiency:
    def test_parallel_scope_ladder(self):
        """none <= blocks utilisation for a many-block division."""
        c = chars()
        t_serial = predict_time(HSW, "cpu", CPU_WD, c, "none").seconds
        t_blocks = predict_time(HSW, "cpu", CPU_WD, c, "blocks").seconds
        assert t_serial > 10 * t_blocks  # 16 cores idle vs busy

    def test_scalar_pays_simd_penalty(self):
        vec = chars(vector_friendly=True)
        scal = chars(vector_friendly=False)
        t_vec = predict_time(HSW, "cpu", CPU_WD, vec, "blocks").seconds
        t_scal = predict_time(HSW, "cpu", CPU_WD, scal, "blocks").seconds
        assert t_scal > t_vec

    def test_vector_math_library_keeps_lanes(self):
        lib = chars(uses_vector_math_library=True)
        autovec = chars(uses_vector_math_library=False)
        t_lib = predict_time(HSW, "cpu", CPU_WD, lib, "blocks").seconds
        t_auto = predict_time(HSW, "cpu", CPU_WD, autovec, "blocks").seconds
        assert t_lib < t_auto

    def test_no_fma_machine_skips_contraction_penalty(self):
        snb = machine("intel-xeon-e5-2609")
        p_snb = predict_time(snb, "cpu", CPU_WD, chars(), "blocks")
        p_hsw = predict_time(HSW, "cpu", CPU_WD, chars(), "blocks")
        assert p_snb.factors["fma_eff"] == 1.0
        assert p_hsw.factors["fma_eff"] == 0.5

    def test_unknown_scope(self):
        with pytest.raises(ModelError):
            predict_time(HSW, "cpu", CPU_WD, chars(), "warps")


class TestOverheads:
    def test_abstraction_fraction_gpu_only(self):
        base = chars()
        wrapped = base.with_overhead(0.05, 0)
        t_gpu_n = predict_time(K80, "gpu", GPU_WD, base, "both").seconds
        t_gpu_w = predict_time(K80, "gpu", GPU_WD, wrapped, "both").seconds
        assert t_gpu_w == pytest.approx(t_gpu_n * 1.05, rel=1e-3)
        t_cpu_n = predict_time(HSW, "cpu", CPU_WD, base, "blocks").seconds
        t_cpu_w = predict_time(HSW, "cpu", CPU_WD, wrapped, "blocks").seconds
        assert t_cpu_w == pytest.approx(t_cpu_n)  # gcc elides it

    def test_launch_overhead_additive(self):
        c = chars(flops=1.0, global_read_bytes=1.0, global_write_bytes=0.0,
                  launches=100)
        p = predict_time(K80, "gpu", GPU_WD, c, "both")
        assert p.overhead_seconds == pytest.approx(100 * 5e-6)

    def test_issue_efficiency_scales_compute(self):
        fast = chars(issue_efficiency=1.0)
        slow = chars(issue_efficiency=0.5)
        t_f = predict_time(K80, "gpu", GPU_WD, fast, "both").compute_seconds
        t_s = predict_time(K80, "gpu", GPU_WD, slow, "both").compute_seconds
        assert t_s == pytest.approx(2 * t_f)


class TestMonotonicityLaws:
    @given(
        flops=st.floats(1e6, 1e14),
        scale=st.floats(1.1, 10.0),
    )
    @settings(max_examples=25)
    def test_more_flops_never_faster(self, flops, scale):
        a = chars(flops=flops)
        b = chars(flops=flops * scale)
        ta = predict_time(K80, "gpu", GPU_WD, a, "both").seconds
        tb = predict_time(K80, "gpu", GPU_WD, b, "both").seconds
        assert tb >= ta

    @given(bytes_=st.floats(1e3, 1e13), scale=st.floats(1.1, 10.0))
    @settings(max_examples=25)
    def test_more_traffic_never_faster(self, bytes_, scale):
        a = chars(global_read_bytes=bytes_, working_set_bytes=1 << 34)
        b = chars(global_read_bytes=bytes_ * scale, working_set_bytes=1 << 34)
        ta = predict_time(HSW, "cpu", CPU_WD, a, "blocks").seconds
        tb = predict_time(HSW, "cpu", CPU_WD, b, "blocks").seconds
        assert tb >= ta

    @given(st.integers(1, 4096))
    @settings(max_examples=25)
    def test_time_always_positive(self, blocks):
        wd = WorkDivMembers.make(blocks, 1, 16)
        p = predict_time(HSW, "cpu", wd, chars(), "blocks")
        assert p.seconds > 0
        assert p.gflops >= 0
