"""Kernel characteristics: validation and pattern translation."""

import pytest

from repro.core.errors import ModelError
from repro.hardware import AccessPattern
from repro.perfmodel import KernelCharacteristics, device_effective_pattern


def chars(**kw):
    d = dict(
        flops=1e9,
        global_read_bytes=1e6,
        global_write_bytes=1e6,
        working_set_bytes=4096,
        thread_access_pattern=AccessPattern.TILED,
        vector_friendly=True,
    )
    d.update(kw)
    return KernelCharacteristics(**d)


class TestValidation:
    def test_valid(self):
        c = chars()
        assert c.total_bytes == 2e6
        assert c.arithmetic_intensity == pytest.approx(500.0)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("flops", -1.0),
            ("global_read_bytes", -1.0),
            ("working_set_bytes", -1),
            ("launches", 0),
            ("spill_read_bytes", -1.0),
            ("on_chip_read_bytes", -1.0),
            ("block_sync_generations", -1.0),
            ("abstraction_overhead_fraction", -0.1),
            ("extra_api_calls", -1),
            ("issue_efficiency", 0.0),
            ("issue_efficiency", 1.5),
        ],
    )
    def test_invalid_fields(self, field, value):
        with pytest.raises(ModelError):
            chars(**{field: value})

    def test_zero_traffic_intensity(self):
        c = chars(global_read_bytes=0.0, global_write_bytes=0.0)
        assert c.arithmetic_intensity == float("inf")

    def test_with_overhead(self):
        c = chars().with_overhead(0.05, 3)
        assert c.abstraction_overhead_fraction == 0.05
        assert c.extra_api_calls == 3
        assert c.flops == chars().flops  # everything else preserved


class TestPatternTranslation:
    def test_cpu_identity(self):
        for p in AccessPattern:
            assert device_effective_pattern(p, "cpu") is p

    def test_gpu_swaps_strided_contiguous(self):
        assert (
            device_effective_pattern(AccessPattern.STRIDED, "gpu")
            is AccessPattern.CONTIGUOUS
        )
        assert (
            device_effective_pattern(AccessPattern.CONTIGUOUS, "gpu")
            is AccessPattern.STRIDED
        )

    def test_gpu_keeps_tiled_random(self):
        assert (
            device_effective_pattern(AccessPattern.TILED, "gpu")
            is AccessPattern.TILED
        )
        assert (
            device_effective_pattern(AccessPattern.RANDOM, "gpu")
            is AccessPattern.RANDOM
        )

    def test_unknown_backend(self):
        with pytest.raises(ModelError):
            device_effective_pattern(AccessPattern.TILED, "fpga")
