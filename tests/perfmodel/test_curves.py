"""Roofline curve utilities."""

import numpy as np
import pytest

from repro.core.workdiv import WorkDivMembers
from repro.hardware import AccessPattern, machine
from repro.perfmodel import (
    KernelCharacteristics,
    place_kernel,
    roofline_envelope,
)

K80 = machine("nvidia-k80")


class TestEnvelope:
    def test_monotone_then_flat(self):
        pts = roofline_envelope(K80, "gpu")
        ys = [y for _, y in pts]
        assert all(b >= a for a, b in zip(ys, ys[1:]))
        assert ys[-1] == 1450.0  # saturates at device peak

    def test_memory_slope(self):
        pts = roofline_envelope(K80, "gpu", np.array([0.1, 1.0]))
        # In the bandwidth regime, gflops = AI * BW.
        assert pts[0][1] == pytest.approx(0.1 * 240.0)
        assert pts[1][1] == pytest.approx(240.0)

    def test_cpu_envelope(self):
        hsw = machine("intel-xeon-e5-2630v3")
        pts = roofline_envelope(hsw, "cpu")
        assert pts[-1][1] == 540.0


class TestPlacement:
    def test_point_below_envelope(self):
        wd = WorkDivMembers.make(4096, 256, 1)
        chars = KernelCharacteristics(
            flops=2e12,
            global_read_bytes=1e10,
            global_write_bytes=1e9,
            working_set_bytes=4096,
            thread_access_pattern=AccessPattern.TILED,
            vector_friendly=False,
        )
        pt = place_kernel(K80, "gpu", wd, chars)
        ceiling = min(1450.0, pt.arithmetic_intensity * 240.0)
        assert 0 < pt.attained_gflops <= ceiling * 1.001
        assert pt.bound in ("compute", "dram", "on_chip", "sync", "overhead")
