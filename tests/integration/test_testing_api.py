"""The public differential-testing API (repro.testing)."""

import numpy as np
import pytest

from repro.core.kernel import fn_acc
from repro.core.element import grid_strided_spans
from repro.kernels import AxpyElementsKernel
from repro.testing import BackendReport, run_on_all_backends


class TestRunOnAllBackends:
    def test_axpy_consistent_everywhere(self, rng):
        n = 300
        x, y = rng.random(n), rng.random(n)
        report = run_on_all_backends(
            AxpyElementsKernel(),
            args=(n, 2.0),
            arrays={"x": x, "y": y},
            thread_elems=32,
        )
        assert len(report.backends) == 7
        report.assert_consistent()  # bitwise
        np.testing.assert_allclose(
            report.results["AccCpuSerial"]["y"], 2.0 * x + y
        )

    def test_backend_subset(self, rng):
        n = 64
        report = run_on_all_backends(
            AxpyElementsKernel(),
            args=(n, 1.0),
            arrays={"x": rng.random(n), "y": rng.random(n)},
            backends=["AccCpuSerial", "AccGpuCudaSim"],
        )
        assert report.backends == ["AccCpuSerial", "AccGpuCudaSim"]
        report.assert_consistent()

    def test_detects_divergence(self, rng):
        """A back-end-dependent kernel is caught."""

        @fn_acc
        def cheat(acc, n, out):
            for span in grid_strided_spans(acc, n):
                # Result depends on the back-end's warp size.
                out[span] = float(acc.warp_size)

        n = 32
        report = run_on_all_backends(
            cheat, args=(n,), arrays={"out": np.zeros(n)},
            backends=["AccCpuSerial", "AccGpuCudaSim"],
        )
        with pytest.raises(AssertionError):
            report.assert_consistent()

    def test_tolerant_comparison(self, rng):
        """Tolerances accept atomics-reordered float sums."""
        report = BackendReport()
        report.results["AccCpuSerial"] = {"x": np.array([1.0])}
        report.results["other"] = {"x": np.array([1.0 + 1e-13])}
        with pytest.raises(AssertionError):
            report.assert_consistent()
        report.assert_consistent(rtol=1e-10)

    def test_requires_extent_or_arrays(self):
        @fn_acc
        def k(acc):
            pass

        with pytest.raises(ValueError):
            run_on_all_backends(k)

    def test_missing_reference_reported(self):
        report = BackendReport()
        report.results["only-this"] = {"x": np.zeros(1)}
        with pytest.raises(AssertionError, match="reference"):
            report.assert_consistent()


class TestBitwiseAtomics:
    def test_bitwise_atomic_ops_on_acc(self):
        from repro import (
            AccGpuCudaSim,
            QueueBlocking,
            WorkDivMembers,
            create_task_kernel,
            get_dev_by_idx,
            mem,
        )

        @fn_acc
        def k(acc, out):
            acc.atomic_or(out, 0, 0b0101)
            acc.atomic_and(out, 1, 0b0011)
            acc.atomic_xor(out, 2, 0b1111)

        dev = get_dev_by_idx(AccGpuCudaSim, 0)
        q = QueueBlocking(dev)
        buf = mem.alloc(dev, 3, dtype=np.int64)
        host = np.array([0b1010, 0b0110, 0b1010], dtype=np.int64)
        mem.copy(q, buf, host)
        q.enqueue(
            create_task_kernel(
                AccGpuCudaSim, WorkDivMembers.make(1, 1, 1), k, buf
            )
        )
        out = np.zeros(3, dtype=np.int64)
        mem.copy(q, out, buf)
        np.testing.assert_array_equal(out, [0b1111, 0b0010, 0b0101])
