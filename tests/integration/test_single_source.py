"""Integration: the paper's central claims, end to end.

* one kernel source runs on every back-end and yields identical results
  (single source / testability),
* retargeting is one line (the accelerator type),
* CPU and GPU back-ends cooperate in one program (heterogeneity),
* memory never crosses spaces implicitly.
"""

import numpy as np
import pytest

from repro import (
    AccCpuOmp2Blocks,
    AccGpuCudaSim,
    MemorySpaceError,
    QueueBlocking,
    QueueNonBlocking,
    accelerator,
    accelerator_names,
    create_task_kernel,
    divide_work,
    get_dev_by_idx,
    get_dev_count,
    mem,
)
from repro.core.element import grid_strided_spans
from repro.core.kernel import fn_acc


class SaxpbyKernel:
    """A kernel with several scalar args and two buffers."""

    @fn_acc
    def __call__(self, acc, n, a, b, x, y):
        for span in grid_strided_spans(acc, n):
            y[span] = a * x[span] + b * y[span]


def run_pipeline(acc_type, n=512):
    """The full host-side lifecycle of Listing 4 + Listing 5."""
    dev = get_dev_by_idx(acc_type, 0)
    queue = QueueBlocking(dev)
    x_h = np.linspace(0.0, 1.0, n)
    y_h = np.linspace(1.0, 2.0, n)
    x = mem.alloc(dev, n)
    y = mem.alloc(dev, n)
    mem.copy(queue, x, x_h)
    mem.copy(queue, y, y_h)
    props = acc_type.get_acc_dev_props(dev)
    wd = divide_work(n, props, acc_type.mapping_strategy, thread_elems=32)
    queue.enqueue(
        create_task_kernel(acc_type, wd, SaxpbyKernel(), n, 2.0, 3.0, x, y)
    )
    out = np.empty(n)
    mem.copy(queue, out, y)
    x.free()
    y.free()
    return out, 2.0 * x_h + 3.0 * y_h


class TestSingleSource:
    def test_every_backend_bitwise_identical(self):
        results = {}
        for name in accelerator_names():
            out, expected = run_pipeline(accelerator(name))
            np.testing.assert_allclose(out, expected, err_msg=name)
            results[name] = out
        ref = results["AccCpuSerial"]
        for name, out in results.items():
            np.testing.assert_array_equal(out, ref, err_msg=name)

    def test_retarget_is_one_line(self):
        """The whole pipeline is a function of the accelerator type
        alone — the literal form of the paper's one-line claim."""
        for acc_name in ("AccCpuSerial", "AccGpuCudaSim"):
            out, expected = run_pipeline(accelerator(acc_name))
            np.testing.assert_allclose(out, expected)


class TestHeterogeneity:
    def test_cpu_and_gpu_concurrently(self):
        n = 6000
        x_h = np.arange(n, dtype=np.float64)
        workers = [(AccCpuOmp2Blocks, get_dev_by_idx(AccCpuOmp2Blocks, 0))]
        for i in range(get_dev_count(AccGpuCudaSim)):
            workers.append((AccGpuCudaSim, get_dev_by_idx(AccGpuCudaSim, i)))
        bounds = np.linspace(0, n, len(workers) + 1).astype(int)
        kernel = SaxpbyKernel()
        live = []
        for (acc, dev), lo, hi in zip(workers, bounds[:-1], bounds[1:]):
            m = int(hi - lo)
            q = QueueNonBlocking(dev)
            x = mem.alloc(dev, m)
            y = mem.alloc(dev, m)
            mem.copy(q, x, x_h[lo:hi])
            mem.memset(q, y, 1.0)
            props = acc.get_acc_dev_props(dev)
            wd = divide_work(m, props, acc.mapping_strategy, thread_elems=64)
            q.enqueue(create_task_kernel(acc, wd, kernel, m, 2.0, 1.0, x, y))
            live.append((q, y, lo, hi))
        result = np.empty(n)
        for q, y, lo, hi in live:
            part = np.empty(hi - lo)
            mem.copy(q, part, y)
            q.wait()
            result[lo:hi] = part
            q.destroy()
        np.testing.assert_allclose(result, 2.0 * x_h + 1.0)


class TestMemoryModel:
    def test_no_implicit_migration(self):
        """Device results are invisible on the host until copied."""
        dev = get_dev_by_idx(AccGpuCudaSim, 0)
        q = QueueBlocking(dev)
        buf = mem.alloc(dev, 16)
        mem.memset(q, buf, 5.0)
        with pytest.raises(MemorySpaceError):
            buf.as_numpy()
        host = np.zeros(16)
        mem.copy(q, host, buf)
        assert np.all(host == 5.0)

    def test_data_structure_agnostic(self):
        """Kernel arguments are plain arrays: the same kernel handles
        any dtype/layout the user chooses."""

        @fn_acc
        def negate(acc, n, data):
            for span in grid_strided_spans(acc, n):
                data[span] = -data[span]

        dev = get_dev_by_idx(AccCpuOmp2Blocks, 0)
        q = QueueBlocking(dev)
        for dtype in (np.float64, np.float32, np.int64):
            buf = mem.alloc(dev, 32, dtype=dtype)
            host = np.arange(32, dtype=dtype)
            mem.copy(q, buf, host)
            props = AccCpuOmp2Blocks.get_acc_dev_props(dev)
            wd = divide_work(
                32, props, AccCpuOmp2Blocks.mapping_strategy, thread_elems=8
            )
            q.enqueue(create_task_kernel(AccCpuOmp2Blocks, wd, negate, 32, buf))
            np.testing.assert_array_equal(buf.as_numpy(), -host)
