"""Every shipped example must run (fast configurations)."""

import os
import runpy
import sys

import pytest

EXAMPLES = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "examples",
)


def run_example(name, argv):
    old_argv = sys.argv
    sys.argv = [name] + argv
    try:
        runpy.run_path(os.path.join(EXAMPLES, name), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart_single_backend(self):
        run_example("quickstart.py", ["AccCpuSerial"])

    def test_quickstart_gpu(self):
        run_example("quickstart.py", ["AccGpuCudaSim"])

    def test_heat_equation(self):
        run_example("heat_equation.py", ["AccCpuOmp2Blocks", "10"])

    def test_matmul_tiling(self):
        run_example("matmul_tiling.py", ["32"])

    def test_monte_carlo_ase(self):
        run_example("monte_carlo_ase.py", ["AccCpuOmp2Blocks"])

    def test_mixed_backends(self):
        run_example("mixed_backends.py", [])

    def test_multi_gpu_halo(self):
        run_example("multi_gpu_halo.py", ["5"])

    def test_plasma_oscillation(self):
        run_example("plasma_oscillation.py", ["AccCpuSerial"])

    def test_roofline_report(self):
        run_example("roofline_report.py", [])

    def test_serving_client(self):
        run_example("serving_client.py", [])

    def test_online_tuning(self):
        run_example("online_tuning.py", [])
