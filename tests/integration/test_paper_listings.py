"""Paper traceability: each code listing of Sec. 3.4, executed.

Every listing in the paper's API walk-through has a direct counterpart
here, written to match the listing's structure as closely as Python
allows — the reproduction's claim that the *interface* survived the
port, not just the semantics.
"""

import numpy as np
import pytest

from repro import (
    AccCpuSerial,
    AccGpuCudaSim,
    QueueNonBlocking,
    Vec,
    WorkDivMembers,
    create_task_kernel,
    enqueue,
    fn_acc,
    get_dev_by_idx,
    get_idx,
    get_work_div,
    map_idx,
    mem,
)
from repro.core import Grid, Threads
from repro.queue import wait


class TestListing1_KernelSkeleton:
    """A kernel is a class implementing operator() with the accelerator
    as first parameter, marked accelerator-callable."""

    def test_skeleton_executes(self):
        ran = []

        class Kernel:
            @fn_acc  # ALPAKA_FN_ACC
            def __call__(self, acc, data):
                ran.append(type(acc).__name__)

        dev = get_dev_by_idx(AccCpuSerial, 0)
        queue = QueueNonBlocking(dev)
        buf = mem.alloc(dev, 1)
        wd = WorkDivMembers.make(1, 1, 1)
        enqueue(queue, create_task_kernel(AccCpuSerial, wd, Kernel(), buf))
        wait(queue)
        assert ran == ["Accelerator"]
        queue.destroy()


class TestListing2_WorkDivision:
    """Vec<Dim2>(1,1) elements, (1,1) threads, (8,16) blocks."""

    def test_extents(self):
        elements_per_thread = Vec(1, 1)
        threads_per_block = Vec(1, 1)
        blocks_per_grid = Vec(8, 16)
        wd = WorkDivMembers(
            blocks_per_grid, threads_per_block, elements_per_thread
        )
        # "the grid has an extent of 128"
        assert wd.block_count == 128
        assert wd.block_thread_count == 1
        assert wd.thread_elem_count == 1


class TestListing3_IndexRetrieval:
    """Global n-dim thread index + extent, linearised via mapIdx."""

    def test_linearised_global_index(self):
        seen = {}

        @fn_acc
        def kernel(acc, out):
            g_t_idx = get_idx(acc, Grid, Threads)
            g_t_extent = get_work_div(acc, Grid, Threads)
            lin_idx = map_idx(1, g_t_idx, g_t_extent)
            out[lin_idx[0]] = 1.0
            seen[tuple(g_t_idx)] = lin_idx[0]

        dev = get_dev_by_idx(AccCpuSerial, 0)
        queue = QueueNonBlocking(dev)
        out = mem.alloc(dev, 12)
        wd = WorkDivMembers.make(Vec(3, 4), Vec(1, 1), Vec(1, 1))
        enqueue(queue, create_task_kernel(AccCpuSerial, wd, kernel, out))
        wait(queue)
        # Every thread hit a distinct linear slot; all slots covered.
        assert np.all(out.as_numpy() == 1.0)
        assert len(set(seen.values())) == 12
        queue.destroy()


class TestListing4_Memory:
    """Dim2 uint32 buffers of extent (10, 10); host -> device copy."""

    def test_alloc_and_copy(self):
        host_dev = get_dev_by_idx(AccCpuSerial, 0)
        acc_dev = get_dev_by_idx(AccGpuCudaSim, 0)
        queue = QueueNonBlocking(acc_dev)

        extents = Vec(10, 10)
        host_buf = mem.alloc(host_dev, extents, dtype=np.uint32)
        dev_buf = mem.alloc(acc_dev, extents, dtype=np.uint32)

        host_buf.as_numpy()[:] = np.arange(100, dtype=np.uint32).reshape(10, 10)
        mem.copy(queue, dev_buf, host_buf, extents)
        wait(queue)

        back = np.zeros((10, 10), dtype=np.uint32)
        mem.copy(queue, back, dev_buf)
        wait(queue)
        np.testing.assert_array_equal(back, host_buf.as_numpy())
        queue.destroy()


class TestListing5_FullExecution:
    """The complete host flow: Dim/Size aliases, accelerator + stream
    types, DevMan device selection, work division 256x16x1, executor
    creation, enqueue."""

    def test_full_flow(self):
        class Kernel:
            @fn_acc
            def __call__(self, acc, counter):
                i = get_idx(acc, Grid, Threads)[0]
                acc.atomic_add(counter, 0, 1.0)

        Acc = AccCpuSerial  # acc::AccCpuSerial<Dim1, size_t>
        Stream = QueueNonBlocking  # stream::StreamCpuAsync

        dev_acc = get_dev_by_idx(Acc, 0)  # DevMan<Acc>::getDevByIdx(0)
        stream = Stream(dev_acc)

        # 256 blocks x 16 threads x 1 element -- the serial back-end
        # caps blocks at one thread, so the listing's division maps to
        # the block level (Table 2), preserving the total work.
        work_div = WorkDivMembers.make(256 * 16, 1, 1)
        kernel = Kernel()
        counter = mem.alloc(dev_acc, 1)
        exec_task = create_task_kernel(Acc, work_div, kernel, counter)
        enqueue(stream, exec_task)
        wait(stream)
        assert counter.as_numpy()[0] == 256 * 16
        stream.destroy()

    def test_same_flow_on_cuda_sim_with_listing_division(self):
        class Kernel:
            @fn_acc
            def __call__(self, acc, counter):
                acc.atomic_add(counter, 0, 1.0)

        Acc = AccGpuCudaSim
        dev_acc = get_dev_by_idx(Acc, 0)
        stream = QueueNonBlocking(dev_acc)
        # The CUDA back-end takes the listing's division literally
        # (we shrink 256 blocks to 8 to keep the functional run quick).
        work_div = WorkDivMembers.make(8, 16, 1)
        counter = mem.alloc(dev_acc, 1)
        enqueue(stream, create_task_kernel(Acc, work_div, Kernel(), counter))
        wait(stream)
        out = np.zeros(1)
        mem.copy(stream, out, counter)
        wait(stream)
        assert out[0] == 128
        stream.destroy()
