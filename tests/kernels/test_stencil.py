"""2-d Jacobi stencil: correctness, boundaries, physics invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    QueueBlocking,
    Vec,
    WorkDivMembers,
    accelerator,
    create_task_kernel,
    get_dev_by_idx,
    mem,
)
from repro.kernels import Jacobi2DKernel, jacobi_reference_step


def run_step(acc_name, grid, c, elems=(4, 4)):
    acc = accelerator(acc_name)
    dev = get_dev_by_idx(acc, 0)
    q = QueueBlocking(dev)
    h, w = grid.shape
    src = mem.alloc(dev, (h, w))
    dst = mem.alloc(dev, (h, w))
    mem.copy(q, src, grid)
    blocks = Vec(h, w).ceil_div(Vec(*elems))
    wd = WorkDivMembers.make(blocks, Vec(1, 1), Vec(*elems))
    q.enqueue(create_task_kernel(acc, wd, Jacobi2DKernel(), h, w, c, src, dst))
    out = np.empty((h, w))
    mem.copy(q, out, dst)
    return out


class TestCorrectness:
    @pytest.mark.parametrize("backend", ["AccCpuSerial", "AccCpuOmp2Blocks"])
    def test_matches_reference(self, backend, rng):
        grid = rng.random((13, 21))
        out = run_step(backend, grid, 0.15)
        np.testing.assert_allclose(out, jacobi_reference_step(grid, 0.15))

    @pytest.mark.parametrize("elems", [(1, 1), (2, 8), (16, 16), (5, 3)])
    def test_any_element_box(self, elems, rng):
        grid = rng.random((17, 17))
        out = run_step("AccCpuSerial", grid, 0.1, elems)
        np.testing.assert_allclose(out, jacobi_reference_step(grid, 0.1))

    def test_boundary_is_copied(self, rng):
        grid = rng.random((9, 9))
        out = run_step("AccCpuSerial", grid, 0.2)
        np.testing.assert_array_equal(out[0, :], grid[0, :])
        np.testing.assert_array_equal(out[-1, :], grid[-1, :])
        np.testing.assert_array_equal(out[:, 0], grid[:, 0])
        np.testing.assert_array_equal(out[:, -1], grid[:, -1])

    @given(h=st.integers(3, 20), w=st.integers(3, 20))
    @settings(max_examples=15, deadline=None)
    def test_property_shapes(self, h, w):
        grid = np.random.default_rng(h * 100 + w).random((h, w))
        out = run_step("AccCpuSerial", grid, 0.1)
        np.testing.assert_allclose(out, jacobi_reference_step(grid, 0.1))


class TestPhysics:
    def test_uniform_field_is_fixed_point(self):
        grid = np.full((8, 8), 3.0)
        out = run_step("AccCpuSerial", grid, 0.25)
        np.testing.assert_array_equal(out, grid)

    def test_diffusion_smooths(self, rng):
        """Interior variance never grows (diffusion is dissipative)."""
        grid = rng.random((16, 16))
        out = grid
        for _ in range(5):
            out = run_step("AccCpuSerial", out, 0.2)
        assert out[1:-1, 1:-1].var() < grid[1:-1, 1:-1].var()

    def test_maximum_principle(self, rng):
        grid = rng.random((12, 12)) * 100
        out = run_step("AccCpuSerial", grid, 0.2)
        assert out.max() <= grid.max() + 1e-12
        assert out.min() >= grid.min() - 1e-12
