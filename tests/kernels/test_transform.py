"""Elementwise kernels: fill/iota/scale/map across back-ends."""

import numpy as np
import pytest

from repro import (
    QueueBlocking,
    accelerator,
    create_task_kernel,
    get_dev_by_idx,
    mem,
)
from repro.kernels import FillKernel, IotaKernel, MapKernel, ScaleKernel


def run(acc_name, kernel, n, *args, in_array=None, elems=16):
    acc = accelerator(acc_name)
    dev = get_dev_by_idx(acc, 0)
    q = QueueBlocking(dev)
    from repro import divide_work

    props = acc.get_acc_dev_props(dev)
    wd = divide_work(n, props, acc.mapping_strategy, thread_elems=elems)
    bufs = []
    if in_array is not None:
        b = mem.alloc(dev, n)
        mem.copy(q, b, in_array)
        bufs.append(b)
    out = mem.alloc(dev, n)
    q.enqueue(create_task_kernel(acc, wd, kernel, n, *args, *bufs, out))
    res = np.empty(n)
    mem.copy(q, res, out)
    return res


class TestFill:
    def test_fill(self, any_acc):
        res = run(any_acc.name, FillKernel(), 100, 7.5)
        assert np.all(res == 7.5)


class TestIota:
    def test_iota(self, any_acc):
        res = run(any_acc.name, IotaKernel(), 101, 5.0)
        np.testing.assert_array_equal(res, 5.0 + np.arange(101))


class TestScale:
    def test_scale(self, rng):
        x = rng.random(64)
        res = run("AccCpuSerial", ScaleKernel(), 64, 3.0, in_array=x)
        np.testing.assert_allclose(res, 3.0 * x)


class TestMap:
    def test_captured_function(self, rng):
        x = rng.random(64)
        res = run("AccCpuOmp2Blocks", MapKernel(np.sqrt), 64, in_array=x)
        np.testing.assert_allclose(res, np.sqrt(x))

    def test_kernel_state_is_functor_state(self, rng):
        """Two MapKernel instances with different functions coexist."""
        x = rng.random(32)
        a = run("AccCpuSerial", MapKernel(np.exp), 32, in_array=x)
        b = run("AccCpuSerial", MapKernel(np.log1p), 32, in_array=x)
        np.testing.assert_allclose(a, np.exp(x))
        np.testing.assert_allclose(b, np.log1p(x))

    def test_characteristics_exist(self):
        from repro.core.workdiv import WorkDivMembers

        wd = WorkDivMembers.make(4, 1, 16)
        for k, args in (
            (FillKernel(), (64, 0.0, None)),
            (IotaKernel(), (64, 0.0, None)),
            (ScaleKernel(), (64, 1.0, None, None)),
            (MapKernel(np.sqrt), (64, None, None)),
        ):
            c = k.characteristics(wd, *args)
            assert c.vector_friendly
            assert c.flops >= 0
