"""DGEMM kernels: correctness on all applicable back-ends + characteristics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import accelerator
from repro.core.errors import KernelError
from repro.hardware import AccessPattern
from repro.kernels import (
    GemmCudaStyleKernel,
    GemmOmpStyleKernel,
    GemmTilingKernel,
    dgemm_reference,
    dgemm_rows_host,
    gemm_workdiv_cuda,
    gemm_workdiv_omp,
    gemm_workdiv_tiling,
)


def problem(rng, n):
    return rng.random((n, n)), rng.random((n, n)), rng.random((n, n))


class TestWorkDivFactories:
    def test_cuda_shape(self):
        wd = gemm_workdiv_cuda(100, 16)
        assert wd.grid_block_extent == (7, 7)
        assert wd.block_thread_extent == (16, 16)
        assert wd.thread_elem_extent == (1, 1)

    def test_omp_shape(self):
        wd = gemm_workdiv_omp(100, 32)
        assert wd.grid_block_extent == (4,)
        assert wd.block_thread_count == 1

    def test_tiling_shape(self):
        wd = gemm_workdiv_tiling(128, 4, 8)
        assert wd.grid_block_extent == (4, 4)
        assert wd.thread_elem_extent == (8, 8)


class TestCudaStyleKernel:
    def test_explicit_signature(self, sync_acc, rng):
        from repro import QueueBlocking, create_task_kernel, get_dev_by_idx, mem

        n = 17
        A, B, C = problem(rng, n)
        expected = dgemm_reference(2.0, A, B, 0.5, C)
        dev = get_dev_by_idx(sync_acc, 0)
        q = QueueBlocking(dev)
        bufs = []
        for h in (A, B, C):
            b = mem.alloc(dev, (n, n))
            mem.copy(q, b, h)
            bufs.append(b)
        cap = sync_acc.get_acc_dev_props(dev).block_thread_count_max
        wd = gemm_workdiv_cuda(n, 4 if cap >= 16 else 2)
        q.enqueue(
            create_task_kernel(
                sync_acc, wd, GemmCudaStyleKernel(),
                n, 2.0, bufs[0], bufs[1], 0.5, bufs[2],
            )
        )
        out = np.empty((n, n))
        mem.copy(q, out, bufs[2])
        np.testing.assert_allclose(out, expected, rtol=1e-12)

    def test_requires_square_block(self, rng):
        from repro import AccGpuCudaSim, QueueBlocking, create_task_kernel
        from repro import get_dev_by_idx, mem
        from repro.core.workdiv import WorkDivMembers

        dev = get_dev_by_idx(AccGpuCudaSim, 0)
        q = QueueBlocking(dev)
        b = mem.alloc(dev, (4, 4))
        wd = WorkDivMembers.make((1, 1), (2, 4), (1, 1))
        with pytest.raises(KernelError):
            q.enqueue(
                create_task_kernel(
                    AccGpuCudaSim, wd, GemmCudaStyleKernel(),
                    4, 1.0, b, b, 0.0, b,
                )
            )

    def test_characteristics(self):
        k = GemmCudaStyleKernel()
        wd = gemm_workdiv_cuda(1024, 16)
        c = k.characteristics(wd, 1024)
        assert c.flops == pytest.approx(2 * 1024**3, rel=0.01)
        assert c.on_chip_read_bytes == 16.0 * 1024**3
        assert c.thread_access_pattern is AccessPattern.TILED
        assert not c.vector_friendly
        assert c.abstraction_overhead_fraction > 0
        assert c.block_sync_generations == 2 * 64 * 64 * 64

    def test_native_variant_has_no_overhead(self):
        wd = gemm_workdiv_cuda(256, 16)
        native = GemmCudaStyleKernel(native=True).characteristics(wd, 256)
        assert native.abstraction_overhead_fraction == 0.0
        assert native.extra_api_calls == 0


class TestOmpStyleKernel:
    @pytest.mark.parametrize("backend", ["AccCpuSerial", "AccCpuOmp2Blocks"])
    def test_correct(self, backend, rng):
        from repro import QueueBlocking, create_task_kernel, get_dev_by_idx, mem

        acc = accelerator(backend)
        n = 23
        A, B, C = problem(rng, n)
        expected = dgemm_reference(1.5, A, B, -0.5, C)
        dev = get_dev_by_idx(acc, 0)
        q = QueueBlocking(dev)
        bufs = []
        for h in (A, B, C):
            b = mem.alloc(dev, (n, n))
            mem.copy(q, b, h)
            bufs.append(b)
        q.enqueue(
            create_task_kernel(
                acc, wd := gemm_workdiv_omp(n, 5), GemmOmpStyleKernel(),
                n, 1.5, bufs[0], bufs[1], -0.5, bufs[2],
            )
        )
        np.testing.assert_allclose(bufs[2].as_numpy(), expected, rtol=1e-12)

    def test_host_function_matches_kernel_semantics(self, rng):
        n = 40
        A, B, C = problem(rng, n)
        C2 = C.copy()
        dgemm_rows_host(1.5, A, B, 0.25, C2, rows_per_chunk=7)
        np.testing.assert_allclose(C2, dgemm_reference(1.5, A, B, 0.25, C))

    def test_characteristics_spill(self):
        wd = gemm_workdiv_omp(4096, 64)
        c = GemmOmpStyleKernel().characteristics(wd, 4096)
        assert c.spill_read_bytes == 8.0 * 4096**3
        assert c.vector_friendly
        assert c.abstraction_overhead_fraction == 0.0  # gcc elides


class TestTilingKernel:
    CONFIGS = [
        ("AccGpuCudaSim", 4, 2),
        ("AccCpuSerial", 1, 8),
        ("AccCpuOmp2Blocks", 1, 8),
        ("AccCpuOmp2Threads", 2, 4),
        ("AccCpuThreads", 2, 4),
        ("AccCpuFibers", 2, 4),
    ]

    @pytest.mark.parametrize("backend,bt,v", CONFIGS)
    def test_correct_everywhere(self, backend, bt, v, rng):
        from repro import QueueBlocking, create_task_kernel, get_dev_by_idx, mem

        acc = accelerator(backend)
        n = 19  # ragged against every tile size used
        A, B, C = problem(rng, n)
        expected = dgemm_reference(1.0, A, B, 2.0, C)
        dev = get_dev_by_idx(acc, 0)
        q = QueueBlocking(dev)
        bufs = []
        for h in (A, B, C):
            buf = mem.alloc(dev, (n, n))
            mem.copy(q, buf, h)
            bufs.append(buf)
        q.enqueue(
            create_task_kernel(
                acc, gemm_workdiv_tiling(n, bt, v), GemmTilingKernel(),
                n, 1.0, bufs[0], bufs[1], 2.0, bufs[2],
            )
        )
        out = np.empty((n, n))
        mem.copy(q, out, bufs[2])
        np.testing.assert_allclose(out, expected, rtol=1e-11, err_msg=backend)

    @given(n=st.integers(2, 33), bt=st.sampled_from([1, 2]), v=st.sampled_from([2, 4]))
    @settings(max_examples=12, deadline=None)
    def test_property_sizes(self, n, bt, v):
        from repro import AccCpuSerial, QueueBlocking, create_task_kernel
        from repro import get_dev_by_idx, mem

        if bt > 1:
            acc = accelerator("AccCpuThreads")
        else:
            acc = AccCpuSerial
        rng = np.random.default_rng(n)
        A, B, C = problem(rng, n)
        expected = dgemm_reference(1.0, A, B, 0.0, C)
        dev = get_dev_by_idx(acc, 0)
        q = QueueBlocking(dev)
        bufs = []
        for h in (A, B, C):
            buf = mem.alloc(dev, (n, n))
            mem.copy(q, buf, h)
            bufs.append(buf)
        q.enqueue(
            create_task_kernel(
                acc, gemm_workdiv_tiling(n, bt, v), GemmTilingKernel(),
                n, 1.0, bufs[0], bufs[1], 0.0, bufs[2],
            )
        )
        out = np.empty((n, n))
        mem.copy(q, out, bufs[2])
        np.testing.assert_allclose(out, expected, rtol=1e-11)
        for buf in bufs:
            buf.free()

    def test_register_blocking_reduces_on_chip_traffic(self):
        wd1 = gemm_workdiv_tiling(1024, 16, 1)
        wd2 = gemm_workdiv_tiling(1024, 16, 2)
        c1 = GemmTilingKernel().characteristics(wd1, 1024)
        c2 = GemmTilingKernel().characteristics(wd2, 1024)
        assert c2.on_chip_read_bytes < c1.on_chip_read_bytes

    def test_register_cap(self):
        """Element extents beyond the register cap stop reducing
        per-FMA traffic."""
        wd128 = gemm_workdiv_tiling(4096, 1, 128)
        wd8 = gemm_workdiv_tiling(4096, 1, 8)
        c128 = GemmTilingKernel().characteristics(wd128, 4096)
        c8 = GemmTilingKernel().characteristics(wd8, 4096)
        assert c128.on_chip_read_bytes == c8.on_chip_read_bytes

    def test_bigger_tiles_cut_dram_traffic(self):
        small = GemmTilingKernel().characteristics(
            gemm_workdiv_tiling(1024, 16, 1), 1024
        )
        big = GemmTilingKernel().characteristics(
            gemm_workdiv_tiling(1024, 16, 4), 1024
        )
        assert big.global_read_bytes < small.global_read_bytes
