"""3-d Jacobi: the unrestricted-dimensionality claim end to end."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    QueueBlocking,
    Vec,
    WorkDivMembers,
    accelerator,
    create_task_kernel,
    get_dev_by_idx,
    mem,
)
from repro.kernels import Jacobi3DKernel, jacobi3d_reference_step


def run_step(acc_name, grid, c, elems=(2, 3, 4)):
    acc = accelerator(acc_name)
    dev = get_dev_by_idx(acc, 0)
    q = QueueBlocking(dev)
    d, h, w = grid.shape
    src = mem.alloc(dev, (d, h, w))
    dst = mem.alloc(dev, (d, h, w))
    mem.copy(q, src, grid)
    blocks = Vec(d, h, w).ceil_div(Vec(*elems))
    wd = WorkDivMembers.make(blocks, Vec(1, 1, 1), Vec(*elems))
    q.enqueue(
        create_task_kernel(acc, wd, Jacobi3DKernel(), d, h, w, c, src, dst)
    )
    out = np.empty((d, h, w))
    mem.copy(q, out, dst)
    for b in (src, dst):
        b.free()
    return out


class TestCorrectness:
    @pytest.mark.parametrize("backend", ["AccCpuSerial", "AccCpuOmp2Blocks"])
    def test_matches_reference(self, backend, rng):
        g = rng.random((5, 7, 9))
        np.testing.assert_allclose(
            run_step(backend, g, 0.1), jacobi3d_reference_step(g, 0.1)
        )

    @pytest.mark.parametrize(
        "elems", [(1, 1, 1), (2, 2, 2), (5, 7, 9), (3, 1, 4)]
    )
    def test_any_element_box(self, elems, rng):
        g = rng.random((5, 7, 9))
        np.testing.assert_allclose(
            run_step("AccCpuSerial", g, 0.1, elems),
            jacobi3d_reference_step(g, 0.1),
        )

    def test_faces_copied(self, rng):
        g = rng.random((4, 5, 6))
        out = run_step("AccCpuSerial", g, 0.2)
        np.testing.assert_array_equal(out[0], g[0])
        np.testing.assert_array_equal(out[-1], g[-1])
        np.testing.assert_array_equal(out[:, 0, :], g[:, 0, :])
        np.testing.assert_array_equal(out[:, :, -1], g[:, :, -1])

    @given(
        d=st.integers(3, 8), h=st.integers(3, 8), w=st.integers(3, 8)
    )
    @settings(max_examples=10, deadline=None)
    def test_property_shapes(self, d, h, w):
        g = np.random.default_rng(d * 64 + h * 8 + w).random((d, h, w))
        np.testing.assert_allclose(
            run_step("AccCpuSerial", g, 0.1), jacobi3d_reference_step(g, 0.1)
        )


class TestPhysics:
    def test_uniform_fixed_point(self):
        g = np.full((4, 4, 4), 2.5)
        np.testing.assert_array_equal(run_step("AccCpuSerial", g, 0.15), g)

    def test_maximum_principle(self, rng):
        g = rng.random((6, 6, 6)) * 50
        out = run_step("AccCpuSerial", g, 0.15)
        assert out.max() <= g.max() + 1e-12
        assert out.min() >= g.min() - 1e-12
