"""Reductions: shared-memory tree + atomics, across back-ends."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    QueueBlocking,
    WorkDivMembers,
    accelerator,
    create_task_kernel,
    get_dev_by_idx,
    mem,
)
from repro.kernels import DotKernel, SumReduceKernel, sum_reference


def run_reduce(acc_name, kernel, wd, n, *host_arrays):
    acc = accelerator(acc_name)
    dev = get_dev_by_idx(acc, 0)
    q = QueueBlocking(dev)
    bufs = []
    for h in host_arrays:
        b = mem.alloc(dev, h.shape[0])
        mem.copy(q, b, h)
        bufs.append(b)
    out = mem.alloc(dev, 1)
    mem.memset(q, out, 0.0)
    q.enqueue(create_task_kernel(acc, wd, kernel, n, *bufs, out))
    res = np.zeros(1)
    mem.copy(q, res, out)
    return res[0]


class TestSumReduce:
    @pytest.mark.parametrize(
        "backend,wd",
        [
            ("AccGpuCudaSim", WorkDivMembers.make(4, 16, 8)),
            ("AccCpuThreads", WorkDivMembers.make(2, 8, 32)),
            ("AccCpuFibers", WorkDivMembers.make(2, 8, 32)),
            ("AccCpuOmp2Threads", WorkDivMembers.make(2, 8, 32)),
        ],
    )
    def test_matches_reference(self, backend, wd, rng):
        x = rng.random(512)
        got = run_reduce(backend, SumReduceKernel(), wd, 512, x)
        assert got == pytest.approx(sum_reference(x), rel=1e-12)

    def test_non_power_of_two_block(self, rng):
        x = rng.random(100)
        wd = WorkDivMembers.make(2, 7, 8)
        got = run_reduce("AccCpuThreads", SumReduceKernel(), wd, 100, x)
        assert got == pytest.approx(x.sum(), rel=1e-12)

    def test_extent_smaller_than_grid(self, rng):
        x = rng.random(10)
        wd = WorkDivMembers.make(4, 8, 4)  # grid covers 128 >> 10
        got = run_reduce("AccGpuCudaSim", SumReduceKernel(), wd, 10, x)
        assert got == pytest.approx(x.sum(), rel=1e-12)

    @given(n=st.integers(1, 300))
    @settings(max_examples=15, deadline=None)
    def test_any_extent(self, n):
        x = np.random.default_rng(n).random(n)
        wd = WorkDivMembers.make(2, 4, 8)
        got = run_reduce("AccCpuFibers", SumReduceKernel(), wd, n, x)
        assert got == pytest.approx(x.sum(), rel=1e-12)


class TestDot:
    @pytest.mark.parametrize(
        "backend",
        ["AccCpuSerial", "AccCpuOmp2Blocks", "AccGpuCudaSim"],
    )
    def test_matches_numpy(self, backend, rng):
        n = 333
        x, y = rng.random(n), rng.random(n)
        acc = accelerator(backend)
        if acc.supports_block_sync:
            wd = WorkDivMembers.make(4, 8, 16)
        else:
            wd = WorkDivMembers.make(16, 1, 32)
        got = run_reduce(backend, DotKernel(), wd, n, x, y)
        assert got == pytest.approx(float(x @ y), rel=1e-12)

    def test_empty_extent_gives_zero(self, rng):
        # All threads out of range: atomics never fire beyond 0.0 adds.
        x, y = rng.random(8), rng.random(8)
        wd = WorkDivMembers.make(1, 1, 8)
        got = run_reduce("AccCpuSerial", DotKernel(), wd, 8, x, y)
        assert got == pytest.approx(float(x @ y))
