"""Bitonic sort: barrier-heavy cooperative kernel across back-ends."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import QueueBlocking, accelerator, get_dev_by_idx, mem
from repro.kernels import BitonicSortKernel, sort_chunks


def run_sort(acc_name, x, chunk=32, block_threads=None):
    acc = accelerator(acc_name)
    dev = get_dev_by_idx(acc, 0)
    q = QueueBlocking(dev)
    n = len(x)
    buf = mem.alloc(dev, n)
    mem.copy(q, buf, x)
    sort_chunks(acc, q, buf, n, chunk=chunk, block_threads=block_threads)
    out = np.empty(n)
    mem.copy(q, out, buf)
    buf.free()
    return out


def chunkwise_sorted(x, chunk):
    out = x.copy()
    for c in range(0, len(x), chunk):
        out[c : c + chunk] = np.sort(x[c : c + chunk])
    return out


class TestBitonicSort:
    @pytest.mark.parametrize(
        "backend,bt",
        [
            ("AccCpuSerial", 1),
            ("AccCpuOmp2Blocks", 1),
            ("AccGpuCudaSim", 8),
            ("AccCpuThreads", 4),
            ("AccCpuFibers", 4),
        ],
    )
    def test_sorts_on_every_backend(self, backend, bt, rng):
        x = rng.random(128)
        out = run_sort(backend, x, chunk=32, block_threads=bt)
        np.testing.assert_array_equal(out, chunkwise_sorted(x, 32))

    def test_ragged_tail(self, rng):
        """A tail shorter than the chunk sorts via +inf padding."""
        x = rng.random(70)
        out = run_sort("AccCpuSerial", x, chunk=64)
        np.testing.assert_array_equal(out, chunkwise_sorted(x, 64))

    def test_duplicates_and_negatives(self, rng):
        x = np.repeat(rng.standard_normal(8), 4)
        rng.shuffle(x)
        out = run_sort("AccCpuSerial", x, chunk=32)
        np.testing.assert_array_equal(out, np.sort(x))

    def test_already_sorted(self):
        x = np.arange(64.0)
        np.testing.assert_array_equal(run_sort("AccCpuSerial", x, 64), x)

    def test_reverse_sorted(self):
        x = np.arange(64.0)[::-1].copy()
        np.testing.assert_array_equal(
            run_sort("AccCpuSerial", x, 64), np.arange(64.0)
        )

    def test_non_power_of_two_chunk_rejected(self):
        with pytest.raises(ValueError):
            BitonicSortKernel(chunk=48)

    def test_thread_count_independent(self, rng):
        """The network's result is identical for any thread count —
        the data-independent control flow property."""
        x = rng.random(64)
        outs = [
            run_sort("AccGpuCudaSim", x, chunk=64, block_threads=bt)
            for bt in (1, 2, 8)
        ]
        np.testing.assert_array_equal(outs[0], outs[1])
        np.testing.assert_array_equal(outs[1], outs[2])

    @given(n=st.integers(1, 200), chunk=st.sampled_from([16, 32, 64]))
    @settings(max_examples=12, deadline=None)
    def test_any_length(self, n, chunk):
        x = np.random.default_rng(n).random(n)
        out = run_sort("AccCpuSerial", x, chunk=chunk)
        np.testing.assert_array_equal(out, chunkwise_sorted(x, chunk))

    def test_characteristics(self):
        from repro.core.workdiv import WorkDivMembers

        k = BitonicSortKernel(chunk=64)
        wd = WorkDivMembers.make(4, 8, 8)
        c = k.characteristics(wd, 256, None)
        assert c.block_sync_generations > 4  # many barrier generations
        assert not c.vector_friendly
