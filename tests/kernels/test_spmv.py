"""CSR SpMV: conversion, kernel correctness, scipy cross-check."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import QueueBlocking, accelerator, get_dev_by_idx, mem
from repro.core.kernel import create_task_kernel
from repro.core.workdiv import WorkDivMembers
from repro.kernels.spmv import CsrSpmvKernel, csr_from_dense, spmv_reference


def random_sparse(rng, rows, cols, density=0.2):
    dense = rng.random((rows, cols))
    dense[rng.random((rows, cols)) > density] = 0.0
    return dense


def run_spmv(acc_name, dense, x, rows_per_thread=4):
    acc = accelerator(acc_name)
    dev = get_dev_by_idx(acc, 0)
    q = QueueBlocking(dev)
    values, col_idx, row_ptr = csr_from_dense(dense)
    n_rows = dense.shape[0]
    bufs = []
    for host in (values, col_idx, row_ptr, x):
        b = mem.alloc(dev, max(len(host), 1), dtype=host.dtype)
        if len(host):
            mem.copy(q, b, host)
        bufs.append(b)
    y = mem.alloc(dev, n_rows)
    blocks = max(1, -(-n_rows // rows_per_thread))
    wd = WorkDivMembers.make(blocks, 1, rows_per_thread)
    q.enqueue(
        create_task_kernel(acc, wd, CsrSpmvKernel(), n_rows, *bufs, y)
    )
    out = np.empty(n_rows)
    mem.copy(q, out, y)
    return out


class TestCsrConversion:
    def test_roundtrip_against_scipy(self, rng):
        from scipy import sparse

        dense = random_sparse(rng, 12, 9)
        values, col_idx, row_ptr = csr_from_dense(dense)
        sp = sparse.csr_matrix(dense)
        np.testing.assert_array_equal(values, sp.data)
        np.testing.assert_array_equal(col_idx, sp.indices)
        np.testing.assert_array_equal(row_ptr, sp.indptr)

    def test_empty_rows(self):
        dense = np.zeros((3, 4))
        dense[1, 2] = 5.0
        values, col_idx, row_ptr = csr_from_dense(dense)
        np.testing.assert_array_equal(row_ptr, [0, 0, 1, 1])


class TestKernel:
    @pytest.mark.parametrize(
        "backend", ["AccCpuSerial", "AccCpuOmp2Blocks", "AccGpuCudaSim"]
    )
    def test_matches_dense(self, backend, rng):
        dense = random_sparse(rng, 20, 15)
        x = rng.random(15)
        got = run_spmv(backend, dense, x)
        np.testing.assert_allclose(got, spmv_reference(dense, x), rtol=1e-12)

    def test_zero_matrix(self, rng):
        dense = np.zeros((6, 6))
        got = run_spmv("AccCpuSerial", dense, rng.random(6))
        np.testing.assert_array_equal(got, np.zeros(6))

    def test_identity(self, rng):
        x = rng.random(8)
        got = run_spmv("AccCpuSerial", np.eye(8), x)
        np.testing.assert_allclose(got, x)

    @given(rows=st.integers(1, 25), cols=st.integers(1, 25))
    @settings(max_examples=12, deadline=None)
    def test_property_shapes(self, rows, cols):
        rng = np.random.default_rng(rows * 31 + cols)
        dense = random_sparse(rng, rows, cols, density=0.3)
        x = rng.random(cols)
        got = run_spmv("AccCpuSerial", dense, x)
        np.testing.assert_allclose(got, dense @ x, rtol=1e-12, atol=1e-14)

    def test_characteristics_random_pattern(self):
        from repro.hardware import AccessPattern

        k = CsrSpmvKernel()
        wd = WorkDivMembers.make(4, 1, 4)
        c = k.characteristics(wd, 16, np.zeros(40), None, None, None, None)
        assert c.thread_access_pattern is AccessPattern.RANDOM
        assert c.flops == 80.0
