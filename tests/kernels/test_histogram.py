"""Histogram kernel: privatized shared bins + global atomic merge."""

import numpy as np
import pytest

from repro import (
    QueueBlocking,
    WorkDivMembers,
    accelerator,
    create_task_kernel,
    get_dev_by_idx,
    mem,
)
from repro.kernels import HistogramKernel, histogram_reference


def run_hist(acc_name, x, bins=16, lo=0.0, hi=1.0, wd=None):
    acc = accelerator(acc_name)
    dev = get_dev_by_idx(acc, 0)
    q = QueueBlocking(dev)
    n = len(x)
    xb = mem.alloc(dev, n)
    hb = mem.alloc(dev, bins)
    mem.copy(q, xb, x)
    mem.memset(q, hb, 0.0)
    if wd is None:
        if acc.supports_block_sync:
            wd = WorkDivMembers.make(4, 4, -(-n // 16))
        else:
            wd = WorkDivMembers.make(8, 1, -(-n // 8))
    q.enqueue(
        create_task_kernel(acc, wd, HistogramKernel(), n, lo, hi, bins, xb, hb)
    )
    out = np.zeros(bins)
    mem.copy(q, out, hb)
    return out


class TestHistogram:
    @pytest.mark.parametrize(
        "backend",
        ["AccCpuSerial", "AccCpuOmp2Blocks", "AccCpuThreads", "AccGpuCudaSim"],
    )
    def test_matches_numpy(self, backend, rng):
        x = rng.random(2000) * 0.999  # strictly inside [0, 1)
        got = run_hist(backend, x)
        np.testing.assert_array_equal(got, histogram_reference(x, 16, 0.0, 1.0))

    def test_total_count_conserved(self, rng):
        x = rng.random(777)
        got = run_hist("AccCpuOmp2Blocks", x, bins=7)
        assert got.sum() == 777

    def test_out_of_range_clamps(self):
        x = np.array([-5.0, 0.5, 20.0])
        got = run_hist("AccCpuSerial", x, bins=4)
        assert got[0] == 1 and got[-1] == 1 and got[2] == 1

    def test_custom_range(self, rng):
        x = rng.uniform(-3.0, 3.0, 1000) * 0.999
        got = run_hist("AccCpuSerial", x, bins=12, lo=-3.0, hi=3.0)
        np.testing.assert_array_equal(
            got, histogram_reference(x, 12, -3.0, 3.0)
        )

    def test_uniform_data_spreads(self, rng):
        x = rng.random(16_000) * 0.999
        got = run_hist("AccCpuSerial", x, bins=8)
        assert got.min() > 1600  # roughly uniform

    def test_grid_smaller_than_data(self, rng):
        x = rng.random(500) * 0.999
        wd = WorkDivMembers.make(2, 1, 50)  # covers 100; grid-stride
        got = run_hist("AccCpuSerial", x, wd=wd)
        np.testing.assert_array_equal(got, histogram_reference(x, 16, 0.0, 1.0))
