"""Multi-launch exclusive scan."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import QueueBlocking, QueueNonBlocking, accelerator, get_dev_by_idx, mem
from repro.kernels import scan_exclusive, scan_reference


def run_scan(acc_name, x, chunk=64, blocking=True):
    acc = accelerator(acc_name)
    dev = get_dev_by_idx(acc, 0)
    queue = (QueueBlocking if blocking else QueueNonBlocking)(dev)
    n = len(x)
    xb = mem.alloc(dev, n)
    out = mem.alloc(dev, n)
    mem.copy(queue, xb, x)
    scan_exclusive(acc, queue, xb, out, n, chunk=chunk)
    res = np.empty(n)
    mem.copy(queue, res, out)
    queue.wait()
    if not blocking:
        queue.destroy()
    return res


class TestScan:
    def test_reference(self):
        x = np.array([3.0, 1.0, 4.0, 1.0, 5.0])
        np.testing.assert_array_equal(
            scan_reference(x), [0.0, 3.0, 4.0, 8.0, 9.0]
        )

    @pytest.mark.parametrize(
        "backend", ["AccCpuSerial", "AccCpuOmp2Blocks", "AccGpuCudaSim"]
    )
    def test_matches_reference(self, backend, rng):
        x = rng.random(500)
        got = run_scan(backend, x, chunk=64)
        np.testing.assert_allclose(got, scan_reference(x), rtol=1e-12)

    def test_single_chunk(self, rng):
        x = rng.random(30)
        got = run_scan("AccCpuSerial", x, chunk=64)
        np.testing.assert_allclose(got, scan_reference(x))

    def test_ragged_chunks(self, rng):
        x = rng.random(130)  # 3 chunks of 64, last partial
        got = run_scan("AccCpuSerial", x, chunk=64)
        np.testing.assert_allclose(got, scan_reference(x), rtol=1e-12)

    def test_async_queue_keeps_launch_order(self, rng):
        """The three launches are correct through a non-blocking queue
        purely by in-order semantics."""
        x = rng.random(300)
        got = run_scan("AccCpuOmp2Blocks", x, chunk=32, blocking=False)
        np.testing.assert_allclose(got, scan_reference(x), rtol=1e-12)

    def test_capacity_guard(self, rng):
        with pytest.raises(ValueError, match="blocks"):
            run_scan("AccCpuSerial", rng.random(1000), chunk=8)

    @given(n=st.integers(1, 400))
    @settings(max_examples=15, deadline=None)
    def test_any_length(self, n):
        x = np.random.default_rng(n).random(n)
        got = run_scan("AccCpuSerial", x, chunk=32)
        np.testing.assert_allclose(got, scan_reference(x), rtol=1e-12)

    def test_negative_values(self, rng):
        x = rng.standard_normal(200)
        got = run_scan("AccCpuSerial", x, chunk=64)
        np.testing.assert_allclose(got, scan_reference(x), rtol=1e-10, atol=1e-12)
