"""AXPY kernels: characteristics and reference (execution covered in
tests/acc/test_backends_axpy.py)."""

import numpy as np
import pytest

from repro.hardware import AccessPattern
from repro.kernels import (
    AxpyElementsKernel,
    AxpyKernel,
    axpy_reference,
)
from repro.core.workdiv import WorkDivMembers


class TestReference:
    def test_value(self, rng):
        x, y = rng.random(10), rng.random(10)
        np.testing.assert_allclose(axpy_reference(2.0, x, y), 2.0 * x + y)

    def test_does_not_mutate(self, rng):
        x, y = rng.random(10), rng.random(10)
        y0 = y.copy()
        axpy_reference(2.0, x, y)
        np.testing.assert_array_equal(y, y0)


class TestCharacteristics:
    def test_scalar_kernel(self):
        wd = WorkDivMembers.make(1024, 1, 1)
        c = AxpyKernel().characteristics(wd, 1024, 2.0, None, None)
        assert c.flops == 2048.0
        assert c.total_bytes == 24 * 1024
        assert c.thread_access_pattern is AccessPattern.STRIDED
        assert not c.vector_friendly

    def test_element_kernel(self):
        wd = WorkDivMembers.make(8, 1, 128)
        c = AxpyElementsKernel().characteristics(wd, 1024, 2.0, None, None)
        assert c.thread_access_pattern is AccessPattern.CONTIGUOUS
        assert c.vector_friendly

    def test_both_same_work(self):
        wd = WorkDivMembers.make(1024, 1, 1)
        a = AxpyKernel().characteristics(wd, 1024, 2.0, None, None)
        b = AxpyElementsKernel().characteristics(wd, 1024, 2.0, None, None)
        assert a.flops == b.flops
        assert a.total_bytes == b.total_bytes
