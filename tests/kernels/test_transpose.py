"""Matrix transpose: both variants, every back-end shape, model pricing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import QueueBlocking, accelerator, get_dev_by_idx, mem
from repro.core.kernel import create_task_kernel
from repro.hardware import machine
from repro.kernels.transpose import (
    TransposeNaiveKernel,
    TransposeTiledKernel,
    transpose_workdiv,
)
from repro.perfmodel import predict_time


def run_transpose(acc_name, a, kernel, tile=8):
    acc = accelerator(acc_name)
    dev = get_dev_by_idx(acc, 0)
    q = QueueBlocking(dev)
    n = a.shape[0]
    inp = mem.alloc(dev, (n, n))
    out = mem.alloc(dev, (n, n))
    mem.copy(q, inp, a)
    q.enqueue(
        create_task_kernel(acc, transpose_workdiv(n, tile), kernel, n, inp, out)
    )
    res = np.empty((n, n))
    mem.copy(q, res, out)
    return res


class TestCorrectness:
    @pytest.mark.parametrize(
        "backend", ["AccCpuSerial", "AccCpuOmp2Blocks", "AccGpuCudaSim"]
    )
    @pytest.mark.parametrize(
        "kernel", [TransposeNaiveKernel(), TransposeTiledKernel()]
    )
    def test_transpose(self, backend, kernel, rng):
        a = rng.random((20, 20))  # ragged against tile 8
        np.testing.assert_array_equal(
            run_transpose(backend, a, kernel), a.T
        )

    @given(n=st.integers(1, 40), tile=st.sampled_from([4, 8, 16]))
    @settings(max_examples=15, deadline=None)
    def test_property_shapes(self, n, tile):
        a = np.random.default_rng(n).random((n, n))
        got = run_transpose("AccCpuSerial", a, TransposeTiledKernel(), tile)
        np.testing.assert_array_equal(got, a.T)

    def test_involution(self, rng):
        a = rng.random((16, 16))
        once = run_transpose("AccCpuSerial", a, TransposeTiledKernel())
        twice = run_transpose("AccCpuSerial", once, TransposeTiledKernel())
        np.testing.assert_array_equal(twice, a)


class TestModelPricing:
    def test_tiled_beats_naive_on_gpu(self):
        """The coalescing story in numbers: same bytes, different
        patterns, the tiled variant is modeled markedly faster."""
        k80 = machine("nvidia-k80")
        n = 8192
        wd = transpose_workdiv(n, 32)
        t_naive = predict_time(
            k80, "gpu", wd, TransposeNaiveKernel().characteristics(wd, n), "both"
        ).seconds
        t_tiled = predict_time(
            k80, "gpu", wd, TransposeTiledKernel().characteristics(wd, n), "both"
        ).seconds
        assert t_naive > 3 * t_tiled

    def test_both_memory_bound(self):
        k80 = machine("nvidia-k80")
        n = 8192
        wd = transpose_workdiv(n, 32)
        for k in (TransposeNaiveKernel(), TransposeTiledKernel()):
            p = predict_time(k80, "gpu", wd, k.characteristics(wd, n), "both")
            assert p.bound in ("dram", "on_chip"), (type(k).__name__, p.bound)
