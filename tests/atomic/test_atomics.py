"""Atomics: CUDA semantics and race-freedom under real threads."""

import threading

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.atomic import AtomicDomain


@pytest.fixture
def dom():
    return AtomicDomain()


@pytest.fixture
def arr():
    return np.zeros(8)


class TestSemantics:
    """All ops return the OLD value (CUDA convention)."""

    def test_add(self, dom, arr):
        assert dom.atomic_add(arr, 0, 5.0) == 0.0
        assert dom.atomic_add(arr, 0, 2.0) == 5.0
        assert arr[0] == 7.0

    def test_sub(self, dom, arr):
        arr[1] = 10.0
        assert dom.atomic_sub(arr, 1, 4.0) == 10.0
        assert arr[1] == 6.0

    def test_min_max(self, dom, arr):
        arr[2] = 5.0
        assert dom.atomic_min(arr, 2, 3.0) == 5.0
        assert arr[2] == 3.0
        assert dom.atomic_max(arr, 2, 9.0) == 3.0
        assert arr[2] == 9.0

    def test_exch(self, dom, arr):
        arr[3] = 1.0
        assert dom.atomic_exch(arr, 3, 42.0) == 1.0
        assert arr[3] == 42.0

    def test_cas(self, dom, arr):
        arr[4] = 7.0
        assert dom.atomic_cas(arr, 4, 7.0, 9.0) == 7.0
        assert arr[4] == 9.0
        assert dom.atomic_cas(arr, 4, 7.0, 11.0) == 9.0
        assert arr[4] == 9.0  # compare failed, no write

    def test_inc_wraps(self, dom):
        a = np.array([2], dtype=np.int64)
        assert dom.atomic_inc(a, 0, 2) == 2
        assert a[0] == 0  # old >= limit wraps to 0
        dom.atomic_inc(a, 0, 2)
        assert a[0] == 1

    def test_dec_wraps(self, dom):
        a = np.array([0], dtype=np.int64)
        assert dom.atomic_dec(a, 0, 5) == 0
        assert a[0] == 5  # old == 0 wraps to limit

    def test_bitwise(self, dom):
        a = np.array([0b1100], dtype=np.int64)
        dom.atomic_and_(a, 0, 0b1010)
        assert a[0] == 0b1000
        dom.atomic_or_(a, 0, 0b0001)
        assert a[0] == 0b1001
        dom.atomic_xor(a, 0, 0b1111)
        assert a[0] == 0b0110

    def test_multi_dim_index(self, dom):
        a = np.zeros((3, 3))
        dom.atomic_add(a, (1, 2), 4.0)
        assert a[1, 2] == 4.0
        dom.atomic_add(a, [1, 2], 1.0)  # list index accepted
        assert a[1, 2] == 5.0


class TestConcurrency:
    def test_threaded_add_is_exact(self, dom):
        """1000 increments from 8 threads land exactly — the property
        plain ``arr[i] += v`` does not have."""
        a = np.zeros(1)

        def worker():
            for _ in range(1000):
                dom.atomic_add(a, 0, 1.0)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert a[0] == 8000.0

    def test_threaded_disjoint_indices(self, dom):
        a = np.zeros(16)

        def worker(i):
            for _ in range(500):
                dom.atomic_add(a, i, 1.0)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert np.all(a == 500.0)

    def test_threaded_min(self, dom):
        a = np.full(1, np.inf)
        values = np.random.default_rng(0).random(400)

        def worker(chunk):
            for v in chunk:
                dom.atomic_min(a, 0, v)

        threads = [
            threading.Thread(target=worker, args=(values[i::4],))
            for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert a[0] == values.min()


class TestStriping:
    def test_single_stripe_still_correct(self):
        dom = AtomicDomain(stripes=1)
        a = np.zeros(4)
        for i in range(4):
            dom.atomic_add(a, i, float(i))
        np.testing.assert_array_equal(a, [0, 1, 2, 3])

    def test_invalid_stripes(self):
        with pytest.raises(ValueError):
            AtomicDomain(stripes=0)

    @given(st.integers(1, 64), st.lists(st.integers(0, 7), min_size=1, max_size=50))
    def test_any_striping_preserves_sums(self, stripes, indices):
        dom = AtomicDomain(stripes=stripes)
        a = np.zeros(8)
        for i in indices:
            dom.atomic_add(a, i, 1.0)
        assert a.sum() == len(indices)
