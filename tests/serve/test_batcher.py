"""Batching coalescer: windows, keys, size caps, flush semantics."""

from __future__ import annotations

import numpy as np

from repro.serve import Batcher, GraphRequest, LaunchRequest


def _axpy(alpha=2.0, n=16, tenant="t"):
    return LaunchRequest(
        workload="axpy",
        tenant=tenant,
        params={"alpha": alpha},
        arrays={"x": np.zeros(n), "y": np.zeros(n)},
    )


class TestCoalescing:
    def test_same_key_merges(self):
        b = Batcher(window=0.01, batch_max=8)
        b.add(_axpy(), now=0.0)
        b.add(_axpy(), now=0.001)
        assert b.pop_ready(now=0.005) == []  # window still open
        batches = b.pop_ready(now=0.02)
        assert len(batches) == 1
        assert batches[0].size == 2

    def test_different_alpha_does_not_merge(self):
        b = Batcher(window=0.01, batch_max=8)
        b.add(_axpy(alpha=1.0), now=0.0)
        b.add(_axpy(alpha=2.0), now=0.0)
        batches = b.pop_ready(now=1.0)
        assert len(batches) == 2
        assert all(batch.size == 1 for batch in batches)

    def test_different_dtype_does_not_merge(self):
        b = Batcher(window=0.01, batch_max=8)
        r32 = LaunchRequest(
            workload="axpy",
            params={"alpha": 2.0},
            arrays={
                "x": np.zeros(4, np.float32),
                "y": np.zeros(4, np.float32),
            },
        )
        b.add(_axpy(), now=0.0)
        b.add(r32, now=0.0)
        assert len(b.pop_ready(now=1.0)) == 2

    def test_different_backend_does_not_merge(self):
        b = Batcher(window=0.01, batch_max=8)
        r = _axpy()
        r.backend = "AccCpuSerial"
        b.add(_axpy(), now=0.0)
        b.add(r, now=0.0)
        assert len(b.pop_ready(now=1.0)) == 2

    def test_batch_max_flushes_immediately(self):
        b = Batcher(window=10.0, batch_max=3)
        for _ in range(3):
            b.add(_axpy(), now=0.0)
        batches = b.pop_ready(now=0.0)  # before the window would expire
        assert len(batches) == 1
        assert batches[0].size == 3

    def test_overflow_opens_new_batch(self):
        b = Batcher(window=10.0, batch_max=2)
        for _ in range(5):
            b.add(_axpy(), now=0.0)
        full = b.pop_ready(now=0.0)
        assert [batch.size for batch in full] == [2, 2]
        assert b.parked == 1


class TestPassThrough:
    def test_graph_requests_never_batch(self):
        b = Batcher(window=10.0, batch_max=8)
        g = GraphRequest(workload="heat_equation", params={"steps": 1})
        b.add(g, now=0.0)
        batches = b.pop_ready(now=0.0)
        assert len(batches) == 1
        assert batches[0].requests == [g]

    def test_batching_disabled_passes_through(self):
        b = Batcher(window=10.0, batch_max=8, enabled=False)
        b.add(_axpy(), now=0.0)
        b.add(_axpy(), now=0.0)
        batches = b.pop_ready(now=0.0)
        assert [batch.size for batch in batches] == [1, 1]


class TestFlush:
    def test_window_expiry_is_per_batch(self):
        b = Batcher(window=0.01, batch_max=8)
        b.add(_axpy(alpha=1.0), now=0.0)
        b.add(_axpy(alpha=2.0), now=0.008)
        first = b.pop_ready(now=0.012)
        assert len(first) == 1
        assert first[0].requests[0].params["alpha"] == 1.0
        second = b.pop_ready(now=0.020)
        assert len(second) == 1

    def test_flush_all_drains_open_batches(self):
        b = Batcher(window=100.0, batch_max=8)
        b.add(_axpy(), now=0.0)
        b.add(_axpy(), now=0.0)
        batches = b.flush_all()
        assert len(batches) == 1
        assert batches[0].size == 2
        assert b.parked == 0

    def test_next_deadline_tracks_earliest(self):
        b = Batcher(window=0.5, batch_max=8)
        assert b.next_deadline() is None
        b.add(_axpy(alpha=1.0), now=1.0)
        b.add(_axpy(alpha=2.0), now=2.0)
        assert b.next_deadline() == 1.5
