"""TCP server + async client: the full remote path over localhost."""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.core.errors import ServeError
from repro.serve import Gateway, ServeConfig
from repro.serve.client import ServeClient
from repro.serve.server import ServeServer


def run(coro):
    return asyncio.run(coro)


@pytest.fixture
def server_config():
    # port=0: bind an ephemeral port so parallel test runs never clash.
    return ServeConfig(port=0, batch_window=0.002, drain_timeout=30.0)


async def _with_server(config, fn):
    gateway = Gateway(config)
    try:
        async with ServeServer(config, gateway=gateway) as server:
            async with ServeClient(port=server.port) as client:
                return await fn(server, client)
    finally:
        gateway.shutdown(release_pools=False)


class TestServer:
    def test_ping(self, server_config):
        async def check(server, client):
            assert await client.ping()

        run(_with_server(server_config, check))

    def test_launch_roundtrip(self, server_config, rng):
        x = rng.standard_normal(100)
        y = rng.standard_normal(100)

        async def check(server, client):
            result = await client.launch(
                "axpy", params={"alpha": 2.5}, arrays={"x": x, "y": y}
            )
            assert np.array_equal(result.arrays["y"], 2.5 * x + y)

        run(_with_server(server_config, check))

    def test_concurrent_clients_batch(self, server_config, rng):
        x = rng.standard_normal(64)
        y = rng.standard_normal(64)

        async def check(server, client):
            results = await asyncio.gather(
                *(
                    client.launch(
                        "axpy",
                        params={"alpha": 2.0},
                        arrays={"x": x, "y": y},
                        tenant=f"t{i % 3}",
                    )
                    for i in range(12)
                )
            )
            assert all(
                np.array_equal(r.arrays["y"], 2.0 * x + y) for r in results
            )
            return max(r.batch_size for r in results)

        max_batch = run(_with_server(server_config, check))
        assert max_batch > 1

    def test_graph_over_wire(self, server_config):
        plate = np.zeros((12, 12))
        plate[0, :] = 10.0

        async def check(server, client):
            result = await client.submit_graph(
                "heat_equation",
                params={"steps": 2, "c": 0.1},
                arrays={"plate": plate},
            )
            assert result.arrays["plate"].shape == (12, 12)

        run(_with_server(server_config, check))

    def test_stats_op(self, server_config, rng):
        async def check(server, client):
            await client.launch(
                "axpy",
                params={"alpha": 1.0},
                arrays={
                    "x": rng.standard_normal(8),
                    "y": rng.standard_normal(8),
                },
            )
            stats = await client.stats()
            assert stats["requests"]["completed"] >= 1
            assert "lanes" in stats

        run(_with_server(server_config, check))

    def test_remote_validation_error(self, server_config):
        async def check(server, client):
            with pytest.raises(ServeError):
                await client.launch("axpy", params={"alpha": 1.0})

        run(_with_server(server_config, check))

    def test_unknown_op_is_an_error_reply(self, server_config):
        async def check(server, client):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(json.dumps({"op": "frobnicate", "id": 1}).encode() + b"\n")
            await writer.drain()
            line = await reader.readline()
            writer.close()
            reply = json.loads(line)
            assert reply["ok"] is False
            assert "unknown op" in reply["message"]

        run(_with_server(server_config, check))

    def test_malformed_line_is_an_error_reply(self, server_config):
        async def check(server, client):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(b"this is not json\n")
            await writer.drain()
            line = await reader.readline()
            writer.close()
            reply = json.loads(line)
            assert reply["ok"] is False

        run(_with_server(server_config, check))

    def test_large_payload_roundtrip(self, server_config, rng):
        """Lines beyond asyncio's 64 KiB default stream limit must
        survive — server and client raise the limit to the protocol's
        frame bound (regression: big arrays severed the connection)."""
        x = rng.standard_normal(40000)  # ~427 KiB base64-encoded
        y = rng.standard_normal(40000)

        async def check(server, client):
            result = await client.launch(
                "axpy", params={"alpha": 2.0}, arrays={"x": x, "y": y}
            )
            assert np.array_equal(result.arrays["y"], 2.0 * x + y)

        run(_with_server(server_config, check))

    def test_results_bit_identical_over_wire(self, server_config, rng):
        """Base64 framing must not perturb a single bit."""
        x = rng.standard_normal(333)
        y = rng.standard_normal(333)

        async def check(server, client):
            remote = await client.launch(
                "axpy", params={"alpha": 1.7}, arrays={"x": x, "y": y}
            )
            return remote.arrays["y"]

        remote_y = run(_with_server(server_config, check))
        with Gateway(
            ServeConfig(enable_batching=False, batch_window=0.0)
        ) as gw:
            local = gw.launch(
                "axpy", params={"alpha": 1.7}, arrays={"x": x, "y": y}
            ).result(timeout=30)
            gw.shutdown(release_pools=False)
        assert np.array_equal(remote_y, local.arrays["y"])
