"""Gateway end-to-end: submit → batch → execute → resolve, plus
backpressure, error delivery, fairness accounting and shutdown."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.errors import ServeError
from repro.serve import (
    Gateway,
    GatewayClosed,
    RetryAfter,
    ServeConfig,
)


@pytest.fixture
def gateway():
    gw = Gateway(ServeConfig(batch_window=0.002, drain_timeout=30.0))
    yield gw
    gw.shutdown(release_pools=False)


def _axpy_args(rng, n=128):
    return {
        "params": {"alpha": 2.0},
        "arrays": {
            "x": rng.standard_normal(n),
            "y": rng.standard_normal(n),
        },
    }


class TestEndToEnd:
    def test_single_launch(self, gateway, rng):
        x = rng.standard_normal(64)
        y = rng.standard_normal(64)
        handle = gateway.launch(
            "axpy", params={"alpha": 3.0}, arrays={"x": x, "y": y}
        )
        result = handle.result(timeout=30)
        assert np.array_equal(result.arrays["y"], 3.0 * x + y)
        assert result.latency > 0
        assert result.lane

    def test_concurrent_burst_batches(self, gateway, rng):
        x = rng.standard_normal(64)
        y = rng.standard_normal(64)
        handles = [
            gateway.launch(
                "axpy", params={"alpha": 2.0}, arrays={"x": x, "y": y}
            )
            for _ in range(8)
        ]
        results = [h.result(timeout=30) for h in handles]
        assert all(
            np.array_equal(r.arrays["y"], 2.0 * x + y) for r in results
        )
        # The burst lands inside one window: at least one merged batch.
        assert max(r.batch_size for r in results) > 1

    def test_batched_result_bit_identical_to_solo(self, rng):
        x = rng.standard_normal(200)
        y = rng.standard_normal(200)
        with Gateway(
            ServeConfig(enable_batching=False, batch_window=0.0)
        ) as solo_gw:
            solo = solo_gw.launch(
                "axpy", params={"alpha": 1.3}, arrays={"x": x, "y": y}
            ).result(timeout=30)
            assert solo.batch_size == 1
            solo_gw.shutdown(release_pools=False)
        with Gateway(ServeConfig(batch_window=0.005)) as batch_gw:
            handles = [
                batch_gw.launch(
                    "axpy", params={"alpha": 1.3}, arrays={"x": x, "y": y}
                )
                for _ in range(4)
            ]
            results = [h.result(timeout=30) for h in handles]
            batch_gw.shutdown(release_pools=False)
        for r in results:
            assert np.array_equal(r.arrays["y"], solo.arrays["y"])

    def test_graph_submission(self, gateway):
        plate = np.zeros((16, 16))
        plate[0, :] = 100.0
        handle = gateway.submit_graph(
            "heat_equation",
            params={"steps": 3, "c": 0.2},
            arrays={"plate": plate},
        )
        result = handle.result(timeout=60)
        out = result.arrays["plate"]
        assert out.shape == (16, 16)
        assert out[1, 1] > 0  # heat diffused off the hot edge
        assert result.batch_size == 1  # graphs never merge

    def test_mixed_tenants_complete(self, gateway, rng):
        handles = []
        for tenant in ("alice", "bob", "carol"):
            for _ in range(4):
                handles.append(
                    gateway.launch(
                        "axpy", tenant=tenant, **_axpy_args(rng)
                    )
                )
        for h in handles:
            h.result(timeout=30)
        stats = gateway.stats()
        assert stats["requests"]["completed"] == 12
        assert set(stats["tenants"]) == {"alice", "bob", "carol"}

    def test_await_handle(self, gateway, rng):
        import asyncio

        async def run():
            handle = gateway.launch("axpy", **_axpy_args(rng))
            return await handle

        result = asyncio.run(run())
        assert "y" in result.arrays


class TestValidationAndErrors:
    def test_invalid_request_rejected_at_submit(self, gateway):
        with pytest.raises(ServeError):
            gateway.launch("axpy", params={"alpha": 1.0}, arrays={})
        # Nothing was admitted or leaked.
        assert gateway.pending() == 0

    def test_unknown_workload_rejected(self, gateway):
        with pytest.raises(ServeError, match="unknown workload"):
            gateway.launch("definitely_not_registered")

    def test_unknown_backend_rejected(self, gateway, rng):
        with pytest.raises(ServeError, match="no lane"):
            gateway.launch(
                "axpy", backend="AccGpuHypothetical", **_axpy_args(rng)
            )

    def test_execution_error_fails_only_that_handle(self, gateway, rng):
        from repro.serve import register_workload, Workload

        class Exploding(Workload):
            name = "test_exploding"

            def validate(self, req):
                pass

            def execute(self, requests, acc_type, device):
                raise RuntimeError("boom")

        try:
            register_workload(Exploding())
        except ServeError:
            pass  # registered by an earlier test run
        bad = gateway.launch("test_exploding")
        good = gateway.launch("axpy", **_axpy_args(rng))
        with pytest.raises(RuntimeError, match="boom"):
            bad.result(timeout=30)
        good.result(timeout=30)  # the lane survived the failure
        assert gateway.stats()["requests"]["failed"] == 1


class TestBackpressure:
    def test_retry_after_when_queue_full(self, rng):
        # One-request queue, no pump progress possible during the
        # flood: the second offer must bounce.
        gw = Gateway(
            ServeConfig(
                queue_bound=1, tenant_inflight=1, batch_window=0.0
            )
        )
        try:
            args = _axpy_args(rng, n=20_000)
            seen_retry = False
            handles = []
            for _ in range(50):
                try:
                    handles.append(gateway_launch(gw, args))
                except RetryAfter as exc:
                    seen_retry = True
                    assert exc.delay > 0
                    break
            assert seen_retry
            for h in handles:
                h.result(timeout=30)
        finally:
            gw.shutdown(release_pools=False)


def gateway_launch(gw, args):
    return gw.launch("axpy", **args)


class TestShutdown:
    def test_shutdown_drains_inflight(self, rng):
        gw = Gateway(ServeConfig(batch_window=0.002))
        handles = [
            gw.launch("axpy", **_axpy_args(rng)) for _ in range(6)
        ]
        assert gw.shutdown(release_pools=False) is True
        for h in handles:
            assert "y" in h.result(timeout=1).arrays

    def test_submit_after_shutdown_raises(self, rng):
        gw = Gateway(ServeConfig(batch_window=0.0))
        gw.shutdown(release_pools=False)
        with pytest.raises(GatewayClosed):
            gw.launch("axpy", **_axpy_args(rng))

    def test_shutdown_idempotent(self):
        gw = Gateway(ServeConfig(batch_window=0.0))
        assert gw.shutdown(release_pools=False) is True
        assert gw.shutdown(release_pools=False) is True

    def test_abort_fails_queued_handles(self, rng):
        # Tiny in-flight cap + many requests: most sit in the admission
        # queue when the abort lands.
        gw = Gateway(
            ServeConfig(
                batch_window=0.0, tenant_inflight=1, queue_bound=256
            )
        )
        args = _axpy_args(rng, n=50_000)
        handles = [gw.launch("axpy", **args) for _ in range(30)]
        gw.shutdown(drain=False, release_pools=False)
        outcomes = {"ok": 0, "closed": 0}
        for h in handles:
            try:
                h.result(timeout=5)
                outcomes["ok"] += 1
            except GatewayClosed:
                outcomes["closed"] += 1
        assert outcomes["ok"] + outcomes["closed"] == 30
        assert outcomes["closed"] > 0, "abort should strand queued work"

    def test_no_leaked_pump_thread(self):
        gw = Gateway(ServeConfig(batch_window=0.0))
        pump = gw._pump
        gw.shutdown(release_pools=False)
        pump.join(timeout=5)
        assert not pump.is_alive()

    def test_context_manager(self, rng):
        with Gateway(ServeConfig(batch_window=0.002)) as gw:
            h = gw.launch("axpy", **_axpy_args(rng))
            h.result(timeout=30)
        assert gw.closed


class TestThreadedClients:
    def test_many_threads_share_gateway(self, gateway, rng):
        x = rng.standard_normal(64)
        y = rng.standard_normal(64)
        expected = 2.0 * x + y
        errors = []

        def client(tenant):
            try:
                for _ in range(5):
                    r = gateway.launch(
                        "axpy",
                        tenant=tenant,
                        params={"alpha": 2.0},
                        arrays={"x": x, "y": y},
                    ).result(timeout=30)
                    assert np.array_equal(r.arrays["y"], expected)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(f"t{i}",))
            for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        assert gateway.stats()["requests"]["completed"] == 40
