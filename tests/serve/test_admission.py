"""Fair-share admission: weighted DRR, caps, backpressure, shutdown."""

from __future__ import annotations

import pytest

from repro.serve import (
    FairShareAdmission,
    GatewayClosed,
    LaunchRequest,
    RetryAfter,
    ServeConfig,
)


def _config(**kw):
    defaults = dict(queue_bound=8, tenant_inflight=100)
    defaults.update(kw)
    return ServeConfig(**defaults)


def _req(tenant: str) -> LaunchRequest:
    return LaunchRequest(workload="axpy", tenant=tenant)


def _drain(adm, limit=10_000):
    out = []
    for _ in range(limit):
        req = adm.next_ready()
        if req is None:
            break
        out.append(req)
    return out


class TestOfferAndRelease:
    def test_fifo_within_tenant(self):
        adm = FairShareAdmission(_config())
        reqs = [_req("a") for _ in range(5)]
        for r in reqs:
            adm.offer(r)
        released = _drain(adm)
        assert [r.request_id for r in released] == [
            r.request_id for r in reqs
        ]

    def test_empty_returns_none(self):
        adm = FairShareAdmission(_config())
        assert adm.next_ready() is None

    def test_release_sets_admitted_timestamp(self):
        adm = FairShareAdmission(_config())
        adm.offer(_req("a"))
        req = adm.next_ready()
        assert req.admitted_at >= req.submitted_at

    def test_ready_event_set_on_offer(self):
        adm = FairShareAdmission(_config())
        adm.ready.clear()
        adm.offer(_req("a"))
        assert adm.ready.is_set()


class TestWeightedFairness:
    def test_equal_weights_interleave(self):
        adm = FairShareAdmission(_config(queue_bound=100))
        for _ in range(10):
            adm.offer(_req("a"))
            adm.offer(_req("b"))
        released = _drain(adm)
        firsts = [r.tenant for r in released[:10]]
        # Round-robin: neither tenant gets more than a 1-release lead.
        assert firsts.count("a") == 5
        assert firsts.count("b") == 5

    def test_weight_ratio_respected(self):
        adm = FairShareAdmission(
            _config(queue_bound=300, tenant_weights={"gold": 3.0, "free": 1.0})
        )
        for _ in range(200):
            adm.offer(_req("gold"))
            adm.offer(_req("free"))
        released = _drain(adm, limit=100)
        gold = sum(1 for r in released if r.tenant == "gold")
        free = sum(1 for r in released if r.tenant == "free")
        assert free > 0
        # 3:1 within rounding slack over a 100-release window.
        assert 2.0 <= gold / free <= 4.0

    def test_fractional_weight_accumulates(self):
        adm = FairShareAdmission(
            _config(queue_bound=100, tenant_weights={"slow": 0.5, "fast": 1.0})
        )
        for _ in range(40):
            adm.offer(_req("slow"))
            adm.offer(_req("fast"))
        released = _drain(adm, limit=30)
        slow = sum(1 for r in released if r.tenant == "slow")
        fast = sum(1 for r in released if r.tenant == "fast")
        assert slow > 0, "a 0.5-weight tenant must still be served"
        assert fast > slow

    def test_idle_tenant_loses_credit(self):
        # DRR rule: a tenant with an empty queue must not bank deficit
        # and burst later.
        adm = FairShareAdmission(_config(queue_bound=100))
        adm.offer(_req("a"))
        _drain(adm)  # several empty-queue visits for both tenants
        for _ in range(6):
            adm.offer(_req("a"))
            adm.offer(_req("b"))
        released = _drain(adm)
        firsts = [r.tenant for r in released[:6]]
        assert firsts.count("a") == 3
        assert firsts.count("b") == 3


class TestInflightCap:
    def test_cap_blocks_release(self):
        adm = FairShareAdmission(_config(tenant_inflight=2))
        for _ in range(5):
            adm.offer(_req("a"))
        assert len(_drain(adm)) == 2
        assert adm.next_ready() is None

    def test_completion_frees_slot(self):
        adm = FairShareAdmission(_config(tenant_inflight=1))
        adm.offer(_req("a"))
        adm.offer(_req("a"))
        assert adm.next_ready() is not None
        assert adm.next_ready() is None
        adm.task_finished("a", 0.001, ok=True)
        assert adm.next_ready() is not None

    def test_capped_tenant_does_not_block_others(self):
        adm = FairShareAdmission(_config(tenant_inflight=1))
        adm.offer(_req("a"))
        adm.offer(_req("a"))
        adm.offer(_req("b"))
        released = _drain(adm)
        assert {r.tenant for r in released} == {"a", "b"}


class TestBackpressure:
    def test_retry_after_on_full_queue(self):
        adm = FairShareAdmission(_config(queue_bound=3))
        for _ in range(3):
            adm.offer(_req("a"))
        with pytest.raises(RetryAfter) as exc_info:
            adm.offer(_req("a"))
        exc = exc_info.value
        assert exc.tenant == "a"
        assert exc.depth == 3
        assert 0.001 <= exc.delay <= 5.0

    def test_full_queue_is_per_tenant(self):
        adm = FairShareAdmission(_config(queue_bound=2))
        adm.offer(_req("a"))
        adm.offer(_req("a"))
        adm.offer(_req("b"))  # b's queue is its own

    def test_delay_scales_with_service_time(self):
        adm = FairShareAdmission(_config(queue_bound=4))
        for _ in range(4):
            adm.offer(_req("a"))
        for _ in range(8):  # raise the EWMA: ~0.5 s per request
            adm.task_finished("a", 0.5, ok=True)
        with pytest.raises(RetryAfter) as exc_info:
            adm.offer(_req("a"))
        assert exc_info.value.delay > 0.5

    def test_rejected_counted(self):
        adm = FairShareAdmission(_config(queue_bound=1))
        adm.offer(_req("a"))
        with pytest.raises(RetryAfter):
            adm.offer(_req("a"))
        assert adm.stats()["a"]["rejected"] == 1


class TestClose:
    def test_closed_rejects_offers(self):
        adm = FairShareAdmission(_config())
        adm.close()
        with pytest.raises(GatewayClosed):
            adm.offer(_req("a"))

    def test_graceful_close_keeps_queue(self):
        adm = FairShareAdmission(_config())
        adm.offer(_req("a"))
        stranded = adm.close(drain=True)
        assert stranded == []
        assert adm.next_ready() is not None

    def test_abort_close_returns_stranded(self):
        adm = FairShareAdmission(_config())
        a, b = _req("a"), _req("b")
        adm.offer(a)
        adm.offer(b)
        stranded = adm.close(drain=False)
        assert {r.request_id for r in stranded} == {
            a.request_id,
            b.request_id,
        }
        assert adm.next_ready() is None
