"""Wire codec round-trips and malformed-payload rejection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ServeError
from repro.serve.protocol import (
    decode_array,
    decode_arrays,
    decode_message,
    encode_array,
    encode_arrays,
    encode_message,
    error_payload,
    result_payload,
)
from repro.serve.types import LaunchRequest, RetryAfter, ServeResult


class TestArrayCodec:
    @pytest.mark.parametrize(
        "arr",
        [
            np.arange(10, dtype=np.float64),
            np.arange(12, dtype=np.float32).reshape(3, 4),
            np.array([], dtype=np.int64),
            np.arange(24, dtype=np.int32).reshape(2, 3, 4),
        ],
    )
    def test_roundtrip_bit_exact(self, arr):
        back = decode_array(encode_array(arr))
        assert back.dtype == arr.dtype
        assert back.shape == arr.shape
        assert np.array_equal(back, arr)

    def test_non_contiguous_input(self):
        arr = np.arange(20, dtype=np.float64)[::2]
        back = decode_array(encode_array(arr))
        assert np.array_equal(back, arr)

    def test_decoded_array_is_writable(self):
        back = decode_array(encode_array(np.arange(4.0)))
        back[0] = 99.0  # frombuffer gives read-only memory; we copy

    def test_size_mismatch_rejected(self):
        payload = encode_array(np.arange(10.0))
        payload["shape"] = [11]
        with pytest.raises(ServeError, match="size mismatch"):
            decode_array(payload)

    def test_garbage_payload_rejected(self):
        with pytest.raises(ServeError):
            decode_array({"dtype": "float64"})
        with pytest.raises(ServeError):
            decode_array({"dtype": "nope", "shape": [1], "data": ""})

    def test_arrays_dict_roundtrip(self):
        arrays = {"x": np.arange(4.0), "y": np.ones((2, 2))}
        back = decode_arrays(encode_arrays(arrays))
        assert set(back) == {"x", "y"}
        assert np.array_equal(back["y"], arrays["y"])

    def test_arrays_must_be_object(self):
        with pytest.raises(ServeError):
            decode_arrays([1, 2, 3])


class TestMessageFraming:
    def test_roundtrip(self):
        msg = {"op": "launch", "id": 7, "params": {"alpha": 2.0}}
        line = encode_message(msg)
        assert line.endswith(b"\n")
        assert decode_message(line) == msg

    def test_malformed_json_rejected(self):
        with pytest.raises(ServeError, match="malformed JSON"):
            decode_message(b"{nope\n")

    def test_non_object_rejected(self):
        with pytest.raises(ServeError, match="JSON object"):
            decode_message(b"[1,2]\n")


class TestPayloads:
    def test_result_payload(self):
        res = ServeResult(
            request_id=3,
            tenant="a",
            workload="axpy",
            arrays={"y": np.arange(3.0)},
            latency=0.01,
            batch_size=4,
            lane="AccCpuSerial/0",
        )
        payload = result_payload(9, res)
        assert payload["ok"] is True
        assert payload["id"] == 9
        assert payload["batch_size"] == 4
        assert np.array_equal(
            decode_arrays(payload["arrays"])["y"], np.arange(3.0)
        )

    def test_error_payload_plain(self):
        payload = error_payload(5, ValueError("nope"))
        assert payload == {
            "id": 5,
            "ok": False,
            "error": "ValueError",
            "message": "nope",
        }

    def test_error_payload_retry_after(self):
        payload = error_payload(5, RetryAfter("a", 0.25, 10))
        assert payload["error"] == "RetryAfter"
        assert payload["retry_after"] == 0.25


class TestRequestDefaults:
    def test_request_ids_unique(self):
        a = LaunchRequest(workload="axpy")
        b = LaunchRequest(workload="axpy")
        assert a.request_id != b.request_id

    def test_arrays_coerced_to_ndarray(self):
        r = LaunchRequest(workload="axpy", arrays={"x": [1.0, 2.0]})
        assert isinstance(r.arrays["x"], np.ndarray)
