"""End-to-end distributed trace: one ServeClient request travels over
TCP, through the gateway's batcher, onto a *forced* process-pool launch
— and every span lands in ONE trace whose events span at least three OS
processes (the test process plus two pool workers), with worker spans
parenting correctly under the server-side request span."""

from __future__ import annotations

import asyncio
import os

import numpy as np
import pytest

from repro import telemetry
from repro.runtime import shutdown_schedulers
from repro.serve import Gateway, ServeConfig
from repro.serve.client import ServeClient
from repro.serve.server import ServeServer
from repro.telemetry import tracing
from repro.telemetry.export import (
    TRACE_PID,
    stitch_traces,
    to_chrome_trace,
    validate_trace,
)

#: Pool-capable back-end: Omp2Blocks runs one thread per block, so the
#: override to ``processes`` applies (serial/thread-level back-ends are
#: never remapped).
POOL_BACKEND = "AccCpuOmp2Blocks"

#: Large enough that the elementwise work division produces many blocks
#: — the plan chunks them across both pool workers.
N = 16384

#: Worker scheduling is the OS's business: one fast worker can steal
#: both chunks of a launch while its sibling is still bootstrapping.
#: Additional launches under the same root trace coax the second worker
#: out; every one of them still belongs to the single client trace.
MAX_LAUNCHES = 12


@pytest.fixture
def forced_process_pool(monkeypatch):
    monkeypatch.setenv("REPRO_SCHEDULER", "processes")
    monkeypatch.setenv("REPRO_PROCESS_WORKERS", "2")
    monkeypatch.setenv("REPRO_SHM_BUFFERS", "1")
    yield
    # Drop the process pools so later tests do not inherit live workers
    # (the env override itself is undone by monkeypatch).
    shutdown_schedulers()


def _worker_pids(collector):
    return {
        ev.pid
        for ev in collector.events
        if ev.cat == "worker" and ev.pid not in (None, os.getpid())
    }


async def _drive(config, collector, x, y):
    """Serve launches over a real socket until two distinct pool-worker
    pids have reported spans (or the attempt budget runs out)."""
    gateway = Gateway(config)
    try:
        async with ServeServer(config, gateway=gateway) as server:
            async with ServeClient(port=server.port) as client:
                for _ in range(MAX_LAUNCHES):
                    result = await client.launch(
                        "axpy",
                        backend=POOL_BACKEND,
                        params={"alpha": 2.0},
                        arrays={"x": x, "y": y},
                    )
                    assert np.allclose(result.arrays["y"], 2.0 * x + y)
                    if len(_worker_pids(collector)) >= 2:
                        break
    finally:
        gateway.shutdown(release_pools=False)


def test_single_trace_spans_three_processes(forced_process_pool, rng):
    x = rng.standard_normal(N)
    y = rng.standard_normal(N)
    config = ServeConfig(
        port=0,
        batch_window=0.002,
        drain_timeout=60.0,
        lanes=((POOL_BACKEND, 0),),
    )

    root = tracing.new_trace()
    with telemetry.collect() as t:
        with tracing.use(root):
            asyncio.run(_drive(config, t, x, y))

    # -- one trace ------------------------------------------------------
    trace = to_chrome_trace(t)
    traced = [
        ev
        for ev in trace["traceEvents"]
        if ev.get("ph") == "X" and "trace_id" in ev.get("args", {})
    ]
    assert traced, "no trace-stamped events were collected"
    trace_ids = {ev["args"]["trace_id"] for ev in traced}
    assert trace_ids == {root.trace_id}, (
        f"expected every span in trace {root.trace_id}, got {trace_ids}"
    )

    # -- three processes ------------------------------------------------
    worker_events = [
        ev for ev in trace["traceEvents"] if ev.get("cat") == "worker"
    ]
    assert worker_events, "no pool-worker spans were replayed parent-side"
    worker_pids = {ev["pid"] for ev in worker_events}
    assert os.getpid() not in worker_pids
    assert TRACE_PID not in worker_pids
    assert len(worker_pids) >= 2, (
        f"expected two pool workers, saw pids {worker_pids}"
    )
    # Main-process events plus two workers: >= 3 distinct processes.
    all_pids = {ev.get("pid") for ev in trace["traceEvents"]}
    assert len(all_pids) >= 3

    # -- parenting ------------------------------------------------------
    # Worker chunk spans are children of the server-side request span:
    # run_chunk received the traceparent of the context the router
    # installed around the merged launch, i.e. request.trace.
    request_spans = {
        ev["args"]["span_id"]
        for ev in traced
        if ev["name"] == "serve.request"
    }
    assert request_spans, "no serve.request span was recorded"
    for ev in worker_events:
        args = ev.get("args", {})
        assert args.get("trace_id") == root.trace_id
        assert args.get("parent_id") in request_spans, (
            f"worker span parent {args.get('parent_id')!r} is not a "
            f"serve.request span ({request_spans})"
        )
    # And the request spans themselves chain back toward the client's
    # root context (client child -> wire -> server span).
    for ev in traced:
        if ev["name"] == "serve.request":
            assert ev["args"].get("parent_id"), (
                "server-side request span lost its client parent"
            )

    # -- exported artefact is well-formed -------------------------------
    validate_trace(trace)
    stitched = stitch_traces([trace])
    validate_trace(stitched)
    # Stitching rewrote the placeholder pid to this process's real one;
    # the worker tracks survive untouched.
    stitched_pids = {
        ev.get("pid")
        for ev in stitched["traceEvents"]
        if ev.get("ph") == "X"
    }
    assert os.getpid() in stitched_pids
    assert worker_pids <= stitched_pids
