"""Online drift-driven re-tuning wired into the gateway."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import Gateway, ServeConfig
from repro.serve.config import ONLINE_TUNING_ENV, config_from_env
from repro.serve.online import OnlineTuner
from repro.serve.workloads import get_workload
from repro.tuning.fleet.config import FleetConfig
from repro.tuning.cache import tuning_generation


def _fleet_cfg():
    return FleetConfig(
        drift_window=8,
        drift_threshold=1.5,
        drift_ewma_alpha=0.9,
        drift_cooldown=0.0,
        drift_budget=3,
    )


def _drive(gw, rng, n=128, count=1, alpha=2.0):
    x = rng.standard_normal(n)
    y = rng.standard_normal(n)
    handles = [
        gw.launch("axpy", params={"alpha": alpha}, arrays={"x": x, "y": y})
        for _ in range(count)
    ]
    results = [h.result(timeout=30) for h in handles]
    for r in results:
        assert np.array_equal(r.arrays["y"], alpha * x + y)
    return results


class TestWiring:
    def test_off_by_default(self):
        with Gateway(ServeConfig()) as gw:
            assert gw.online is None
            assert "online_tuning" not in gw.stats()
            gw.shutdown(release_pools=False)

    def test_enabled_by_config(self):
        with Gateway(ServeConfig(online_tuning=True)) as gw:
            assert isinstance(gw.online, OnlineTuner)
            gw.shutdown(release_pools=False)

    def test_enabled_by_env(self, monkeypatch):
        monkeypatch.setenv(ONLINE_TUNING_ENV, "1")
        assert config_from_env().online_tuning
        monkeypatch.setenv(ONLINE_TUNING_ENV, "off")
        assert not config_from_env().online_tuning

    def test_completed_requests_feed_the_monitor(self, rng):
        with Gateway(ServeConfig(online_tuning=True)) as gw:
            _drive(gw, rng, count=3)
            stats = gw.stats()["online_tuning"]
            assert stats["retunes"] == 0
            assert stats["workloads"]["axpy"]["samples"] >= 3
            gw.shutdown(release_pools=False)

    def test_observed_latency_is_service_not_queueing(self, rng):
        """The drift signal must be the service latency; a full window
        of steady traffic forms a finite baseline."""
        with Gateway(ServeConfig(online_tuning=True)) as gw:
            gw.online.monitor.config = _fleet_cfg()
            gw.online.monitor._stats.clear()
            _drive(gw, rng, count=10)
            snap = gw.online.monitor.snapshot()["axpy"]
            assert snap["baseline_median"] is not None
            assert snap["baseline_median"] > 0
            gw.shutdown(release_pools=False)


class TestRetuneLoop:
    def test_drift_triggers_background_retune_and_hot_swap(self, rng):
        """The acceptance scenario end-to-end: induced drift must
        trigger a background re-tune (generation bump) while every
        request before, during and after stays bit-identical."""
        with Gateway(ServeConfig(online_tuning=True)) as gw:
            tuner = OnlineTuner(_fleet_cfg())
            gw.online.close()
            gw.online = tuner

            _drive(gw, rng, count=10)  # forms the baseline window
            gen_before = tuning_generation()

            # Inject inflated service latencies for the axpy workload —
            # the kernel itself is untouched, so correctness of the
            # racing requests is the hot-swap guarantee under test.
            base = tuner.monitor.snapshot()["axpy"]["baseline_median"]
            for _ in range(16):
                tuner.monitor.observe("axpy", base * 5.0)
                _drive(gw, rng, count=1)

            assert tuner.wait_idle(timeout=30.0)
            stats = tuner.stats()
            assert stats["retunes"] >= 1
            assert tuning_generation() > gen_before

            # Post-swap traffic is still bit-identical.
            _drive(gw, rng, count=4)
            gw.shutdown(release_pools=False)

    def test_failed_retune_never_breaks_serving(self, rng, monkeypatch):
        with Gateway(ServeConfig(online_tuning=True)) as gw:
            tuner = OnlineTuner(_fleet_cfg())
            gw.online.close()
            gw.online = tuner

            def explode(*a, **k):
                raise RuntimeError("no device")

            monkeypatch.setattr(
                type(get_workload("axpy")), "retune", explode
            )
            _drive(gw, rng, count=10)
            base = tuner.monitor.snapshot()["axpy"]["baseline_median"]
            for _ in range(16):
                tuner.monitor.observe("axpy", base * 5.0)
            assert tuner.wait_idle(timeout=30.0)
            # Serving continues, results stay correct, retunes stay 0.
            _drive(gw, rng, count=3)
            assert tuner.stats()["retunes"] == 0
            gw.shutdown(release_pools=False)

    def test_retune_without_observed_target_is_a_noop(self):
        tuner = OnlineTuner(_fleet_cfg())
        tuner._retune("axpy")  # no request seen yet: nothing to measure
        assert tuner.stats()["retunes"] == 0
        tuner.close()


class TestWorkloadRetune:
    def test_base_workload_declines(self):
        from repro.serve.workloads import Workload

        class Inert(Workload):
            name = "inert-test"

            def execute(self, *a, **k):  # pragma: no cover - unused
                raise NotImplementedError

        assert Inert().retune(None, None, 64, budget=2) is False

    def test_axpy_retune_measures_and_reports_true(self):
        from repro import AccCpuSerial, get_dev_by_idx

        dev = get_dev_by_idx(AccCpuSerial)
        gen_before = tuning_generation()
        assert get_workload("axpy").retune(AccCpuSerial, dev, 256, budget=2)
        assert tuning_generation() > gen_before

    def test_scale_retune_measures_and_reports_true(self):
        from repro import AccCpuSerial, get_dev_by_idx

        dev = get_dev_by_idx(AccCpuSerial)
        assert get_workload("scale").retune(AccCpuSerial, dev, 256, budget=2)


@pytest.fixture(autouse=True)
def _isolated_tuning(tmp_path, monkeypatch):
    """Online tuning writes through the default tuning cache; keep it
    (and the plan cache) away from other tests' state."""
    from repro.runtime import clear_plan_cache
    from repro.tuning import TUNING_CACHE_ENV, reset_default_cache

    monkeypatch.setenv(TUNING_CACHE_ENV, str(tmp_path / "cache.json"))
    monkeypatch.setenv("REPRO_TUNING_HOF", str(tmp_path / "hof.json"))
    reset_default_cache()
    clear_plan_cache()
    yield
    reset_default_cache()
    clear_plan_cache()
