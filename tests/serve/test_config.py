"""ServeConfig construction, env overrides and the parse helpers."""

from __future__ import annotations

import pytest

from repro.serve import (
    ServeConfig,
    ServeConfigError,
    config_from_env,
    parse_lanes,
    parse_tenant_weights,
)
from repro.serve.config import (
    BATCH_MAX_ENV,
    BATCH_WINDOW_ENV,
    INFLIGHT_ENV,
    LANES_ENV,
    PORT_ENV,
    QUEUE_BOUND_ENV,
    TENANT_WEIGHTS_ENV,
)


class TestDefaults:
    def test_defaults_sane(self):
        cfg = ServeConfig()
        assert cfg.port == 7411
        assert cfg.batch_window > 0
        assert cfg.batch_max > 1
        assert cfg.queue_bound > 0
        assert cfg.tenant_inflight > 0
        assert cfg.enable_batching

    def test_weight_of_defaults_to_one(self):
        cfg = ServeConfig(tenant_weights={"gold": 4.0})
        assert cfg.weight_of("gold") == 4.0
        assert cfg.weight_of("anyone_else") == 1.0

    def test_with_overrides(self):
        cfg = ServeConfig().with_overrides(batch_max=7, port=9000)
        assert cfg.batch_max == 7
        assert cfg.port == 9000
        assert cfg.batch_window == ServeConfig().batch_window

    def test_with_overrides_rejects_unknown(self):
        with pytest.raises(ServeConfigError):
            ServeConfig().with_overrides(no_such_field=1)

    def test_validation(self):
        with pytest.raises(ServeConfigError):
            ServeConfig(batch_max=0)
        with pytest.raises(ServeConfigError):
            ServeConfig(queue_bound=-1)
        with pytest.raises(ServeConfigError):
            ServeConfig(batch_window=-0.1)


class TestParsers:
    def test_parse_tenant_weights(self):
        assert parse_tenant_weights("gold:4,free:1") == {
            "gold": 4.0,
            "free": 1.0,
        }

    def test_parse_tenant_weights_empty(self):
        assert parse_tenant_weights("") == {}

    def test_parse_tenant_weights_malformed(self):
        with pytest.raises(ServeConfigError):
            parse_tenant_weights("gold=4")
        with pytest.raises(ServeConfigError):
            parse_tenant_weights("gold:heavy")
        with pytest.raises(ServeConfigError):
            parse_tenant_weights("gold:-2")

    def test_parse_lanes(self):
        assert parse_lanes("AccCpuSerial:0,AccCpuOmp2Blocks:0") == [
            ("AccCpuSerial", 0),
            ("AccCpuOmp2Blocks", 0),
        ]

    def test_parse_lanes_default_device(self):
        assert parse_lanes("AccCpuSerial") == [("AccCpuSerial", 0)]

    def test_parse_lanes_malformed(self):
        with pytest.raises(ServeConfigError):
            parse_lanes("AccCpuSerial:zero")


class TestEnv:
    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv(PORT_ENV, "8123")
        monkeypatch.setenv(BATCH_WINDOW_ENV, "0.01")
        monkeypatch.setenv(BATCH_MAX_ENV, "32")
        monkeypatch.setenv(QUEUE_BOUND_ENV, "77")
        monkeypatch.setenv(INFLIGHT_ENV, "3")
        monkeypatch.setenv(TENANT_WEIGHTS_ENV, "gold:2")
        monkeypatch.setenv(LANES_ENV, "AccCpuSerial:0")
        cfg = config_from_env()
        assert cfg.port == 8123
        assert cfg.batch_window == 0.01
        assert cfg.batch_max == 32
        assert cfg.queue_bound == 77
        assert cfg.tenant_inflight == 3
        assert cfg.tenant_weights == {"gold": 2.0}
        assert cfg.lanes == (("AccCpuSerial", 0),)

    def test_env_bad_value_raises(self, monkeypatch):
        monkeypatch.setenv(PORT_ENV, "not_a_port")
        with pytest.raises(ServeConfigError):
            config_from_env()

    def test_env_untouched_uses_defaults(self, monkeypatch):
        for var in (
            PORT_ENV,
            BATCH_WINDOW_ENV,
            TENANT_WEIGHTS_ENV,
            LANES_ENV,
        ):
            monkeypatch.delenv(var, raising=False)
        assert config_from_env().port == ServeConfig().port
