"""Workload registry, validation, and the bit-identity contract:
batched execution must equal solo execution bit for bit."""

from __future__ import annotations

import numpy as np
import pytest

from repro import accelerator, get_dev_by_idx
from repro.core.errors import ServeError
from repro.serve import (
    LaunchRequest,
    Workload,
    get_workload,
    register_workload,
    workload_names,
)


@pytest.fixture(scope="module")
def device():
    return get_dev_by_idx(accelerator("AccCpuSerial"), 0)


@pytest.fixture(scope="module")
def acc_type():
    return accelerator("AccCpuSerial")


def _solo(workload, request, acc_type, device):
    return workload.execute([request], acc_type, device)[0]


class TestRegistry:
    def test_builtins_registered(self):
        names = workload_names()
        for name in ("axpy", "scale", "gemm", "heat_equation"):
            assert name in names

    def test_unknown_workload_raises(self):
        with pytest.raises(ServeError, match="unknown workload"):
            get_workload("no_such_kernel")

    def test_register_custom(self):
        class Doubler(Workload):
            name = "test_doubler"

            def validate(self, request):
                pass

            def batch_key(self, request):
                return None

            def execute(self, requests, acc_type, device):
                return [
                    {"x": np.asarray(r.arrays["x"]) * 2} for r in requests
                ]

        register_workload(Doubler())
        assert get_workload("test_doubler").name == "test_doubler"


class TestValidation:
    def test_axpy_requires_arrays(self):
        with pytest.raises(ServeError):
            get_workload("axpy").validate(
                LaunchRequest(workload="axpy", params={"alpha": 1.0})
            )

    def test_axpy_rejects_shape_mismatch(self):
        with pytest.raises(ServeError):
            get_workload("axpy").validate(
                LaunchRequest(
                    workload="axpy",
                    params={"alpha": 1.0},
                    arrays={"x": np.zeros(4), "y": np.zeros(5)},
                )
            )

    def test_gemm_rejects_non_square(self):
        with pytest.raises(ServeError):
            get_workload("gemm").validate(
                LaunchRequest(
                    workload="gemm",
                    params={"alpha": 1.0, "beta": 0.0},
                    arrays={"A": np.zeros((4, 5)), "B": np.zeros((5, 4))},
                )
            )


class TestBitIdentity:
    """The acceptance criterion: results of batched execution are
    bit-identical to running each request alone."""

    def test_axpy_batched_equals_solo(self, acc_type, device):
        rng = np.random.default_rng(7)
        workload = get_workload("axpy")
        reqs = [
            LaunchRequest(
                workload="axpy",
                params={"alpha": 1.7},
                arrays={
                    "x": rng.standard_normal(257),
                    "y": rng.standard_normal(257),
                },
            )
            for _ in range(5)
        ]
        solo = [_solo(workload, r, acc_type, device) for r in reqs]
        merged = workload.execute(reqs, acc_type, device)
        for s, m in zip(solo, merged):
            assert np.array_equal(s["y"], m["y"])

    def test_axpy_ragged_sizes_batch(self, acc_type, device):
        rng = np.random.default_rng(8)
        workload = get_workload("axpy")
        reqs = [
            LaunchRequest(
                workload="axpy",
                params={"alpha": 0.5},
                arrays={
                    "x": rng.standard_normal(n),
                    "y": rng.standard_normal(n),
                },
            )
            for n in (3, 64, 1000)
        ]
        solo = [_solo(workload, r, acc_type, device) for r in reqs]
        merged = workload.execute(reqs, acc_type, device)
        for s, m in zip(solo, merged):
            assert np.array_equal(s["y"], m["y"])

    def test_gemm_batched_equals_solo(self, acc_type, device):
        rng = np.random.default_rng(9)
        n = 48
        workload = get_workload("gemm")
        reqs = [
            LaunchRequest(
                workload="gemm",
                params={"alpha": 1.0, "beta": 0.5},
                arrays={
                    "A": rng.standard_normal((n, n)),
                    "B": rng.standard_normal((n, n)),
                    "C": rng.standard_normal((n, n)),
                },
            )
            for _ in range(4)
        ]
        solo = [_solo(workload, r, acc_type, device) for r in reqs]
        merged = workload.execute(reqs, acc_type, device)
        for s, m in zip(solo, merged):
            assert np.array_equal(s["C"], m["C"])

    def test_gemm_matches_reference(self, acc_type, device):
        from repro.kernels import batched_gemm_reference

        rng = np.random.default_rng(10)
        n = 96  # spans two 64-row chunks
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        C = rng.standard_normal((n, n))
        req = LaunchRequest(
            workload="gemm",
            params={"alpha": 2.0, "beta": -1.0},
            arrays={"A": A, "B": B, "C": C},
        )
        out = _solo(get_workload("gemm"), req, acc_type, device)
        ref = batched_gemm_reference(2.0, A[None], B[None], -1.0, C[None])[0]
        assert np.array_equal(out["C"], ref)

    def test_inputs_not_mutated(self, acc_type, device):
        rng = np.random.default_rng(11)
        x = rng.standard_normal(32)
        y = rng.standard_normal(32)
        x0, y0 = x.copy(), y.copy()
        req = LaunchRequest(
            workload="axpy",
            params={"alpha": 3.0},
            arrays={"x": x, "y": y},
        )
        _solo(get_workload("axpy"), req, acc_type, device)
        assert np.array_equal(x, x0)
        assert np.array_equal(y, y0)
