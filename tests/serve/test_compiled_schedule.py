"""Gateway workloads under ``REPRO_SCHEDULER=compiled``.

The gateway never special-cases the vectorized replay — the schedule
resolves inside the normal launch plan — so every workload must come
back bit-identical to its interpreted run, with non-compilable kernels
falling back transparently mid-service.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import Gateway, ServeConfig


#: A pooled lane — the only kind the ``compiled`` schedule applies to
#: (sequential back-ends never remap to it).
POOLED_LANES = (("AccCpuOmp2Blocks", 0),)


def _run_workload(name, params, arrays):
    cfg = ServeConfig(
        batch_window=0.0, drain_timeout=30.0, lanes=POOLED_LANES
    )
    with Gateway(cfg) as gw:
        handle = gw.launch(name, params=params, arrays=arrays)
        result = handle.result(timeout=30)
        gw.shutdown(release_pools=False)
    return {k: np.asarray(v).copy() for k, v in result.arrays.items()}


def _under_schedule(monkeypatch, schedule):
    from repro.runtime import clear_plan_cache

    if schedule is None:
        monkeypatch.delenv("REPRO_SCHEDULER", raising=False)
    else:
        monkeypatch.setenv("REPRO_SCHEDULER", schedule)
    clear_plan_cache()


WORKLOADS = [
    ("axpy", {"alpha": 1.7}, lambda rng: {
        "x": rng.standard_normal(300),
        "y": rng.standard_normal(300),
    }),
    ("scale", {"factor": 0.25}, lambda rng: {
        "x": rng.standard_normal(257),
    }),
    ("gemm", {"alpha": 1.0, "beta": 0.5}, lambda rng: {
        "A": rng.standard_normal((16, 16)),
        "B": rng.standard_normal((16, 16)),
        "C": rng.standard_normal((16, 16)),
    }),
]


@pytest.mark.parametrize(
    "name,params,make_arrays", WORKLOADS, ids=[w[0] for w in WORKLOADS]
)
def test_workload_bit_identical_under_compiled(
    monkeypatch, rng, name, params, make_arrays
):
    arrays = make_arrays(rng)
    _under_schedule(monkeypatch, None)
    baseline = _run_workload(name, params, arrays)
    _under_schedule(monkeypatch, "compiled")
    compiled = _run_workload(name, params, arrays)
    _under_schedule(monkeypatch, None)
    assert set(compiled) == set(baseline)
    for key in baseline:
        assert compiled[key].tobytes() == baseline[key].tobytes(), key


def test_compiled_service_replays_not_retraces(monkeypatch, rng):
    from repro.compile import compile_stats, reset_compile_stats

    _under_schedule(monkeypatch, "compiled")
    reset_compile_stats()
    x = rng.standard_normal(300)
    y = rng.standard_normal(300)
    cfg = ServeConfig(
        batch_window=0.0, drain_timeout=30.0, lanes=POOLED_LANES
    )
    with Gateway(cfg) as gw:
        results = [
            gw.launch(
                "axpy", params={"alpha": 2.0}, arrays={"x": x, "y": y}
            ).result(timeout=30)
            for _ in range(4)
        ]
        gw.shutdown(release_pools=False)
    _under_schedule(monkeypatch, None)
    expected = 2.0 * x + y
    for r in results:
        assert np.array_equal(r.arrays["y"], expected)
    stats = compile_stats()
    assert stats["compiled_launches"] >= 4
    assert stats["retraces"] == 0
