"""The compiled schedule end-to-end: plan resolution, caching, fallback."""

import numpy as np
import pytest

from repro import (
    QueueBlocking,
    WorkDivMembers,
    accelerator,
    create_task_kernel,
    get_dev_by_idx,
    mem,
)
from repro.compile import compile_stats, reset_compile_stats
from repro.core.index import Grid, Threads, get_idx
from repro.core.kernel import fn_acc
from repro.kernels import AxpyElementsKernel, AxpyKernel, axpy_reference
from repro.runtime import clear_plan_cache, get_plan


Acc = accelerator("AccCpuOmp2Blocks")


@pytest.fixture(autouse=True)
def compiled_env(monkeypatch):
    monkeypatch.setenv("REPRO_SCHEDULER", "compiled")
    monkeypatch.delenv("REPRO_COMPILE_CROSSCHECK", raising=False)
    clear_plan_cache()
    reset_compile_stats()
    yield
    clear_plan_cache()


def run(kernel, wd, *scalars, arrays):
    dev = get_dev_by_idx(Acc, 0)
    q = QueueBlocking(dev)
    bufs = []
    for host in arrays:
        buf = mem.alloc(dev, host.shape, dtype=host.dtype)
        mem.copy(q, buf, host)
        bufs.append(buf)
    q.enqueue(create_task_kernel(Acc, wd, kernel, *scalars, *bufs))
    out = []
    for host, buf in zip(arrays, bufs):
        res = np.empty_like(host)
        mem.copy(q, res, buf)
        out.append(res)
        buf.free()
    return out


class TestPlanResolution:
    def test_env_override_selects_compiled(self):
        dev = get_dev_by_idx(Acc, 0)
        task = create_task_kernel(
            Acc, WorkDivMembers.make(8, 1, 1), AxpyKernel(),
            8, 1.0, np.zeros(8), np.zeros(8),
        )
        assert get_plan(task, dev).schedule == "compiled"

    def test_one_block_grid_stays_compiled(self):
        """The block_count == 1 pool demotion must not clobber the
        compiled strategy (the replay covers the grid regardless)."""
        dev = get_dev_by_idx(Acc, 0)
        task = create_task_kernel(
            Acc, WorkDivMembers.make(1, 1, 4), AxpyElementsKernel(),
            4, 1.0, np.zeros(4), np.zeros(4),
        )
        assert get_plan(task, dev).schedule == "compiled"

    def test_sequential_backends_never_remapped(self):
        ser = accelerator("AccCpuSerial")
        dev = get_dev_by_idx(ser, 0)
        task = create_task_kernel(
            ser, WorkDivMembers.make(8, 1, 1), AxpyKernel(),
            8, 1.0, np.zeros(8), np.zeros(8),
        )
        assert get_plan(task, dev).schedule == "sequential"


class TestExecution:
    def test_masked_scalar_axpy_bit_identical(self):
        n = 257
        rng = np.random.default_rng(7)
        x, y = rng.random(n), rng.random(n)
        xo, yo = run(
            AxpyKernel(), WorkDivMembers.make(260, 1, 1), n, 3.0,
            arrays=[x, y],
        )
        np.testing.assert_array_equal(yo, axpy_reference(3.0, x, y))
        np.testing.assert_array_equal(xo, x)
        st = compile_stats()
        assert st["compiled_launches"] == 1
        assert st["fallbacks"] == {}

    def test_warm_replay_zero_retraces(self):
        n = 100
        rng = np.random.default_rng(8)
        x, y = rng.random(n), rng.random(n)
        dev = get_dev_by_idx(Acc, 0)
        q = QueueBlocking(dev)
        bx = mem.alloc(dev, (n,)); mem.copy(q, bx, x)
        by = mem.alloc(dev, (n,)); mem.copy(q, by, y)
        wd = WorkDivMembers.make(128, 1, 1)
        k = AxpyKernel()
        for _ in range(5):
            q.enqueue(create_task_kernel(Acc, wd, k, n, 2.0, bx, by))
        st = compile_stats()
        assert st["traces"] == 1
        assert st["retraces"] == 0
        assert st["cache_hits"] == 4
        assert st["compiled_launches"] == 5
        expected = y
        for _ in range(5):
            expected = axpy_reference(2.0, x, expected)
        res = np.empty(n); mem.copy(q, res, by)
        np.testing.assert_array_equal(res, expected)

    def test_guard_flip_retraces_once(self):
        @fn_acc
        def kernel(acc, n, alpha, x, y):
            i = get_idx(acc, Grid, Threads)[0]
            if i < n:
                if alpha == 0.0:
                    y[i] = 0.0
                else:
                    y[i] = alpha * x[i]

        n = 16
        x = np.arange(float(n))
        wd = WorkDivMembers.make(n, 1, 1)
        (x0, y0) = run(kernel, wd, n, 2.0, arrays=[x, np.zeros(n)])
        np.testing.assert_array_equal(y0, 2.0 * x)
        (x1, y1) = run(kernel, wd, n, 0.0, arrays=[x, np.ones(n)])
        np.testing.assert_array_equal(y1, np.zeros(n))
        st = compile_stats()
        assert st["retraces"] == 1
        assert st["fallbacks"] == {}

    def test_divergent_kernel_falls_back_correctly(self):
        @fn_acc
        def kernel(acc, n, x, y):
            i = get_idx(acc, Grid, Threads)[0]
            if i < n:
                if x[i] > 0.5:
                    y[i] = 1.0
                else:
                    y[i] = -1.0

        n = 64
        rng = np.random.default_rng(9)
        x = rng.random(n)
        wd = WorkDivMembers.make(n, 1, 1)
        _, y = run(kernel, wd, n, arrays=[x, np.zeros(n)])
        np.testing.assert_array_equal(y, np.where(x > 0.5, 1.0, -1.0))
        st = compile_stats()
        assert st["fallbacks"].get("divergent-control-flow", 0) >= 1
        assert st["compiled_launches"] == 0

    def test_fallback_verdict_cached(self):
        """An uncompilable kernel pays the trace attempt once; warm
        launches skip straight to interpretation."""
        @fn_acc
        def kernel(acc, n, y):
            i = get_idx(acc, Grid, Threads)[0]
            if i < n:
                acc.atomic_add(y, 0, 1.0)

        n = 8
        wd = WorkDivMembers.make(n, 1, 1)
        dev = get_dev_by_idx(Acc, 0)
        q = QueueBlocking(dev)
        by = mem.alloc(dev, (1,)); mem.copy(q, by, np.zeros(1))
        for _ in range(3):
            q.enqueue(create_task_kernel(Acc, wd, kernel, n, by))
        res = np.empty(1); mem.copy(q, res, by)
        assert res[0] == 24.0  # 3 launches x 8 increments
        st = compile_stats()
        assert st["traces"] == 1
        assert st["fallbacks"].get("atomics") == 3

    def test_scalar_dtype_in_signature(self):
        """A float32 alpha and a float alpha are distinct compiled
        shapes (promotion differs) — both bit-identical to reference."""
        n = 32
        rng = np.random.default_rng(10)
        x = rng.random(n, dtype=np.float32).astype(np.float64)
        y = rng.random(n)
        wd = WorkDivMembers.make(n, 1, 1)
        _, y64 = run(AxpyKernel(), wd, n, np.float64(1.5), arrays=[x, y])
        _, y32 = run(AxpyKernel(), wd, n, np.float32(1.5), arrays=[x, y])
        np.testing.assert_array_equal(
            y64, np.float64(1.5) * x + y
        )
        np.testing.assert_array_equal(
            y32, np.float32(1.5) * x + y
        )
        assert compile_stats()["traces"] == 2


class TestTelemetryLabels:
    def test_launch_labels_carry_compiled_schedule(self):
        from repro.runtime import register_observer, unregister_observer
        from repro.telemetry.collector import TelemetryCollector

        col = TelemetryCollector()
        register_observer(col)
        try:
            n = 16
            run(
                AxpyKernel(), WorkDivMembers.make(n, 1, 1), n, 2.0,
                arrays=[np.arange(float(n)), np.zeros(n)],
            )
        finally:
            unregister_observer(col)
        launches = col.registry.instruments("repro_launches_total")
        schedules = {dict(c.labels).get("schedule") for c in launches}
        assert "compiled" in schedules

    def test_report_counts_compiled_vs_interpreted(self, monkeypatch):
        from repro.runtime import register_observer, unregister_observer
        from repro.telemetry.collector import TelemetryCollector
        from repro.telemetry.report import _launch_rows

        col = TelemetryCollector()
        register_observer(col)
        try:
            n = 16
            x, y = np.arange(float(n)), np.zeros(n)
            run(AxpyKernel(), WorkDivMembers.make(n, 1, 1), n, 2.0,
                arrays=[x, y])
            monkeypatch.setenv("REPRO_SCHEDULER", "sequential")
            clear_plan_cache()
            run(AxpyKernel(), WorkDivMembers.make(n, 1, 1), n, 2.0,
                arrays=[x, y])
        finally:
            unregister_observer(col)
        rows = [r for r in _launch_rows(col) if r["kernel"] == "AxpyKernel"]
        assert rows
        assert rows[0]["launches"] == 2
        assert rows[0]["compiled"] == "1/2"
