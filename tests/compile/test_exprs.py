"""Lane-expression IR: geometry, evaluation, memoisation."""

import numpy as np
import pytest

from repro.compile.exprs import (
    Arg,
    Const,
    EvalEnv,
    LaneGeometry,
    LaneIndex,
    Load,
    SpanLoad,
    Ufunc,
    describe_expr,
    eval_expr,
)
from repro.core.workdiv import WorkDivMembers


class TestLaneGeometry:
    def test_1d_grid_thread_is_arange(self):
        wd = WorkDivMembers.make(4, 8, 1)
        geom = LaneGeometry(wd)
        assert geom.lanes == 32
        np.testing.assert_array_equal(
            geom.axis_array("grid_thread", 0), np.arange(32)
        )

    def test_1d_block_and_thread(self):
        wd = WorkDivMembers.make(4, 8, 1)
        geom = LaneGeometry(wd)
        np.testing.assert_array_equal(
            geom.axis_array("block", 0), np.repeat(np.arange(4), 8)
        )
        np.testing.assert_array_equal(
            geom.axis_array("thread", 0), np.tile(np.arange(8), 4)
        )

    def test_2d_matches_interpreted_order(self):
        """Lane l = C-order (block, thread); per-axis components agree
        with explicit nested iteration."""
        wd = WorkDivMembers.make((2, 3), (2, 2), (1, 1))
        geom = LaneGeometry(wd)
        blocks, threads = [], []
        for b0 in range(2):
            for b1 in range(3):
                for t0 in range(2):
                    for t1 in range(2):
                        blocks.append((b0, b1))
                        threads.append((t0, t1))
        for axis in range(2):
            np.testing.assert_array_equal(
                geom.axis_array("block", axis),
                np.array([b[axis] for b in blocks]),
            )
            np.testing.assert_array_equal(
                geom.axis_array("thread", axis),
                np.array([t[axis] for t in threads]),
            )
            np.testing.assert_array_equal(
                geom.axis_array("grid_thread", axis),
                np.array([
                    b[axis] * 2 + t[axis]  # block_thread_extent = (2, 2)
                    for b, t in zip(blocks, threads)
                ]),
            )

    def test_axis_arrays_cached(self):
        geom = LaneGeometry(WorkDivMembers.make(2, 4, 1))
        a = geom.axis_array("grid_thread", 0)
        assert geom.axis_array("grid_thread", 0) is a


class TestEval:
    def geom(self):
        return LaneGeometry(WorkDivMembers.make(4, 1, 1))

    def test_const_arg_lane(self):
        geom = self.geom()
        env = EvalEnv((10, 2.5), geom)
        assert eval_expr(Const(7), env) == 7
        assert eval_expr(Arg(1), env) == 2.5
        np.testing.assert_array_equal(
            eval_expr(LaneIndex("grid_thread", 0), env), np.arange(4)
        )

    def test_ufunc_applies_actual_callable(self):
        geom = self.geom()
        env = EvalEnv((), geom)
        node = Ufunc(np.multiply, (LaneIndex("grid_thread", 0), Const(3)))
        np.testing.assert_array_equal(
            eval_expr(node, env), np.arange(4) * 3
        )

    def test_memoised_per_selection(self):
        geom = self.geom()
        env = EvalEnv((), geom)
        node = Ufunc(np.add, (LaneIndex("grid_thread", 0), Const(1)))
        a = eval_expr(node, env)
        assert eval_expr(node, env) is a  # same memo entry

    def test_selection_restricts_lanes(self):
        geom = self.geom()
        x = np.array([10.0, 20.0, 30.0, 40.0])
        idx = LaneIndex("grid_thread", 0)
        node = Load(0, (idx,))
        env = EvalEnv((x,), geom, sel=slice(0, 2), sel_key=1,
                      identity_id=id(idx))
        v = eval_expr(node, env)
        np.testing.assert_array_equal(v, x[:2])
        assert v.base is not None  # prefix fast path: a view, no gather

    def test_gather_without_identity(self):
        geom = self.geom()
        x = np.array([10.0, 20.0, 30.0, 40.0])
        idx = Ufunc(np.subtract, (Const(3), LaneIndex("grid_thread", 0)))
        env = EvalEnv((x,), geom)
        np.testing.assert_array_equal(
            eval_expr(Load(0, (idx,)), env), x[::-1]
        )

    def test_span_load_is_prefix(self):
        geom = self.geom()
        x = np.arange(10.0)
        env = EvalEnv((x,), geom)
        v = eval_expr(SpanLoad(0, Const(6)), env)
        np.testing.assert_array_equal(v, x[:6])


class TestDescribe:
    def test_rendering(self):
        node = Ufunc(np.add, (Load(1, (LaneIndex("grid_thread", 0),)),
                              Arg(0)))
        assert describe_expr(node) == "add(load(arg1[grid_thread[0]]), arg0)"
