"""Property suite: compiled == interpreted, bit for bit, or a clean fallback.

For every exported kernel family the vectorizer classifies as
compilable, hypothesis drives random extents and work divisions and
asserts the compiled replay's output bytes equal the interpreted
scheduler's.  Families that cannot compile must fall back with their
documented reason — and still produce interpreted-identical results.
"""

import logging
import os

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    QueueBlocking,
    WorkDivMembers,
    accelerator,
    create_task_kernel,
    get_dev_by_idx,
    mem,
)
from repro.compile import compile_stats, reset_compile_stats
from repro.kernels import (
    AxpyElementsKernel,
    AxpyKernel,
    DotKernel,
    FillKernel,
    HistogramKernel,
    IotaKernel,
    MapKernel,
    ScaleKernel,
    SumReduceKernel,
)
from repro.runtime import clear_plan_cache


Acc = accelerator("AccCpuOmp2Blocks")

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def run_with_scheduler(schedule, kernel, wd, scalars, arrays):
    """Launch once under REPRO_SCHEDULER=schedule; return output bytes."""
    prev = os.environ.get("REPRO_SCHEDULER")
    os.environ["REPRO_SCHEDULER"] = schedule
    clear_plan_cache()
    try:
        dev = get_dev_by_idx(Acc, 0)
        q = QueueBlocking(dev)
        bufs = []
        for host in arrays:
            buf = mem.alloc(dev, host.shape, dtype=host.dtype)
            mem.copy(q, buf, host)
            bufs.append(buf)
        q.enqueue(create_task_kernel(Acc, wd, kernel, *scalars, *bufs))
        out = []
        for host, buf in zip(arrays, bufs):
            res = np.empty_like(host)
            mem.copy(q, res, buf)
            out.append(res.tobytes())
            buf.free()
        return out
    finally:
        if prev is None:
            del os.environ["REPRO_SCHEDULER"]
        else:
            os.environ["REPRO_SCHEDULER"] = prev
        clear_plan_cache()


def assert_bit_identical(kernel, wd, scalars, arrays):
    reset_compile_stats()
    compiled = run_with_scheduler("compiled", kernel, wd, scalars, arrays)
    interpreted = run_with_scheduler("sequential", kernel, wd, scalars, arrays)
    assert compiled == interpreted
    return compile_stats()


# -- compilable families ------------------------------------------------


arrays_f64 = st.integers(min_value=1, max_value=400)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


@SETTINGS
@given(n=arrays_f64, blocks=st.integers(1, 512), seed=seeds,
       alpha=st.floats(allow_nan=False, allow_infinity=False, width=64))
def test_axpy_scalar_bit_identical(n, blocks, seed, alpha):
    rng = np.random.default_rng(seed)
    x, y = rng.random(n), rng.random(n)
    stats = assert_bit_identical(
        AxpyKernel(), WorkDivMembers.make(blocks, 1, 1),
        (min(n, blocks), alpha), [x, y],
    )
    assert stats["fallbacks"] == {}
    assert stats["compiled_launches"] == 1


@SETTINGS
@given(n=arrays_f64, blocks=st.integers(1, 64), elems=st.integers(1, 8),
       seed=seeds)
def test_axpy_elements_bit_identical(n, blocks, elems, seed):
    rng = np.random.default_rng(seed)
    x, y = rng.random(n), rng.random(n)
    stats = assert_bit_identical(
        AxpyElementsKernel(), WorkDivMembers.make(blocks, 1, elems),
        (n, 2.5), [x, y],
    )
    assert stats["fallbacks"] == {}


@SETTINGS
@given(n=arrays_f64, blocks=st.integers(1, 64), elems=st.integers(1, 8),
       value=st.floats(allow_nan=False, allow_infinity=False, width=64))
def test_fill_bit_identical(n, blocks, elems, value):
    out = np.zeros(n)
    stats = assert_bit_identical(
        FillKernel(), WorkDivMembers.make(blocks, 1, elems),
        (n, value), [out],
    )
    assert stats["fallbacks"] == {}


@SETTINGS
@given(n=arrays_f64, blocks=st.integers(1, 64), elems=st.integers(1, 8),
       seed=seeds)
def test_scale_bit_identical(n, blocks, elems, seed):
    rng = np.random.default_rng(seed)
    x = rng.random(n)
    stats = assert_bit_identical(
        ScaleKernel(), WorkDivMembers.make(blocks, 1, elems),
        (n, 3.25), [x, np.zeros(n)],
    )
    assert stats["fallbacks"] == {}


@SETTINGS
@given(n=arrays_f64, blocks=st.integers(1, 64), elems=st.integers(1, 8),
       seed=seeds)
def test_map_ufunc_bit_identical(n, blocks, elems, seed):
    rng = np.random.default_rng(seed)
    x = rng.random(n)  # non-negative: sqrt stays real
    stats = assert_bit_identical(
        MapKernel(np.sqrt), WorkDivMembers.make(blocks, 1, elems),
        (n,), [x, np.zeros(n)],
    )
    assert stats["fallbacks"] == {}


# -- non-compilable families -------------------------------------------


NON_COMPILABLE = [
    (
        "histogram-atomics",
        lambda rng, n: (
            HistogramKernel(),
            (n, 0.0, 1.0, 8, rng.random(n)),
            [np.zeros(8)],
        ),
        "shared-memory",
    ),
    (
        "reduce-shared",
        lambda rng, n: (SumReduceKernel(), (n,), [rng.random(n), np.zeros(1)]),
        "unsupported-op",
    ),
    (
        "dot-divergent",
        lambda rng, n: (
            DotKernel(), (n,), [rng.random(n), rng.random(n), np.zeros(1)]
        ),
        "divergent-control-flow",
    ),
    (
        "iota-span-attrs",
        lambda rng, n: (IotaKernel(), (n, 5.0), [np.zeros(n)]),
        "unsupported-op",
    ),
]


@SETTINGS
@given(n=st.integers(min_value=8, max_value=200), seed=seeds,
       family=st.sampled_from(NON_COMPILABLE))
def test_non_compilable_falls_back_with_reason(n, seed, family):
    name, build, expected_reason = family
    rng = np.random.default_rng(seed)
    kernel, scalars, state_arrays = build(rng, n)
    scalars = tuple(scalars)
    arrays = list(state_arrays)
    if name == "histogram-atomics":
        # x is read-only input; stage it as an array arg too.
        arrays = [scalars[-1]] + arrays
        scalars = scalars[:-1]
    reset_compile_stats()
    wd = WorkDivMembers.make(8, 1, 4)
    compiled = run_with_scheduler("compiled", kernel, wd, scalars, arrays)
    interpreted = run_with_scheduler("pooled", kernel, wd, scalars, arrays)
    # Both legs interpret (the compiled leg fell back), so this is a
    # pooled-vs-pooled comparison: atomic reductions may accumulate in
    # a different block order run to run, which legitimately moves the
    # last ulp.  Bit-identity is the compiled-vs-interpreted contract
    # (see the crosscheck tests), not an interpretation-order promise.
    for got, want in zip(compiled, interpreted):
        np.testing.assert_allclose(
            np.frombuffer(got), np.frombuffer(want), rtol=1e-12, atol=0.0,
            err_msg=name,
        )
    stats = compile_stats()
    assert stats["compiled_launches"] == 0, name
    assert expected_reason in stats["fallbacks"], (
        name, stats["fallbacks"])


def test_fallback_reason_is_logged_once(caplog):
    """The transparent fallback explains itself in the log exactly once
    per (kernel, reason), however many launches repeat it.

    The once-filter lives on the process-cached scheduler, so the probe
    kernel needs a name no other test shares.
    """
    from repro.core.index import Grid, Threads, get_idx
    from repro.core.kernel import fn_acc

    class LogOnceProbeKernel:
        @fn_acc
        def __call__(self, acc, n, x, y):
            i = get_idx(acc, Grid, Threads)[0]
            if i < n:
                if x[i] > 0.5:  # data-dependent: always diverges
                    y[i] = 1.0

    n = 32
    rng = np.random.default_rng(3)
    x = rng.random(n)
    with caplog.at_level(logging.INFO, logger="repro.runtime.scheduler"):
        for _ in range(3):
            run_with_scheduler(
                "compiled", LogOnceProbeKernel(),
                WorkDivMembers.make(n, 1, 1), (n,),
                [x, np.zeros(n)],
            )
    msgs = [
        r.message for r in caplog.records
        if "divergent-control-flow" in r.message
        and "LogOnceProbeKernel" in r.message
    ]
    assert len(msgs) == 1
