"""The compile tracer: what compiles, what falls back, and why."""

import numpy as np
import pytest

from repro.compile.exprs import SpanStore, Store
from repro.compile.tracer import CompileFallback, trace_kernel
from repro.core.element import grid_strided_spans
from repro.core.index import Grid, Threads, get_idx, get_work_div
from repro.core.workdiv import WorkDivMembers
from repro.kernels import AxpyElementsKernel, AxpyKernel


class FakeProps:
    warp_size = 1


def trace(kernel, wd, args):
    return trace_kernel(kernel, wd, FakeProps(), args)


def wd1(blocks=8, threads=1, elems=1):
    return WorkDivMembers.make(blocks, threads, elems)


class TestCompilable:
    def test_axpy_scalar_records_mask_and_store(self):
        x, y = np.arange(8.0), np.arange(8.0)
        t = trace(AxpyKernel(), wd1(8), (6, 2.0, x, y))
        assert len(t.masks) == 1
        op, lane, bound = t.masks[0]
        assert op == "lt"
        assert len(t.stores) == 1
        st = t.stores[0]
        assert isinstance(st, Store)
        assert st.pos == 3  # y
        assert st.mask_count == 1

    def test_axpy_elements_collapses_to_span(self):
        x, y = np.arange(16.0), np.arange(16.0)
        t = trace(AxpyElementsKernel(), wd1(4, 1, 2), (16, 2.0, x, y))
        assert len(t.masks) == 0
        assert len(t.stores) == 1
        assert isinstance(t.stores[0], SpanStore)

    def test_uniform_branch_records_guard(self):
        def kernel(acc, n, flag, y):
            i = get_idx(acc, Grid, Threads)[0]
            if i < n:
                if flag > 0:
                    y[i] = 1.0
                else:
                    y[i] = 2.0

        y = np.zeros(8)
        t = trace(kernel, wd1(8), (8, 1, y))
        assert len(t.guards) == 1
        _, expected = t.guards[0]
        assert expected is True

    def test_work_div_queries_are_concrete(self):
        seen = {}

        def kernel(acc, n, y):
            seen["gt"] = int(get_work_div(acc, Grid, Threads)[0])
            for span in grid_strided_spans(acc, n):
                y[span] = 0.0

        y = np.zeros(8)
        trace(kernel, wd1(4, 1, 2), (8, y))
        assert seen["gt"] == 4

    def test_store_forwarding_allows_reload_same_index(self):
        def kernel(acc, n, x, y):
            i = get_idx(acc, Grid, Threads)[0]
            if i < n:
                y[i] = x[i] * 2.0
                y[i] = y[i] + 1.0  # reload of the just-stored index

        x, y = np.arange(8.0), np.zeros(8)
        t = trace(kernel, wd1(8), (8, x, y))
        assert len(t.stores) == 2


class TestFallbacks:
    def reason(self, kernel, wd, args):
        with pytest.raises(CompileFallback) as e:
            trace(kernel, wd, args)
        return e.value.reason

    def test_divergent_branch(self):
        def kernel(acc, n, x, y):
            i = get_idx(acc, Grid, Threads)[0]
            if i < n:
                if x[i] > 0.0:  # data-dependent
                    y[i] = 1.0

        assert self.reason(
            kernel, wd1(4), (4, np.ones(4), np.zeros(4))
        ) == "divergent-control-flow"

    def test_inverted_guard_is_not_canonical(self):
        def kernel(acc, n, y):
            i = get_idx(acc, Grid, Threads)[0]
            if n > i:  # uniform-lhs comparison: must not become a mask
                y[i] = 1.0

        assert self.reason(kernel, wd1(4), (4, np.zeros(4))) == \
            "divergent-control-flow"

    def test_builtin_min_falls_back(self):
        """CPython's min(a, b) evaluates b < a — a uniform-vs-lane
        comparison that must divert, never silently mask."""
        def kernel(acc, n, y):
            i = get_idx(acc, Grid, Threads)[0]
            j = min(i, n)
            y[j] = 1.0

        assert self.reason(kernel, wd1(4), (3, np.zeros(4))) == \
            "divergent-control-flow"

    def test_barrier(self):
        def kernel(acc, y):
            acc.sync_block_threads()
            y[0] = 1.0

        assert self.reason(kernel, wd1(2), (np.zeros(2),)) == "barrier"

    def test_atomics(self):
        def kernel(acc, n, y):
            i = get_idx(acc, Grid, Threads)[0]
            if i < n:
                acc.atomic_add(y, 0, 1.0)

        assert self.reason(kernel, wd1(4), (4, np.zeros(1))) == "atomics"

    def test_shared_memory(self):
        def kernel(acc, y):
            tile = acc.shared_mem("tile", (4,))
            y[0] = 1.0

        assert self.reason(kernel, wd1(2), (np.zeros(2),)) == "shared-memory"

    def test_rng(self):
        def kernel(acc, y):
            r = acc.rng(42)
            y[0] = 1.0

        assert self.reason(kernel, wd1(2), (np.zeros(2),)) == "rng"

    def test_lane_int_conversion(self):
        def kernel(acc, n, y):
            i = get_idx(acc, Grid, Threads)[0]
            for _ in range(int(i)):
                pass
            y[0] = 1.0

        assert self.reason(kernel, wd1(4), (4, np.zeros(4))) == \
            "divergent-control-flow"

    def test_load_after_store_other_index(self):
        def kernel(acc, n, y):
            i = get_idx(acc, Grid, Threads)[0]
            if i < n:
                y[i] = 1.0
                _ = y[i + 1]  # aliases a neighbour's store

        assert self.reason(kernel, wd1(4), (4, np.zeros(8))) == \
            "load-after-store"

    def test_unsupported_argument(self):
        def kernel(acc, cfg, y):
            y[0] = cfg["a"]

        assert self.reason(kernel, wd1(2), ({"a": 1.0}, np.zeros(2))) == \
            "unsupported-arg"

    def test_kernel_exception_classified(self):
        """IotaKernel pokes span.start — an AttributeError under the
        tracer, classified instead of propagating."""
        from repro.kernels import IotaKernel

        assert self.reason(
            IotaKernel(), wd1(4, 1, 2), (8, 0, np.zeros(8))
        ) == "unsupported-op"

    def test_mask_cap_stops_symbolic_while(self):
        def kernel(acc, n, y):
            i = get_idx(acc, Grid, Threads)[0]
            while i < n:  # always-true under masking: must hit the cap
                y[i] = 1.0
                i = i + n

        assert self.reason(kernel, wd1(4), (4, np.zeros(64))) == \
            "divergent-control-flow"
