"""REPRO_COMPILE_CROSSCHECK: bit-identity assertion on every launch."""

import numpy as np
import pytest

from repro import (
    QueueBlocking,
    WorkDivMembers,
    accelerator,
    create_task_kernel,
    get_dev_by_idx,
    mem,
)
from repro.compile import compile_stats, crosscheck_active, reset_compile_stats
from repro.core.errors import CompileCrossCheckError
from repro.core.index import Grid, Threads, get_idx
from repro.core.kernel import fn_acc
from repro.kernels import AxpyKernel, axpy_reference
from repro.runtime import clear_plan_cache


Acc = accelerator("AccCpuOmp2Blocks")


@pytest.fixture(autouse=True)
def crosscheck_env(monkeypatch):
    monkeypatch.setenv("REPRO_SCHEDULER", "compiled")
    monkeypatch.setenv("REPRO_COMPILE_CROSSCHECK", "1")
    clear_plan_cache()
    reset_compile_stats()
    yield
    clear_plan_cache()


def launch(kernel, wd, *scalars, arrays):
    dev = get_dev_by_idx(Acc, 0)
    q = QueueBlocking(dev)
    bufs = []
    for host in arrays:
        buf = mem.alloc(dev, host.shape, dtype=host.dtype)
        mem.copy(q, buf, host)
        bufs.append(buf)
    q.enqueue(create_task_kernel(Acc, wd, kernel, *scalars, *bufs))
    out = []
    for host, buf in zip(arrays, bufs):
        res = np.empty_like(host)
        mem.copy(q, res, buf)
        out.append(res)
        buf.free()
    return out


def test_env_switch_parsing(monkeypatch):
    for val in ("1", "true", "on", "yes"):
        monkeypatch.setenv("REPRO_COMPILE_CROSSCHECK", val)
        assert crosscheck_active()
    for val in ("", "0", "false", "no", "off"):
        monkeypatch.setenv("REPRO_COMPILE_CROSSCHECK", val)
        assert not crosscheck_active()


def test_axpy_crosscheck_passes_and_counts():
    n = 200
    rng = np.random.default_rng(11)
    x, y = rng.random(n), rng.random(n)
    _, yo = launch(
        AxpyKernel(), WorkDivMembers.make(256, 1, 1), n, 1.75,
        arrays=[x, y],
    )
    np.testing.assert_array_equal(yo, axpy_reference(1.75, x, y))
    st = compile_stats()
    assert st["crosschecks"] == 1
    assert st["compiled_launches"] == 1


def test_impure_kernel_detected():
    """A kernel whose stores depend on shared mutable state traces to a
    uniform constant but interprets per-thread — exactly the class of
    silent miscompile the crosscheck exists to catch."""

    class ImpureKernel:
        def __init__(self):
            self.calls = 0

        @fn_acc
        def __call__(self, acc, n, y):
            i = get_idx(acc, Grid, Threads)[0]
            self.calls += 1
            if i < n:
                y[i] = float(self.calls)

    n = 8
    dev = get_dev_by_idx(Acc, 0)
    q = QueueBlocking(dev)
    by = mem.alloc(dev, (n,))
    mem.copy(q, by, np.zeros(n))
    task = create_task_kernel(
        Acc, WorkDivMembers.make(n, 1, 1), ImpureKernel(), n, by
    )
    with pytest.raises(CompileCrossCheckError) as e:
        q.enqueue(task)
    assert "ImpureKernel" in str(e.value)
    by.free()


def test_buffers_restored_before_interpreted_run():
    """The interpreted leg must start from the pre-launch bytes, not the
    compiled result — an accumulating kernel (y += x) would otherwise
    double-apply and always fail the comparison."""
    n = 64
    rng = np.random.default_rng(12)
    x, y = rng.random(n), rng.random(n)
    _, yo = launch(
        AxpyKernel(), WorkDivMembers.make(n, 1, 1), n, 1.0,
        arrays=[x, y],
    )
    # axpy with alpha=1 accumulates: y_out = x + y, applied exactly once.
    np.testing.assert_array_equal(yo, x + y)
    assert compile_stats()["crosschecks"] == 1


def test_crosscheck_off_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_COMPILE_CROSSCHECK", raising=False)
    n = 16
    launch(
        AxpyKernel(), WorkDivMembers.make(n, 1, 1), n, 2.0,
        arrays=[np.arange(float(n)), np.zeros(n)],
    )
    assert compile_stats()["crosschecks"] == 0
