"""The human report and the end-to-end GEMM-on-every-back-end run."""

import pytest

from repro import telemetry
from repro.telemetry.cli import demo_workload
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.export import to_chrome_trace, validate_trace
from repro.telemetry.report import render, summary
from tests.conftest import ALL_BACKENDS

from .conftest import make_noop_task


class TestRender:
    def test_empty_collector_says_so(self):
        text = render(TelemetryCollector())
        assert "repro telemetry report" in text
        assert "No launches recorded." in text

    def test_label_lands_in_title(self):
        text = render(TelemetryCollector(label="my-run"))
        assert "repro telemetry report — my-run" in text

    def test_launch_row_with_percentiles(self, serial_queue):
        with telemetry.collect() as t:
            for _ in range(3):
                serial_queue.enqueue(make_noop_task())
        text = render(t)
        assert "noop_kernel" in text
        assert "AccCpuSerial" in text
        for col in ("launch p50", "block p50", "block p95", "block p99",
                    "occupancy", "modeled/wall"):
            assert col in text

    def test_cache_rate_lines(self, serial_queue):
        with telemetry.collect() as t:
            for _ in range(4):
                serial_queue.enqueue(make_noop_task())
        text = render(t)
        assert "plan-cache hit rate:   75.0 %" in text
        assert "tuning-cache hit rate: -" in text

    def test_span_table_rendered(self, serial_queue):
        with telemetry.collect() as t:
            serial_queue.enqueue(make_noop_task())
        text = render(t)
        assert "Spans" in text
        assert "runtime/plan.build" in text

    def test_dropped_events_warning(self, serial_queue):
        with telemetry.collect() as t:
            t.max_events = 1
            for _ in range(3):
                serial_queue.enqueue(make_noop_task())
        assert "WARNING: trace buffer full" in render(t)

    def test_collector_render_delegates(self, serial_queue):
        with telemetry.collect() as t:
            serial_queue.enqueue(make_noop_task())
        assert t.render() == render(t)


class TestSummary:
    def test_summary_keys_and_counts(self, serial_queue):
        with telemetry.collect() as t:
            for _ in range(2):
                serial_queue.enqueue(make_noop_task())
        s = summary(t)
        assert s["launches"] == 2
        assert s["plan_cache_hit_rate"] == pytest.approx(0.5)
        assert s["sanitizer_findings"] == 0
        assert s["dropped_events"] == 0
        assert s["trace_events"] == len(t.events)


class TestGemmEveryBackend:
    """The acceptance-criterion run: one GEMM workload per registered
    back-end, one report carrying percentiles and cache rates, one
    Perfetto-loadable trace."""

    @pytest.fixture(scope="class")
    def gemm_run(self):
        from repro import clear_plan_cache

        clear_plan_cache()
        with telemetry.collect(label="gemm-all-backends") as t:
            demo_workload(n=16, repeats=2)
        return t

    def test_every_backend_has_a_launch_row(self, gemm_run):
        text = render(gemm_run)
        assert "GemmTilingKernel" in text
        for backend in ALL_BACKENDS:
            assert backend in text, f"no report row for {backend}"

    def test_block_percentiles_populated_per_backend(self, gemm_run):
        for backend in ALL_BACKENDS:
            hists = [
                i for i in gemm_run.registry.instruments("repro_block_seconds")
                if dict(i.labels).get("backend") == backend
            ]
            assert hists, f"no block latencies for {backend}"
            q = hists[0].quantiles()
            assert q["p50"] > 0.0
            assert q["p50"] <= q["p95"] <= q["p99"]

    def test_cache_rates_measured(self, gemm_run):
        # repeats=2 per back-end: at least one plan-cache hit each.
        assert gemm_run.plan_cache_hit_rate is not None
        assert gemm_run.plan_cache_hit_rate >= 0.5

    def test_copies_and_launch_counts(self, gemm_run):
        s = summary(gemm_run)
        assert s["launches"] == 2 * len(ALL_BACKENDS)
        assert s["copies"] >= 4 * len(ALL_BACKENDS)

    def test_trace_is_perfetto_loadable(self, gemm_run):
        trace = validate_trace(to_chrome_trace(gemm_run))
        launches = [
            e for e in trace["traceEvents"]
            if e["ph"] == "X" and e.get("cat") == "launch"
        ]
        assert len(launches) == 2 * len(ALL_BACKENDS)
        backends = {e["args"]["backend"] for e in launches}
        assert backends == set(ALL_BACKENDS)
