"""The live ops surface: /metrics, /healthz, /traces over stdlib HTTP."""

import json
import urllib.error
import urllib.request

import pytest

from repro.telemetry import http as ops_http
from repro.telemetry import tracing
from repro.telemetry.http import (
    TELEMETRY_HTTP_ENV,
    OpsServer,
    health_snapshot,
    register_health,
    unregister_health,
)
from repro.telemetry.metrics import registry


@pytest.fixture()
def server():
    with OpsServer() as srv:
        yield srv


def _get(srv, path):
    host, port = srv.address
    with urllib.request.urlopen(
        f"http://{host}:{port}{path}", timeout=10
    ) as resp:
        return resp.status, resp.read()


def _get_json(srv, path, expect_error=False):
    try:
        status, body = _get(srv, path)
    except urllib.error.HTTPError as err:
        if not expect_error:
            raise
        status, body = err.code, err.read()
    return status, json.loads(body)


def test_metrics_endpoint_serves_prometheus(server):
    registry().counter(
        "repro_test_http_total", "counter visible over /metrics"
    ).inc(3)
    status, body = _get(server, "/metrics")
    assert status == 200
    text = body.decode()
    assert "# TYPE repro_test_http_total counter" in text
    assert "repro_test_http_total 3" in text


def test_healthz_aggregates_components(server):
    register_health("up_component", lambda: (True, {"detail": 1}))
    try:
        status, payload = _get_json(server, "/healthz")
        assert status == 200
        assert payload["ok"] is True
        assert payload["components"]["up_component"]["ok"] is True

        register_health("down_component", lambda: (False, {"why": "broken"}))
        try:
            status, payload = _get_json(
                server, "/healthz", expect_error=True
            )
            assert status == 503
            assert payload["ok"] is False
            assert payload["components"]["down_component"]["ok"] is False
        finally:
            unregister_health("down_component")
    finally:
        unregister_health("up_component")


def test_health_provider_exception_counts_as_down():
    def boom():
        raise RuntimeError("probe crashed")

    register_health("crashy", boom)
    try:
        ok, components = health_snapshot()
        assert ok is False
        assert components["crashy"]["ok"] is False
    finally:
        unregister_health("crashy")


def test_traces_endpoint_tails_store(server):
    store = tracing.trace_store()
    store.clear()
    for i in range(5):
        store.add({"trace_id": f"t{i}", "workload": "axpy"})
    status, payload = _get_json(server, "/traces?limit=2")
    assert status == 200
    assert [t["trace_id"] for t in payload["traces"]] == ["t3", "t4"]
    assert payload["stats"]["seen"] == 5
    store.clear()


def test_unknown_route_404(server):
    status, payload = _get_json(server, "/nope", expect_error=True)
    assert status == 404


def test_maybe_start_from_env(monkeypatch):
    ops_http.shutdown_shared_server()
    monkeypatch.delenv(TELEMETRY_HTTP_ENV, raising=False)
    assert ops_http.maybe_start_from_env() is None

    monkeypatch.setenv(TELEMETRY_HTTP_ENV, "127.0.0.1:0")
    srv = ops_http.maybe_start_from_env()
    try:
        assert srv is not None
        # Idempotent: the second call returns the same server.
        assert ops_http.maybe_start_from_env() is srv
        assert ops_http.shared_server() is srv
        status, _ = _get(srv, "/metrics")
        assert status == 200
    finally:
        ops_http.shutdown_shared_server()
    assert ops_http.shared_server() is None


def test_maybe_start_from_env_bad_bind_does_not_raise(monkeypatch, capsys):
    ops_http.shutdown_shared_server()
    monkeypatch.setenv(TELEMETRY_HTTP_ENV, "256.256.256.256:99999")
    assert ops_http.maybe_start_from_env() is None
    ops_http.shutdown_shared_server()
