"""Prometheus text-exposition conformance.

The exporter's output must parse under the text-format grammar no
matter what strings runtime code (or a remote tenant name) put into
metric names, label values and help text: label values escape
backslash/quote/newline, HELP escapes backslash/newline, illegal name
characters are rewritten, and each family's headers appear exactly
once.
"""

from __future__ import annotations

import re

import pytest

from repro.telemetry.export import to_prometheus
from repro.telemetry.metrics import MetricsRegistry

#: One sample line: name{labels} value — the grammar a scraper parses.
SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"  # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\\\|\\\"|\\n)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\\\|\\\"|\\n)*\")*\})?"
    r" [^ \n]+$"
)


def _check_conformance(text: str) -> None:
    """Line-level validation of an exposition document."""
    families_seen = {"HELP": set(), "TYPE": set()}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# "):
            kind, name = line.split()[1:3]
            assert kind in ("HELP", "TYPE"), f"bad comment line: {line!r}"
            assert (
                name not in families_seen[kind]
            ), f"duplicate # {kind} for {name}"
            families_seen[kind].add(name)
            if kind == "HELP":
                body = line.split(" ", 3)[3] if len(line.split(" ", 3)) > 3 else ""
                assert "\n" not in body
                # Escaping must leave no bare backslash before an
                # unexpected character.
                assert re.fullmatch(r"(?:[^\\]|\\\\|\\n)*", body), (
                    f"unescaped backslash in HELP: {body!r}"
                )
            continue
        assert SAMPLE_RE.match(line), f"malformed sample line: {line!r}"


class TestEscaping:
    def test_label_value_backslash_quote_newline(self):
        reg = MetricsRegistry()
        reg.counter(
            "evil_total", "evil labels", tenant='a\\b"c\nd'
        ).inc()
        text = to_prometheus(reg)
        assert 'tenant="a\\\\b\\"c\\nd"' in text
        _check_conformance(text)

    def test_help_text_escaped(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "line one\nline two \\ backslash").inc()
        text = to_prometheus(reg)
        help_line = next(
            line for line in text.splitlines() if line.startswith("# HELP")
        )
        assert "\n" not in help_line
        assert "line one\\nline two \\\\ backslash" in help_line
        _check_conformance(text)

    def test_illegal_metric_name_sanitized(self):
        reg = MetricsRegistry()
        reg.counter("weird.metric-name!").inc()
        text = to_prometheus(reg)
        assert "weird_metric_name_" in text
        _check_conformance(text)

    def test_illegal_label_name_sanitized(self):
        reg = MetricsRegistry()
        reg.counter("ok_total", **{"bad-label": "v"}).inc()
        text = to_prometheus(reg)
        assert "bad_label=" in text
        _check_conformance(text)


class TestFamilyHeaders:
    def test_headers_once_per_family(self):
        reg = MetricsRegistry()
        # Three label variants of one family must share one header pair.
        for tenant in ("a", "b", "c"):
            reg.counter(
                "repro_serve_requests_total",
                "Serving requests",
                tenant=tenant,
            ).inc()
        text = to_prometheus(reg)
        assert text.count("# HELP repro_serve_requests_total") == 1
        assert text.count("# TYPE repro_serve_requests_total") == 1
        _check_conformance(text)

    def test_headers_precede_samples(self):
        reg = MetricsRegistry()
        reg.gauge("depth", "queue depth", tenant="a").set(3)
        lines = to_prometheus(reg).splitlines()
        type_idx = next(
            i for i, l in enumerate(lines) if l.startswith("# TYPE depth")
        )
        sample_idx = next(
            i for i, l in enumerate(lines) if l.startswith("depth{")
        )
        assert type_idx < sample_idx

    def test_histogram_series_complete(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", "latency", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        text = to_prometheus(reg)
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_count 3" in text
        _check_conformance(text)


class TestWholeRegistry:
    def test_serving_metrics_export_clean(self):
        """The serve metric families (with tenant/lane/outcome labels)
        render a conformant document."""
        from repro.serve.metrics import (
            record_admission,
            record_batch,
            record_completion,
            record_inflight,
        )
        from repro.telemetry.metrics import registry, reset_registry

        reset_registry()
        try:
            record_admission("alice", "queued", depth=2)
            record_admission('we"ird\ntenant', "rejected", depth=9)
            record_completion("alice", 0.003, ok=True)
            record_batch(8, "AccCpuSerial/0")
            record_inflight("AccCpuSerial/0", 1)
            text = to_prometheus(registry())
            _check_conformance(text)
            assert "repro_serve_requests_total" in text
            assert "repro_serve_batch_size_bucket" in text
        finally:
            reset_registry()

    def test_empty_registry_empty_output(self):
        assert to_prometheus(MetricsRegistry()) == ""
