"""TelemetryCollector: observer hooks → metrics and trace events."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro import (
    AccCpuOmp2Blocks,
    AccCpuSerial,
    AccGpuCudaSim,
    QueueBlocking,
    QueueNonBlocking,
    WorkDivMembers,
    create_task_kernel,
    get_dev_by_idx,
    mem,
    telemetry,
)
from repro.kernels.axpy import AxpyKernel
from repro.telemetry.collector import TelemetryCollector, TraceEvent

from .conftest import make_noop_task, noop_kernel


def _value(collector, metric, **labels):
    for inst in collector.registry.instruments(metric):
        have = dict(inst.labels)
        if all(have.get(k) == v for k, v in labels.items()):
            return inst
    return None


def _launch_n(queue, task, n):
    for _ in range(n):
        queue.enqueue(task)


class TestLaunchMetrics:
    def test_launch_counter_and_labels(self, serial_queue):
        task = make_noop_task()
        with telemetry.collect() as t:
            _launch_n(serial_queue, task, 3)
        inst = _value(t, "repro_launches_total", kernel="noop_kernel")
        assert inst is not None and inst.value == 3
        labels = dict(inst.labels)
        assert labels["backend"] == "AccCpuSerial"
        assert labels["device"]

    def test_launch_latency_histogram(self, serial_queue):
        with telemetry.collect() as t:
            _launch_n(serial_queue, make_noop_task(), 4)
        h = _value(t, "repro_launch_seconds", kernel="noop_kernel")
        assert h.count == 4
        assert h.sum > 0.0
        assert h.percentile(50) > 0.0

    def test_plan_cache_hit_rate(self, serial_queue):
        with telemetry.collect() as t:
            assert t.plan_cache_hit_rate is None
            _launch_n(serial_queue, make_noop_task(), 5)
        assert t.plan_cache_hit_rate == pytest.approx(0.8)

    def test_block_latencies_recorded(self, serial_queue):
        with telemetry.collect() as t:
            serial_queue.enqueue(make_noop_task(blocks=6))
        h = _value(t, "repro_block_seconds", kernel="noop_kernel")
        assert h.count == 6
        assert h.quantiles()["p95"] >= 0.0

    def test_occupancy_observed_per_launch(self, serial_queue):
        with telemetry.collect() as t:
            _launch_n(serial_queue, make_noop_task(), 2)
        occ = _value(t, "repro_occupancy_ratio", backend="AccCpuSerial")
        assert occ.count == 2
        assert 0.0 < occ.mean <= 1.0

    def test_pooled_occupancy_at_least_sequential(self):
        dev = get_dev_by_idx(AccCpuOmp2Blocks, 0)
        q = QueueBlocking(dev)
        with telemetry.collect() as t:
            q.enqueue(make_noop_task(AccCpuOmp2Blocks, blocks=64))
        occ = _value(t, "repro_occupancy_ratio", backend="AccCpuOmp2Blocks")
        assert occ.count == 1
        assert occ.mean > 0.0

    def test_modeled_seconds_accumulate_for_modeled_kernel(self):
        dev = get_dev_by_idx(AccGpuCudaSim, 0)
        q = QueueBlocking(dev)
        n = 64
        x = mem.alloc(dev, n)
        y = mem.alloc(dev, n)
        q_host = np.ones(n)
        mem.copy(q, x, q_host)
        mem.copy(q, y, q_host)
        task = create_task_kernel(
            AccGpuCudaSim, WorkDivMembers.make(n, 1, 1),
            AxpyKernel(), n, 2.0, x, y,
        )
        with telemetry.collect() as t:
            q.enqueue(task)
        modeled = _value(
            t, "repro_launch_modeled_seconds_total", backend="AccGpuCudaSim"
        )
        wall = _value(
            t, "repro_launch_wall_seconds_total", backend="AccGpuCudaSim"
        )
        assert modeled.value > 0.0
        assert wall.value > 0.0
        x.free()
        y.free()

    def test_launch_trace_event_emitted(self, serial_queue):
        with telemetry.collect() as t:
            serial_queue.enqueue(make_noop_task())
        launches = [e for e in t.events if e.cat == "launch"]
        assert len(launches) == 1
        ev = launches[0]
        assert ev.ph == "X"
        assert ev.dur >= 0.0
        assert ev.args["backend"] == "AccCpuSerial"
        assert "work_div" in ev.args and "schedule" in ev.args

    def test_end_without_begin_does_not_crash(self):
        t = TelemetryCollector()
        dev = get_dev_by_idx(AccCpuSerial, 0)
        from repro.runtime.plan import get_plan

        plan = get_plan(make_noop_task(), dev)
        t.on_launch_end(plan, None, dev)
        inst = _value(t, "repro_launches_total", kernel="noop_kernel")
        assert inst.value == 1
        # No latency sample without a matching begin.
        assert _value(t, "repro_launch_seconds") is None


class TestAuxiliaryHooks:
    def test_copies_counted_by_kind(self, serial_queue):
        dev = serial_queue.dev
        buf = mem.alloc(dev, 8)
        with telemetry.collect() as t:
            mem.memset(serial_queue, buf, 0.0)
            mem.copy(serial_queue, buf, np.ones(8))
        assert _value(t, "repro_copies_total", kind="TaskMemset").value == 1
        assert _value(t, "repro_copies_total", kind="TaskCopy").value == 1
        buf.free()

    def test_queue_drains_counted(self):
        dev = get_dev_by_idx(AccGpuCudaSim, 0)
        q = QueueNonBlocking(dev)
        with telemetry.collect() as t:
            q.enqueue(lambda: None)
            q.wait()
        drains = _value(t, "repro_queue_drains_total")
        assert drains is not None and drains.value >= 1
        q.destroy()

    def test_tuning_cache_hook_rate(self):
        t = TelemetryCollector()
        t.on_tuning_cache(noop_kernel, AccCpuSerial, True)
        t.on_tuning_cache(noop_kernel, AccCpuSerial, False)
        assert t.tuning_cache_hit_rate == pytest.approx(0.5)

    def test_tuning_cache_none_before_any_auto_launch(self):
        t = TelemetryCollector()
        assert t.tuning_cache_hit_rate is None

    def test_auto_workdiv_launch_notifies_tuning_cache(self, serial_queue):
        from repro import AutoWorkDiv

        task = create_task_kernel(AccCpuSerial, AutoWorkDiv(16), noop_kernel)
        with telemetry.collect() as t:
            serial_queue.enqueue(task)
        total = sum(
            i.value for i in t.registry.instruments("repro_tuning_cache_total")
        )
        assert total >= 1
        assert t.tuning_cache_hit_rate is not None

    def test_sanitizer_report_hook(self):
        t = TelemetryCollector()
        plan = SimpleNamespace(
            kernel=noop_kernel, acc_type=SimpleNamespace(name="AccCpuSerial")
        )
        record = SimpleNamespace(kernel="noop_kernel", findings=[1, 2, 3])
        t.on_sanitizer_report(plan, record)
        inst = _value(t, "repro_sanitizer_findings_total")
        assert inst.value == 3
        instants = [e for e in t.events if e.ph == "i"]
        assert len(instants) == 1
        assert instants[0].args == {"kernel": "noop_kernel", "findings": 3}

    def test_span_end_records_histogram_and_event(self, serial_queue):
        with telemetry.collect() as t:
            serial_queue.enqueue(make_noop_task())
            mem.memset(serial_queue, mem.alloc(serial_queue.dev, 4), 0.0)
        spans = [
            dict(i.labels)["span"]
            for i in t.registry.instruments("repro_span_seconds")
        ]
        assert "mem.memset" in spans
        assert any(e.cat == "mem" for e in t.events)


class TestEventBuffer:
    def test_bounded_buffer_counts_drops(self, serial_queue):
        with telemetry.collect() as t:
            t.max_events = 1
            _launch_n(serial_queue, make_noop_task(), 3)
        assert len(t.events) == 1
        assert t.dropped_events >= 2

    def test_record_blocks_emits_block_events(self, serial_queue):
        with telemetry.collect(record_blocks=True) as t:
            serial_queue.enqueue(make_noop_task(blocks=5))
        blocks = [e for e in t.events if e.cat == "block"]
        assert len(blocks) == 5
        assert all(e.ph == "X" for e in blocks)

    def test_blocks_not_traced_by_default(self, serial_queue):
        with telemetry.collect() as t:
            serial_queue.enqueue(make_noop_task(blocks=5))
        assert not [e for e in t.events if e.cat == "block"]

    def test_trace_event_repr(self):
        ev = TraceEvent("k", "launch", "X", 1.0, dur=2.0)
        assert "launch/k" in repr(ev)


class TestIsolationAndQueries:
    def test_collect_blocks_use_private_registries(self, serial_queue):
        task = make_noop_task()
        with telemetry.collect() as a:
            serial_queue.enqueue(task)
        with telemetry.collect() as b:
            pass
        assert _value(a, "repro_launches_total") is not None
        assert _value(b, "repro_launches_total") is None
        assert a.registry is not b.registry

    def test_shared_registry_when_passed(self, serial_queue):
        from repro.telemetry.metrics import MetricsRegistry

        reg = MetricsRegistry()
        with telemetry.collect(registry=reg) as t:
            serial_queue.enqueue(make_noop_task())
        assert t.registry is reg
        assert len(reg) > 0

    def test_kernels_returns_label_triples(self, serial_queue):
        with telemetry.collect() as t:
            serial_queue.enqueue(make_noop_task())
        triples = t.kernels()
        assert len(triples) == 1
        kernel, backend, device = triples[0]
        assert kernel == "noop_kernel"
        assert backend == "AccCpuSerial"

    def test_repr_mentions_label_and_counts(self):
        t = TelemetryCollector(label="unit")
        assert "unit" in repr(t)
