"""W3C trace-context propagation: traceparent parsing, child spans,
ambient thread-local context, and the tail-sampled trace store."""

import re
import threading

import pytest

from repro.telemetry import tracing
from repro.telemetry.tracing import (
    TRACE_SAMPLE_ENV,
    TRACEPARENT_ENV,
    TraceContext,
    TraceStore,
    from_env,
    from_traceparent,
    new_trace,
    trace_store,
)


@pytest.fixture(autouse=True)
def _clean_ambient():
    tracing.set_current(None)
    yield
    tracing.set_current(None)


# -- TraceContext -----------------------------------------------------------


def test_new_trace_shape():
    ctx = new_trace()
    assert re.fullmatch(r"[0-9a-f]{32}", ctx.trace_id)
    assert re.fullmatch(r"[0-9a-f]{16}", ctx.span_id)
    assert ctx.parent_id is None


def test_child_keeps_trace_id_and_links_parent():
    root = new_trace()
    child = root.child()
    assert child.trace_id == root.trace_id
    assert child.parent_id == root.span_id
    assert child.span_id != root.span_id
    grand = child.child()
    assert grand.parent_id == child.span_id
    assert grand.trace_id == root.trace_id


def test_traceparent_roundtrip_received_span_becomes_parent():
    root = new_trace()
    wire = root.to_traceparent()
    assert re.fullmatch(r"00-[0-9a-f]{32}-[0-9a-f]{16}-01", wire)
    received = from_traceparent(wire)
    # The receiver mints its own span; the sender's span is the parent.
    assert received.trace_id == root.trace_id
    assert received.parent_id == root.span_id
    assert received.span_id != root.span_id


@pytest.mark.parametrize(
    "bad",
    [
        None,
        "",
        "garbage",
        "00-zz-bb-01",
        "00-" + "0" * 32 + "-" + "1" * 16 + "-01",  # all-zero trace id
        "00-" + "1" * 32 + "-" + "0" * 16 + "-01",  # all-zero span id
        "00-" + "a" * 31 + "-" + "b" * 16 + "-01",  # short trace id
        "xx-" + "a" * 32 + "-" + "b" * 16 + "-01",  # bad version
    ],
)
def test_malformed_traceparent_degrades_to_none(bad):
    assert from_traceparent(bad) is None


def test_ids_dict():
    ctx = TraceContext("a" * 32, "b" * 16, parent_id="c" * 16)
    ids = ctx.ids()
    assert ids["trace_id"] == "a" * 32
    assert ids["span_id"] == "b" * 16
    assert ids["parent_id"] == "c" * 16
    # A root context omits the parent key rather than carrying None.
    assert "parent_id" not in TraceContext("a" * 32, "b" * 16).ids()


def test_from_env(monkeypatch):
    monkeypatch.delenv(TRACEPARENT_ENV, raising=False)
    assert from_env() is None
    root = new_trace()
    monkeypatch.setenv(TRACEPARENT_ENV, root.to_traceparent())
    ctx = from_env()
    assert ctx is not None and ctx.trace_id == root.trace_id
    monkeypatch.setenv(TRACEPARENT_ENV, "not-a-traceparent")
    assert from_env() is None


# -- ambient context --------------------------------------------------------


def test_current_set_current_use():
    assert tracing.current() is None
    ctx = new_trace()
    prev = tracing.set_current(ctx)
    assert prev is None
    assert tracing.current() is ctx
    with tracing.use(None):
        # use(None) is a no-op, not a reset.
        assert tracing.current() is ctx
    other = new_trace()
    with tracing.use(other) as active:
        assert active is other
        assert tracing.current() is other
    assert tracing.current() is ctx
    tracing.set_current(None)


def test_ambient_context_is_thread_local():
    ctx = new_trace()
    tracing.set_current(ctx)
    seen = {}

    def probe():
        seen["other_thread"] = tracing.current()

    t = threading.Thread(target=probe)
    t.start()
    t.join()
    assert seen["other_thread"] is None
    assert tracing.current() is ctx


# -- TraceStore -------------------------------------------------------------


def test_trace_store_ring_bound():
    store = TraceStore(capacity=4)
    for i in range(10):
        store.add({"trace_id": f"t{i}"})
    recent = store.recent()
    assert len(recent) == 4
    assert recent[-1]["trace_id"] == "t9"
    stats = store.stats()
    assert stats["seen"] == 10
    assert stats["kept"] == 4  # ring bound; nothing sampled out
    assert stats["sampled_out"] == 0


def test_trace_store_tail_sampling_keeps_errors():
    store = TraceStore(capacity=64, sample_every=5)
    for i in range(10):
        store.add({"trace_id": f"ok{i}"})
    ok_kept = len(store.recent())
    assert ok_kept == 2  # 1-in-5
    store.add({"trace_id": "boom", "error": "KernelError"})
    kept = [t["trace_id"] for t in store.recent()]
    assert "boom" in kept  # errors bypass sampling


def test_trace_store_singleton_reads_sample_env(monkeypatch):
    monkeypatch.setenv(TRACE_SAMPLE_ENV, "3")
    monkeypatch.setattr(tracing, "_store", None)
    store = trace_store()
    assert store.sample_every == 3
    assert trace_store() is store
