"""Chrome trace and Prometheus exporters, plus trace validation."""

import json

import pytest

from repro import telemetry
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.export import (
    TRACE_PID,
    TraceValidationError,
    to_chrome_trace,
    to_prometheus,
    validate_trace,
    write_chrome_trace,
)
from repro.telemetry.metrics import MetricsRegistry

from .conftest import make_noop_task


@pytest.fixture
def collected(serial_queue):
    with telemetry.collect(label="export-test") as t:
        for _ in range(2):
            serial_queue.enqueue(make_noop_task())
    return t


class TestChromeTrace:
    def test_first_event_is_process_metadata(self, collected):
        trace = to_chrome_trace(collected)
        meta = trace["traceEvents"][0]
        assert meta["ph"] == "M"
        assert meta["name"] == "process_name"
        assert "export-test" in meta["args"]["name"]

    def test_complete_events_carry_duration(self, collected):
        trace = to_chrome_trace(collected)
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert xs, "expected launch slices"
        for ev in xs:
            assert ev["dur"] >= 0.0
            assert ev["ts"] >= 0.0
            assert ev["pid"] == TRACE_PID
            assert isinstance(ev["tid"], int)

    def test_instant_events_have_thread_scope(self):
        t = TelemetryCollector()
        from types import SimpleNamespace

        plan = SimpleNamespace(
            kernel="k", acc_type=SimpleNamespace(name="AccCpuSerial")
        )
        t.on_sanitizer_report(
            plan, SimpleNamespace(kernel="k", findings=[])
        )
        trace = to_chrome_trace(t)
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert instants and all(e["s"] == "t" for e in instants)

    def test_trace_validates_and_roundtrips_json(self, collected):
        trace = to_chrome_trace(collected)
        assert validate_trace(trace) is trace
        assert validate_trace(json.dumps(trace))["displayTimeUnit"] == "ms"

    def test_dropped_events_reported_in_other_data(self, collected):
        trace = to_chrome_trace(collected)
        assert trace["otherData"]["dropped_events"] == 0

    def test_write_chrome_trace_produces_loadable_file(
        self, collected, tmp_path
    ):
        path = tmp_path / "trace.json"
        assert write_chrome_trace(collected, str(path)) == str(path)
        with open(path) as fh:
            loaded = json.load(fh)
        validate_trace(loaded)
        assert loaded["otherData"]["exporter"] == "repro.telemetry"


class TestTraceValidation:
    def _trace(self, **overrides):
        ev = {
            "name": "k", "ph": "X", "ts": 1.0, "dur": 2.0,
            "pid": 1, "tid": 2, "args": {},
        }
        ev.update(overrides)
        return {"traceEvents": [ev]}

    def test_accepts_minimal_valid_trace(self):
        validate_trace(self._trace())

    def test_rejects_non_object_top_level(self):
        with pytest.raises(TraceValidationError, match="top level"):
            validate_trace([1, 2])

    def test_rejects_missing_trace_events(self):
        with pytest.raises(TraceValidationError, match="traceEvents"):
            validate_trace({})

    def test_rejects_invalid_json_string(self):
        with pytest.raises(TraceValidationError, match="JSON"):
            validate_trace("{not json")

    def test_rejects_unknown_phase(self):
        with pytest.raises(TraceValidationError, match="phase"):
            validate_trace(self._trace(ph="Z"))

    def test_rejects_missing_name(self):
        with pytest.raises(TraceValidationError, match="name"):
            validate_trace(self._trace(name=""))

    def test_rejects_negative_timestamp(self):
        with pytest.raises(TraceValidationError, match="ts"):
            validate_trace(self._trace(ts=-1.0))

    def test_rejects_bad_duration(self):
        with pytest.raises(TraceValidationError, match="dur"):
            validate_trace(self._trace(dur=None))

    def test_rejects_non_integer_tid(self):
        with pytest.raises(TraceValidationError, match="tid"):
            validate_trace(self._trace(tid="worker-1"))

    def test_rejects_non_object_args(self):
        with pytest.raises(TraceValidationError, match="args"):
            validate_trace(self._trace(args=[1]))

    def test_rejects_unserialisable_payload(self):
        with pytest.raises(TraceValidationError, match="serialisable"):
            validate_trace(self._trace(args={"bad": object()}))

    def test_metadata_events_need_no_timestamp(self):
        validate_trace(
            {"traceEvents": [{"name": "process_name", "ph": "M", "args": {}}]}
        )


class TestPrometheus:
    def test_empty_registry_renders_empty(self):
        assert to_prometheus(MetricsRegistry()) == ""

    def test_counter_exposition(self):
        reg = MetricsRegistry()
        reg.counter("repro_launches_total", "kernel launches",
                    kernel="gemm").inc(3)
        text = to_prometheus(reg)
        assert "# HELP repro_launches_total kernel launches" in text
        assert "# TYPE repro_launches_total counter" in text
        assert 'repro_launches_total{kernel="gemm"} 3' in text

    def test_gauge_exposition(self):
        reg = MetricsRegistry()
        reg.gauge("repro_depth").set(2.5)
        text = to_prometheus(reg)
        assert "# TYPE repro_depth gauge" in text
        assert "repro_depth 2.5" in text

    def test_histogram_exposition_is_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0), backend="serial")
        for v in (0.0625, 0.5, 5.0):
            h.observe(v)
        text = to_prometheus(reg)
        assert 'lat_bucket{backend="serial",le="0.1"} 1' in text
        assert 'lat_bucket{backend="serial",le="1"} 2' in text
        assert 'lat_bucket{backend="serial",le="+Inf"} 3' in text
        assert 'lat_sum{backend="serial"} 5.5625' in text
        assert 'lat_count{backend="serial"} 3' in text

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c", kernel='we"ird\\name').inc()
        text = to_prometheus(reg)
        assert 'kernel="we\\"ird\\\\name"' in text

    def test_collected_registry_exports_cleanly(self, collected):
        text = to_prometheus(collected.registry)
        assert "repro_launches_total" in text
        assert "repro_launch_seconds_bucket" in text
        assert "repro_plan_cache_total" in text
        assert text.endswith("\n")
