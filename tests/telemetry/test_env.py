"""Environment-driven activation: REPRO_TELEMETRY / REPRO_TELEMETRY_EXPORT."""

import os
import subprocess
import sys

import pytest

from repro import telemetry
from repro.telemetry import _state
from repro.telemetry.export import validate_trace

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
)

WORKLOAD = """
from repro import (AccCpuSerial, QueueBlocking, WorkDivMembers,
                   create_task_kernel, fn_acc, get_dev_by_idx)

@fn_acc
def env_kernel(acc):
    pass

q = QueueBlocking(get_dev_by_idx(AccCpuSerial, 0))
task = create_task_kernel(AccCpuSerial, WorkDivMembers.make(3, 1, 1), env_kernel)
for _ in range(4):
    q.enqueue(task)
"""


def _run(extra_env, code=WORKLOAD):
    env = dict(os.environ)
    env.pop("REPRO_TELEMETRY", None)
    env.pop("REPRO_TELEMETRY_EXPORT", None)
    env.update(extra_env)
    env["PYTHONPATH"] = REPO_SRC
    return subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True, text=True, env=env, timeout=120,
    )


class TestSubprocessActivation:
    def test_atexit_report_lands_on_stderr(self):
        proc = _run({"REPRO_TELEMETRY": "1"})
        assert proc.returncode == 0, proc.stderr
        assert "repro telemetry report" in proc.stderr
        assert "env_kernel" in proc.stderr
        assert "plan-cache hit rate:   75.0 %" in proc.stderr

    def test_disabled_means_silent(self):
        proc = _run({})
        assert proc.returncode == 0, proc.stderr
        assert "repro telemetry report" not in proc.stderr

    def test_export_env_writes_chrome_trace(self, tmp_path):
        trace = tmp_path / "session.json"
        proc = _run(
            {"REPRO_TELEMETRY": "1", "REPRO_TELEMETRY_EXPORT": str(trace)}
        )
        assert proc.returncode == 0, proc.stderr
        assert f"telemetry export written to {trace}" in proc.stderr
        loaded = validate_trace(trace.read_text())
        launches = [
            e for e in loaded["traceEvents"] if e.get("cat") == "launch"
        ]
        assert len(launches) == 4

    def test_export_env_writes_prometheus(self, tmp_path):
        prom = tmp_path / "session.prom"
        proc = _run(
            {"REPRO_TELEMETRY": "1", "REPRO_TELEMETRY_EXPORT": str(prom)}
        )
        assert proc.returncode == 0, proc.stderr
        text = prom.read_text()
        assert "# TYPE repro_launches_total counter" in text
        assert 'kernel="env_kernel"' in text


class TestInProcessActivation:
    @pytest.fixture(autouse=True)
    def clean_session(self):
        telemetry.deactivate()
        yield
        telemetry.deactivate()

    def test_enabled_reads_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        assert not telemetry.enabled()
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        assert telemetry.enabled()

    def test_maybe_activate_noop_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        assert telemetry.maybe_activate_from_env() is None
        assert telemetry.session_collector() is None

    def test_activate_is_idempotent_and_registers(self):
        from repro.runtime.instrument import observers

        a = telemetry.activate(label="test-session")
        b = telemetry.activate(label="ignored")
        assert a is b
        assert a is telemetry.session_collector()
        assert a in observers()
        assert a.registry is telemetry.registry()

    def test_deactivate_unregisters(self):
        from repro.runtime.instrument import observers

        collector = telemetry.activate()
        telemetry.deactivate()
        assert telemetry.session_collector() is None
        assert collector not in observers()

    def test_export_to_picks_format_by_suffix(self, tmp_path, serial_queue):
        from tests.telemetry.conftest import make_noop_task

        with telemetry.collect() as t:
            serial_queue.enqueue(make_noop_task())
        trace_path = _state.export_to(t, str(tmp_path / "out.json"))
        prom_path = _state.export_to(t, str(tmp_path / "out.prom"))
        validate_trace(open(trace_path).read())
        assert "repro_launches_total" in open(prom_path).read()
