"""Concurrent registration vs export: the scrape path must never see a
half-registered instrument or raise from a mutating-dict iteration."""

import threading

from repro.telemetry.export import to_prometheus
from repro.telemetry.metrics import MetricsRegistry

THREADS = 16
PER_THREAD = 150


def test_register_while_exporting_hammer():
    reg = MetricsRegistry()
    stop = threading.Event()
    errors = []
    barrier = threading.Barrier(THREADS + 1)

    def register(tid):
        try:
            barrier.wait(timeout=30)
            for i in range(PER_THREAD):
                reg.counter(
                    f"repro_hammer_total_{tid}_{i}",
                    "hammer counter",
                    thread=str(tid),
                ).inc()
                reg.gauge(
                    f"repro_hammer_gauge_{tid}", "hammer gauge", i=str(i % 4)
                ).set(i)
                reg.histogram(
                    f"repro_hammer_seconds_{tid}", "hammer histogram"
                ).observe(i * 1e-4)
        except Exception as exc:  # noqa: BLE001 - harvested below
            errors.append(exc)

    def export():
        try:
            while not stop.is_set():
                text = to_prometheus(reg)
                # Snapshot consistency: every TYPE line that made it
                # into the export has at least one sample line.
                for line in text.splitlines():
                    if line.startswith("# TYPE "):
                        name = line.split()[2]
                        assert name in text
                # collect() is the report path's iteration — same race.
                for _name, _kind, _help, insts in reg.export_snapshot():
                    for inst in insts:
                        inst.labels  # touch
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    workers = [
        threading.Thread(target=register, args=(tid,))
        for tid in range(THREADS)
    ]
    exporter = threading.Thread(target=export)
    for t in workers:
        t.start()
    exporter.start()
    barrier.wait(timeout=30)
    for t in workers:
        t.join(timeout=60)
    stop.set()
    exporter.join(timeout=60)

    assert not errors, errors
    # Nothing was lost: every registered family exports.
    final = to_prometheus(reg)
    for tid in range(THREADS):
        assert f"repro_hammer_gauge_{tid}" in final
        assert f"repro_hammer_total_{tid}_{PER_THREAD - 1}" in final


def test_instruments_returns_stable_snapshot():
    reg = MetricsRegistry()
    reg.counter("repro_snap_total", "c", k="a").inc()
    snapshot = reg.instruments("repro_snap_total")
    # Registering more instruments after the call must not grow the
    # already-returned snapshot (it is a list, not a lazy generator).
    reg.counter("repro_snap_total", "c", k="b").inc()
    assert len(snapshot) == 1
    assert len(reg.instruments("repro_snap_total")) == 2


def test_export_snapshot_single_lock_view():
    reg = MetricsRegistry()
    reg.counter("repro_one_total", "one").inc(2)
    reg.histogram("repro_two_seconds", "two").observe(0.5)
    families = {name: kind for name, kind, _h, _i in reg.export_snapshot()}
    assert families == {
        "repro_one_total": "counter",
        "repro_two_seconds": "histogram",
    }
