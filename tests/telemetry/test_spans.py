"""Span lifecycle, the NULL_SPAN fast path, and sim_interval."""

import pytest

from repro import AccGpuCudaSim, ExecutionObserver, get_dev_by_idx, observe
from repro.runtime.instrument import observers
from repro.telemetry.spans import NULL_SPAN, Span, sim_interval, span


class _Recorder(ExecutionObserver):
    def __init__(self):
        self.begins = []
        self.ends = []

    def on_span_begin(self, s):
        self.begins.append(s)

    def on_span_end(self, s):
        self.ends.append(s)


class TestNullSpanFastPath:
    def test_unobserved_returns_the_shared_null_span(self):
        assert not observers()
        assert span("launch") is NULL_SPAN
        assert span("other", cat="mem") is NULL_SPAN

    def test_null_span_is_a_noop_context_manager(self):
        with NULL_SPAN as inner:
            assert inner is None

    def test_null_span_does_not_swallow_exceptions(self):
        with pytest.raises(RuntimeError):
            with NULL_SPAN:
                raise RuntimeError("boom")

    def test_observed_returns_a_real_span(self):
        with observe(_Recorder()):
            s = span("launch")
            assert isinstance(s, Span)
            assert s is not NULL_SPAN


class TestSpanLifecycle:
    def test_begin_and_end_reach_observers(self):
        rec = _Recorder()
        with observe(rec):
            with span("work", cat="test") as s:
                pass
        assert rec.begins == [s]
        assert rec.ends == [s]

    def test_wall_duration_and_closed(self):
        rec = _Recorder()
        with observe(rec):
            with span("work") as s:
                assert not s.closed
                assert s.wall_s == 0.0
        assert s.closed
        assert s.wall_s >= 0.0
        assert s.t1 >= s.t0 > 0.0

    def test_error_recorded_and_exception_propagates(self):
        rec = _Recorder()
        with observe(rec):
            with pytest.raises(ValueError):
                with span("work") as s:
                    raise ValueError("bad")
        assert s.error == "ValueError"
        assert s.closed
        assert rec.ends == [s]

    def test_clean_span_has_no_error(self):
        with observe(_Recorder()):
            with span("work") as s:
                pass
        assert s.error is None

    def test_attrs_cat_and_thread_recorded(self):
        import threading

        with observe(_Recorder()):
            with span("copy", cat="mem", kind="TaskCopy", bytes=64) as s:
                pass
        assert s.cat == "mem"
        assert s.attrs == {"kind": "TaskCopy", "bytes": 64}
        assert s.thread_id == threading.get_ident()

    def test_span_ids_are_unique(self):
        with observe(_Recorder()):
            ids = {span(f"s{i}").span_id for i in range(5)}
        assert len(ids) == 5

    def test_nested_spans_order(self):
        rec = _Recorder()
        with observe(rec):
            with span("outer") as a:
                with span("inner") as b:
                    pass
        assert rec.begins == [a, b]
        assert rec.ends == [b, a]


class TestSimClockCapture:
    def test_device_span_captures_modeled_seconds(self):
        dev = get_dev_by_idx(AccGpuCudaSim, 0)
        with observe(_Recorder()):
            with span("launch", device=dev) as s:
                dev.advance_sim_time(2.5e-6)
        assert s.sim_s == pytest.approx(2.5e-6)

    def test_span_without_device_has_zero_sim(self):
        with observe(_Recorder()):
            with span("launch") as s:
                pass
        assert s.sim_s == 0.0

    def test_sim_interval_measures_exact_interval(self):
        dev = get_dev_by_idx(AccGpuCudaSim, 0)
        with sim_interval(dev) as t:
            assert t[0] == 0.0
            dev.advance_sim_time(3e-6)
        assert t[0] == pytest.approx(3e-6)

    def test_sim_interval_records_even_on_exception(self):
        dev = get_dev_by_idx(AccGpuCudaSim, 0)
        with pytest.raises(RuntimeError):
            with sim_interval(dev) as t:
                dev.advance_sim_time(1e-6)
                raise RuntimeError("boom")
        assert t[0] == pytest.approx(1e-6)

    def test_bench_sim_time_of_delegates_here(self):
        from repro.bench.harness import sim_time_of

        dev = get_dev_by_idx(AccGpuCudaSim, 0)
        with sim_time_of(dev) as t:
            dev.advance_sim_time(4e-6)
        assert t[0] == pytest.approx(4e-6)
