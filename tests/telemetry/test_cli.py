"""``python -m repro.telemetry`` subcommands."""

import json
import sys

import pytest

from repro.telemetry.cli import main
from repro.telemetry.export import validate_trace


class TestReportCommand:
    def test_report_prints_the_report(self, capsys):
        assert main(["report", "--backend", "AccCpuSerial", "--size", "16"]) == 0
        out = capsys.readouterr().out
        assert "repro telemetry report" in out
        assert "GemmTilingKernel" in out
        assert "AccCpuSerial" in out
        assert "plan-cache hit rate" in out

    def test_report_can_also_export(self, capsys, tmp_path):
        trace = tmp_path / "report.json"
        assert main(
            ["report", "--backend", "AccCpuSerial", "--size", "16",
             "--trace", str(trace)]
        ) == 0
        assert f"wrote {trace}" in capsys.readouterr().out
        validate_trace(trace.read_text())


class TestExportCommand:
    def test_export_writes_trace_and_prom(self, capsys, tmp_path):
        trace = tmp_path / "t.json"
        prom = tmp_path / "m.prom"
        rc = main(
            ["export", "--backend", "AccCpuSerial", "--size", "16",
             "--trace", str(trace), "--prom", str(prom)]
        )
        assert rc == 0
        loaded = validate_trace(trace.read_text())
        assert any(
            e.get("cat") == "launch" for e in loaded["traceEvents"]
        )
        text = prom.read_text()
        assert "repro_launches_total" in text
        assert "repro_launch_seconds_bucket" in text
        out = capsys.readouterr().out
        assert "repro telemetry report" not in out

    def test_export_without_paths_fails(self, capsys):
        rc = main(["export", "--backend", "AccCpuSerial", "--size", "16"])
        assert rc == 2
        assert "nothing to write" in capsys.readouterr().err


class TestRunCommand:
    def test_run_executes_script_with_args(self, capsys, tmp_path):
        out_file = tmp_path / "ran.json"
        script = tmp_path / "workload.py"
        script.write_text(
            "import json, sys\n"
            "from repro import (AccCpuSerial, QueueBlocking, WorkDivMembers,\n"
            "                   create_task_kernel, fn_acc, get_dev_by_idx)\n"
            "@fn_acc\n"
            "def k(acc):\n"
            "    pass\n"
            "q = QueueBlocking(get_dev_by_idx(AccCpuSerial, 0))\n"
            "q.enqueue(create_task_kernel(\n"
            "    AccCpuSerial, WorkDivMembers.make(2, 1, 1), k))\n"
            "with open(sys.argv[1], 'w') as fh:\n"
            "    json.dump(sys.argv[1:], fh)\n"
        )
        rc = main(["run", str(script), str(out_file)])
        assert rc == 0
        assert json.loads(out_file.read_text()) == [str(out_file)]
        out = capsys.readouterr().out
        assert "repro telemetry report" in out
        assert "k" in out

    def test_run_restores_sys_argv(self, tmp_path, capsys):
        script = tmp_path / "noop.py"
        script.write_text("pass\n")
        before = list(sys.argv)
        assert main(["run", str(script)]) == 0
        assert sys.argv == before

    def test_run_unregisters_collector_on_script_error(self, tmp_path):
        from repro.runtime.instrument import observers

        script = tmp_path / "bad.py"
        script.write_text("raise RuntimeError('boom')\n")
        n_before = len(observers())
        with pytest.raises(RuntimeError):
            main(["run", str(script)])
        assert len(observers()) == n_before


class TestParser:
    def test_missing_subcommand_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main([])
        assert exc.value.code == 2
        capsys.readouterr()
