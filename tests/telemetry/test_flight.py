"""Crash flight recorder: bounded ring, crash/sanitizer/poison dumps."""

import json
import os

import numpy as np
import pytest

from repro import (
    AccCpuSerial,
    QueueBlocking,
    WorkDivMembers,
    create_task_kernel,
    fn_acc,
    get_dev_by_idx,
    mem,
)
from repro.telemetry import flight, tracing
from repro.telemetry.flight import FLIGHT_ENV, FlightRecorder


@pytest.fixture()
def rec(tmp_path):
    recorder = flight.activate(str(tmp_path))
    yield recorder
    flight.deactivate()


@pytest.fixture(autouse=True)
def _always_deactivate():
    yield
    flight.deactivate()
    tracing.set_current(None)


def test_inactive_by_default():
    assert flight.active() is False
    assert flight.recorder() is None
    flight.maybe_record("noop", detail=1)  # must not raise


def test_ring_is_bounded(tmp_path):
    recorder = FlightRecorder(str(tmp_path), capacity=8)
    for i in range(50):
        recorder.record("tick", i=i)
    events = recorder.events()
    assert len(events) == 8
    assert events[-1]["i"] == 49
    assert events[0]["i"] == 42


def test_record_stamps_pid_time_and_trace(rec):
    ctx = tracing.new_trace()
    with tracing.use(ctx):
        rec.record("probe", detail="x")
    ev = rec.events()[-1]
    assert ev["kind"] == "probe"
    assert ev["pid"] == os.getpid()
    assert ev["trace_id"] == ctx.trace_id
    assert ev["detail"] == "x"


def test_dump_writes_ring_atomically(rec, tmp_path):
    rec.record("one")
    rec.record("two")
    path = rec.dump("unit_test", error="synthetic")
    assert path is not None and os.path.exists(path)
    with open(path) as fh:
        payload = json.load(fh)
    assert payload["reason"] == "unit_test"
    assert payload["error"] == "synthetic"
    assert payload["event_count"] == 2
    assert [e["kind"] for e in payload["events"]] == ["one", "two"]
    assert not [p for p in os.listdir(tmp_path) if p.endswith(".tmp")]


def test_activate_idempotent(tmp_path):
    a = flight.activate(str(tmp_path))
    b = flight.activate(str(tmp_path / "other"))
    assert a is b
    flight.deactivate()
    assert flight.active() is False


def test_env_activation(tmp_path, monkeypatch):
    monkeypatch.delenv(FLIGHT_ENV, raising=False)
    assert flight.maybe_activate_from_env() is None
    monkeypatch.setenv(FLIGHT_ENV, str(tmp_path))
    recorder = flight.maybe_activate_from_env()
    assert recorder is not None and flight.active()
    flight.deactivate()


@fn_acc
def _crashing(acc, n, out):
    raise ValueError("seeded crash")


def test_kernel_crash_dumps_flight_file(rec, tmp_path):
    dev = get_dev_by_idx(AccCpuSerial, 0)
    queue = QueueBlocking(dev)
    out = mem.alloc(dev, 8)
    task = create_task_kernel(
        AccCpuSerial, WorkDivMembers.make(1, 1, 8), _crashing, 8, out
    )
    with pytest.raises(Exception):
        queue.enqueue(task)
    dumps = [p for p in os.listdir(tmp_path) if p.startswith("flight-")]
    assert dumps, "kernel crash produced no flight dump"
    with open(tmp_path / dumps[0]) as fh:
        payload = json.load(fh)
    assert payload["reason"] == "kernel_crash"
    kinds = [e["kind"] for e in payload["events"]]
    # The ring captured the approach to the crash, not just the crash.
    assert "launch_begin" in kinds
    assert "kernel_crash" in kinds


def test_launches_recorded_while_active(rec):
    dev = get_dev_by_idx(AccCpuSerial, 0)
    queue = QueueBlocking(dev)
    x = mem.alloc(dev, 16)
    mem.copy(queue, x, np.zeros(16))
    kinds = [e["kind"] for e in rec.events()]
    assert "queue_drain" in kinds or "launch_begin" in kinds or kinds == []


def test_queue_poison_dump(rec, tmp_path):
    class FakeDev:
        name = "fake-dev"

    class FakeQueue:
        dev = FakeDev()

    flight.on_queue_poisoned(FakeQueue(), RuntimeError("task exploded"))
    dumps = [p for p in os.listdir(tmp_path) if p.startswith("flight-")]
    assert len(dumps) == 1
    with open(tmp_path / dumps[0]) as fh:
        payload = json.load(fh)
    assert payload["reason"] == "queue_poisoned"
    assert "task exploded" in payload["error"]


def test_crash_hooks_never_raise_when_inactive():
    flight.on_kernel_crash(None, RuntimeError("x"))
    flight.on_queue_poisoned(None, RuntimeError("x"))
