"""Shared fixtures for the telemetry suite."""

from __future__ import annotations

import pytest

from repro import (
    AccCpuSerial,
    QueueBlocking,
    WorkDivMembers,
    clear_plan_cache,
    create_task_kernel,
    fn_acc,
    get_dev_by_idx,
)


@fn_acc
def noop_kernel(acc):
    pass


@pytest.fixture(autouse=True)
def fresh_plan_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


@pytest.fixture
def serial_queue():
    dev = get_dev_by_idx(AccCpuSerial, 0)
    return QueueBlocking(dev)


def make_noop_task(acc_type=AccCpuSerial, blocks=4):
    return create_task_kernel(
        acc_type, WorkDivMembers.make(blocks, 1, 1), noop_kernel
    )
