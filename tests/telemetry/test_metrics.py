"""Counters, gauges, histograms and the labelled registry."""

import pytest

from repro.telemetry.metrics import (
    LATENCY_BUCKETS,
    RESERVOIR_SIZE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
    reset_registry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("c")
        assert c.value == 0.0
        c.inc()
        c.inc()
        assert c.value == 2.0

    def test_inc_by_amount(self):
        c = Counter("c")
        c.inc(2.5)
        assert c.value == pytest.approx(2.5)

    def test_negative_increment_raises(self):
        c = Counter("c")
        with pytest.raises(ValueError):
            c.inc(-1.0)
        assert c.value == 0.0

    def test_carries_its_label_set(self):
        reg = MetricsRegistry()
        c = reg.counter("launches", kernel="gemm", backend="AccCpuSerial")
        assert dict(c.labels) == {"kernel": "gemm", "backend": "AccCpuSerial"}


class TestGauge:
    def test_set(self):
        g = Gauge("g")
        g.set(7)
        assert g.value == 7.0

    def test_inc_and_dec(self):
        g = Gauge("g")
        g.inc(3.0)
        g.dec(1.0)
        assert g.value == pytest.approx(2.0)

    def test_can_go_negative(self):
        g = Gauge("g")
        g.dec(4.0)
        assert g.value == pytest.approx(-4.0)

    def test_set_casts_to_float(self):
        g = Gauge("g")
        g.set(True)
        assert g.value == 1.0 and isinstance(g.value, float)


class TestHistogram:
    def test_count_sum_mean(self):
        h = Histogram("h")
        for v in (0.001, 0.002, 0.003):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(0.006)
        assert h.mean == pytest.approx(0.002)

    def test_min_max(self):
        h = Histogram("h")
        for v in (0.5, 0.01, 0.2):
            h.observe(v)
        assert h.min == pytest.approx(0.01)
        assert h.max == pytest.approx(0.5)

    def test_empty_statistics_are_zero(self):
        h = Histogram("h")
        assert h.count == 0
        assert h.sum == 0.0
        assert h.min == 0.0
        assert h.max == 0.0
        assert h.mean == 0.0
        assert h.percentile(95) == 0.0

    def test_percentile_single_observation(self):
        h = Histogram("h")
        h.observe(0.25)
        assert h.percentile(0) == 0.25
        assert h.percentile(50) == 0.25
        assert h.percentile(100) == 0.25

    def test_percentile_interpolates_linearly(self):
        h = Histogram("h", buckets=(10.0,))
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.percentile(50) == pytest.approx(2.5)
        assert h.percentile(0) == pytest.approx(1.0)
        assert h.percentile(100) == pytest.approx(4.0)

    def test_percentile_out_of_range_raises(self):
        h = Histogram("h")
        with pytest.raises(ValueError):
            h.percentile(-1)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_quantiles_trio(self):
        h = Histogram("h")
        for i in range(100):
            h.observe(i / 100.0)
        q = h.quantiles()
        assert set(q) == {"p50", "p95", "p99"}
        assert q["p50"] <= q["p95"] <= q["p99"]

    def test_cumulative_buckets_monotonic(self):
        h = Histogram("h")
        for v in (1e-6, 1e-4, 1e-2, 0.5):
            h.observe(v)
        cum = h.cumulative_buckets()
        assert [b for b, _ in cum] == list(LATENCY_BUCKETS)
        counts = [c for _, c in cum]
        assert counts == sorted(counts)
        assert counts[-1] == 4

    def test_observation_above_top_bound_counts_only_in_inf(self):
        h = Histogram("h", buckets=(1.0,))
        h.observe(5.0)
        assert h.count == 1
        assert h.cumulative_buckets() == [(1.0, 0)]

    def test_unsorted_buckets_raise(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 0.5))

    def test_empty_buckets_raise(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())

    def test_bad_reservoir_size_raises(self):
        with pytest.raises(ValueError):
            Histogram("h", reservoir_size=0)

    def test_reservoir_stays_bounded(self):
        h = Histogram("h", reservoir_size=16)
        for i in range(1000):
            h.observe(float(i))
        assert h.count == 1000
        assert len(h._reservoir) == 16

    def test_percentiles_deterministic_across_instances(self):
        a = Histogram("h", reservoir_size=32)
        b = Histogram("h", reservoir_size=32)
        for i in range(500):
            a.observe(float(i))
            b.observe(float(i))
        assert a.percentile(95) == b.percentile(95)

    def test_default_reservoir_size(self):
        h = Histogram("h")
        assert h._reservoir_size == RESERVOIR_SIZE


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        a = reg.counter("c", "help", kernel="k")
        b = reg.counter("c", kernel="k")
        assert a is b
        assert len(reg) == 1

    def test_distinct_labels_distinct_instruments(self):
        reg = MetricsRegistry()
        a = reg.counter("c", kernel="k1")
        b = reg.counter("c", kernel="k2")
        assert a is not b
        assert len(reg) == 2

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        a = reg.counter("c", kernel="k", backend="b")
        b = reg.counter("c", backend="b", kernel="k")
        assert a is b

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(ValueError, match="already registered"):
            reg.histogram("m", kernel="k")

    def test_gauge_and_histogram_kinds(self):
        reg = MetricsRegistry()
        reg.gauge("g")
        reg.histogram("h")
        assert reg.kind_of("g") == "gauge"
        assert reg.kind_of("h") == "histogram"
        assert reg.kind_of("missing") is None

    def test_names_sorted(self):
        reg = MetricsRegistry()
        reg.counter("zz")
        reg.counter("aa")
        assert reg.names() == ["aa", "zz"]

    def test_help_text_recorded(self):
        reg = MetricsRegistry()
        reg.counter("c", "counts things", kernel="k")
        assert reg.help_of("c") == "counts things"
        assert reg.help_of("missing") == ""

    def test_instruments_filtered_by_name(self):
        reg = MetricsRegistry()
        reg.counter("c", kernel="k1")
        reg.counter("c", kernel="k2")
        reg.gauge("g")
        assert len(list(reg.instruments("c"))) == 2
        assert len(list(reg.instruments())) == 3

    def test_instruments_deterministic_order(self):
        reg = MetricsRegistry()
        reg.counter("c", kernel="zz")
        reg.counter("c", kernel="aa")
        kernels = [dict(i.labels)["kernel"] for i in reg.instruments("c")]
        assert kernels == ["aa", "zz"]

    def test_histogram_custom_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(0.5, 1.0))
        assert h.bounds == (0.5, 1.0)

    def test_clear_empties_registry(self):
        reg = MetricsRegistry()
        reg.counter("c")
        reg.clear()
        assert len(reg) == 0
        assert reg.names() == []
        # Name can be re-bound as a different kind after clear.
        reg.gauge("c")
        assert reg.kind_of("c") == "gauge"

    def test_global_registry_is_singleton(self):
        assert registry() is registry()

    def test_reset_registry_swaps_global(self):
        old = registry()
        try:
            new = reset_registry()
            assert new is registry()
            assert new is not old
        finally:
            reset_registry()
