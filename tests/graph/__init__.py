"""Dataflow-graph unit tests."""
