"""Graph recording API: node handles, device resolution, validation."""

import numpy as np
import pytest

from repro import (
    AccCpuSerial,
    AccGpuCudaSim,
    Graph,
    WorkDivMembers,
    get_dev_by_idx,
    mem,
)
from repro.core.errors import GraphError
from repro.core.kernel import fn_acc


@fn_acc
def _noop(acc, b):
    pass


@pytest.fixture
def dev():
    return get_dev_by_idx(AccCpuSerial, 0)


WD = WorkDivMembers.make(1, 1, 1)


class TestRecording:
    def test_launch_returns_inert_node(self, dev):
        b = mem.alloc(dev, 4)
        b.as_numpy()[:] = 7.0
        g = Graph()
        n = g.launch(AccCpuSerial, WD, _noop, b, label="first")
        assert (n.index, n.kind, n.label) == (0, "kernel", "first")
        assert n.device is dev and not n.done
        assert np.all(b.as_numpy() == 7.0)  # recording ran nothing
        assert len(g) == 1 == g.node_count
        b.free()

    def test_label_defaults_to_kernel_name(self, dev):
        b = mem.alloc(dev, 4)
        g = Graph()
        assert g.launch(AccCpuSerial, WD, _noop, b).label == "_noop"
        b.free()

    def test_copy_and_memset_intent(self, dev):
        b = mem.alloc(dev, 4)
        host = np.zeros(4)
        g = Graph()
        m = g.memset(b, 1.0)
        c = g.copy(host, b)
        assert m.reads == () and len(m.writes) == 1
        assert len(c.reads) == 1 and len(c.writes) == 1
        # memset writes b, copy reads b -> RAW edge.
        assert g.dependencies() == {0: (), 1: (0,)}
        b.free()

    def test_call_requires_callable_and_endpoints(self, dev):
        g = Graph()
        with pytest.raises(GraphError, match="callable"):
            g.call(42, device=dev)
        with pytest.raises(GraphError, match="memory endpoints"):
            g.call(lambda: None, device=dev, reads=[3])

    def test_empty_graph_submit_rejected(self):
        with pytest.raises(GraphError, match="empty graph"):
            Graph().submit()


class TestDeviceResolution:
    def test_device_comes_from_buffer(self, dev):
        b = mem.alloc(dev, 4)
        assert Graph().launch(AccCpuSerial, WD, _noop, b).device is dev
        b.free()

    def test_mixed_devices_in_one_launch_rejected(self, dev):
        other = get_dev_by_idx(AccGpuCudaSim, 0)
        a, b = mem.alloc(dev, 4), mem.alloc(other, 4)

        @fn_acc
        def two(acc, x, y):
            pass

        with pytest.raises(GraphError, match="stage data"):
            Graph().launch(AccCpuSerial, WD, two, a, b)
        a.free()
        b.free()

    def test_no_device_anywhere_rejected(self):
        g = Graph()
        with pytest.raises(GraphError, match="default_device"):
            g.call(lambda: None)

    def test_default_device_seats_host_nodes(self, dev):
        g = Graph(default_device=dev)
        n = g.call(lambda: None)
        assert n.device is dev

    def test_submit_devices_pin_rejects_strays(self, dev):
        other = get_dev_by_idx(AccGpuCudaSim, 0)
        b = mem.alloc(dev, 4)
        g = Graph()
        g.launch(AccCpuSerial, WD, _noop, b)
        with pytest.raises(GraphError, match="outside submit"):
            g.submit(devices=[other])
        b.free()


class TestExplicitEdges:
    def test_after_merges_with_inferred(self, dev):
        a, b = mem.alloc(dev, 4), mem.alloc(dev, 4)
        g = Graph()
        n0 = g.launch(AccCpuSerial, WD, _noop, a)
        n1 = g.launch(AccCpuSerial, WD, _noop, b)  # independent buffer
        assert g.dependencies()[1] == ()
        n1.after(n0)
        assert g.dependencies()[1] == (0,)
        assert tuple(n1.deps) == (0,)
        a.free()
        b.free()

    def test_after_returns_self_for_chaining(self, dev):
        b = mem.alloc(dev, 4)
        g = Graph()
        n0 = g.launch(AccCpuSerial, WD, _noop, b)
        n1 = g.launch(AccCpuSerial, WD, _noop, b)
        assert n1.after(n0) is n1
        b.free()

    def test_after_rejects_non_nodes(self, dev):
        b = mem.alloc(dev, 4)
        g = Graph()
        n = g.launch(AccCpuSerial, WD, _noop, b)
        with pytest.raises(GraphError, match="Node handles"):
            n.after("n0")
        b.free()

    def test_after_rejects_cross_graph(self, dev):
        b = mem.alloc(dev, 4)
        g1, g2 = Graph(), Graph()
        n1 = g1.launch(AccCpuSerial, WD, _noop, b)
        n2 = g2.launch(AccCpuSerial, WD, _noop, b)
        with pytest.raises(GraphError, match="different graphs"):
            n2.after(n1)
        b.free()

    def test_after_rejects_forward_edges(self, dev):
        b = mem.alloc(dev, 4)
        g = Graph()
        n0 = g.launch(AccCpuSerial, WD, _noop, b)
        n1 = g.launch(AccCpuSerial, WD, _noop, b)
        with pytest.raises(GraphError, match="earlier-recorded"):
            n0.after(n1)
        with pytest.raises(GraphError, match="earlier-recorded"):
            n0.after(n0)
        b.free()


class TestNodeFutureProtocol:
    def test_wait_before_submit_raises(self, dev):
        b = mem.alloc(dev, 4)
        n = Graph().launch(AccCpuSerial, WD, _noop, b)
        with pytest.raises(GraphError, match="before the graph was submitted"):
            n.wait()
        b.free()

    def test_done_and_wait_after_submit(self, dev):
        b = mem.alloc(dev, 4)
        g = Graph()
        n = g.launch(AccCpuSerial, WD, _noop, b)
        g.submit()
        assert n.done and n.wait(timeout=1.0)
        assert n.duration is not None and n.duration >= 0.0
        b.free()

    def test_graph_wait_before_submit_raises(self):
        with pytest.raises(GraphError, match="before any submit"):
            Graph().wait()
