"""Buffer-dependency inference: accesses, classification, hazard edges."""

import numpy as np
import pytest

from repro import AccCpuSerial, get_dev_by_idx, mem
from repro.graph import Access, access_of, classify_args, infer_edges
from repro.graph.infer import accesses_overlap


@pytest.fixture
def dev():
    return get_dev_by_idx(AccCpuSerial, 0)


class TestAccessOf:
    def test_buffer_is_whole_allocation(self, dev):
        b = mem.alloc(dev, 16)
        a = access_of(b)
        assert a.key == ("buf", b.buf_id) and a.box is None
        b.free()

    def test_view_carries_region_box(self, dev):
        b = mem.alloc(dev, (8, 8))
        v = mem.sub_view(b, (2, 0), (4, 8))
        a = access_of(v)
        assert a.key == ("buf", b.buf_id)
        assert a.box == ((2, 4), (0, 8))
        b.free()

    def test_numpy_keys_on_identity(self):
        arr = np.zeros(4)
        a = access_of(arr)
        assert a.key == ("np", id(arr)) and a.box is None
        assert access_of(np.zeros(4)).key != a.key

    def test_plain_values_are_not_memory(self):
        assert access_of(3) is None
        assert access_of("x") is None


class TestClassifyArgs:
    def test_default_is_read_write(self, dev):
        b = mem.alloc(dev, 8)
        r, w = classify_args((4, 2.0, b))
        assert [a.key for a in r] == [("buf", b.buf_id)]
        assert [a.key for a in w] == [("buf", b.buf_id)]
        b.free()

    def test_narrowing_is_per_endpoint(self, dev):
        src, dst, other = (mem.alloc(dev, 8) for _ in range(3))
        r, w = classify_args(
            (src, dst, other), reads=[src], writes=[dst]
        )
        rk = {a.key for a in r}
        wk = {a.key for a in w}
        # Declared endpoints get exactly the declared intent ...
        assert ("buf", src.buf_id) in rk and ("buf", src.buf_id) not in wk
        assert ("buf", dst.buf_id) in wk and ("buf", dst.buf_id) not in rk
        # ... while the unlisted argument stays read-write.
        assert ("buf", other.buf_id) in rk and ("buf", other.buf_id) in wk
        for b in (src, dst, other):
            b.free()

    def test_non_endpoint_annotation_rejected(self):
        with pytest.raises(TypeError, match="memory endpoint"):
            classify_args((), reads=[42])


class TestOverlap:
    K = ("buf", 7)

    def test_different_allocations_never_overlap(self):
        assert not accesses_overlap(Access(("buf", 1)), Access(("buf", 2)))

    def test_whole_allocation_overlaps_any_box(self):
        assert accesses_overlap(
            Access(self.K, None), Access(self.K, ((0, 1),))
        )

    def test_disjoint_boxes_do_not_overlap(self):
        a = Access(self.K, ((0, 4), (0, 8)))
        b = Access(self.K, ((4, 4), (0, 8)))
        assert not accesses_overlap(a, b)

    def test_touching_ranges_overlap(self):
        a = Access(self.K, ((0, 5),))
        b = Access(self.K, ((4, 3),))
        assert accesses_overlap(a, b)

    def test_dim_mismatch_stays_conservative(self):
        a = Access(self.K, ((0, 2),))
        b = Access(self.K, ((10, 2), (0, 1)))
        assert accesses_overlap(a, b)


class TestInferEdges:
    A = Access(("buf", 1))
    B = Access(("buf", 2))

    def test_reader_after_writer(self):
        deps = infer_edges([((), (self.A,)), ((self.A,), ())])
        assert deps == [set(), {0}]

    def test_reader_after_reader_is_free(self):
        deps = infer_edges([((self.A,), ()), ((self.A,), ())])
        assert deps == [set(), set()]

    def test_writer_after_reader_and_writer(self):
        deps = infer_edges([
            ((), (self.A,)),       # 0 writes
            ((self.A,), ()),       # 1 reads      -> RAW on 0
            ((), (self.A,)),       # 2 writes     -> WAR on 1, WAW via 1
        ])
        assert deps[1] == {0}
        assert 1 in deps[2]

    def test_disjoint_buffers_stay_independent(self):
        deps = infer_edges([((), (self.A,)), ((), (self.B,))])
        assert deps == [set(), set()]

    def test_disjoint_regions_stay_independent(self):
        left = Access(("buf", 3), ((0, 4),))
        right = Access(("buf", 3), ((4, 4),))
        deps = infer_edges([((), (left,)), ((), (right,))])
        assert deps == [set(), set()]

    def test_whole_write_truncates_history(self):
        """A long same-buffer chain stays linear: each whole-allocation
        write prunes everything older, so node i depends on i-1 only."""
        chain = [((self.A,), (self.A,)) for _ in range(8)]
        deps = infer_edges(chain)
        assert deps[0] == set()
        for i in range(1, 8):
            assert deps[i] == {i - 1}
