"""Graph execution: modes, replay caching, errors, stats, multi-device."""

import numpy as np
import pytest

from repro import (
    AccCpuSerial,
    AccGpuCudaSim,
    Graph,
    WorkDivMembers,
    get_dev_by_idx,
    mem,
)
from repro.core.errors import GraphError, KernelError
from repro.core.kernel import fn_acc
from repro.graph import REPLAY_ENV
from repro.runtime import clear_plan_cache, graph_plan_cache_info
from repro.runtime.instrument import CountingObserver, observe

WD = WorkDivMembers.make(1, 1, 1)


@fn_acc
def _bump(acc, b):
    b[0] += 1.0


@fn_acc
def _boom(acc, b):
    raise ValueError("broken kernel")


@pytest.fixture
def dev():
    return get_dev_by_idx(AccCpuSerial, 0)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


def _chain(dev, n=3):
    buf = mem.alloc(dev, 4)
    buf.as_numpy()[:] = 0.0
    g = Graph()
    for i in range(n):
        g.launch(AccCpuSerial, WD, _bump, buf, label=f"n{i}")
    return g, buf


class TestModes:
    def test_single_device_runs_inline(self, dev, monkeypatch):
        monkeypatch.setenv(REPLAY_ENV, "1")  # ambient CI env may force queued
        g, buf = _chain(dev)
        ex = g.submit()
        assert ex.last_stats.mode == "inline"
        assert buf.as_numpy()[0] == 3.0
        buf.free()

    def test_replay_env_zero_forces_queued(self, dev, monkeypatch):
        monkeypatch.setenv(REPLAY_ENV, "0")
        g, buf = _chain(dev)
        ex = g.submit()
        assert ex.last_stats.mode == "queued"
        assert buf.as_numpy()[0] == 3.0
        buf.free()

    def test_multi_device_runs_queued(self):
        dies = [get_dev_by_idx(AccGpuCudaSim, i) for i in range(2)]
        bufs = [mem.alloc(d, 4) for d in dies]
        hosts = [np.zeros(4) for _ in dies]
        g = Graph()
        for b, h in zip(bufs, hosts):
            g.memset(b, 2.0)
            g.copy(h, b)  # sim-GPU memory is not host accessible
        ex = g.submit(devices=dies)
        stats = ex.last_stats
        assert stats.mode == "queued" and stats.device_count == 2
        for b, h in zip(bufs, hosts):
            assert np.all(h == 2.0)
            b.free()

    def test_queued_results_match_inline(self, dev, monkeypatch):
        g, buf = _chain(dev, n=5)
        monkeypatch.setenv(REPLAY_ENV, "1")
        g.submit()
        inline_result = buf.as_numpy()[0]
        buf.as_numpy()[:] = 0.0
        monkeypatch.setenv(REPLAY_ENV, "0")
        g.submit()
        assert buf.as_numpy()[0] == inline_result == 5.0
        buf.free()


class TestReplayCaching:
    def test_second_submit_replays_cached_plan(self, dev):
        g, buf = _chain(dev)
        before = graph_plan_cache_info()
        ex1 = g.submit()
        assert not ex1.last_stats.replayed
        ex2 = g.submit()
        assert ex2.last_stats.replayed
        after = graph_plan_cache_info()
        assert after["misses"] == before["misses"] + 1
        assert after["hits"] >= before["hits"] + 1
        assert buf.as_numpy()[0] == 6.0
        buf.free()

    def test_structurally_identical_graphs_share_the_plan(self, dev):
        g1, b1 = _chain(dev)
        g1.submit()
        # A *different* Graph over the same buffer and kernels: same
        # structure key, so its first submission is already a replay.
        g2, b2 = Graph(), b1
        for i in range(3):
            g2.launch(AccCpuSerial, WD, _bump, b1, label=f"n{i}")
        assert g2.submit().last_stats.replayed
        b1.free()

    def test_growing_the_graph_invalidates(self, dev):
        g, buf = _chain(dev)
        ex1 = g.submit()
        g.launch(AccCpuSerial, WD, _bump, buf, label="extra")
        ex2 = g.submit()
        assert ex2 is not ex1
        assert not ex2.last_stats.replayed  # new structure, new plan
        assert ex2.last_stats.node_count == 4
        assert buf.as_numpy()[0] == 7.0  # 3 + 4
        buf.free()

    def test_explicit_edge_after_submit_invalidates(self, dev):
        a, b = mem.alloc(dev, 4), mem.alloc(dev, 4)
        g = Graph()
        n0 = g.launch(AccCpuSerial, WD, _bump, a)
        n1 = g.launch(AccCpuSerial, WD, _bump, b)
        ex1 = g.submit()
        n1.after(n0)
        ex2 = g.submit()
        assert ex2 is not ex1 and ex2.deps[1] == (0,)
        a.free()
        b.free()


class TestErrors:
    def test_inline_error_is_raised_and_wrapped(self, dev):
        buf = mem.alloc(dev, 4)
        g = Graph()
        g.launch(AccCpuSerial, WD, _boom, buf)
        with pytest.raises(KernelError):
            g.submit()
        buf.free()

    def test_queued_error_is_raised_on_wait(self, dev, monkeypatch):
        monkeypatch.setenv(REPLAY_ENV, "0")
        buf = mem.alloc(dev, 4)
        g = Graph()
        g.launch(AccCpuSerial, WD, _bump, buf, label="ok")
        g.launch(AccCpuSerial, WD, _boom, buf, label="bad")
        g.launch(AccCpuSerial, WD, _bump, buf, label="skipped")
        with pytest.raises(KernelError):
            g.submit()
        # The failing node stopped the pipeline: the successor did not
        # execute (first bump landed, the post-failure one did not).
        assert buf.as_numpy()[0] == 1.0
        buf.free()

    def test_graph_is_reusable_after_a_failure(self, dev):
        buf = mem.alloc(dev, 4)
        g = Graph()
        g.launch(AccCpuSerial, WD, _boom, buf)
        for _ in range(2):  # error state resets between submissions
            with pytest.raises(KernelError):
                g.submit()
        buf.free()


class TestStatsAndAsync:
    def test_stats_accounting(self, dev):
        g, buf = _chain(dev, n=4)
        stats = g.submit().last_stats
        assert stats.node_count == 4 and stats.device_count == 1
        assert stats.wall_seconds > 0.0
        assert 0.0 < stats.node_seconds
        # A linear chain's critical path is the sum of all nodes.
        assert stats.critical_path_seconds == pytest.approx(
            stats.node_seconds
        )
        assert stats.overlap_ratio > 0.0
        assert 0.0 < stats.parallel_efficiency <= 1.0 + 1e-9
        buf.free()

    def test_node_info_only_built_for_observers(self, dev):
        g, buf = _chain(dev)
        assert g.submit().last_stats.node_info == ()
        assert g.submit().last_stats.nodes == ()
        with observe(CountingObserver()):
            stats = g.submit().last_stats
        assert len(stats.node_info) == 3
        rec = stats.nodes[1]
        assert rec["label"] == "n1" and rec["kind"] == "kernel"
        assert rec["duration"] >= 0.0
        buf.free()

    def test_submit_wait_false_then_wait(self, dev, monkeypatch):
        monkeypatch.setenv(REPLAY_ENV, "0")  # async needs the queued path
        g, buf = _chain(dev, n=3)
        ex = g.submit(wait=False)
        assert g.wait(timeout=30.0)
        assert ex.last_stats is not None
        assert buf.as_numpy()[0] == 3.0
        g.submit()  # the graph is reusable afterwards
        assert buf.as_numpy()[0] == 6.0
        buf.free()

    def test_copy_compute_copy_roundtrip(self, dev):
        """A mixed-kind graph: host->dev copy, kernel, memset of a
        second buffer, dev->host copy — all edges inferred."""
        host_in = np.full(4, 10.0)
        host_out = np.zeros(4)
        b = mem.alloc(dev, 4)
        other = mem.alloc(dev, 4)
        g = Graph()
        g.copy(b, host_in)
        g.launch(AccCpuSerial, WD, _bump, b)
        g.memset(other, 5.0)  # independent branch
        g.copy(host_out, b)
        deps = g.dependencies()
        assert deps[1] == (0,) and deps[2] == () and deps[3] == (1,)
        g.submit()
        assert host_out[0] == 11.0 and np.all(host_out[1:] == 10.0)
        assert np.all(other.as_numpy() == 5.0)
        b.free()
        other.free()
