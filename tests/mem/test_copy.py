"""Deep copies and memset: every direction, pitch handling, validation."""

import numpy as np
import pytest

from repro import (
    AccCpuSerial,
    AccGpuCudaSim,
    QueueBlocking,
    get_dev_by_idx,
    mem,
)
from repro.core.errors import ExtentError, MemorySpaceError
from repro.core.vec import Vec
from repro.mem.copy import PCIE_BANDWIDTH_GBS


@pytest.fixture
def cpu():
    return get_dev_by_idx(AccCpuSerial, 0)


@pytest.fixture
def gpu():
    return get_dev_by_idx(AccGpuCudaSim, 0)


@pytest.fixture
def q(cpu):
    return QueueBlocking(cpu)


@pytest.fixture
def gq(gpu):
    return QueueBlocking(gpu)


class TestDirections:
    def test_host_array_to_device_and_back(self, gpu, gq, rng):
        data = rng.random((6, 7))
        buf = mem.alloc(gpu, (6, 7))
        mem.copy(gq, buf, data)
        out = np.zeros((6, 7))
        mem.copy(gq, out, buf)
        np.testing.assert_array_equal(out, data)

    def test_buffer_to_buffer_same_device(self, cpu, q, rng):
        data = rng.random(32)
        a = mem.alloc(cpu, 32)
        b = mem.alloc(cpu, 32)
        mem.copy(q, a, data)
        mem.copy(q, b, a)
        np.testing.assert_array_equal(b.as_numpy(), data)

    def test_device_to_device_across_dies(self, gq, rng):
        d0 = get_dev_by_idx(AccGpuCudaSim, 0)
        d1 = get_dev_by_idx(AccGpuCudaSim, 1)
        data = rng.random(16)
        a = mem.alloc(d0, 16)
        b = mem.alloc(d1, 16)
        mem.copy(gq, a, data)
        mem.copy(gq, b, a)
        out = np.zeros(16)
        mem.copy(gq, out, b)
        np.testing.assert_array_equal(out, data)

    def test_host_to_host_numpy_rejected(self, q):
        with pytest.raises(MemorySpaceError):
            mem.copy(q, np.zeros(4), np.ones(4))


class TestPitchedCopies:
    def test_pitched_2d_roundtrip(self, gpu, gq, rng):
        """The pitch padding never leaks into the logical contents."""
        data = rng.random((5, 10))  # 10 doubles -> pitch 16
        buf = mem.alloc(gpu, (5, 10))
        assert buf.pitch_elems == 16
        mem.copy(gq, buf, data)
        out = np.full((5, 10), -1.0)
        mem.copy(gq, out, buf)
        np.testing.assert_array_equal(out, data)

    def test_partial_extent_copy(self, cpu, q, rng):
        data = rng.random((8, 8))
        buf = mem.alloc(cpu, (8, 8))
        mem.copy(q, buf, data, extent=(3, 5))
        got = buf.as_numpy()
        np.testing.assert_array_equal(got[:3, :5], data[:3, :5])
        assert np.all(got[3:, :] == 0) and np.all(got[:, 5:] == 0)

    def test_extent_defaults_to_overlap(self, cpu, q, rng):
        small = rng.random((3, 3))
        big = mem.alloc(cpu, (5, 5))
        mem.copy(q, big, small)
        np.testing.assert_array_equal(big.as_numpy()[:3, :3], small)


class TestValidation:
    def test_extent_too_large(self, cpu, q):
        buf = mem.alloc(cpu, (4, 4))
        with pytest.raises(ExtentError):
            mem.copy(q, buf, np.zeros((4, 4)), extent=(5, 4))

    def test_dtype_mismatch(self, cpu, q):
        buf = mem.alloc(cpu, 8, dtype=np.float64)
        with pytest.raises(ExtentError):
            mem.copy(q, buf, np.zeros(8, dtype=np.float32))

    def test_dim_mismatch(self, cpu, q):
        buf = mem.alloc(cpu, (4, 4))
        with pytest.raises(ExtentError):
            mem.copy(q, buf, np.zeros(16))


class TestMemset:
    def test_full_fill(self, gpu, gq):
        buf = mem.alloc(gpu, (4, 6))
        mem.memset(gq, buf, 3.5)
        out = np.zeros((4, 6))
        mem.copy(gq, out, buf)
        assert np.all(out == 3.5)

    def test_partial_fill(self, cpu, q):
        buf = mem.alloc(cpu, 10)
        mem.memset(q, buf, 1.0, extent=4)
        got = buf.as_numpy()
        assert np.all(got[:4] == 1.0) and np.all(got[4:] == 0.0)

    def test_extent_checked(self, cpu, q):
        buf = mem.alloc(cpu, 10)
        with pytest.raises(ExtentError):
            mem.memset(q, buf, 1.0, extent=11)


class TestTransferModeling:
    def test_cross_space_copy_advances_sim_clock(self, gpu, gq):
        gpu.reset_sim_time()
        n = 1 << 20
        buf = mem.alloc(gpu, n)
        mem.copy(gq, buf, np.zeros(n))
        expected = n * 8 / (PCIE_BANDWIDTH_GBS * 1e9)
        assert abs(gpu.sim_time_s - expected) < 1e-9

    def test_on_device_copy_costs_no_transfer_time(self, gpu, gq):
        a = mem.alloc(gpu, 1024)
        b = mem.alloc(gpu, 1024)
        gpu.reset_sim_time()
        mem.copy(gq, b, a)
        assert gpu.sim_time_s == 0.0

    def test_task_reusable(self, cpu, q, rng):
        data = rng.random(8)
        buf = mem.alloc(cpu, 8)
        task = mem.copy(q, buf, data)
        buf.as_numpy()[:] = 0
        q.enqueue(task)  # re-run the same copy task
        np.testing.assert_array_equal(buf.as_numpy(), data)
