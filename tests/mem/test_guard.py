"""Kernel-side negative-index guard (GuardedArray)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import QueueBlocking, accelerator, get_dev_by_idx, mem
from repro.core.errors import ExtentError
from repro.mem import UNGUARDED_ENV, GuardedArray, guard


@pytest.fixture
def karr():
    acc = accelerator("AccCpuSerial")
    dev = get_dev_by_idx(acc, 0)
    buf = mem.alloc(dev, 8)
    q = QueueBlocking(dev)
    mem.copy(q, buf, np.arange(8.0))
    yield buf.kernel_array(dev)
    buf.free()


class TestGuardedArray:
    def test_kernel_array_is_guarded(self, karr):
        assert isinstance(karr, GuardedArray)

    def test_negative_int_read_rejected(self, karr):
        with pytest.raises(ExtentError, match="-1"):
            _ = karr[-1]

    def test_negative_int_write_rejected(self, karr):
        with pytest.raises(ExtentError, match="-2"):
            karr[-2] = 0.0

    def test_negative_numpy_scalar_rejected(self, karr):
        with pytest.raises(ExtentError):
            _ = karr[np.int64(-1)]

    def test_negative_in_index_array_rejected(self, karr):
        with pytest.raises(ExtentError):
            _ = karr[np.array([0, -3, 1])]

    def test_negative_in_list_rejected(self, karr):
        with pytest.raises(ExtentError):
            _ = karr[[1, -1]]

    def test_negative_in_tuple_key_rejected(self):
        g = guard(np.zeros((4, 4)))
        with pytest.raises(ExtentError):
            _ = g[0, -1]

    def test_positive_access_passes(self, karr):
        assert karr[3] == 3.0
        karr[3] = 30.0
        assert karr[3] == 30.0

    def test_negative_slices_stay_legal(self, karr):
        # Slice semantics are explicit about direction; the scan kernel
        # uses chunk[:-1].
        np.testing.assert_array_equal(karr[:-1], np.arange(7.0))
        np.testing.assert_array_equal(karr[-3:], [5.0, 6.0, 7.0])

    def test_boolean_mask_passes(self, karr):
        mask = np.zeros(8, dtype=bool)
        mask[2] = True
        np.testing.assert_array_equal(karr[mask], [2.0])

    def test_views_inherit_the_guard(self, karr):
        half = karr[2:6]
        assert isinstance(half, GuardedArray)
        with pytest.raises(ExtentError):
            _ = half[-1]

    def test_oob_still_raises_index_error(self, karr):
        with pytest.raises(IndexError):
            _ = karr[99]

    def test_escape_hatch_env(self, monkeypatch):
        monkeypatch.setenv(UNGUARDED_ENV, "1")
        arr = guard(np.arange(4.0))
        assert not isinstance(arr, GuardedArray)
        assert arr[-1] == 3.0

    def test_view_subview_kernel_array_guarded(self):
        from repro.mem import ViewSubView

        acc = accelerator("AccCpuSerial")
        dev = get_dev_by_idx(acc, 0)
        buf = mem.alloc(dev, 8)
        q = QueueBlocking(dev)
        mem.copy(q, buf, np.arange(8.0))
        sub = ViewSubView(buf, extent=4, offset=2)
        ka = sub.kernel_array(dev)
        assert isinstance(ka, GuardedArray)
        with pytest.raises(ExtentError):
            _ = ka[-1]
        buf.free()
