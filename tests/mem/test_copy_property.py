"""Property-based tests of the memory subsystem (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import AccCpuSerial, AccGpuCudaSim, QueueBlocking, get_dev_by_idx, mem

shapes_1d = st.integers(1, 300)
shapes_2d = st.tuples(st.integers(1, 20), st.integers(1, 40))
dtypes = st.sampled_from([np.float64, np.float32, np.int64, np.int32])


def _roundtrip(dev, data):
    q = QueueBlocking(dev)
    buf = mem.alloc(dev, data.shape, dtype=data.dtype)
    mem.copy(q, buf, data)
    out = np.empty_like(data)
    mem.copy(q, out, buf)
    buf.free()
    return out


class TestRoundtrips:
    @given(n=shapes_1d, dtype=dtypes)
    @settings(max_examples=30, deadline=None)
    def test_1d_host_device_roundtrip(self, n, dtype):
        dev = get_dev_by_idx(AccGpuCudaSim, 0)
        data = (np.arange(n) * 7 % 13).astype(dtype)
        np.testing.assert_array_equal(_roundtrip(dev, data), data)

    @given(shape=shapes_2d, dtype=dtypes)
    @settings(max_examples=30, deadline=None)
    def test_2d_pitched_roundtrip(self, shape, dtype):
        """Pitch padding must never corrupt any shape/dtype combo."""
        dev = get_dev_by_idx(AccGpuCudaSim, 0)
        data = (np.arange(np.prod(shape)).reshape(shape) % 251).astype(dtype)
        np.testing.assert_array_equal(_roundtrip(dev, data), data)

    @given(
        shape=shapes_2d,
        off_r=st.integers(0, 5),
        off_c=st.integers(0, 5),
    )
    @settings(max_examples=30, deadline=None)
    def test_subview_roundtrip(self, shape, off_r, off_c):
        h, w = shape[0] + off_r + 1, shape[1] + off_c + 1
        dev = get_dev_by_idx(AccCpuSerial, 0)
        q = QueueBlocking(dev)
        data = np.random.default_rng(h * w).random(shape)
        buf = mem.alloc(dev, (h, w))
        view = mem.sub_view(buf, (off_r, off_c), shape)
        mem.copy(q, view, data)
        np.testing.assert_array_equal(view.as_numpy(), data)
        # Bytes outside the window stay zero.
        full = buf.as_numpy()
        assert full[:off_r, :].sum() == 0.0
        assert full[:, :off_c].sum() == 0.0
        buf.free()

    @given(n=st.integers(1, 100), k=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_partial_extent_preserves_tail(self, n, k):
        k = min(k, n)
        dev = get_dev_by_idx(AccCpuSerial, 0)
        q = QueueBlocking(dev)
        buf = mem.alloc(dev, n)
        mem.memset(q, buf, 9.0)
        if k:
            mem.copy(q, buf, np.zeros(n), extent=k)
        got = buf.as_numpy()
        assert np.all(got[:k] == 0.0)
        assert np.all(got[k:] == 9.0)
        buf.free()


class TestAccounting:
    @given(st.lists(st.integers(1, 64), min_size=1, max_size=12))
    @settings(max_examples=20, deadline=None)
    def test_alloc_free_balances(self, sizes):
        dev = get_dev_by_idx(AccCpuSerial, 0)
        before = dev.mem.allocated_bytes
        bufs = [mem.alloc(dev, (s, s)) for s in sizes]
        assert dev.mem.allocated_bytes == before + sum(b.nbytes for b in bufs)
        for b in bufs:
            b.free()
        assert dev.mem.allocated_bytes == before
