"""Buffers: allocation, pitch, residency enforcement, lifetime."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro import AccCpuSerial, AccGpuCudaSim, get_dev_by_idx, mem
from repro.core.errors import MemorySpaceError
from repro.core.vec import Vec
from repro.mem.alignment import OPTIMAL_ALIGNMENT_BYTES, pitch_bytes, pitch_elements


@pytest.fixture
def cpu():
    return get_dev_by_idx(AccCpuSerial, 0)


@pytest.fixture
def gpu():
    return get_dev_by_idx(AccGpuCudaSim, 0)


class TestAlignment:
    def test_pitch_rounds_up(self):
        # 10 doubles = 80 B -> 128 B = 16 doubles.
        assert pitch_elements(10, np.float64) == 16
        assert pitch_bytes(10, np.float64) == 128

    def test_exact_multiple_unchanged(self):
        assert pitch_elements(16, np.float64) == 16

    def test_float32(self):
        # 10 floats = 40 B -> 64 B = 16 floats.
        assert pitch_elements(10, np.float32) == 16

    def test_zero_row(self):
        assert pitch_elements(0, np.float64) == 0

    def test_odd_itemsize_falls_back(self):
        dt = np.dtype([("a", np.uint8, 3)])  # 3-byte records
        assert pitch_elements(10, dt) == 10

    @given(st.integers(1, 10_000))
    def test_pitch_invariants(self, n):
        p = pitch_elements(n, np.float64)
        assert p >= n
        assert (p * 8) % OPTIMAL_ALIGNMENT_BYTES == 0
        assert p - n < OPTIMAL_ALIGNMENT_BYTES // 8


class TestAllocation:
    def test_1d_unpitched(self, cpu):
        buf = mem.alloc(cpu, 100)
        assert buf.extent == Vec(100)
        assert buf.pitch_elems == 100
        assert buf.as_numpy().shape == (100,)

    def test_2d_pitched(self, cpu):
        buf = mem.alloc(cpu, (10, 10))
        assert buf.pitch_elems == 16
        assert buf.nbytes == 10 * 16 * 8
        assert buf.logical_nbytes == 800
        assert buf.as_numpy().shape == (10, 10)

    def test_unpitched_option(self, cpu):
        buf = mem.alloc(cpu, (10, 10), pitched=False)
        assert buf.pitch_elems == 10

    def test_dtype(self, cpu):
        buf = mem.alloc(cpu, 8, dtype=np.int32)
        assert buf.as_numpy().dtype == np.int32

    def test_zero_initialised(self, cpu):
        assert np.all(mem.alloc(cpu, (5, 5)).as_numpy() == 0)

    def test_accounting(self, cpu):
        before = cpu.mem.allocated_bytes
        buf = mem.alloc(cpu, (100, 100))
        assert cpu.mem.allocated_bytes == before + buf.nbytes
        buf.free()
        assert cpu.mem.allocated_bytes == before

    def test_alloc_like(self, cpu, gpu):
        host = mem.alloc(cpu, (7, 9), dtype=np.float32)
        dev = mem.alloc_like(gpu, host)
        assert dev.extent == host.extent
        assert dev.dtype == host.dtype
        assert dev.dev is gpu


class TestResidency:
    def test_host_access_to_device_memory_raises(self, gpu):
        buf = mem.alloc(gpu, 16)
        with pytest.raises(MemorySpaceError):
            buf.as_numpy()

    def test_host_access_to_host_memory_ok(self, cpu):
        mem.alloc(cpu, 16).as_numpy()

    def test_kernel_array_checks_device(self, cpu, gpu):
        buf = mem.alloc(cpu, 16)
        with pytest.raises(MemorySpaceError):
            buf.kernel_array(gpu)
        assert buf.kernel_array(cpu).shape == (16,)


class TestLifetime:
    def test_use_after_free(self, cpu):
        buf = mem.alloc(cpu, 8)
        buf.free()
        with pytest.raises(MemorySpaceError):
            buf.as_numpy()

    def test_double_free_idempotent(self, cpu):
        buf = mem.alloc(cpu, 8)
        buf.free()
        buf.free()
        assert buf.freed

    def test_context_manager(self, cpu):
        with mem.alloc(cpu, 8) as buf:
            assert not buf.freed
        assert buf.freed

    def test_logical_view_is_view(self, cpu):
        """as_numpy returns a live view, not a copy."""
        buf = mem.alloc(cpu, (4, 4))
        buf.as_numpy()[2, 3] = 7.0
        assert buf.as_numpy()[2, 3] == 7.0
