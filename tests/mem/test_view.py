"""Sub-views: geometry, copies between windows, kernel arguments."""

import numpy as np
import pytest

from repro import (
    AccCpuOmp2Blocks,
    AccCpuSerial,
    AccGpuCudaSim,
    QueueBlocking,
    WorkDivMembers,
    create_task_kernel,
    fn_acc,
    get_dev_by_idx,
    mem,
)
from repro.core.element import grid_strided_spans
from repro.core.errors import ExtentError, MemorySpaceError


@pytest.fixture
def cpu():
    return get_dev_by_idx(AccCpuSerial, 0)


@pytest.fixture
def q(cpu):
    return QueueBlocking(cpu)


class TestGeometry:
    def test_window_contents(self, cpu, q, rng):
        data = rng.random((6, 8))
        buf = mem.alloc(cpu, (6, 8))
        mem.copy(q, buf, data)
        v = mem.sub_view(buf, (1, 2), (3, 4))
        np.testing.assert_array_equal(v.as_numpy(), data[1:4, 2:6])

    def test_view_is_live(self, cpu, q, rng):
        buf = mem.alloc(cpu, (4, 4))
        v = mem.sub_view(buf, (0, 0), (2, 2))
        buf.as_numpy()[1, 1] = 9.0
        assert v.as_numpy()[1, 1] == 9.0

    def test_out_of_bounds_rejected(self, cpu):
        buf = mem.alloc(cpu, (4, 4))
        with pytest.raises(ExtentError):
            mem.sub_view(buf, (2, 2), (3, 3))

    def test_nested_views_compose(self, cpu, q, rng):
        data = rng.random((8, 8))
        buf = mem.alloc(cpu, (8, 8))
        mem.copy(q, buf, data)
        outer = mem.sub_view(buf, (2, 2), (5, 5))
        inner = outer.sub_view((1, 1), (2, 2))
        np.testing.assert_array_equal(inner.as_numpy(), data[3:5, 3:5])

    def test_residency_enforced(self):
        gpu = get_dev_by_idx(AccGpuCudaSim, 0)
        buf = mem.alloc(gpu, (4, 4))
        v = mem.sub_view(buf, (0, 0), (2, 2))
        with pytest.raises(MemorySpaceError):
            v.as_numpy()


class TestViewCopies:
    def test_window_to_window(self, cpu, q, rng):
        """Tile scatter: copy a window of A into a window of B."""
        a_h = rng.random((8, 8))
        a = mem.alloc(cpu, (8, 8))
        b = mem.alloc(cpu, (8, 8))
        mem.copy(q, a, a_h)
        mem.copy(q, mem.sub_view(b, (4, 4), (3, 3)), mem.sub_view(a, (1, 1), (3, 3)))
        got = b.as_numpy()
        np.testing.assert_array_equal(got[4:7, 4:7], a_h[1:4, 1:4])
        assert got[0, 0] == 0.0

    def test_halo_exchange_pattern(self, q, rng):
        """The multi-device idiom: copy an edge strip between the
        isolated memories of the two simulated K80 dies."""
        d0 = get_dev_by_idx(AccGpuCudaSim, 0)
        d1 = get_dev_by_idx(AccGpuCudaSim, 1)
        left = mem.alloc(d0, (4, 6))
        right = mem.alloc(d1, (4, 6))
        src = rng.random((4, 6))
        mem.copy(q, left, src)
        # Right domain's left halo column <- left domain's right edge.
        mem.copy(
            q,
            mem.sub_view(right, (0, 0), (4, 1)),
            mem.sub_view(left, (0, 5), (4, 1)),
        )
        out = np.zeros((4, 6))
        mem.copy(q, out, right)
        np.testing.assert_array_equal(out[:, 0], src[:, 5])

    def test_view_to_host_array(self, cpu, q, rng):
        data = rng.random((5, 5))
        buf = mem.alloc(cpu, (5, 5))
        mem.copy(q, buf, data)
        out = np.zeros((2, 2))
        mem.copy(q, out, mem.sub_view(buf, (3, 3), (2, 2)))
        np.testing.assert_array_equal(out, data[3:5, 3:5])

    def test_pitched_buffer_views(self, cpu, q, rng):
        """Views respect the pitch: a 10-wide row is padded to 16."""
        data = rng.random((6, 10))
        buf = mem.alloc(cpu, (6, 10))
        assert buf.pitch_elems == 16
        mem.copy(q, buf, data)
        v = mem.sub_view(buf, (2, 7), (3, 3))
        np.testing.assert_array_equal(v.as_numpy(), data[2:5, 7:10])


class TestViewsAsKernelArgs:
    def test_kernel_sees_window_only(self, rng):
        @fn_acc
        def double(acc, n, data):
            for span in grid_strided_spans(acc, n):
                data[span] *= 2.0

        dev = get_dev_by_idx(AccCpuOmp2Blocks, 0)
        q = QueueBlocking(dev)
        host = rng.random((4, 10))
        buf = mem.alloc(dev, (4, 10))
        mem.copy(q, buf, host)
        # Double only row 2, columns 3..8 (flattened as a 1-d window).
        view = mem.sub_view(buf, (2, 3), (1, 5))
        wd = WorkDivMembers.make(1, 1, 8)

        @fn_acc
        def double2d(acc, rows, view_arr):
            view_arr[:, :] *= 2.0

        q.enqueue(create_task_kernel(AccCpuOmp2Blocks, wd, double2d, 1, view))
        got = buf.as_numpy()
        expected = host.copy()
        expected[2, 3:8] *= 2.0
        np.testing.assert_array_equal(got, expected)
