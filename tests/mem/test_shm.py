"""Shared-memory buffer backing (repro.mem.shm)."""

import os

import numpy as np
import pytest

from repro import mem
from repro.acc.cpu import AccCpuSerial
from repro.dev.manager import get_dev_by_idx
from repro.mem.shm import (
    SHM_BUFFERS_ENV,
    SHM_NAME_PREFIX,
    ShmArraySpec,
    ShmBacking,
    active_segment_names,
    attach_array,
    cleanup_all_segments,
    release_worker_attachments,
    shm_buffers_default,
)


@pytest.fixture
def dev():
    return get_dev_by_idx(AccCpuSerial)


class TestShmBacking:
    def test_create_zero_filled_and_registered(self):
        b = ShmBacking((4, 8), np.float64)
        try:
            assert b.array.shape == (4, 8)
            assert b.array.dtype == np.float64
            assert np.all(b.array == 0.0)
            assert b.name in active_segment_names()
            assert b.name.startswith(f"{SHM_NAME_PREFIX}_{os.getpid()}_")
        finally:
            b.release()

    def test_release_unlinks_and_deregisters(self):
        b = ShmBacking((16,), np.int32)
        name = b.name
        b.release()
        assert b.released
        assert name not in active_segment_names()
        if os.path.isdir("/dev/shm"):
            assert name not in os.listdir("/dev/shm")

    def test_release_idempotent(self):
        b = ShmBacking((3,), np.float32)
        b.release()
        b.release()  # second call is a no-op, not an error

    def test_degenerate_empty_extent(self):
        b = ShmBacking((0,), np.float64)
        try:
            assert b.array.size == 0
        finally:
            b.release()

    def test_spec_roundtrip(self):
        b = ShmBacking((2, 10), np.float64)
        try:
            b.array[:] = np.arange(20.0).reshape(2, 10)
            spec = b.spec(logical_last=7)
            assert isinstance(spec, ShmArraySpec)
            view = attach_array(spec)
            assert view.shape == (2, 7)
            assert np.array_equal(view, b.array[:, :7])
            # Writes through the attachment alias the original pages.
            view[1, 3] = -99.0
            assert b.array[1, 3] == -99.0
        finally:
            release_worker_attachments()
            b.release()

    def test_attach_box_subview(self):
        b = ShmBacking((6, 6), np.float64)
        try:
            b.array[:] = np.arange(36.0).reshape(6, 6)
            spec = b.spec(logical_last=6)
            boxed = ShmArraySpec(
                name=spec.name,
                shape=spec.shape,
                dtype=spec.dtype,
                logical_last=spec.logical_last,
                box=((1, 3), (2, 4)),
            )
            view = attach_array(boxed)
            assert view.shape == (3, 4)
            assert np.array_equal(view, b.array[1:4, 2:6])
        finally:
            release_worker_attachments()
            b.release()

    def test_attachments_cached_per_segment(self):
        b = ShmBacking((5,), np.float64)
        try:
            spec = b.spec(5)
            v1 = attach_array(spec)
            v2 = attach_array(spec)
            assert v1.base is v2.base or v1 is v2
            assert release_worker_attachments() == 1
        finally:
            b.release()

    def test_cleanup_all_segments_sweeps(self):
        before = len(active_segment_names())
        backings = [ShmBacking((4,), np.float64) for _ in range(3)]
        assert len(active_segment_names()) == before + 3
        swept = cleanup_all_segments()
        assert swept >= 3
        assert active_segment_names() == []
        assert all(b.released for b in backings)


class TestBufferShm:
    def test_default_is_private(self, dev):
        buf = mem.alloc(dev, 16)
        try:
            assert not buf.is_shared
            assert buf.shm_spec() is None
        finally:
            buf.free()

    def test_opt_in_shared(self, dev):
        buf = mem.alloc(dev, 16, shm=True)
        try:
            assert buf.is_shared
            assert "shm" in repr(buf)
            spec = buf.shm_spec()
            assert spec is not None and spec.logical_last == 16
        finally:
            buf.free()
        assert buf.shm_spec() is None

    def test_env_flips_default(self, dev, monkeypatch):
        monkeypatch.setenv(SHM_BUFFERS_ENV, "1")
        assert shm_buffers_default()
        buf = mem.alloc(dev, 8)
        try:
            assert buf.is_shared
        finally:
            buf.free()
        # Per-call shm=False still wins over the env default.
        buf = mem.alloc(dev, 8, shm=False)
        try:
            assert not buf.is_shared
        finally:
            buf.free()

    def test_alloc_like_inherits_backing(self, dev):
        shared = mem.alloc(dev, 8, shm=True)
        private = mem.alloc(dev, 8)
        try:
            assert mem.alloc_like(dev, shared).is_shared
            assert not mem.alloc_like(dev, private).is_shared
        finally:
            shared.free()
            private.free()

    def test_semantics_identical_to_private(self, dev):
        """Pitch, logical slicing and kernel_array behave the same."""
        a = mem.alloc(dev, (3, 5), shm=True)
        b = mem.alloc(dev, (3, 5), shm=False)
        try:
            assert a.pitch_elems == b.pitch_elems
            assert a.as_numpy().shape == b.as_numpy().shape
            a.as_numpy()[:] = 7.0
            assert np.all(a.as_numpy() == 7.0)
        finally:
            a.free()
            b.free()

    def test_free_unlinks_segment(self, dev):
        buf = mem.alloc(dev, 32, shm=True)
        name = buf.shm_spec().name
        assert name in active_segment_names()
        buf.free()
        assert name not in active_segment_names()
        if os.path.isdir("/dev/shm"):
            assert name not in os.listdir("/dev/shm")

    def test_pitched_2d_spec_carries_padding(self, dev):
        buf = mem.alloc(dev, (4, 5), shm=True, pitched=True)
        try:
            spec = buf.shm_spec()
            assert spec.shape == (4, buf.pitch_elems)
            assert spec.logical_last == 5
            view = attach_array(spec)
            assert view.shape == (4, 5)
        finally:
            release_worker_attachments()
            buf.free()
