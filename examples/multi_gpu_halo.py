"""Domain decomposition with halo exchange across two simulated GPU dies.

The multi-device pattern real alpaka applications (PIConGPU,
HASEonGPU) are built on: the 2-d heat equation is split into two
half-domains, one per K80 die, each with a one-column halo.  The whole
time loop is recorded into one :class:`repro.graph.Graph`:

1. both dies' Jacobi sweeps are independent nodes — the scheduler puts
   them on separate per-die queues, so they run concurrently;
2. edge columns are exchanged through sub-view copies whose
   dependencies on the sweeps (and the next step's dependency on the
   arriving halo) are *inferred* from the buffers they touch — the
   hand-written ``Event``/``wait_queue_for`` choreography of the
   pre-graph version of this example is gone;
3. the two halo copies touch disjoint columns, so region-precise
   inference lets them fly concurrently too.

Verified bit-identically against a single-domain reference at the end.

Run:  python examples/multi_gpu_halo.py [steps]
"""

import sys

import numpy as np

from repro import (
    AccGpuCudaSim,
    Graph,
    Vec,
    WorkDivMembers,
    get_dev_by_idx,
    mem,
)
from repro.kernels import Jacobi2DKernel, jacobi_reference_step


def main(h=32, w=64, steps=20, c=0.2):
    # Global problem and reference solution.
    plate = np.zeros((h, w))
    plate[h // 4 : 3 * h // 4, w // 4 : 3 * w // 4] = 100.0
    reference = plate
    for _ in range(steps):
        reference = jacobi_reference_step(reference, c)

    half = w // 2
    dies = [get_dev_by_idx(AccGpuCudaSim, i) for i in range(2)]

    # Each die holds its half plus one halo column on the shared edge.
    local_w = half + 1
    bufs = []
    for i, die in enumerate(dies):
        src = mem.alloc(die, (h, local_w))
        dst = mem.alloc(die, (h, local_w))
        bufs.append([src, dst])

    kernel = Jacobi2DKernel()
    elems = Vec(8, 8)
    blocks = Vec(h, local_w).ceil_div(elems)
    wd = WorkDivMembers.make(blocks, Vec(1, 1), elems)

    g = Graph()
    # Staging: each die's half (plus halo column) from the host plate.
    stage = [plate[:, 0:local_w].copy(), plate[:, half - 1 : w].copy()]
    for (src, _dst), die, host in zip(bufs, dies, stage):
        g.copy(src, host, label=f"stage{die.idx}")

    for step in range(steps):
        # 1. sweeps on both dies: no shared buffers, so no edge between
        #    them — the per-die queues run them concurrently.
        for (src, dst), die in zip(bufs, dies):
            g.launch(
                AccGpuCudaSim, wd, kernel, h, local_w, c, src, dst,
                reads=[src], writes=[dst],
                label=f"sweep{step}.die{die.idx}",
            )
        # 2. halo exchange through sub-views.  Each copy reads one die's
        #    new edge column and writes the neighbour's halo column;
        #    the sweep->copy and copy->next-sweep edges are inferred,
        #    and the two copies touch disjoint columns so they overlap.
        left_dst, right_dst = bufs[0][1], bufs[1][1]
        g.copy(
            mem.sub_view(right_dst, (0, 0), (h, 1)),
            mem.sub_view(left_dst, (0, half - 1), (h, 1)),
            label=f"halo{step}.l2r",
        )
        g.copy(
            mem.sub_view(left_dst, (0, local_w - 1), (h, 1)),
            mem.sub_view(right_dst, (0, 1), (h, 1)),
            label=f"halo{step}.r2l",
        )
        # 3. double-buffer swap (record-time: affects later nodes only).
        for pair in bufs:
            pair[0], pair[1] = pair[1], pair[0]

    # Gather the two halves (dropping halo columns).
    left = np.empty((h, local_w))
    right = np.empty((h, local_w))
    g.copy(left, bufs[0][0], label="gather0")
    g.copy(right, bufs[1][0], label="gather1")

    ex = g.submit(devices=dies)

    result = np.empty((h, w))
    result[:, :half] = left[:, :half]
    result[:, half:] = right[:, 1:]

    # Bit-identical to the sequential single-domain reference: same
    # float ops in the same per-cell order, only scheduled differently.
    assert np.array_equal(result, reference), (
        np.abs(result - reference).max()
    )
    stats = ex.last_stats
    print(
        f"halo-exchange heat equation: {steps} steps on {h}x{w}, "
        f"2 dies x {half}+1 columns, bit-identical to single-domain"
    )
    print(
        f"graph: {stats.node_count} nodes on {stats.device_count} dies, "
        f"mode={stats.mode}, overlap={stats.overlap_ratio:.2f}x, "
        f"critical path {stats.critical_path_seconds * 1e3:.1f} ms of "
        f"{stats.wall_seconds * 1e3:.1f} ms wall"
    )


if __name__ == "__main__":
    main(steps=int(sys.argv[1]) if len(sys.argv) > 1 else 20)
