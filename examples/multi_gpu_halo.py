"""Domain decomposition with halo exchange across two simulated GPU dies.

The multi-device pattern real alpaka applications (PIConGPU,
HASEonGPU) are built on: the 2-d heat equation is split into two
half-domains, one per K80 die, each with a one-column halo.  Every time
step:

1. both dies run a Jacobi sweep on their half (concurrent non-blocking
   queues),
2. edge columns are exchanged through sub-view copies between the two
   isolated device memories,
3. events order the next sweep after the neighbour's halo arrived.

Verified against a single-domain reference at the end.

Run:  python examples/multi_gpu_halo.py [steps]
"""

import sys

import numpy as np

from repro import (
    AccGpuCudaSim,
    Vec,
    WorkDivMembers,
    create_task_kernel,
    get_dev_by_idx,
    mem,
)
from repro.kernels import Jacobi2DKernel, jacobi_reference_step
from repro.queue import Event, QueueNonBlocking, wait_queue_for


def main(h=32, w=64, steps=20, c=0.2):
    # Global problem and reference solution.
    plate = np.zeros((h, w))
    plate[h // 4 : 3 * h // 4, w // 4 : 3 * w // 4] = 100.0
    reference = plate
    for _ in range(steps):
        reference = jacobi_reference_step(reference, c)

    half = w // 2
    dies = [get_dev_by_idx(AccGpuCudaSim, i) for i in range(2)]
    queues = [QueueNonBlocking(d) for d in dies]

    # Each die holds its half plus one halo column on the shared edge.
    local_w = half + 1
    bufs = []
    for i, (die, q) in enumerate(zip(dies, queues)):
        src = mem.alloc(die, (h, local_w))
        dst = mem.alloc(die, (h, local_w))
        lo = 0 if i == 0 else half - 1  # include halo column
        mem.copy(q, src, plate[:, lo : lo + local_w])
        bufs.append([src, dst])

    kernel = Jacobi2DKernel()
    elems = Vec(8, 8)
    blocks = Vec(h, local_w).ceil_div(elems)
    wd = WorkDivMembers.make(blocks, Vec(1, 1), elems)

    for _ in range(steps):
        # 1. concurrent sweeps on both dies.
        done = []
        for (src, dst), die, q in zip(bufs, dies, queues):
            q.enqueue(
                create_task_kernel(AccGpuCudaSim, wd, kernel, h, local_w, c, src, dst)
            )
            ev = Event(die)
            ev.record(q)
            done.append(ev)
        # 2. halo exchange: each die's new edge column -> neighbour's
        #    halo column; ordering via events (copy after both sweeps).
        for q in queues:
            for ev in done:
                wait_queue_for(q, ev)
        left_dst, right_dst = bufs[0][1], bufs[1][1]
        # Left die's column half-1 (its last interior) -> right halo 0.
        mem.copy(
            queues[1],
            mem.sub_view(right_dst, (0, 0), (h, 1)),
            mem.sub_view(left_dst, (0, half - 1), (h, 1)),
        )
        # Right die's column 1 (its first interior) -> left halo end.
        mem.copy(
            queues[0],
            mem.sub_view(left_dst, (0, local_w - 1), (h, 1)),
            mem.sub_view(right_dst, (0, 1), (h, 1)),
        )
        for q in queues:
            q.wait()
        # 3. double-buffer swap.
        for pair in bufs:
            pair[0], pair[1] = pair[1], pair[0]

    # Gather the two halves (dropping halo columns).
    result = np.empty((h, w))
    left = np.empty((h, local_w))
    right = np.empty((h, local_w))
    mem.copy(queues[0], left, bufs[0][0])
    mem.copy(queues[1], right, bufs[1][0])
    for q in queues:
        q.wait()
        q.destroy()
    result[:, :half] = left[:, :half]
    result[:, half:] = right[:, 1:]

    err = np.abs(result - reference).max()
    assert err < 1e-9, err
    print(
        f"halo-exchange heat equation: {steps} steps on {h}x{w}, "
        f"2 dies x {half}+1 columns, max|err| vs single-domain = {err:.2e}"
    )


if __name__ == "__main__":
    main(steps=int(sys.argv[1]) if len(sys.argv) > 1 else 20)
