"""Serving demo: two tenants share one gateway over TCP.

Starts an in-process ``repro.serve`` server (unless pointed at a
running one), then drives it the way two tenants would: ``gold``
(weight 4) and ``free`` (weight 1) each submit a spread of small GEMM
launches concurrently, and ``gold`` additionally submits a
heat-equation dataflow graph — a whole graph as one unit of admission.
Compatible GEMMs coalesce into batched grids on the server; every
result is verified against numpy here on the client side, batched or
not (the bit-identity contract).

Run:  python examples/serving_client.py             # self-hosted
      python examples/serving_client.py 7411        # against a server
started elsewhere with e.g.::

    REPRO_SERVE_TENANT_WEIGHTS=gold:4,free:1 python -m repro.serve
"""

import asyncio
import sys

import numpy as np

from repro.serve import ServeConfig
from repro.serve.client import ServeClient
from repro.serve.server import ServeServer

GEMMS_PER_TENANT = 8
N = 64


async def tenant_traffic(port: int, tenant: str, seed: int) -> dict:
    """One tenant's session: concurrent GEMM launches, each verified."""
    rng = np.random.default_rng(seed)
    payloads = [
        (
            rng.standard_normal((N, N)),
            rng.standard_normal((N, N)),
        )
        for _ in range(GEMMS_PER_TENANT)
    ]
    async with ServeClient(port=port) as client:
        results = await asyncio.gather(
            *(
                client.launch(
                    "gemm",
                    tenant=tenant,
                    params={"alpha": 1.0, "beta": 0.0},
                    arrays={"A": A, "B": B},
                )
                for A, B in payloads
            )
        )
    batched = sum(1 for r in results if r.batch_size > 1)
    for (A, B), res in zip(payloads, results):
        # The server may have merged this launch with a stranger's —
        # the result must still be exactly the solo arithmetic.
        if not np.allclose(res.arrays["C"], A @ B):
            raise AssertionError(f"{tenant}: GEMM result mismatch")
    return {
        "tenant": tenant,
        "requests": len(results),
        "batched": batched,
        "max_batch": max(r.batch_size for r in results),
        "p_lat_ms": 1e3 * float(np.median([r.latency for r in results])),
    }


async def gold_graph(port: int) -> dict:
    """The gold tenant's heat-equation graph, admitted as one unit."""
    plate = np.zeros((32, 32))
    plate[12:20, 12:20] = 100.0
    async with ServeClient(port=port) as client:
        res = await client.submit_graph(
            "heat_equation",
            tenant="gold",
            params={"steps": 8, "c": 0.2},
            arrays={"plate": plate},
        )
    cooled = res.arrays["plate"]
    assert cooled.shape == plate.shape
    assert cooled.max() < plate.max()  # heat spread out
    return {
        "tenant": "gold (graph)",
        "requests": 1,
        "batched": 0,
        "max_batch": res.batch_size,
        "p_lat_ms": 1e3 * res.latency,
    }


async def main(existing_port: int | None) -> None:
    server = None
    if existing_port is None:
        config = ServeConfig(
            port=0,  # ephemeral: the demo is self-contained
            tenant_weights={"gold": 4.0, "free": 1.0},
        )
        server = ServeServer(config=config)
        await server.start()
        port = server.port
        print(f"self-hosted gateway on port {port}")
    else:
        port = existing_port

    try:
        rows = await asyncio.gather(
            tenant_traffic(port, "gold", seed=1),
            tenant_traffic(port, "free", seed=2),
            gold_graph(port),
        )
        print(f"{'tenant':<14} {'requests':>8} {'batched':>8} "
              f"{'max batch':>10} {'median lat [ms]':>16}")
        for row in rows:
            print(
                f"{row['tenant']:<14} {row['requests']:>8} "
                f"{row['batched']:>8} {row['max_batch']:>10} "
                f"{row['p_lat_ms']:>16.2f}"
            )
        print("all results verified against numpy (bit-identity holds)")
    finally:
        if server is not None:
            await server.stop()


if __name__ == "__main__":
    port = int(sys.argv[1]) if len(sys.argv) > 1 else None
    asyncio.run(main(port))
