"""The paper's single-source hierarchically tiled DGEMM (Sec. 4.2.2).

One kernel source; the *work division* is the only tuning knob, chosen
per back-end exactly as paper Table 2 prescribes: small thread blocks
with few elements on the (simulated) GPU, one-thread blocks with many
elements on the CPU back-ends.  The script verifies each run against
numpy and prints the modeled execution time on the corresponding
Table 3 machine, showing the Fig. 8/9 effect of the element level.

Run:  python examples/matmul_tiling.py [n]
"""

import sys

import numpy as np

from repro import QueueBlocking, create_task_kernel, enqueue, get_dev_by_idx, mem
from repro.acc import AccCpuOmp2Blocks, AccGpuCudaSim
from repro.kernels import GemmTilingKernel, dgemm_reference, gemm_workdiv_tiling


def run(acc_type, machine_key, n, block_threads, elems_per_thread):
    Acc = acc_type.for_machine(machine_key)
    dev = get_dev_by_idx(Acc, 0)
    queue = QueueBlocking(dev)

    rng = np.random.default_rng(3)
    a_host = rng.uniform(0.0, 10.0, (n, n))  # paper: values in [0, 10]
    b_host = rng.uniform(0.0, 10.0, (n, n))
    c_host = rng.uniform(0.0, 10.0, (n, n))

    a = mem.alloc(dev, (n, n))
    b = mem.alloc(dev, (n, n))
    c = mem.alloc(dev, (n, n))
    mem.copy(queue, a, a_host)
    mem.copy(queue, b, b_host)
    mem.copy(queue, c, c_host)
    dev.reset_sim_time()  # paper: transfers excluded from timings

    work_div = gemm_workdiv_tiling(n, block_threads, elems_per_thread)
    kernel = GemmTilingKernel()
    enqueue(queue, create_task_kernel(Acc, work_div, kernel, n, 1.0, a, b, 0.0, c))

    out = np.empty((n, n))
    mem.copy(queue, out, c)
    expected = dgemm_reference(1.0, a_host, b_host, 0.0, c_host)
    assert np.allclose(out, expected), np.abs(out - expected).max()

    flops = 2.0 * n**3
    modeled = dev.sim_time_s
    gflops = flops / modeled / 1e9 if modeled else float("nan")
    print(
        f"{Acc.name:45s} tile={block_threads}x{elems_per_thread} "
        f"-> modeled {modeled * 1e3:8.3f} ms  ({gflops:7.1f} GFLOPS on "
        f"{dev.spec.architecture})"
    )
    for buf in (a, b, c):
        buf.free()


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    print(f"single-source tiled DGEMM, n={n} (functional) — modeled times "
          "are for the full Table 3 machines at this n")
    # GPU mapping: 8x8 threads, 1 vs 2 elements per thread per axis.
    run(AccGpuCudaSim, "nvidia-k80", n, 8, 1)
    run(AccGpuCudaSim, "nvidia-k80", n, 8, 2)
    # CPU mapping: 1 thread per block, large element tiles.
    run(AccCpuOmp2Blocks, "intel-xeon-e5-2630v3", n, 1, 16)
    run(AccCpuOmp2Blocks, "intel-xeon-e5-2630v3", n, 1, 32)
