"""Heat diffusion on a 2-d plate — the n-dimensional side of the model.

Demonstrates 2-d work divisions and element boxes, double buffering
through two device buffers, and the dataflow-graph API: the whole
``steps``-deep time loop (staging copy, Jacobi sweeps, gather copy) is
*recorded* once into a :class:`repro.graph.Graph` and submitted as a
unit.  Dependencies between the sweeps come from buffer-argument
inference — no queue or event plumbing — and a second submission
replays the cached whole-graph plan (one plan-cache hit for the entire
pipeline).  A hot spot diffuses across a cold plate; the script reports
the temperature profile and verifies against a pure-numpy reference.

Run:  python examples/heat_equation.py [backend-name] [steps]
"""

import sys

import numpy as np

from repro import (
    Graph,
    Vec,
    WorkDivMembers,
    accelerator,
    get_dev_by_idx,
    mem,
)
from repro.kernels import Jacobi2DKernel, jacobi_reference_step


def simulate(acc_name: str, h: int = 96, w: int = 128, steps: int = 50) -> None:
    Acc = accelerator(acc_name)
    dev = get_dev_by_idx(Acc, 0)

    # Initial condition: cold plate, hot square in the middle.
    plate = np.zeros((h, w))
    plate[h // 3 : 2 * h // 3, w // 3 : 2 * w // 3] = 100.0

    src = mem.alloc(dev, (h, w))
    dst = mem.alloc(dev, (h, w))

    # 2-d division: blocks of one thread owning 8x16 element boxes
    # (block-level mapping works on every back-end).
    elems = Vec(8, 16)
    blocks = Vec(h, w).ceil_div(elems)
    work_div = WorkDivMembers.make(blocks, Vec(1, 1), elems)

    kernel = Jacobi2DKernel()
    c = 0.2
    result = np.empty((h, w))

    # Record the whole time loop: the staging copy, one sweep per step
    # (reads=/writes= narrow the default read-write classification so
    # the inferred chain is exactly src->dst->src->...), and the final
    # gather.  Including the staging copy makes resubmission idempotent.
    g = Graph()
    g.copy(src, plate, label="stage")
    for step in range(steps):
        g.launch(
            Acc, work_div, kernel, h, w, c, src, dst,
            reads=[src], writes=[dst], label=f"sweep{step}",
        )
        src, dst = dst, src  # double buffering: swap the roles
    g.copy(result, src, label="gather")
    g.submit()

    reference = plate
    for _ in range(steps):
        reference = jacobi_reference_step(reference, c)

    err = np.abs(result - reference).max()
    assert err < 1e-9, err

    # Submit again: same structure, so the executor replays the cached
    # GraphPlan — and the result is bit-identical.
    again = g.submit()
    err2 = np.abs(result - reference).max()
    assert err2 <= err and again.last_stats.replayed

    print(
        f"{acc_name}: {steps} steps on {h}x{w} plate  "
        f"T(center)={result[h // 2, w // 2]:7.3f}  "
        f"T(max)={result.max():7.3f}  max|err|={err:.2e}  "
        f"[graph: {len(g)} nodes, {again.last_stats.mode} replay "
        f"{again.last_stats.wall_seconds * 1e3:.1f} ms]"
    )


if __name__ == "__main__":
    name = sys.argv[1] if len(sys.argv) > 1 else "AccCpuOmp2Blocks"
    steps = int(sys.argv[2]) if len(sys.argv) > 2 else 50
    simulate(name, steps=steps)
