"""Heat diffusion on a 2-d plate — the n-dimensional side of the model.

Demonstrates 2-d work divisions and element boxes, double buffering
through two device buffers, and queue-ordered time stepping.  A hot
spot diffuses across a cold plate; the script reports the temperature
profile and verifies against a pure-numpy reference.

Run:  python examples/heat_equation.py [backend-name] [steps]
"""

import sys

import numpy as np

from repro import (
    QueueBlocking,
    Vec,
    WorkDivMembers,
    accelerator,
    create_task_kernel,
    enqueue,
    get_dev_by_idx,
    mem,
)
from repro.kernels import Jacobi2DKernel, jacobi_reference_step


def simulate(acc_name: str, h: int = 96, w: int = 128, steps: int = 50) -> None:
    Acc = accelerator(acc_name)
    dev = get_dev_by_idx(Acc, 0)
    queue = QueueBlocking(dev)

    # Initial condition: cold plate, hot square in the middle.
    plate = np.zeros((h, w))
    plate[h // 3 : 2 * h // 3, w // 3 : 2 * w // 3] = 100.0

    src = mem.alloc(dev, (h, w))
    dst = mem.alloc(dev, (h, w))
    mem.copy(queue, src, plate)

    # 2-d division: blocks of one thread owning 8x16 element boxes
    # (block-level mapping works on every back-end).
    elems = Vec(8, 16)
    blocks = Vec(h, w).ceil_div(elems)
    work_div = WorkDivMembers.make(blocks, Vec(1, 1), elems)

    kernel = Jacobi2DKernel()
    c = 0.2
    for _ in range(steps):
        enqueue(queue, create_task_kernel(Acc, work_div, kernel, h, w, c, src, dst))
        src, dst = dst, src  # double buffering: swap the roles

    result = np.empty((h, w))
    mem.copy(queue, result, src)

    reference = plate
    for _ in range(steps):
        reference = jacobi_reference_step(reference, c)

    err = np.abs(result - reference).max()
    assert err < 1e-9, err
    print(
        f"{acc_name}: {steps} steps on {h}x{w} plate  "
        f"T(center)={result[h // 2, w // 2]:7.3f}  "
        f"T(max)={result.max():7.3f}  max|err|={err:.2e}"
    )


if __name__ == "__main__":
    name = sys.argv[1] if len(sys.argv) > 1 else "AccCpuOmp2Blocks"
    steps = int(sys.argv[2]) if len(sys.argv) > 2 else 50
    simulate(name, steps=steps)
