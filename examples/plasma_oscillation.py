"""Langmuir (plasma) oscillation with the mini particle-in-cell app.

A cold electron plasma displaced by a small sinusoidal perturbation
oscillates at the plasma frequency omega_p (= 1 in normalised units) —
the canonical PIC validation problem, and a miniature of PIConGPU, the
application family the paper's authors build on alpaka.

Each time step runs three queue-ordered kernels (charge deposit with
privatised atomics, field integration, leapfrog push) on the chosen
back-end; the script measures the oscillation frequency from the field
energy history and compares with theory.

Run:  python examples/plasma_oscillation.py [backend-name]
"""

import sys

import numpy as np

from repro import accelerator
from repro.apps.pic import PicGrid, PicSimulation, cold_plasma_particles


def main(acc_name: str) -> None:
    grid = PicGrid(ng=32)
    x, v, w = cold_plasma_particles(
        grid, particles_per_cell=20, displacement=0.01
    )
    acc = accelerator(acc_name)
    sim = PicSimulation(acc, grid, x, v, w)
    print(
        f"{sim.n} macro-particles on {grid.ng} cells, back-end {acc.name}, "
        f"n0={sim.n0:.3f}"
    )

    dt, steps = 0.1, 400
    hist = sim.run(steps, dt)

    # The field energy oscillates at 2*omega_p.
    fe = np.asarray(hist.field_energy)
    freqs = np.fft.rfftfreq(steps, dt) * 2.0 * np.pi
    spec = np.abs(np.fft.rfft(fe - fe.mean()))
    omega_measured = freqs[np.argmax(spec)] / 2.0
    print(
        f"measured plasma frequency: {omega_measured:.3f} "
        f"(theory: omega_p = 1.000)"
    )
    te = hist.total_energy
    print(
        f"energy conservation over {steps} steps: "
        f"drift {100 * (te.max() - te.min()) / te.mean():.1f}%"
    )
    assert abs(omega_measured - 1.0) < 0.15
    sim.free()


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "AccCpuOmp2Blocks")
