"""Heterogeneity: CPU and GPU back-ends cooperating in one program.

Paper Sec. 3.1: alpaka *"enables running multiple of the same or
different back-end instances simultaneously, e.g. to utilize all cores
on a device as well as all accelerators concurrently"*.  This script
splits one DAXPY across the host CPU (OpenMP-block back-end) and both
dies of the simulated K80 (CUDA back-end), with one non-blocking queue
per device, then gathers and verifies.

Run:  python examples/mixed_backends.py
"""

import numpy as np

from repro import (
    AccCpuOmp2Blocks,
    AccGpuCudaSim,
    QueueNonBlocking,
    create_task_kernel,
    divide_work,
    get_dev_by_idx,
    get_dev_count,
    mem,
)
from repro.kernels import AxpyElementsKernel


def main(n: int = 90_000) -> None:
    x_host = np.arange(n, dtype=np.float64)
    y_host = np.ones(n, dtype=np.float64)

    # Build the worker list: host CPU + every simulated GPU die.
    workers = [(AccCpuOmp2Blocks, get_dev_by_idx(AccCpuOmp2Blocks, 0))]
    for i in range(get_dev_count(AccGpuCudaSim)):
        workers.append((AccGpuCudaSim, get_dev_by_idx(AccGpuCudaSim, i)))
    print("workers:", ", ".join(f"{d.name} via {a.name}" for a, d in workers))

    # Static split of the index space.
    bounds = np.linspace(0, n, len(workers) + 1).astype(int)
    kernel = AxpyElementsKernel()
    inflight = []
    for (acc, dev), lo, hi in zip(workers, bounds[:-1], bounds[1:]):
        m = int(hi - lo)
        queue = QueueNonBlocking(dev)
        x = mem.alloc(dev, m)
        y = mem.alloc(dev, m)
        mem.copy(queue, x, x_host[lo:hi])
        mem.copy(queue, y, y_host[lo:hi])
        props = acc.get_acc_dev_props(dev)
        wd = divide_work(m, props, acc.mapping_strategy, thread_elems=128)
        queue.enqueue(create_task_kernel(acc, wd, kernel, m, 2.0, x, y))
        inflight.append((queue, y, lo, hi))
        # note: no wait here - all devices compute concurrently

    result = np.empty(n)
    for queue, y, lo, hi in inflight:
        part = np.empty(hi - lo)
        mem.copy(queue, part, y)
        queue.wait()
        result[lo:hi] = part
        queue.destroy()

    assert np.allclose(result, 2.0 * x_host + y_host)
    print(f"DAXPY of {n} elements split over {len(workers)} devices: OK")


if __name__ == "__main__":
    main()
