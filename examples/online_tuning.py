"""Online tuning demo: drift-driven re-tuning under live traffic.

Runs the serving gateway with online tuning enabled and walks the full
loop end to end:

1. steady AXPY traffic forms a latency baseline for the workload;
2. a latency regression is induced (here: synthetic inflated samples
   fed to the drift monitor — in production this is what a device
   losing boost clocks or a noisy neighbour looks like);
3. the ``DriftMonitor`` trips, a *background* re-tune measures a fresh
   work division off the hot path, and publishing it bumps the tuning
   generation — the next AUTO launch silently picks it up;
4. requests keep flowing the whole time and every single result is
   verified bit-identical against numpy: a hot-swap may change *how*
   a kernel is scheduled, never *what* it computes.

Run:  python examples/online_tuning.py
"""

import os
import tempfile

import numpy as np

N = 256
BASELINE_REQUESTS = 12
DRIFTING_REQUESTS = 16


def run(tmpdir: str) -> None:
    # Keep the demo's measurements out of any real tuning cache.
    os.environ["REPRO_TUNING_CACHE"] = os.path.join(tmpdir, "cache.json")
    os.environ["REPRO_TUNING_HOF"] = os.path.join(tmpdir, "hof.json")

    from repro.serve import Gateway, ServeConfig
    from repro.serve.online import OnlineTuner
    from repro.tuning import reset_default_cache
    from repro.tuning.cache import tuning_generation
    from repro.tuning.fleet.config import FleetConfig

    reset_default_cache()
    rng = np.random.default_rng(42)

    def drive(gw, count):
        """Launch AXPY requests and verify every result exactly."""
        x = rng.standard_normal(N)
        y = rng.standard_normal(N)
        for _ in range(count):
            handle = gw.launch(
                "axpy", params={"alpha": 2.0}, arrays={"x": x, "y": y}
            )
            result = handle.result(timeout=30)
            assert np.array_equal(result.arrays["y"], 2.0 * x + y)

    with Gateway(ServeConfig(online_tuning=True)) as gw:
        # A twitchy monitor so the demo converges in seconds; the
        # defaults (window 64, threshold 1.5x, cooldown 30 s) are what
        # a long-running deployment would use.
        tuner = OnlineTuner(
            FleetConfig(
                drift_window=8,
                drift_threshold=1.5,
                drift_ewma_alpha=0.9,
                drift_cooldown=0.0,
                drift_budget=3,
            )
        )
        gw.online.close()
        gw.online = tuner

        print(f"1. baseline: {BASELINE_REQUESTS} AXPY requests ...")
        drive(gw, BASELINE_REQUESTS)
        snap = tuner.monitor.snapshot()["axpy"]
        base = snap["baseline_median"]
        print(f"   baseline median service latency: {base * 1e6:.1f} us")

        gen_before = tuning_generation()
        print(f"2. inducing a 5x latency regression "
              f"(tuning generation {gen_before}) ...")
        for _ in range(DRIFTING_REQUESTS):
            tuner.monitor.observe("axpy", base * 5.0)
            drive(gw, 1)  # traffic races the background re-tune

        assert tuner.wait_idle(timeout=60.0), "re-tune never finished"
        stats = tuner.stats()
        gen_after = tuning_generation()
        assert stats["retunes"] >= 1, "drift never tripped"
        assert gen_after > gen_before, "re-tune never published"
        print(f"3. drift detected -> background re-tune ran "
              f"({stats['retunes']} re-tune(s)), tuning generation "
              f"{gen_before} -> {gen_after}")

        print("4. post-swap traffic ...")
        drive(gw, 4)
        print(f"   {BASELINE_REQUESTS + DRIFTING_REQUESTS + 4} requests "
              f"served across the swap, all bit-identical to numpy")
        gw.shutdown(release_pools=False)

    reset_default_cache()


if __name__ == "__main__":
    with tempfile.TemporaryDirectory() as tmpdir:
        run(tmpdir)
