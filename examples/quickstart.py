"""Quickstart: one DAXPY kernel, every back-end, one changed line.

The paper's headline usability claim is that retargeting an alpaka
application means changing a single source line — the accelerator type
alias.  This script makes that literal: the kernel and the host logic
below never change; the loop at the bottom swaps the one line.

Run:  python examples/quickstart.py [backend-name]
"""

import sys

import numpy as np

from repro import (
    Grid,
    QueueBlocking,
    Threads,
    accelerator,
    accelerator_names,
    create_task_kernel,
    divide_work,
    enqueue,
    fn_acc,
    get_dev_by_idx,
    get_idx,
    mem,
)
from repro.core.element import grid_strided_spans


class AxpyKernel:
    """y <- alpha * x + y, one element span per thread."""

    @fn_acc
    def __call__(self, acc, n, alpha, x, y):
        for span in grid_strided_spans(acc, n):
            y[span] = alpha * x[span] + y[span]


def run_on(acc_name: str, n: int = 1 << 16) -> None:
    Acc = accelerator(acc_name)  # <- the one retargeting line

    # Everything below is back-end agnostic.
    dev = get_dev_by_idx(Acc, 0)
    queue = QueueBlocking(dev)

    x_host = np.arange(n, dtype=np.float64)
    y_host = np.ones(n, dtype=np.float64)

    x = mem.alloc(dev, n)
    y = mem.alloc(dev, n)
    mem.copy(queue, x, x_host)  # explicit deep copies -
    mem.copy(queue, y, y_host)  # no implicit migration anywhere

    props = Acc.get_acc_dev_props(dev)
    work_div = divide_work(n, props, Acc.mapping_strategy, thread_elems=256)
    task = create_task_kernel(Acc, work_div, AxpyKernel(), n, 2.0, x, y)
    enqueue(queue, task)

    out = np.empty(n)
    mem.copy(queue, out, y)
    assert np.allclose(out, 2.0 * x_host + 1.0)
    print(
        f"{acc_name:20s} ok  ({work_div.block_count} blocks x "
        f"{work_div.block_thread_count} threads x "
        f"{work_div.thread_elem_count} elems on {dev.name})"
    )
    for buf in (x, y):
        buf.free()


if __name__ == "__main__":
    names = sys.argv[1:] or accelerator_names()
    for name in names:
        run_on(name)
