"""Mini-HASEonGPU: adaptive multi-device ASE integration (Sec. 4.3).

Builds a pumped Yb:YAG-like slab, computes the amplified-spontaneous-
emission flux at a grid of sample points on its surface with the
adaptive Monte-Carlo integrator, on a CPU back-end and on the simulated
two-die K80 — the same single kernel source.  Prints the flux map, the
MC error, and the per-round adaptive behaviour.

Run:  python examples/monte_carlo_ase.py [backend-name]
"""

import sys

import numpy as np

from repro import accelerator
from repro.apps.hase import (
    GainMedium,
    PrismMesh,
    compute_ase_flux,
    default_sample_points,
    gaussian_pump_profile,
)


def main(acc_name: str) -> None:
    mesh = PrismMesh(nx=10, ny=10, nz=4, width=1.0, height=1.0, depth=0.2)
    n2 = gaussian_pump_profile(mesh, peak_inversion=4.0e20)
    medium = GainMedium(mesh, n2)
    print(
        f"gain medium: {mesh.prism_count} prisms, "
        f"peak inversion {n2.max():.2e} cm^-3, "
        f"max gain coefficient {medium.gain_coefficients.max():.3f} cm^-1"
    )

    per_edge = 3
    points = default_sample_points(medium, per_edge=per_edge)
    acc_type = accelerator(acc_name)
    result = compute_ase_flux(
        acc_type,
        medium,
        points,
        target_rel_error=0.05,
        initial_samples=256,
        max_samples_per_point=8192,
    )

    print(f"devices used: {', '.join(result.device_names)}")
    print(
        f"adaptive rounds: {result.rounds}, samples/point: "
        f"{result.samples.min():.0f}..{result.samples.max():.0f}"
    )
    print("ASE flux map (photons / cm^2 s), sample grid on top surface:")
    flux_map = result.flux.reshape(per_edge, per_edge)
    err_map = result.rel_error.reshape(per_edge, per_edge)
    for row_f, row_e in zip(flux_map, err_map):
        print(
            "   "
            + "  ".join(
                f"{f:10.3e} (+-{e * 100:4.1f}%)" for f, e in zip(row_f, row_e)
            )
        )
    # The pump is centred: the central sample point sees the most ASE.
    centre = flux_map[per_edge // 2, per_edge // 2]
    assert centre >= flux_map.min()
    print(f"centre/corner flux ratio: {centre / flux_map[0, 0]:.2f}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "AccGpuCudaSim")
