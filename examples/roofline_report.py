"""Roofline report: where each library kernel lands on each machine.

A performance-engineering view of the reproduction: for the paper's
five machines, print the roofline envelope corner (the intensity where
memory- and compute-bound regimes meet) and place the library's main
kernels on it — arithmetic intensity, attained GFLOPS, and which
ceiling binds.  The Fig. 9 story is visible at a glance: DGEMM's tiled
kernel is on-chip-bound at ~20 % of peak everywhere, DAXPY and SpMV
are DRAM-bound, HASE's Monte-Carlo kernel is compute-bound.

Run:  python examples/roofline_report.py
"""

import numpy as np

from repro.apps.hase import AseFluxKernel, GainMedium, PrismMesh, gaussian_pump_profile
from repro.comparison import render_table
from repro.core.workdiv import WorkDivMembers
from repro.hardware import TABLE3_KEYS, machine
from repro.kernels import (
    AxpyElementsKernel,
    CsrSpmvKernel,
    GemmTilingKernel,
    gemm_workdiv_tiling,
)
from repro.perfmodel import machine_resources, place_kernel


def kernel_zoo(n=4096):
    """(name, work-div factory, characteristics factory) per kernel."""
    mesh = PrismMesh(nx=16, ny=16, nz=4)
    medium = GainMedium(mesh, gaussian_pump_profile(mesh, 4.0e20))
    hase = AseFluxKernel(medium)

    def gemm(kind):
        bt, v, scope = (16, 2, "both") if kind == "gpu" else (1, 128, "blocks")
        wd = gemm_workdiv_tiling(n, bt, v)
        return wd, GemmTilingKernel().characteristics(wd, n), scope

    def axpy(kind):
        m = 1 << 24
        wd = (
            WorkDivMembers.make(m // 256 // 128, 256, 128)
            if kind == "gpu"
            else WorkDivMembers.make(m // 4096, 1, 4096)
        )
        scope = "both" if kind == "gpu" else "blocks"
        return wd, AxpyElementsKernel().characteristics(wd, m, 2.0, None, None), scope

    def spmv(kind):
        rows, nnz = 1 << 20, 1 << 23
        wd = (
            WorkDivMembers.make(rows // 256, 256, 1)
            if kind == "gpu"
            else WorkDivMembers.make(rows // 64, 1, 64)
        )
        scope = "both" if kind == "gpu" else "blocks"
        chars = CsrSpmvKernel().characteristics(
            wd, rows, np.empty(nnz), None, None, None, None
        )
        return wd, chars, scope

    def hase_mc(kind):
        wd = (
            WorkDivMembers.make(2048, 64, 1600)
            if kind == "gpu"
            else WorkDivMembers.make(2048, 1, 100_000)
        )
        scope = "both" if kind == "gpu" else "blocks"
        chars = hase.characteristics(wd, 0, 100_000, None, None, None, None)
        return wd, chars, scope

    return {
        "DGEMM (tiling)": gemm,
        "DAXPY (element spans)": axpy,
        "SpMV (CSR)": spmv,
        "HASE Monte-Carlo": hase_mc,
    }


def main() -> None:
    zoo = kernel_zoo()
    rows = []
    for key in TABLE3_KEYS:
        spec = machine(key)
        res = machine_resources(spec, spec.kind)
        corner = res.peak_gflops / res.dram_bandwidth_gbs
        for name, factory in zoo.items():
            wd, chars, scope = factory(spec.kind)
            pt = place_kernel(spec, spec.kind, wd, chars, scope)
            rows.append(
                {
                    "Machine": spec.architecture,
                    "Kernel": name,
                    "AI [flop/B]": f"{pt.arithmetic_intensity:8.2f}",
                    "GFLOPS": f"{pt.attained_gflops:8.1f}",
                    "% peak": f"{100 * pt.attained_gflops / res.peak_gflops:5.1f}",
                    "bound": pt.bound,
                    "corner AI": f"{corner:.1f}",
                }
            )
    print(render_table(rows, "Roofline placement of the kernel library"))

    # Sanity: DGEMM compute/on-chip bound everywhere, DAXPY DRAM bound.
    for r in rows:
        if r["Kernel"].startswith("DAXPY"):
            assert r["bound"] == "dram", r
        if r["Kernel"].startswith("DGEMM"):
            assert r["bound"] in ("compute", "on_chip"), r


if __name__ == "__main__":
    main()
